//! The data-movement hierarchy and its normalized energy costs (Table IV).
//!
//! The spatial architecture provides four levels of storage hierarchy —
//! DRAM, global buffer, array (inter-PE communication) and RF — with energy
//! per access, normalized to one MAC operation, extracted from a commercial
//! 65 nm process (Table IV of the paper):
//!
//! | Level  | DRAM | Buffer (>100 kB) | Array (1–2 mm) | RF (0.5 kB) |
//! |--------|------|------------------|-----------------|-------------|
//! | Cost   | 200x | 6x               | 2x              | 1x          |

use crate::cost::CostModelError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One level of the data-movement hierarchy (Section VI-C), plus the ALU
/// itself so that compute energy can share the same accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Level {
    /// Off-chip DRAM.
    Dram,
    /// On-chip global buffer (typically 100–300 kB).
    Buffer,
    /// Inter-PE communication across the array NoC.
    Array,
    /// Per-PE register file (local scratchpad, <= 1 kB).
    Rf,
    /// The MAC datapath itself.
    Alu,
}

impl Level {
    /// All levels, ordered from most to least expensive.
    pub const ALL: [Level; 5] = [
        Level::Dram,
        Level::Buffer,
        Level::Array,
        Level::Rf,
        Level::Alu,
    ];

    /// Short label used in report tables.
    pub fn label(self) -> &'static str {
        match self {
            Level::Dram => "DRAM",
            Level::Buffer => "Buffer",
            Level::Array => "Array",
            Level::Rf => "RF",
            Level::Alu => "ALU",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Normalized energy cost per access at each hierarchy level.
///
/// # Example
///
/// ```
/// use eyeriss_arch::energy::{EnergyModel, Level};
///
/// let m = EnergyModel::table_iv();
/// // Moving a word from DRAM costs 200 MACs' worth of energy.
/// assert_eq!(m.cost(Level::Dram) / m.cost(Level::Alu), 200.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    dram: f64,
    buffer: f64,
    array: f64,
    rf: f64,
    alu: f64,
}

impl EnergyModel {
    /// The commercial 65 nm numbers of Table IV.
    pub const fn table_iv() -> Self {
        EnergyModel {
            dram: 200.0,
            buffer: 6.0,
            array: 2.0,
            rf: 1.0,
            alu: 1.0,
        }
    }

    /// Builds a custom model (for sensitivity/ablation studies).
    ///
    /// # Errors
    ///
    /// [`CostModelError::InvalidCost`] when a cost is negative or
    /// non-finite, [`CostModelError::UnorderedHierarchy`] when the
    /// ordering `dram >= buffer >= array >= rf` is violated — the
    /// hierarchy is defined by decreasing access cost (Section II).
    pub fn new(
        dram: f64,
        buffer: f64,
        array: f64,
        rf: f64,
        alu: f64,
    ) -> Result<Self, CostModelError> {
        let m = EnergyModel {
            dram,
            buffer,
            array,
            rf,
            alu,
        };
        for level in Level::ALL {
            let value = m.cost(level);
            if !value.is_finite() || value < 0.0 {
                return Err(CostModelError::InvalidCost { level, value });
            }
        }
        for pair in [Level::Dram, Level::Buffer, Level::Array, Level::Rf].windows(2) {
            let (upper, lower) = (pair[0], pair[1]);
            if m.cost(upper) < m.cost(lower) {
                return Err(CostModelError::UnorderedHierarchy {
                    upper,
                    lower,
                    upper_cost: m.cost(upper),
                    lower_cost: m.cost(lower),
                });
            }
        }
        Ok(m)
    }

    /// Energy cost of one access at `level`, in MAC-equivalents.
    pub fn cost(&self, level: Level) -> f64 {
        match level {
            Level::Dram => self.dram,
            Level::Buffer => self.buffer,
            Level::Array => self.array,
            Level::Rf => self.rf,
            Level::Alu => self.alu,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::table_iv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_values() {
        let m = EnergyModel::table_iv();
        assert_eq!(m.cost(Level::Dram), 200.0);
        assert_eq!(m.cost(Level::Buffer), 6.0);
        assert_eq!(m.cost(Level::Array), 2.0);
        assert_eq!(m.cost(Level::Rf), 1.0);
        assert_eq!(m.cost(Level::Alu), 1.0);
    }

    #[test]
    fn costs_strictly_ordered() {
        let m = EnergyModel::default();
        assert!(m.cost(Level::Dram) > m.cost(Level::Buffer));
        assert!(m.cost(Level::Buffer) > m.cost(Level::Array));
        assert!(m.cost(Level::Array) > m.cost(Level::Rf));
    }

    #[test]
    fn new_rejects_inverted_hierarchy_with_typed_error() {
        let err = EnergyModel::new(1.0, 6.0, 2.0, 1.0, 1.0).unwrap_err();
        assert!(matches!(
            err,
            CostModelError::UnorderedHierarchy {
                upper: Level::Dram,
                lower: Level::Buffer,
                ..
            }
        ));
        assert!(err.to_string().contains("DRAM"));
        let err = EnergyModel::new(200.0, 6.0, 2.0, -1.0, 1.0).unwrap_err();
        assert!(matches!(
            err,
            CostModelError::InvalidCost {
                level: Level::Rf,
                ..
            }
        ));
        let err = EnergyModel::new(f64::NAN, 6.0, 2.0, 1.0, 1.0).unwrap_err();
        assert!(matches!(err, CostModelError::InvalidCost { .. }));
        assert!(EnergyModel::new(200.0, 6.0, 2.0, 1.0, 1.0).is_ok());
    }

    #[test]
    fn labels_are_unique() {
        let labels: Vec<_> = Level::ALL.iter().map(|l| l.label()).collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels, dedup);
    }
}
