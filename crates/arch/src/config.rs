//! Accelerator configurations: PE grid, RF capacity and buffer capacity.
//!
//! Two families matter for the reproduction:
//!
//! * the fabricated Eyeriss chip (Fig. 4): a 12x14 array of 168 PEs, 0.5 kB
//!   RF per PE and a 108 kB global buffer at 16-bit precision;
//! * the Section VII comparison setups: 256/512/1024 PEs with the Eq. (2)
//!   baseline storage area, from which each dataflow derives its own
//!   RF/buffer split.

use crate::area;
use serde::{Deserialize, Serialize};

/// Bytes per data word (16-bit fixed point throughout the paper).
pub const WORD_BYTES: usize = 2;

/// Physical PE array dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GridDims {
    /// Number of PE rows.
    pub rows: usize,
    /// Number of PE columns.
    pub cols: usize,
}

impl GridDims {
    /// Creates a grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be non-zero");
        GridDims { rows, cols }
    }

    /// Total PE count.
    pub fn count(&self) -> usize {
        self.rows * self.cols
    }

    /// A near-square grid for a given PE count, preferring more columns
    /// (ofmap-row parallelism) when not square. Used for the 256/512/1024
    /// sweeps where the paper only states PE counts.
    pub fn near_square(num_pes: usize) -> Self {
        assert!(num_pes > 0, "PE count must be non-zero");
        let mut rows = (num_pes as f64).sqrt() as usize;
        while rows > 1 && !num_pes.is_multiple_of(rows) {
            rows -= 1;
        }
        GridDims::new(rows, num_pes / rows)
    }
}

/// A complete accelerator configuration.
///
/// # Example
///
/// ```
/// use eyeriss_arch::AcceleratorConfig;
///
/// let chip = AcceleratorConfig::eyeriss_chip();
/// assert_eq!(chip.grid.count(), 168);
/// assert_eq!(chip.rf_words_per_pe(), 256); // 0.5 kB / 2 B
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Physical PE array dimensions.
    pub grid: GridDims,
    /// Register file capacity per PE, in bytes.
    pub rf_bytes_per_pe: f64,
    /// Global buffer capacity, in bytes.
    pub buffer_bytes: f64,
}

impl AcceleratorConfig {
    /// The fabricated Eyeriss chip of Fig. 4: 168 PEs (12x14), 0.5 kB RF,
    /// 108 kB buffer.
    pub fn eyeriss_chip() -> Self {
        AcceleratorConfig {
            grid: GridDims::new(12, 14),
            rf_bytes_per_pe: 512.0,
            buffer_bytes: 108.0 * 1024.0,
        }
    }

    /// The Section VII-A RS setup: `num_pes` PEs with 512 B RF and
    /// `num_pes x 512 B` global buffer (e.g. 256 PEs -> 128 kB).
    pub fn paper_baseline(num_pes: usize) -> Self {
        AcceleratorConfig {
            grid: GridDims::near_square(num_pes),
            rf_bytes_per_pe: area::BASELINE_RF_BYTES,
            buffer_bytes: num_pes as f64 * area::BASELINE_RF_BYTES,
        }
    }

    /// Derives the configuration a dataflow gets under the fixed-area
    /// comparison: `rf_bytes_per_pe` is the dataflow's RF requirement and
    /// the buffer absorbs the remaining Eq. (2) baseline area (Fig. 7b).
    pub fn under_baseline_area(num_pes: usize, rf_bytes_per_pe: f64) -> Self {
        AcceleratorConfig {
            grid: GridDims::near_square(num_pes),
            rf_bytes_per_pe,
            buffer_bytes: area::buffer_bytes_under_baseline(num_pes, rf_bytes_per_pe),
        }
    }

    /// RF capacity per PE in 16-bit words.
    pub fn rf_words_per_pe(&self) -> usize {
        (self.rf_bytes_per_pe / WORD_BYTES as f64) as usize
    }

    /// Global buffer capacity in 16-bit words.
    pub fn buffer_words(&self) -> usize {
        (self.buffer_bytes / WORD_BYTES as f64) as usize
    }

    /// Total PE count.
    pub fn num_pes(&self) -> usize {
        self.grid.count()
    }

    /// Total on-chip storage (all RFs + buffer) in bytes.
    pub fn total_storage_bytes(&self) -> f64 {
        self.num_pes() as f64 * self.rf_bytes_per_pe + self.buffer_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_matches_fig4() {
        let chip = AcceleratorConfig::eyeriss_chip();
        assert_eq!(chip.grid, GridDims::new(12, 14));
        assert_eq!(chip.buffer_words(), 54 * 1024);
    }

    #[test]
    fn paper_baseline_256() {
        let c = AcceleratorConfig::paper_baseline(256);
        assert_eq!(c.num_pes(), 256);
        assert_eq!(c.buffer_bytes, 128.0 * 1024.0);
        assert_eq!(c.rf_words_per_pe(), 256);
    }

    #[test]
    fn near_square_divides_evenly() {
        for n in [168usize, 256, 512, 1024, 96] {
            let g = GridDims::near_square(n);
            assert_eq!(g.count(), n);
            assert!(g.rows <= g.cols);
        }
    }

    #[test]
    fn near_square_prime_degrades_to_row() {
        let g = GridDims::near_square(13);
        assert_eq!((g.rows, g.cols), (1, 13));
    }

    #[test]
    fn under_baseline_nlr_gets_bigger_buffer() {
        let rs = AcceleratorConfig::under_baseline_area(256, 512.0);
        let nlr = AcceleratorConfig::under_baseline_area(256, 0.0);
        assert!(nlr.buffer_bytes > 2.0 * rs.buffer_bytes);
        // But less *total* storage spread than 110 kB (Fig. 7b).
        let spread = (nlr.total_storage_bytes() - rs.total_storage_bytes()).abs();
        assert!(spread < 110.0 * 1024.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_grid_panics() {
        let _ = GridDims::new(0, 4);
    }
}
