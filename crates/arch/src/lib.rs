//! Hardware substrate for the Eyeriss (ISCA 2016) reproduction.
//!
//! Models the spatial-architecture accelerator of Section II: an array of
//! processing engines (PEs) with local register files (RFs), a shared global
//! buffer, and off-chip DRAM, plus the normalized energy and area cost
//! models the paper's analysis framework is built on:
//!
//! * [`energy`] — the four-level data-movement hierarchy and the normalized
//!   access energy costs of Table IV (DRAM 200x, buffer 6x, array 2x, RF 1x,
//!   relative to one MAC).
//! * [`cost`] — the open [`CostModel`] trait over that hierarchy: pluggable
//!   energy *and* bandwidth-derived latency accounting, the canonical
//!   [`TableIv`] model, the unified [`CostReport`] vocabulary and the
//!   [`CostModelRegistry`].
//! * [`area`] — the area-per-byte curve of Fig. 7a and the Eq. (2) baseline
//!   storage-area budget used to give every dataflow the same silicon.
//! * [`access`] — access-count containers that both the analytical dataflow
//!   models and the functional simulator produce, so the two can be
//!   cross-checked.
//! * [`config`] — accelerator configurations (PE grid, RF size, buffer
//!   size), including the fabricated chip of Fig. 4 and the 256/512/1024-PE
//!   setups of Section VII.
//!
//! # Example
//!
//! ```
//! use eyeriss_arch::energy::{EnergyModel, Level};
//!
//! let m = EnergyModel::table_iv();
//! assert_eq!(m.cost(Level::Dram), 200.0);
//! assert_eq!(m.cost(Level::Rf), 1.0);
//! ```

pub mod access;
pub mod area;
pub mod config;
pub mod cost;
pub mod energy;
pub mod wire;

pub use access::{AccessCounts, DataType, LayerAccessProfile};
pub use config::{AcceleratorConfig, GridDims};
pub use cost::{
    CostDescriptor, CostFingerprint, CostModel, CostModelError, CostModelId, CostModelRegistry,
    CostReport, StaticCostModel, TableIv,
};
pub use energy::{EnergyModel, Level};
