//! Wire codecs for access profiles and accelerator configurations.
//!
//! Access counts are `f64` and must survive a save/load round trip
//! *bit-exactly* (plan energies feed tie-breaking comparisons), so every
//! float travels as its IEEE-754 bit pattern via
//! [`Value::f64_bits`]/[`Value::as_f64_bits`].

use crate::access::{AccessCounts, LayerAccessProfile};
use crate::config::{AcceleratorConfig, GridDims};
use crate::cost::{CostDescriptor, CostFingerprint, CostModelRegistry};
use eyeriss_wire::{Value, WireError};

/// Version of the cost-model descriptor layout inside priced artifacts
/// (plans, plan-cache keys). Version 1 carries the model label plus the
/// exact bit patterns of its five per-level energy costs and five
/// per-level bandwidths, in `Level::ALL` order.
pub const COST_DESCRIPTOR_VERSION: u64 = 1;

/// Encodes which cost model priced an artifact: its label and exact
/// numeric fingerprint.
pub fn encode_cost_descriptor(d: &CostDescriptor) -> Value {
    Value::obj([
        ("v", Value::u64(COST_DESCRIPTOR_VERSION)),
        ("model", Value::str(d.id.label())),
        (
            "energy_bits",
            Value::arr(d.fingerprint.energy_bits.iter().map(|&b| Value::u64(b))),
        ),
        (
            "bw_bits",
            Value::arr(d.fingerprint.bandwidth_bits.iter().map(|&b| Value::u64(b))),
        ),
    ])
}

fn decode_bits5(v: &Value) -> Result<[u64; 5], WireError> {
    let raw = v.as_arr()?;
    if raw.len() != 5 {
        return Err(WireError::Invalid(format!(
            "cost fingerprint carries {} entries, expected 5",
            raw.len()
        )));
    }
    let mut bits = [0u64; 5];
    for (slot, item) in bits.iter_mut().zip(raw) {
        *slot = item.as_u64()?;
    }
    Ok(bits)
}

/// Decodes a cost-model descriptor, resolving the label against `costs`
/// (so the artifact's pricing model must be registered, exactly like a
/// plan's dataflow). The *persisted* fingerprint is kept verbatim: an
/// engine whose registered model now carries different numbers simply
/// never cache-hits the old entries.
///
/// # Errors
///
/// [`WireError::Invalid`] for unknown versions, unregistered labels or a
/// malformed fingerprint.
pub fn decode_cost_descriptor(
    v: &Value,
    costs: &CostModelRegistry,
) -> Result<CostDescriptor, WireError> {
    let version = v.get("v")?.as_u64()?;
    if version != COST_DESCRIPTOR_VERSION {
        return Err(WireError::Invalid(format!(
            "unsupported cost-descriptor version {version} (expected {COST_DESCRIPTOR_VERSION})"
        )));
    }
    let label = v.get("model")?.as_str()?;
    let id = costs
        .by_label(label)
        .map(|m| m.id())
        .ok_or_else(|| WireError::Invalid(format!("unregistered cost model {label:?}")))?;
    Ok(CostDescriptor {
        id,
        fingerprint: CostFingerprint {
            energy_bits: decode_bits5(v.get("energy_bits")?)?,
            bandwidth_bits: decode_bits5(v.get("bw_bits")?)?,
        },
    })
}

/// Encodes one data type's access counts.
pub fn encode_counts(c: &AccessCounts) -> Value {
    Value::obj([
        ("dram_r", Value::f64_bits(c.dram_reads)),
        ("dram_w", Value::f64_bits(c.dram_writes)),
        ("buf_r", Value::f64_bits(c.buffer_reads)),
        ("buf_w", Value::f64_bits(c.buffer_writes)),
        ("hops", Value::f64_bits(c.array_hops)),
        ("rf_r", Value::f64_bits(c.rf_reads)),
        ("rf_w", Value::f64_bits(c.rf_writes)),
    ])
}

/// Decodes one data type's access counts.
///
/// # Errors
///
/// [`WireError`] on missing keys or wrong types.
pub fn decode_counts(v: &Value) -> Result<AccessCounts, WireError> {
    Ok(AccessCounts {
        dram_reads: v.get("dram_r")?.as_f64_bits()?,
        dram_writes: v.get("dram_w")?.as_f64_bits()?,
        buffer_reads: v.get("buf_r")?.as_f64_bits()?,
        buffer_writes: v.get("buf_w")?.as_f64_bits()?,
        array_hops: v.get("hops")?.as_f64_bits()?,
        rf_reads: v.get("rf_r")?.as_f64_bits()?,
        rf_writes: v.get("rf_w")?.as_f64_bits()?,
    })
}

/// Encodes a whole layer access profile.
pub fn encode_profile(p: &LayerAccessProfile) -> Value {
    Value::obj([
        ("ifmap", encode_counts(&p.ifmap)),
        ("filter", encode_counts(&p.filter)),
        ("psum", encode_counts(&p.psum)),
        ("alu", Value::f64_bits(p.alu_ops)),
    ])
}

/// Decodes a layer access profile.
///
/// # Errors
///
/// [`WireError`] on missing keys or wrong types.
pub fn decode_profile(v: &Value) -> Result<LayerAccessProfile, WireError> {
    Ok(LayerAccessProfile {
        ifmap: decode_counts(v.get("ifmap")?)?,
        filter: decode_counts(v.get("filter")?)?,
        psum: decode_counts(v.get("psum")?)?,
        alu_ops: v.get("alu")?.as_f64_bits()?,
    })
}

/// Encodes an accelerator configuration (grid plus exact storage sizes).
pub fn encode_config(hw: &AcceleratorConfig) -> Value {
    Value::obj([
        ("rows", Value::usize(hw.grid.rows)),
        ("cols", Value::usize(hw.grid.cols)),
        ("rf_bytes", Value::f64_bits(hw.rf_bytes_per_pe)),
        ("buffer_bytes", Value::f64_bits(hw.buffer_bytes)),
    ])
}

/// Decodes an accelerator configuration.
///
/// # Errors
///
/// [`WireError::Invalid`] on a degenerate grid; structural errors
/// otherwise.
pub fn decode_config(v: &Value) -> Result<AcceleratorConfig, WireError> {
    let rows = v.get("rows")?.as_usize()?;
    let cols = v.get("cols")?.as_usize()?;
    if rows == 0 || cols == 0 {
        return Err(WireError::Invalid("zero-sized PE grid".into()));
    }
    Ok(AcceleratorConfig {
        grid: GridDims::new(rows, cols),
        rf_bytes_per_pe: v.get("rf_bytes")?.as_f64_bits()?,
        buffer_bytes: v.get("buffer_bytes")?.as_f64_bits()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_roundtrips_bit_exactly() {
        let mut p = LayerAccessProfile::new();
        p.alu_ops = 1.0 / 3.0;
        p.ifmap.dram_reads = 1e300;
        p.filter.rf_writes = f64::MIN_POSITIVE;
        p.psum.array_hops = 12345.6789;
        let back = decode_profile(&encode_profile(&p)).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.alu_ops.to_bits(), p.alu_ops.to_bits());
    }

    #[test]
    fn config_roundtrips() {
        for hw in [
            AcceleratorConfig::eyeriss_chip(),
            AcceleratorConfig::under_baseline_area(256, 0.0),
        ] {
            assert_eq!(decode_config(&encode_config(&hw)).unwrap(), hw);
        }
    }

    #[test]
    fn cost_descriptor_roundtrips_and_screens() {
        use crate::cost::{CostModel, StaticCostModel, TableIv};
        use crate::energy::{EnergyModel, Level};
        let mut reg = CostModelRegistry::builtin();
        let custom = StaticCostModel::new("lp", EnergyModel::table_iv())
            .with_bandwidth(Level::Dram, 4.0)
            .unwrap();
        reg.register(std::sync::Arc::new(custom)).unwrap();
        for d in [TableIv.descriptor(), custom.descriptor()] {
            let back = decode_cost_descriptor(&encode_cost_descriptor(&d), &reg).unwrap();
            assert_eq!(back, d);
        }
        // Unregistered label → typed error.
        let ghost = decode_cost_descriptor(
            &encode_cost_descriptor(&custom.descriptor()),
            &CostModelRegistry::builtin(),
        );
        assert!(matches!(ghost, Err(WireError::Invalid(_))));
        // The persisted fingerprint survives verbatim even when the
        // registered model under the same label now carries different
        // numbers (so stale entries never cross-hit).
        let mut drifted = CostModelRegistry::builtin();
        drifted
            .register(std::sync::Arc::new(StaticCostModel::new(
                "lp",
                EnergyModel::new(400.0, 6.0, 2.0, 1.0, 1.0).unwrap(),
            )))
            .unwrap();
        let back = decode_cost_descriptor(&encode_cost_descriptor(&custom.descriptor()), &drifted)
            .unwrap();
        assert_eq!(back.fingerprint, custom.fingerprint());
        assert_ne!(
            back.fingerprint,
            drifted.by_label("lp").unwrap().fingerprint()
        );
    }

    #[test]
    fn zero_grid_is_rejected() {
        let v = Value::obj([
            ("rows", Value::usize(0)),
            ("cols", Value::usize(14)),
            ("rf_bytes", Value::f64_bits(512.0)),
            ("buffer_bytes", Value::f64_bits(1024.0)),
        ]);
        assert!(matches!(decode_config(&v), Err(WireError::Invalid(_))));
    }
}
