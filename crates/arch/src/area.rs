//! Storage area model: the Fig. 7a area-per-byte curve and the Eq. (2)
//! baseline storage-area budget.
//!
//! The dataflow comparison of Section VI-B fixes total hardware area and
//! processing parallelism: all dataflows get the same number of PEs and the
//! same *storage area*, but may split it differently between RF and global
//! buffer. Because smaller memories cost more area per byte (Fig. 7a —
//! flip-flop-based register files at the small end, SRAM at the large end),
//! dataflows that demand large RFs end up with less total on-chip storage
//! (Fig. 7b; the paper quotes up to an 80 kB total spread and a 2.6x global
//! buffer ratio between NLR and RS).
//!
//! The curve below is a log-log interpolated table calibrated to reproduce
//! those two quotes; see `DESIGN.md` for the calibration.

/// Anchor points (bytes, normalized area per byte) of the Fig. 7a curve.
///
/// Below the first anchor the cost saturates at the flip-flop value; above
/// the last it saturates at the large-SRAM value.
const CURVE: [(f64, f64); 11] = [
    (2.0, 14.0),
    (16.0, 13.0),
    (32.0, 12.0),
    (64.0, 10.0),
    (128.0, 7.0),
    (256.0, 4.5),
    (512.0, 2.83),
    (1024.0, 2.5),
    (8192.0, 2.2),
    (65536.0, 2.0),
    (262144.0, 1.9),
];

/// Normalized area per byte for a memory of `bytes` capacity (Fig. 7a).
///
/// # Example
///
/// ```
/// use eyeriss_arch::area;
///
/// // Small flip-flop storage costs much more per byte than a big SRAM.
/// assert!(area::area_per_byte(16.0) > 5.0 * area::area_per_byte(131_072.0));
/// ```
pub fn area_per_byte(bytes: f64) -> f64 {
    assert!(bytes.is_finite() && bytes >= 0.0, "invalid size {bytes}");
    if bytes <= CURVE[0].0 {
        return CURVE[0].1;
    }
    if bytes >= CURVE[CURVE.len() - 1].0 {
        return CURVE[CURVE.len() - 1].1;
    }
    let mut i = 0;
    while CURVE[i + 1].0 < bytes {
        i += 1;
    }
    let (x0, y0) = CURVE[i];
    let (x1, y1) = CURVE[i + 1];
    // Log-linear interpolation in size, linear in cost.
    let t = (bytes.ln() - x0.ln()) / (x1.ln() - x0.ln());
    y0 + t * (y1 - y0)
}

/// Total normalized area of a memory of `bytes` capacity.
///
/// Zero bytes occupy zero area (NLR has no RF at all).
pub fn storage_area(bytes: f64) -> f64 {
    if bytes <= 0.0 {
        0.0
    } else {
        bytes * area_per_byte(bytes)
    }
}

/// Bytes per RF in the Eq. (2) baseline (512 B).
pub const BASELINE_RF_BYTES: f64 = 512.0;

/// The baseline storage area for `num_pes` PEs, per Eq. (2):
///
/// ```text
/// #PE x Area(512B RF) + Area((#PE x 512B) global buffer)
/// ```
///
/// # Example
///
/// ```
/// use eyeriss_arch::area;
///
/// // 256 PEs -> the baseline assumes a 128 kB global buffer.
/// let a = area::baseline_storage_area(256);
/// assert!(a > area::storage_area(256.0 * 512.0));
/// ```
pub fn baseline_storage_area(num_pes: usize) -> f64 {
    let rf_area = num_pes as f64 * storage_area(BASELINE_RF_BYTES);
    let buffer_area = storage_area(num_pes as f64 * BASELINE_RF_BYTES);
    rf_area + buffer_area
}

/// Solves for the largest global buffer (in bytes) whose area fits in
/// `area_budget`, by bisection on the monotone `storage_area` function.
///
/// Returns 0 when the budget is non-positive.
pub fn buffer_bytes_for_area(area_budget: f64) -> f64 {
    if area_budget <= 0.0 {
        return 0.0;
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    while storage_area(hi) < area_budget {
        hi *= 2.0;
        if hi > 1e12 {
            break;
        }
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if storage_area(mid) < area_budget {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Splits the Eq. (2) baseline area for `num_pes` PEs into a per-PE RF of
/// `rf_bytes_per_pe` plus the largest global buffer fitting in the rest.
///
/// This is how each dataflow's storage is provisioned for the comparison
/// (Fig. 7b): the RF requirement is fixed by the dataflow, the buffer gets
/// whatever area remains.
///
/// Returns the global buffer size in bytes (0 if the RFs exhaust the area).
pub fn buffer_bytes_under_baseline(num_pes: usize, rf_bytes_per_pe: f64) -> f64 {
    let budget = baseline_storage_area(num_pes);
    let rf_area = num_pes as f64 * storage_area(rf_bytes_per_pe);
    buffer_bytes_for_area(budget - rf_area)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn curve_is_monotone_decreasing() {
        let mut prev = f64::INFINITY;
        let mut b = 2.0;
        while b < 1e7 {
            let a = area_per_byte(b);
            assert!(a <= prev + 1e-12, "area/byte rose at {b}");
            prev = a;
            b *= 1.3;
        }
    }

    #[test]
    fn baseline_rs_buffer_is_512b_per_pe() {
        // RS keeps the 512 B RF, so its buffer must come out at #PE x 512 B.
        for pes in [256usize, 512, 1024] {
            let buf = buffer_bytes_under_baseline(pes, BASELINE_RF_BYTES);
            let expect = pes as f64 * 512.0;
            assert!(
                (buf - expect).abs() / expect < 1e-6,
                "{pes} PEs: {buf} vs {expect}"
            );
        }
    }

    #[test]
    fn nlr_buffer_ratio_matches_paper() {
        // Paper: buffer size difference "up to 2.6x" — NLR (no RF) vs RS.
        let rs = buffer_bytes_under_baseline(256, 512.0);
        let nlr = buffer_bytes_under_baseline(256, 0.0);
        let ratio = nlr / rs;
        assert!(
            (2.3..=2.9).contains(&ratio),
            "NLR/RS buffer ratio {ratio:.2} outside paper's ~2.6x"
        );
    }

    #[test]
    fn total_storage_spread_near_80kb() {
        // Paper: "difference in total on-chip storage size can go up to 80kB"
        // between dataflows at 256 PEs.
        let rs_total = 256.0 * 512.0 + buffer_bytes_under_baseline(256, 512.0);
        let nlr_total = buffer_bytes_under_baseline(256, 0.0);
        let spread_kb = (nlr_total - rs_total) / 1024.0;
        assert!(
            (50.0..=110.0).contains(&spread_kb),
            "total storage spread {spread_kb:.1} kB far from paper's 80 kB"
        );
    }

    #[test]
    fn buffer_solver_inverts_area() {
        for bytes in [1024.0, 65536.0, 250000.0, 400000.0] {
            let area = storage_area(bytes);
            let solved = buffer_bytes_for_area(area);
            assert!((solved - bytes).abs() / bytes < 1e-6);
        }
    }

    #[test]
    fn zero_budget_gives_zero_buffer() {
        assert_eq!(buffer_bytes_for_area(0.0), 0.0);
        assert_eq!(buffer_bytes_for_area(-5.0), 0.0);
        assert_eq!(storage_area(0.0), 0.0);
    }

    proptest! {
        #[test]
        fn prop_storage_area_monotone(a in 1.0f64..1e6, b in 1.0f64..1e6) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(storage_area(lo) <= storage_area(hi) + 1e-9);
        }

        #[test]
        fn prop_solver_roundtrip(bytes in 16.0f64..1e6) {
            let solved = buffer_bytes_for_area(storage_area(bytes));
            prop_assert!((solved - bytes).abs() / bytes < 1e-5);
        }

        #[test]
        fn prop_bigger_rf_smaller_buffer(rf in 0.0f64..2048.0) {
            let b0 = buffer_bytes_under_baseline(256, rf);
            let b1 = buffer_bytes_under_baseline(256, rf + 64.0);
            prop_assert!(b1 <= b0 + 1e-6);
        }
    }
}
