//! Access-count containers shared by the analytical models and the
//! simulator.
//!
//! The paper's analysis methodology (Section VI-C) quantifies energy by
//! "counting the number of accesses to each level of the previously defined
//! hierarchy, and weighting the accesses at each level with a cost from
//! Table IV". These types hold those counts, per data type, and convert
//! them to energy.
//!
//! Counts are `f64` because optimal mappings may charge fractional average
//! counts (halo-exact strip refetch factors); all integer-derived counts
//! are exact.

use crate::energy::{EnergyModel, Level};
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// The three data types moved through the hierarchy (Section VI-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Input feature map pixels (activations).
    Ifmap,
    /// Filter weights.
    Filter,
    /// Partial sums (accumulated into ofmap pixels).
    Psum,
}

impl DataType {
    /// All data types, in the order the paper's figures stack them.
    pub const ALL: [DataType; 3] = [DataType::Ifmap, DataType::Filter, DataType::Psum];

    /// Short label used in report tables.
    pub fn label(self) -> &'static str {
        match self {
            DataType::Ifmap => "Ifmaps",
            DataType::Filter => "Weights",
            DataType::Psum => "Psums",
        }
    }
}

/// Access counts for one data type across the four-level hierarchy.
///
/// `array_hops` counts inter-PE/NoC word deliveries (each charged the
/// array-level cost); the other levels distinguish reads and writes since
/// psum accumulation pays both (the factor of 2 in Eq. (4)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AccessCounts {
    /// Words read from DRAM.
    pub dram_reads: f64,
    /// Words written to DRAM.
    pub dram_writes: f64,
    /// Words read from the global buffer.
    pub buffer_reads: f64,
    /// Words written to the global buffer.
    pub buffer_writes: f64,
    /// Inter-PE word deliveries over the array NoC.
    pub array_hops: f64,
    /// Words read from PE register files.
    pub rf_reads: f64,
    /// Words written to PE register files.
    pub rf_writes: f64,
}

impl AccessCounts {
    /// A zeroed counter.
    pub fn new() -> Self {
        AccessCounts::default()
    }

    /// Total accesses at one hierarchy level (reads + writes).
    pub fn at_level(&self, level: Level) -> f64 {
        match level {
            Level::Dram => self.dram_reads + self.dram_writes,
            Level::Buffer => self.buffer_reads + self.buffer_writes,
            Level::Array => self.array_hops,
            Level::Rf => self.rf_reads + self.rf_writes,
            Level::Alu => 0.0,
        }
    }

    /// Normalized energy of these accesses under `model`.
    pub fn energy(&self, model: &EnergyModel) -> f64 {
        Level::ALL
            .iter()
            .map(|&l| self.at_level(l) * model.cost(l))
            .sum()
    }

    /// Energy contributed at a single level.
    pub fn energy_at(&self, model: &EnergyModel, level: Level) -> f64 {
        self.at_level(level) * model.cost(level)
    }

    /// Scales every count by `factor` (e.g. replicating a per-group
    /// profile across the `G` groups of a grouped convolution).
    pub fn scale(&mut self, factor: f64) {
        self.dram_reads *= factor;
        self.dram_writes *= factor;
        self.buffer_reads *= factor;
        self.buffer_writes *= factor;
        self.array_hops *= factor;
        self.rf_reads *= factor;
        self.rf_writes *= factor;
    }

    /// True if every count is finite and non-negative.
    pub fn is_valid(&self) -> bool {
        [
            self.dram_reads,
            self.dram_writes,
            self.buffer_reads,
            self.buffer_writes,
            self.array_hops,
            self.rf_reads,
            self.rf_writes,
        ]
        .iter()
        .all(|v| v.is_finite() && *v >= 0.0)
    }
}

impl Add for AccessCounts {
    type Output = AccessCounts;
    fn add(mut self, rhs: AccessCounts) -> AccessCounts {
        self += rhs;
        self
    }
}

impl AddAssign for AccessCounts {
    fn add_assign(&mut self, rhs: AccessCounts) {
        self.dram_reads += rhs.dram_reads;
        self.dram_writes += rhs.dram_writes;
        self.buffer_reads += rhs.buffer_reads;
        self.buffer_writes += rhs.buffer_writes;
        self.array_hops += rhs.array_hops;
        self.rf_reads += rhs.rf_reads;
        self.rf_writes += rhs.rf_writes;
    }
}

/// Complete access profile of one layer under one mapping: per-data-type
/// hierarchy counts plus the ALU operation count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LayerAccessProfile {
    /// Ifmap pixel movement.
    pub ifmap: AccessCounts,
    /// Filter weight movement.
    pub filter: AccessCounts,
    /// Partial-sum movement and accumulation traffic.
    pub psum: AccessCounts,
    /// MAC operations executed.
    pub alu_ops: f64,
}

impl LayerAccessProfile {
    /// A zeroed profile.
    pub fn new() -> Self {
        LayerAccessProfile::default()
    }

    /// Counts for one data type.
    pub fn of(&self, ty: DataType) -> &AccessCounts {
        match ty {
            DataType::Ifmap => &self.ifmap,
            DataType::Filter => &self.filter,
            DataType::Psum => &self.psum,
        }
    }

    /// Mutable counts for one data type.
    pub fn of_mut(&mut self, ty: DataType) -> &mut AccessCounts {
        match ty {
            DataType::Ifmap => &mut self.ifmap,
            DataType::Filter => &mut self.filter,
            DataType::Psum => &mut self.psum,
        }
    }

    /// Total energy including ALU operations.
    pub fn total_energy(&self, model: &EnergyModel) -> f64 {
        self.data_energy(model) + self.alu_ops * model.cost(Level::Alu)
    }

    /// Data-movement energy only (no ALU).
    pub fn data_energy(&self, model: &EnergyModel) -> f64 {
        DataType::ALL
            .iter()
            .map(|&t| self.of(t).energy(model))
            .sum()
    }

    /// Energy at one level, summed over data types (for Fig. 10/12 stacks);
    /// [`Level::Alu`] returns the MAC energy.
    pub fn energy_at_level(&self, model: &EnergyModel, level: Level) -> f64 {
        if level == Level::Alu {
            return self.alu_ops * model.cost(Level::Alu);
        }
        DataType::ALL
            .iter()
            .map(|&t| self.of(t).energy_at(model, level))
            .sum()
    }

    /// Energy of one data type across all levels (for Fig. 12d/14c stacks).
    pub fn energy_of_type(&self, model: &EnergyModel, ty: DataType) -> f64 {
        self.of(ty).energy(model)
    }

    /// Total DRAM accesses (reads + writes) across data types.
    pub fn dram_accesses(&self) -> f64 {
        DataType::ALL
            .iter()
            .map(|&t| self.of(t).at_level(Level::Dram))
            .sum()
    }

    /// DRAM reads across data types.
    pub fn dram_reads(&self) -> f64 {
        DataType::ALL.iter().map(|&t| self.of(t).dram_reads).sum()
    }

    /// DRAM writes across data types.
    pub fn dram_writes(&self) -> f64 {
        DataType::ALL.iter().map(|&t| self.of(t).dram_writes).sum()
    }

    /// Scales every count by `factor` — the whole-layer profile of a
    /// grouped convolution is its per-group profile times `G`.
    pub fn scale(&mut self, factor: f64) {
        self.ifmap.scale(factor);
        self.filter.scale(factor);
        self.psum.scale(factor);
        self.alu_ops *= factor;
    }

    /// Element-wise accumulation (summing layers into a network total).
    pub fn accumulate(&mut self, other: &LayerAccessProfile) {
        self.ifmap += other.ifmap;
        self.filter += other.filter;
        self.psum += other.psum;
        self.alu_ops += other.alu_ops;
    }

    /// True if every embedded count is finite and non-negative.
    pub fn is_valid(&self) -> bool {
        self.ifmap.is_valid()
            && self.filter.is_valid()
            && self.psum.is_valid()
            && self.alu_ops.is_finite()
            && self.alu_ops >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AccessCounts {
        AccessCounts {
            dram_reads: 10.0,
            dram_writes: 2.0,
            buffer_reads: 100.0,
            buffer_writes: 20.0,
            array_hops: 300.0,
            rf_reads: 1000.0,
            rf_writes: 500.0,
        }
    }

    #[test]
    fn energy_weights_levels() {
        let m = EnergyModel::table_iv();
        let c = sample();
        let expect = 12.0 * 200.0 + 120.0 * 6.0 + 300.0 * 2.0 + 1500.0 * 1.0;
        assert_eq!(c.energy(&m), expect);
    }

    #[test]
    fn add_is_elementwise() {
        let c = sample() + sample();
        assert_eq!(c.dram_reads, 20.0);
        assert_eq!(c.rf_writes, 1000.0);
    }

    #[test]
    fn profile_total_includes_alu() {
        let m = EnergyModel::table_iv();
        let mut p = LayerAccessProfile::new();
        p.alu_ops = 50.0;
        p.filter = sample();
        assert_eq!(p.total_energy(&m), p.filter.energy(&m) + 50.0);
    }

    #[test]
    fn per_level_sums_to_data_energy() {
        let m = EnergyModel::table_iv();
        let mut p = LayerAccessProfile::new();
        p.ifmap = sample();
        p.psum = sample();
        let by_level: f64 = [Level::Dram, Level::Buffer, Level::Array, Level::Rf]
            .iter()
            .map(|&l| p.energy_at_level(&m, l))
            .sum();
        assert!((by_level - p.data_energy(&m)).abs() < 1e-9);
    }

    #[test]
    fn per_type_sums_to_data_energy() {
        let m = EnergyModel::table_iv();
        let mut p = LayerAccessProfile::new();
        p.ifmap = sample();
        p.filter = sample();
        let by_type: f64 = DataType::ALL.iter().map(|&t| p.energy_of_type(&m, t)).sum();
        assert!((by_type - p.data_energy(&m)).abs() < 1e-9);
    }

    #[test]
    fn scale_multiplies_every_count() {
        let mut p = LayerAccessProfile::new();
        p.ifmap = sample();
        p.alu_ops = 10.0;
        p.scale(3.0);
        assert_eq!(p.ifmap.dram_reads, 30.0);
        assert_eq!(p.ifmap.rf_writes, 1500.0);
        assert_eq!(p.alu_ops, 30.0);
    }

    #[test]
    fn validity_checks_negative() {
        let mut c = sample();
        assert!(c.is_valid());
        c.array_hops = -1.0;
        assert!(!c.is_valid());
    }

    #[test]
    fn dram_reads_and_writes_split() {
        let mut p = LayerAccessProfile::new();
        p.psum.dram_writes = 5.0;
        p.ifmap.dram_reads = 7.0;
        assert_eq!(p.dram_reads(), 7.0);
        assert_eq!(p.dram_writes(), 5.0);
        assert_eq!(p.dram_accesses(), 12.0);
    }
}
