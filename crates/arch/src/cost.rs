//! The open cost-model layer: pluggable energy *and* latency accounting.
//!
//! Table IV of the paper fixes one 200×/6×/2×/1× energy hierarchy, but the
//! methodology of Section VI-C — "counting the number of accesses to each
//! level ... and weighting the accesses at each level with a cost" — is
//! parametric in those weights. Different processes, NoC designs and array
//! sizes change the per-level costs, and a serving deployment additionally
//! needs a *latency* dimension (per-level bandwidth) the energy table
//! cannot express. This module opens the accounting the same way
//! `eyeriss_dataflow` opened the mapping spaces:
//!
//! * [`CostModel`] — the open trait: identity, energy cost per [`Level`],
//!   per-level bandwidth, and provided pricing/fingerprinting.
//! * [`TableIv`] — the canonical implementation (the paper's numbers,
//!   latency-transparent: infinite per-level bandwidth, so delay reduces
//!   to the Section VII-B compute proxy).
//! * [`StaticCostModel`] — table-driven custom models for sensitivity
//!   scenarios and deployment what-ifs (e.g. a 28 nm latency-weighted
//!   setup with a finite DRAM channel).
//! * [`CostReport`] — the unified result vocabulary: per-level ×
//!   per-data-type energy plus the analytic delay, returned by simulator
//!   stats, cluster stats and the analysis metrics alike.
//! * [`CostModelRegistry`] — mirror of `DataflowRegistry`; everything
//!   downstream prices through `&dyn CostModel` and never matches on a
//!   concrete model type, so a registered model is searched, planned,
//!   persisted and served without core changes.
//!
//! # Example
//!
//! ```
//! use eyeriss_arch::cost::{CostModel, StaticCostModel, TableIv};
//! use eyeriss_arch::energy::{EnergyModel, Level};
//!
//! // The canonical model prices exactly like Table IV.
//! let table = TableIv;
//! assert_eq!(table.energy_cost(Level::Dram), 200.0);
//!
//! // A custom 28 nm-ish scenario: cheaper DRAM, a finite DRAM channel.
//! let low_power = StaticCostModel::new("lp-28nm", EnergyModel::new(120.0, 5.0, 2.0, 1.0, 1.0)?)
//!     .with_bandwidth(Level::Dram, 4.0)?;
//! assert!(low_power.energy_cost(Level::Dram) < table.energy_cost(Level::Dram));
//! assert_ne!(low_power.fingerprint(), table.fingerprint());
//! # Ok::<(), eyeriss_arch::cost::CostModelError>(())
//! ```

use crate::access::{AccessCounts, DataType, LayerAccessProfile};
use crate::energy::{EnergyModel, Level};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Stable identity of a cost model (the open-world mirror of
/// [`crate::energy::EnergyModel`]'s implicit "Table IV" identity).
///
/// Compares and hashes by label *content*; the label is also the
/// serialization form persisted plan caches store on disk.
#[derive(Debug, Clone, Copy)]
pub struct CostModelId(&'static str);

impl CostModelId {
    /// Creates an id from a static label. Labels are the wire format of
    /// the id, so pick short, stable, unique names.
    pub const fn new(label: &'static str) -> Self {
        CostModelId(label)
    }

    /// The id's label.
    pub fn label(&self) -> &'static str {
        self.0
    }
}

impl PartialEq for CostModelId {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl Eq for CostModelId {}

impl Hash for CostModelId {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl fmt::Display for CostModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// Exact bit-pattern fingerprint of a cost model: the IEEE-754 bits of
/// the energy cost and bandwidth at every level, in [`Level::ALL`] order.
/// Two models with equal fingerprints price every profile identically, so
/// plan caches may share entries between them; distinct fingerprints must
/// never cross-hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CostFingerprint {
    /// Energy-cost bits per level, [`Level::ALL`] order.
    pub energy_bits: [u64; 5],
    /// Bandwidth bits per level, [`Level::ALL`] order.
    pub bandwidth_bits: [u64; 5],
}

/// The `(identity, fingerprint)` pair a priced artifact (cluster plan,
/// plan-cache key) records, so persisted plans remember which model
/// priced them and reload against the matching one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CostDescriptor {
    /// Which model.
    pub id: CostModelId,
    /// Its exact numeric fingerprint at pricing time.
    pub fingerprint: CostFingerprint,
}

impl fmt::Display for CostDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Typed errors of the cost layer: construction invariants (the Section II
/// hierarchy ordering) and registry lookups.
#[derive(Debug, Clone, PartialEq)]
pub enum CostModelError {
    /// A per-level cost is negative or non-finite.
    InvalidCost {
        /// The offending level.
        level: Level,
        /// The offending value.
        value: f64,
    },
    /// The hierarchy ordering `DRAM >= buffer >= array >= RF` is violated
    /// (Section II defines the hierarchy by decreasing access cost).
    UnorderedHierarchy {
        /// The higher level whose cost fell below the lower one.
        upper: Level,
        /// The lower level.
        lower: Level,
        /// Cost at `upper`.
        upper_cost: f64,
        /// Cost at `lower`.
        lower_cost: f64,
    },
    /// A per-level bandwidth is zero, negative or NaN.
    InvalidBandwidth {
        /// The offending level.
        level: Level,
        /// The offending value.
        value: f64,
    },
    /// A model with this id is already registered.
    Duplicate(CostModelId),
    /// No registered model carries this label.
    Unknown(String),
}

impl fmt::Display for CostModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostModelError::InvalidCost { level, value } => {
                write!(
                    f,
                    "energy cost at {level} must be finite and >= 0, got {value}"
                )
            }
            CostModelError::UnorderedHierarchy {
                upper,
                lower,
                upper_cost,
                lower_cost,
            } => write!(
                f,
                "hierarchy costs must decrease with level: {upper} ({upper_cost}) \
                 < {lower} ({lower_cost})"
            ),
            CostModelError::InvalidBandwidth { level, value } => {
                write!(f, "bandwidth at {level} must be positive, got {value}")
            }
            CostModelError::Duplicate(id) => {
                write!(f, "cost model {id} is already registered")
            }
            CostModelError::Unknown(label) => {
                write!(f, "no cost model registered under {label:?}")
            }
        }
    }
}

impl std::error::Error for CostModelError {}

/// An energy/latency accounting scheme over the four-level hierarchy
/// (Section VI-C, opened up the way [`Dataflow`] opened the mapping
/// spaces).
///
/// Implementations provide an identity, an energy cost per access at each
/// [`Level`], and (optionally) a finite per-level bandwidth; everything
/// else — profile pricing, the analytic delay, the [`CostReport`]
/// vocabulary, the exact [`CostFingerprint`] plan caches key on — is
/// provided.
///
/// [`Dataflow`]: https://docs.rs/eyeriss-dataflow
pub trait CostModel: Send + Sync {
    /// Stable identity; registries and plan caches key on this (together
    /// with the numeric [`CostModel::fingerprint`]).
    fn id(&self) -> CostModelId;

    /// Energy cost of one access at `level`, normalized to one MAC.
    fn energy_cost(&self, level: Level) -> f64;

    /// Deliverable words per cycle at `level`, driving the analytic
    /// latency dimension. The default is infinite everywhere: the model
    /// is latency-transparent and [`CostModel::delay_of`] reduces to the
    /// paper's Section VII-B compute proxy (MACs / active PEs). Override
    /// with finite values to let scarce levels bound the delay.
    fn bandwidth(&self, level: Level) -> f64 {
        let _ = level;
        f64::INFINITY
    }

    /// Exact numeric fingerprint: the bit patterns of every per-level
    /// energy cost and bandwidth. Two models fingerprinting equal price
    /// identically; plan caches must never share entries across distinct
    /// fingerprints.
    fn fingerprint(&self) -> CostFingerprint {
        let mut energy_bits = [0u64; 5];
        let mut bandwidth_bits = [0u64; 5];
        for (i, level) in Level::ALL.into_iter().enumerate() {
            energy_bits[i] = self.energy_cost(level).to_bits();
            bandwidth_bits[i] = self.bandwidth(level).to_bits();
        }
        CostFingerprint {
            energy_bits,
            bandwidth_bits,
        }
    }

    /// The `(id, fingerprint)` descriptor priced artifacts record.
    fn descriptor(&self) -> CostDescriptor {
        CostDescriptor {
            id: self.id(),
            fingerprint: self.fingerprint(),
        }
    }

    /// Energy of one data type's access counts (the weighted sum of
    /// Section VI-C, association order identical to
    /// [`AccessCounts::energy`] so Table IV totals stay bit-exact).
    fn energy_of_counts(&self, counts: &AccessCounts) -> f64 {
        Level::ALL
            .iter()
            .map(|&l| counts.at_level(l) * self.energy_cost(l))
            .sum()
    }

    /// Total energy of a layer profile including ALU operations —
    /// bit-identical to `profile.total_energy(&EnergyModel)` under equal
    /// per-level costs.
    fn energy_of(&self, profile: &LayerAccessProfile) -> f64 {
        let data: f64 = DataType::ALL
            .iter()
            .map(|&t| self.energy_of_counts(profile.of(t)))
            .sum();
        data + profile.alu_ops * self.energy_cost(Level::Alu)
    }

    /// Energy at one level summed over data types, association order
    /// identical to the old `LayerAccessProfile::energy_at_level`;
    /// [`Level::Alu`] returns the MAC energy.
    fn energy_at_level(&self, profile: &LayerAccessProfile, level: Level) -> f64 {
        if level == Level::Alu {
            return profile.alu_ops * self.energy_cost(Level::Alu);
        }
        DataType::ALL
            .iter()
            .map(|&t| profile.of(t).at_level(level) * self.energy_cost(level))
            .sum()
    }

    /// Energy of one data type across all levels (order-identical to the
    /// old `LayerAccessProfile::energy_of_type`).
    fn energy_of_type(&self, profile: &LayerAccessProfile, ty: DataType) -> f64 {
        self.energy_of_counts(profile.of(ty))
    }

    /// Analytic delay of a layer profile on `active_pes` PEs: the compute
    /// proxy (MACs / active PEs, Section VII-B) floored by every level's
    /// transfer time under this model's bandwidths. Latency-transparent
    /// models (the default) return exactly the compute proxy.
    fn delay_of(&self, profile: &LayerAccessProfile, active_pes: usize) -> f64 {
        let mut delay = profile.alu_ops / active_pes as f64;
        for level in [Level::Dram, Level::Buffer, Level::Array, Level::Rf] {
            let words: f64 = DataType::ALL
                .iter()
                .map(|&t| profile.of(t).at_level(level))
                .sum();
            delay = delay.max(words / self.bandwidth(level));
        }
        delay
    }

    /// Prices a whole layer profile into the unified [`CostReport`]
    /// vocabulary: per-level × per-data-type energy plus the analytic
    /// delay decomposition (compute proxy = MACs / active PEs).
    fn report(&self, profile: &LayerAccessProfile, active_pes: usize) -> CostReport {
        self.report_with_delay(profile, profile.alu_ops / active_pes as f64)
    }

    /// [`CostModel::report`] with an explicit compute-delay baseline, for
    /// callers whose delay is not the analytic PE proxy — a simulator's
    /// measured cycles, a cluster plan's critical path. The report's
    /// final delay is the baseline floored by every level's transfer time
    /// under this model's bandwidths.
    fn report_with_delay(&self, profile: &LayerAccessProfile, compute_delay: f64) -> CostReport {
        let mut energy = [[0.0f64; 5]; 3];
        for (ti, &t) in DataType::ALL.iter().enumerate() {
            for (li, &l) in Level::ALL.iter().enumerate() {
                energy[ti][li] = profile.of(t).at_level(l) * self.energy_cost(l);
            }
        }
        let alu_energy = profile.alu_ops * self.energy_cost(Level::Alu);
        // Identical association order to `LayerAccessProfile::total_energy`
        // (per-type level sums, then across types, then + ALU), so Table IV
        // totals are bit-exact against the pre-trait pricing path.
        let data: f64 = energy.iter().map(|row| row.iter().sum::<f64>()).sum();
        let total_energy = data + alu_energy;
        let mut transfer_delay = [0.0f64; 5];
        let mut delay = compute_delay;
        for (li, &l) in Level::ALL.iter().enumerate() {
            if l == Level::Alu {
                continue;
            }
            let words: f64 = DataType::ALL
                .iter()
                .map(|&t| profile.of(t).at_level(l))
                .sum();
            transfer_delay[li] = words / self.bandwidth(l);
            delay = delay.max(transfer_delay[li]);
        }
        CostReport {
            model: self.descriptor(),
            energy,
            alu_energy,
            total_energy,
            compute_delay,
            transfer_delay,
            delay,
        }
    }

    /// Prices units that run *in parallel* (cluster arrays) into one
    /// report: energies add across units, but each unit owns private
    /// bandwidth at every level, so per-level transfer floors combine by
    /// **maximum** rather than summing — and the final delay is the
    /// caller's critical-path baseline (which should already account for
    /// shared resources, e.g. a cluster's shared-DRAM contention model)
    /// floored by those per-unit transfer times.
    fn report_parallel(&self, units: &[&LayerAccessProfile], baseline_delay: f64) -> CostReport {
        let mut total = CostReport::zero(self.descriptor());
        let mut transfer_delay = [0.0f64; 5];
        for profile in units {
            let unit = self.report_with_delay(profile, 0.0);
            for (acc, t) in transfer_delay.iter_mut().zip(&unit.transfer_delay) {
                *acc = acc.max(*t);
            }
            total.accumulate(&unit);
        }
        total.compute_delay = baseline_delay;
        total.transfer_delay = transfer_delay;
        total.delay = transfer_delay
            .iter()
            .fold(baseline_delay, |acc, &t| acc.max(t));
        total
    }
}

impl fmt::Debug for dyn CostModel + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CostModel({})", self.id())
    }
}

/// Index of `level` in [`Level::ALL`] (the report matrices' column order).
fn level_index(level: Level) -> usize {
    Level::ALL
        .iter()
        .position(|&l| l == level)
        .expect("Level::ALL is total")
}

/// Index of `ty` in [`DataType::ALL`] (the report matrices' row order).
fn type_index(ty: DataType) -> usize {
    DataType::ALL
        .iter()
        .position(|&t| t == ty)
        .expect("DataType::ALL is total")
}

/// The unified pricing vocabulary: one layer (or an accumulated network)
/// priced under one [`CostModel`] — per-level × per-data-type energy, the
/// ALU term, and the analytic delay decomposition.
///
/// Reports accumulate ([`CostReport::accumulate`]) so network totals and
/// cluster aggregates speak the same vocabulary as single layers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostReport {
    /// Which model priced this report (identity + exact fingerprint, so
    /// accumulation can reject sums across same-label models with
    /// different numbers).
    pub model: CostDescriptor,
    /// Energy per data type (row, [`DataType::ALL`] order) and level
    /// (column, [`Level::ALL`] order). The ALU column is zero — compute
    /// energy lives in [`CostReport::alu_energy`].
    energy: [[f64; 5]; 3],
    /// MAC/compute energy.
    pub alu_energy: f64,
    /// Total energy (data movement + ALU), in MAC units.
    pub total_energy: f64,
    /// The compute-bound delay term: MACs / active PEs (Section VII-B).
    pub compute_delay: f64,
    /// Per-level transfer delays (words at level / model bandwidth),
    /// [`Level::ALL`] order; zero under infinite bandwidth.
    transfer_delay: [f64; 5],
    /// Analytic delay: the maximum of the compute term and every level's
    /// transfer term, in MAC-time units.
    pub delay: f64,
}

impl CostReport {
    /// An all-zero report priced under `model` (identity for
    /// [`CostReport::accumulate`]).
    pub fn zero(model: CostDescriptor) -> Self {
        CostReport {
            model,
            energy: [[0.0; 5]; 3],
            alu_energy: 0.0,
            total_energy: 0.0,
            compute_delay: 0.0,
            transfer_delay: [0.0; 5],
            delay: 0.0,
        }
    }

    /// Energy of one data type at one level.
    pub fn energy_cell(&self, ty: DataType, level: Level) -> f64 {
        self.energy[type_index(ty)][level_index(level)]
    }

    /// Energy at one level summed over data types (the Fig. 10/12
    /// stacks); [`Level::Alu`] returns the MAC energy.
    pub fn energy_at(&self, level: Level) -> f64 {
        if level == Level::Alu {
            return self.alu_energy;
        }
        let li = level_index(level);
        self.energy.iter().map(|row| row[li]).sum()
    }

    /// Energy of one data type across levels (the Fig. 12d/14c stacks).
    pub fn energy_of(&self, ty: DataType) -> f64 {
        self.energy[type_index(ty)].iter().sum()
    }

    /// Data-movement energy (total minus ALU), summed per type then
    /// across types.
    pub fn data_energy(&self) -> f64 {
        DataType::ALL.iter().map(|&t| self.energy_of(t)).sum()
    }

    /// Transfer-delay component at one level ([`Level::Alu`] reports the
    /// compute term).
    pub fn transfer_delay_at(&self, level: Level) -> f64 {
        if level == Level::Alu {
            return self.compute_delay;
        }
        self.transfer_delay[level_index(level)]
    }

    /// The level whose transfer time dominates the compute term — the
    /// bandwidth bottleneck — or `None` when compute dominates (always
    /// `None` for latency-transparent models). For accumulated reports
    /// the comparison is between the summed transfer and compute terms.
    pub fn bound_level(&self) -> Option<Level> {
        let bottleneck = Level::ALL
            .into_iter()
            .filter(|&l| l != Level::Alu)
            .max_by(|a, b| {
                self.transfer_delay_at(*a)
                    .partial_cmp(&self.transfer_delay_at(*b))
                    .expect("finite delays")
            })?;
        (self.transfer_delay_at(bottleneck) > self.compute_delay).then_some(bottleneck)
    }

    /// Energy–delay product.
    pub fn edp(&self) -> f64 {
        self.total_energy * self.delay
    }

    /// Element-wise accumulation: sequential composition of layers (or
    /// stages) priced under the same model — energies and delays add.
    ///
    /// # Panics
    ///
    /// Panics when the reports were priced by different models; summing
    /// across models is meaningless.
    pub fn accumulate(&mut self, other: &CostReport) {
        assert_eq!(
            self.model, other.model,
            "cannot accumulate reports priced by different cost models"
        );
        for (row, orow) in self.energy.iter_mut().zip(&other.energy) {
            for (cell, ocell) in row.iter_mut().zip(orow) {
                *cell += ocell;
            }
        }
        self.alu_energy += other.alu_energy;
        self.total_energy += other.total_energy;
        self.compute_delay += other.compute_delay;
        for (cell, ocell) in self.transfer_delay.iter_mut().zip(&other.transfer_delay) {
            *cell += ocell;
        }
        self.delay += other.delay;
    }

    /// A copy with every **energy** term multiplied by `factor` —
    /// attribution of a batch-level report to its constituents (e.g.
    /// `1/batch` gives one request's even share). Delay terms are left
    /// untouched: a batch's latency is shared by its requests, not
    /// divided among them.
    pub fn scaled(&self, factor: f64) -> CostReport {
        let mut out = *self;
        for row in &mut out.energy {
            for cell in row.iter_mut() {
                *cell *= factor;
            }
        }
        out.alu_energy *= factor;
        out.total_energy *= factor;
        out
    }
}

/// The canonical cost model: the commercial 65 nm numbers of Table IV
/// (DRAM 200×, buffer 6×, array 2×, RF 1×, ALU 1×), latency-transparent.
///
/// Pricing under `TableIv` is bit-identical to the pre-trait
/// `EnergyModel::table_iv()` path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TableIv;

impl TableIv {
    /// The registry id of the canonical model.
    pub const ID: CostModelId = CostModelId::new("table-iv");
}

impl CostModel for TableIv {
    fn id(&self) -> CostModelId {
        TableIv::ID
    }

    fn energy_cost(&self, level: Level) -> f64 {
        EnergyModel::table_iv().cost(level)
    }
}

/// The canonical Table IV model as a `'static` trait object.
pub fn table_iv() -> &'static dyn CostModel {
    &TableIv
}

/// The canonical Table IV model as a shared trait object (for holders
/// needing owned `Arc<dyn CostModel>` storage, like a serving compiler).
pub fn table_iv_shared() -> Arc<dyn CostModel> {
    Arc::new(TableIv)
}

/// A table-driven cost model: per-level energy costs (validated against
/// the Section II hierarchy ordering via [`EnergyModel`]) plus optional
/// finite per-level bandwidths. The workhorse of sensitivity scenarios
/// and deployment what-ifs.
///
/// # Example
///
/// ```
/// use eyeriss_arch::cost::{CostModel, StaticCostModel};
/// use eyeriss_arch::energy::{EnergyModel, Level};
///
/// let m = StaticCostModel::new("dram-x2", EnergyModel::new(400.0, 6.0, 2.0, 1.0, 1.0)?)
///     .with_bandwidth(Level::Dram, 8.0)?;
/// assert_eq!(m.id().label(), "dram-x2");
/// assert_eq!(m.energy_cost(Level::Dram), 400.0);
/// assert_eq!(m.bandwidth(Level::Dram), 8.0);
/// assert!(m.bandwidth(Level::Buffer).is_infinite());
/// # Ok::<(), eyeriss_arch::cost::CostModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticCostModel {
    id: CostModelId,
    energy: EnergyModel,
    bandwidth: [f64; 5],
}

impl StaticCostModel {
    /// A latency-transparent model with `energy`'s per-level costs under
    /// the id `label`.
    pub fn new(label: &'static str, energy: EnergyModel) -> Self {
        StaticCostModel {
            id: CostModelId::new(label),
            energy,
            bandwidth: [f64::INFINITY; 5],
        }
    }

    /// Sets a finite bandwidth (words per cycle) at `level`.
    ///
    /// # Errors
    ///
    /// [`CostModelError::InvalidBandwidth`] unless positive.
    pub fn with_bandwidth(
        mut self,
        level: Level,
        words_per_cycle: f64,
    ) -> Result<Self, CostModelError> {
        if words_per_cycle.is_nan() || words_per_cycle <= 0.0 {
            return Err(CostModelError::InvalidBandwidth {
                level,
                value: words_per_cycle,
            });
        }
        self.bandwidth[level_index(level)] = words_per_cycle;
        Ok(self)
    }

    /// The underlying per-level energy table.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }
}

impl CostModel for StaticCostModel {
    fn id(&self) -> CostModelId {
        self.id
    }

    fn energy_cost(&self, level: Level) -> f64 {
        self.energy.cost(level)
    }

    fn bandwidth(&self, level: Level) -> f64 {
        self.bandwidth[level_index(level)]
    }
}

/// An ordered set of [`CostModel`] implementations, looked up by
/// [`CostModelId`] or label — the exact mirror of `DataflowRegistry`.
/// Everything downstream prices through `&dyn CostModel`, so registering
/// a custom model here is all it takes to search, plan, persist and serve
/// under it.
///
/// # Example
///
/// ```
/// use eyeriss_arch::cost::{CostModelRegistry, StaticCostModel, TableIv};
/// use eyeriss_arch::energy::EnergyModel;
///
/// let mut reg = CostModelRegistry::builtin();
/// assert!(reg.get(TableIv::ID).is_some());
/// reg.register(std::sync::Arc::new(StaticCostModel::new(
///     "flat",
///     EnergyModel::new(200.0, 2.0, 2.0, 1.0, 1.0)?,
/// )))?;
/// assert_eq!(reg.len(), 2);
/// assert!(reg.by_label("flat").is_some());
/// # Ok::<(), eyeriss_arch::cost::CostModelError>(())
/// ```
#[derive(Clone)]
pub struct CostModelRegistry {
    entries: Vec<Arc<dyn CostModel>>,
}

impl CostModelRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        CostModelRegistry {
            entries: Vec::new(),
        }
    }

    /// A registry holding the canonical [`TableIv`] model.
    pub fn builtin() -> Self {
        let mut reg = CostModelRegistry::empty();
        reg.entries.push(table_iv_shared());
        reg
    }

    /// Registers a cost model.
    ///
    /// # Errors
    ///
    /// [`CostModelError::Duplicate`] when the id is already present.
    pub fn register(&mut self, model: Arc<dyn CostModel>) -> Result<(), CostModelError> {
        let id = model.id();
        if self.get(id).is_some() {
            return Err(CostModelError::Duplicate(id));
        }
        self.entries.push(model);
        Ok(())
    }

    /// Looks a model up by id.
    pub fn get(&self, id: CostModelId) -> Option<&Arc<dyn CostModel>> {
        self.entries.iter().find(|m| m.id() == id)
    }

    /// Looks a model up by label (the on-disk form of the id).
    pub fn by_label(&self, label: &str) -> Option<&Arc<dyn CostModel>> {
        self.entries.iter().find(|m| m.id().label() == label)
    }

    /// [`CostModelRegistry::get`] with a typed error for the miss.
    ///
    /// # Errors
    ///
    /// [`CostModelError::Unknown`].
    pub fn resolve(&self, id: CostModelId) -> Result<&Arc<dyn CostModel>, CostModelError> {
        self.get(id)
            .ok_or_else(|| CostModelError::Unknown(id.label().to_string()))
    }

    /// [`CostModelRegistry::by_label`] with a typed error for the miss.
    ///
    /// # Errors
    ///
    /// [`CostModelError::Unknown`].
    pub fn resolve_label(&self, label: &str) -> Result<&Arc<dyn CostModel>, CostModelError> {
        self.by_label(label)
            .ok_or_else(|| CostModelError::Unknown(label.to_string()))
    }

    /// The registered models, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<dyn CostModel>> {
        self.entries.iter()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for CostModelRegistry {
    fn default() -> Self {
        CostModelRegistry::builtin()
    }
}

impl fmt::Debug for CostModelRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list()
            .entries(self.entries.iter().map(|m| m.id()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> LayerAccessProfile {
        let mut p = LayerAccessProfile::new();
        p.ifmap = AccessCounts {
            dram_reads: 10.0,
            buffer_reads: 100.0,
            array_hops: 300.0,
            rf_reads: 1000.0,
            ..AccessCounts::default()
        };
        p.filter = AccessCounts {
            dram_reads: 3.0,
            rf_reads: 700.0,
            rf_writes: 11.0,
            ..AccessCounts::default()
        };
        p.psum = AccessCounts {
            dram_writes: 5.0,
            buffer_writes: 40.0,
            rf_reads: 900.0,
            rf_writes: 900.0,
            ..AccessCounts::default()
        };
        p.alu_ops = 4321.0;
        p
    }

    #[test]
    fn table_iv_prices_bit_identically_to_the_energy_model() {
        let p = sample_profile();
        let em = EnergyModel::table_iv();
        assert_eq!(
            TableIv.energy_of(&p).to_bits(),
            p.total_energy(&em).to_bits()
        );
        let report = TableIv.report(&p, 123);
        assert_eq!(report.total_energy.to_bits(), p.total_energy(&em).to_bits());
        for level in Level::ALL {
            assert_eq!(
                report.energy_at(level).to_bits(),
                p.energy_at_level(&em, level).to_bits(),
                "{level}"
            );
        }
        for ty in DataType::ALL {
            assert_eq!(
                report.energy_of(ty).to_bits(),
                p.energy_of_type(&em, ty).to_bits()
            );
        }
    }

    #[test]
    fn latency_transparent_delay_is_the_compute_proxy() {
        let p = sample_profile();
        let report = TableIv.report(&p, 100);
        assert_eq!(report.delay, p.alu_ops / 100.0);
        assert_eq!(report.delay, report.compute_delay);
        assert_eq!(report.bound_level(), None);
        assert_eq!(TableIv.delay_of(&p, 100), report.delay);
    }

    #[test]
    fn finite_bandwidth_bounds_the_delay() {
        let p = sample_profile();
        // 18 DRAM words at 0.001 words/cycle dominate 4321 MACs / 100 PEs.
        let m = StaticCostModel::new("slow-dram", EnergyModel::table_iv())
            .with_bandwidth(Level::Dram, 0.001)
            .unwrap();
        let report = m.report(&p, 100);
        assert_eq!(report.delay, 18.0 / 0.001);
        assert_eq!(report.bound_level(), Some(Level::Dram));
        assert!(report.delay > report.compute_delay);
        assert_eq!(m.delay_of(&p, 100), report.delay);
        // Energy is untouched by bandwidth.
        assert_eq!(
            report.total_energy.to_bits(),
            TableIv.report(&p, 100).total_energy.to_bits()
        );
    }

    #[test]
    fn fingerprints_separate_costs_and_bandwidths() {
        let base = StaticCostModel::new("a", EnergyModel::table_iv());
        assert_eq!(base.fingerprint(), TableIv.fingerprint());
        let scaled =
            StaticCostModel::new("b", EnergyModel::new(400.0, 6.0, 2.0, 1.0, 1.0).unwrap());
        assert_ne!(scaled.fingerprint(), TableIv.fingerprint());
        let banded = base.with_bandwidth(Level::Dram, 4.0).unwrap();
        assert_ne!(banded.fingerprint(), TableIv.fingerprint());
        assert_eq!(TableIv.descriptor().id, TableIv::ID);
        assert_eq!(TableIv.descriptor().fingerprint, TableIv.fingerprint());
    }

    #[test]
    fn reports_accumulate_elementwise() {
        let p = sample_profile();
        let one = TableIv.report(&p, 64);
        let mut two = one;
        two.accumulate(&one);
        assert_eq!(two.total_energy, 2.0 * one.total_energy);
        assert_eq!(two.delay, 2.0 * one.delay);
        assert_eq!(two.alu_energy, 2.0 * one.alu_energy);
        assert_eq!(
            two.energy_cell(DataType::Psum, Level::Rf),
            2.0 * one.energy_cell(DataType::Psum, Level::Rf)
        );
        let mut zero = CostReport::zero(TableIv.descriptor());
        zero.accumulate(&one);
        assert_eq!(zero, one);
        assert_eq!(one.edp(), one.total_energy * one.delay);
    }

    #[test]
    fn scaled_attributes_energy_but_keeps_delay() {
        let p = sample_profile();
        let batch = TableIv.report(&p, 64);
        let share = batch.scaled(0.25);
        assert_eq!(share.model, batch.model);
        assert_eq!(share.total_energy, 0.25 * batch.total_energy);
        assert_eq!(share.alu_energy, 0.25 * batch.alu_energy);
        for level in Level::ALL {
            assert_eq!(share.energy_at(level), 0.25 * batch.energy_at(level));
        }
        for ty in DataType::ALL {
            assert_eq!(share.energy_of(ty), 0.25 * batch.energy_of(ty));
        }
        // Latency is shared by the batch, not split across requests.
        assert_eq!(share.delay, batch.delay);
        assert_eq!(share.compute_delay, batch.compute_delay);
        // Scaling by 1 is bit-exact identity.
        assert_eq!(batch.scaled(1.0), batch);
    }

    #[test]
    #[should_panic(expected = "different cost models")]
    fn accumulate_rejects_cross_model_sums() {
        let p = sample_profile();
        let mut a = TableIv.report(&p, 64);
        let b = StaticCostModel::new("other", EnergyModel::table_iv()).report(&p, 64);
        a.accumulate(&b);
    }

    #[test]
    #[should_panic(expected = "different cost models")]
    fn accumulate_rejects_same_label_different_numbers() {
        // Two models under one label but distinct fingerprints must not
        // sum silently — the descriptor, not just the id, is the guard.
        let p = sample_profile();
        let mut a = StaticCostModel::new("scenario", EnergyModel::table_iv()).report(&p, 64);
        let b = StaticCostModel::new(
            "scenario",
            EnergyModel::new(400.0, 6.0, 2.0, 1.0, 1.0).unwrap(),
        )
        .report(&p, 64);
        a.accumulate(&b);
    }

    #[test]
    fn parallel_reports_add_energy_but_max_transfer_floors() {
        // Two parallel units under a finite DRAM channel: energy doubles,
        // but the DRAM floor is the slower unit's own transfer time — not
        // the sum of both units' words through one private channel.
        let m = StaticCostModel::new("banded", EnergyModel::table_iv())
            .with_bandwidth(Level::Dram, 1.0)
            .unwrap();
        let a = sample_profile(); // 18 DRAM words
        let mut b = sample_profile();
        b.ifmap.dram_reads += 10.0; // 28 DRAM words
        let report = m.report_parallel(&[&a, &b], 5.0);
        let single_a = m.report_with_delay(&a, 0.0);
        let single_b = m.report_with_delay(&b, 0.0);
        assert_eq!(
            report.total_energy,
            single_a.total_energy + single_b.total_energy
        );
        assert_eq!(report.transfer_delay_at(Level::Dram), 28.0);
        assert_eq!(report.delay, 28.0, "per-unit max, not 46-word sum");
        assert_eq!(report.compute_delay, 5.0);
        assert_eq!(report.bound_level(), Some(Level::Dram));
        // With a dominant baseline (e.g. a cluster's own critical path),
        // the baseline wins and compute is reported as the bound.
        let bounded = m.report_parallel(&[&a, &b], 1000.0);
        assert_eq!(bounded.delay, 1000.0);
        assert_eq!(bounded.bound_level(), None);
    }

    #[test]
    fn report_breakdowns_sum_to_totals() {
        let p = sample_profile();
        let r = TableIv.report(&p, 16);
        let by_level: f64 = Level::ALL.iter().map(|&l| r.energy_at(l)).sum();
        assert!((by_level - r.total_energy).abs() < 1e-9);
        let by_type: f64 =
            DataType::ALL.iter().map(|&t| r.energy_of(t)).sum::<f64>() + r.alu_energy;
        assert!((by_type - r.total_energy).abs() < 1e-9);
        assert!((r.data_energy() - (r.total_energy - r.alu_energy)).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_validation_is_typed() {
        let m = StaticCostModel::new("x", EnergyModel::table_iv());
        assert!(matches!(
            m.with_bandwidth(Level::Dram, 0.0),
            Err(CostModelError::InvalidBandwidth { .. })
        ));
        assert!(matches!(
            m.with_bandwidth(Level::Rf, f64::NAN),
            Err(CostModelError::InvalidBandwidth { .. })
        ));
    }

    #[test]
    fn registry_mirrors_the_dataflow_registry() {
        let mut reg = CostModelRegistry::builtin();
        assert_eq!(reg.len(), 1);
        assert!(reg.resolve(TableIv::ID).is_ok());
        assert!(reg.resolve_label("table-iv").is_ok());
        let flat = Arc::new(StaticCostModel::new(
            "flat",
            EnergyModel::new(200.0, 2.0, 2.0, 1.0, 1.0).unwrap(),
        ));
        reg.register(Arc::clone(&flat) as Arc<dyn CostModel>)
            .unwrap();
        assert_eq!(reg.len(), 2);
        assert!(matches!(
            reg.register(flat as Arc<dyn CostModel>),
            Err(CostModelError::Duplicate(id)) if id.label() == "flat"
        ));
        assert!(matches!(
            reg.resolve_label("nope"),
            Err(CostModelError::Unknown(l)) if l == "nope"
        ));
        let ids: Vec<_> = reg.iter().map(|m| m.id().label()).collect();
        assert_eq!(ids, ["table-iv", "flat"]);
        assert!(CostModelRegistry::empty().is_empty());
        assert!(format!("{reg:?}").contains("flat"));
    }

    #[test]
    fn cost_model_ids_compare_by_content() {
        assert_eq!(CostModelId::new("x"), CostModelId::new("x"));
        assert_ne!(CostModelId::new("x"), CostModelId::new("y"));
        assert_eq!(CostModelId::new("abc").to_string(), "abc");
    }
}
