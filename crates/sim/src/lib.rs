//! Functional simulator of the Eyeriss chip (Fig. 4, Section V-E).
//!
//! Executes the row-stationary dataflow on a modeled spatial array with
//! real 16-bit fixed-point data, producing **bit-exact** ofmaps against the
//! golden reference in `eyeriss-nn` while counting every data movement
//! across the DRAM / global buffer / array / RF hierarchy. This plays the
//! role of the fabricated chip in the paper: an independent implementation
//! of the dataflow whose measured access ratios verify the analytical
//! model (Section VII-A's "verified by our Eyeriss chip measurement
//! results").
//!
//! Components:
//!
//! * [`pe`] — a processing engine with filter/ifmap/psum scratchpads,
//!   1-D convolution primitives (Fig. 5) and zero-gating (Section V-E).
//! * [`noc`] — the three NoCs: horizontal filter multicast, diagonal ifmap
//!   multicast and the vertical psum accumulation chain (Fig. 6).
//! * [`gbuf`] — the capacity-checked global buffer with per-type regions.
//! * [`rlc`] — the run-length compression codec used on DRAM transfers.
//! * [`csc`] — the compressed-sparse-column codec and storage accounting
//!   behind opt-in sparse PE execution (the Eyeriss v2 format).
//! * [`mesh`] — the hierarchical-mesh NoC model (Eyeriss v2): router
//!   clusters with unicast/multicast/broadcast delivery modes.
//! * [`passes`] — the two-phase mapping: logical PE sets folded into
//!   processing passes (Section V-B), derived from the same mapping
//!   optimizer the analysis framework uses.
//! * [`chip`] — the accelerator: pass orchestration, CONV/FC/POOL layers.
//! * [`fault`] — deterministic, seeded fault injection (bit flips, stalls,
//!   crashes) for chaos testing the cluster and serving layers.
//! * [`scratch`] — the reusable simulation arena: PE pools, psum strips
//!   and RLC buffers recycled across passes, layers and runs so the
//!   steady-state execute path is allocation-free.
//! * [`stats`] — measured access counts, cycles and sparsity statistics.
//!
//! # Example
//!
//! ```
//! use eyeriss_sim::chip::Accelerator;
//! use eyeriss_arch::AcceleratorConfig;
//! use eyeriss_nn::{synth, reference, LayerShape};
//!
//! let shape = LayerShape::conv(4, 3, 9, 3, 1)?;
//! let input = synth::ifmap(&shape, 2, 1);
//! let weights = synth::filters(&shape, 2);
//! let bias = synth::biases(&shape, 3);
//!
//! let mut acc = Accelerator::new(AcceleratorConfig::eyeriss_chip());
//! let run = acc.run_conv(&shape, 2, &input, &weights, &bias)?;
//! let golden = reference::conv_accumulate(&shape, 2, &input, &weights, &bias);
//! assert_eq!(run.psums, golden); // bit-exact
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod chip;
pub mod csc;
pub mod dram;
pub mod error;
pub mod fault;
pub mod gbuf;
pub mod mesh;
pub mod noc;
pub mod passes;
pub mod pe;
pub mod rlc;
pub mod runner;
pub mod scratch;
pub mod stats;

pub use chip::Accelerator;
pub use error::SimError;
pub use fault::{FaultInjector, FaultKind, FaultPlan, FaultSpec, FaultWindow};
pub use scratch::SimScratch;
pub use stats::SimStats;
