//! The processing engine: scratchpads, the 1-D convolution primitive of
//! Fig. 5, and zero-gating (Section V-E).
//!
//! Each PE owns three scratchpads, sized like the fabricated chip's
//! (224-word filter spad, 12-word ifmap window, 24-word psum spad scale
//! with the configured RF): filter rows stay stationary, ifmap pixels
//! stream through an R-deep sliding window, and psums accumulate locally
//! before being passed up the column.

use eyeriss_nn::Fix16;

/// Per-PE access counters, split by data type so the simulator can build
/// a [`eyeriss_arch::access::LayerAccessProfile`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeStats {
    /// MACs actually executed.
    pub macs: u64,
    /// MACs skipped by zero-gating (ifmap operand was zero).
    pub skipped_macs: u64,
    /// Ifmap window reads.
    pub ifmap_reads: u64,
    /// Filter scratchpad reads.
    pub filter_reads: u64,
    /// Filter scratchpad fills.
    pub filter_writes: u64,
    /// Psum scratchpad reads.
    pub psum_reads: u64,
    /// Psum scratchpad writes.
    pub psum_writes: u64,
}

impl PeStats {
    /// Merges another PE's counters into this one.
    pub fn merge(&mut self, other: &PeStats) {
        self.macs += other.macs;
        self.skipped_macs += other.skipped_macs;
        self.ifmap_reads += other.ifmap_reads;
        self.filter_reads += other.filter_reads;
        self.filter_writes += other.filter_writes;
        self.psum_reads += other.psum_reads;
        self.psum_writes += other.psum_writes;
    }

    /// All scratchpad reads.
    pub fn rf_reads(&self) -> u64 {
        self.ifmap_reads + self.filter_reads + self.psum_reads
    }

    /// All scratchpad writes.
    pub fn rf_writes(&self) -> u64 {
        self.filter_writes + self.psum_writes
    }
}

/// One processing engine.
///
/// # Example
///
/// ```
/// use eyeriss_sim::pe::Pe;
/// use eyeriss_nn::Fix16;
///
/// let mut pe = Pe::new(224, 24);
/// pe.load_filter_row(&[Fix16::ONE; 3]).unwrap();
/// let ifmap = [Fix16::ONE; 5];
/// let mut psums = vec![0i32; 3];
/// pe.run_primitive(0, &ifmap, 1, true, &mut psums);
/// assert!(psums.iter().all(|&p| p == Fix16::ONE.wide_mul(Fix16::ONE) * 3));
/// ```
#[derive(Debug, Clone)]
pub struct Pe {
    filter_spad: Vec<Fix16>,
    filter_capacity: usize,
    psum_capacity: usize,
    /// Whether zero-valued ifmap pixels gate the datapath.
    zero_gating: bool,
    /// Access counters.
    pub stats: PeStats,
}

impl Pe {
    /// Creates a PE with the given scratchpad capacities (in words).
    pub fn new(filter_capacity: usize, psum_capacity: usize) -> Self {
        Pe {
            filter_spad: Vec::new(),
            filter_capacity,
            psum_capacity,
            zero_gating: false,
            stats: PeStats::default(),
        }
    }

    /// Enables or disables zero-gating of the MAC datapath.
    pub fn set_zero_gating(&mut self, on: bool) {
        self.zero_gating = on;
    }

    /// Psum scratchpad capacity in words.
    pub fn psum_capacity(&self) -> usize {
        self.psum_capacity
    }

    /// Clears stationary state between passes (counters are kept).
    pub fn reset_pass(&mut self) {
        self.filter_spad.clear();
    }

    /// Re-arms a pooled PE for a fresh layer run: stationary state and
    /// counters are cleared, capacities and gating adopt the new run's
    /// configuration, and the scratchpad allocation is kept. After this
    /// call the PE is indistinguishable from
    /// `Pe::new(filter_capacity, psum_capacity)` with the gating applied.
    pub fn reset_run(&mut self, filter_capacity: usize, psum_capacity: usize, zero_gating: bool) {
        self.filter_spad.clear();
        self.filter_capacity = filter_capacity;
        self.psum_capacity = psum_capacity;
        self.zero_gating = zero_gating;
        self.stats = PeStats::default();
    }

    /// Loads one filter row into the stationary scratchpad, returning its
    /// starting index.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the overflow amount if the spad capacity would be
    /// exceeded — the mapping should have prevented this.
    pub fn load_filter_row(&mut self, row: &[Fix16]) -> Result<usize, usize> {
        if self.filter_spad.len() + row.len() > self.filter_capacity {
            return Err(self.filter_spad.len() + row.len() - self.filter_capacity);
        }
        let start = self.filter_spad.len();
        self.filter_spad.extend_from_slice(row);
        self.stats.filter_writes += row.len() as u64;
        Ok(start)
    }

    /// Number of filter words currently resident.
    pub fn filter_words(&self) -> usize {
        self.filter_spad.len()
    }

    /// Runs one 1-D convolution primitive (Fig. 5): slides the filter row
    /// at `row_index` over `ifmap_row` with `stride`, accumulating into
    /// `psums` (one accumulator per output position).
    ///
    /// `accumulate_locally` marks whether the psum updates happen in this
    /// PE's scratchpad (true for interleaved primitives) — it only affects
    /// the access counting, not the arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `row_index` does not address a loaded row, the psum row is
    /// empty, or the ifmap row is shorter than the slide span.
    pub fn run_primitive(
        &mut self,
        row_index: usize,
        ifmap_row: &[Fix16],
        stride: usize,
        accumulate_locally: bool,
        psums: &mut [i32],
    ) {
        let slides = psums
            .len()
            .checked_sub(1)
            .expect("psum row must be non-empty");
        let r = ifmap_row
            .len()
            .checked_sub(slides * stride)
            .expect("ifmap row shorter than slide span");
        assert!(
            row_index + r <= self.filter_spad.len(),
            "filter row {row_index}+{r} not resident ({} loaded)",
            self.filter_spad.len()
        );
        let filter_row = &self.filter_spad[row_index..row_index + r];
        if !self.zero_gating {
            // Dense fast path: every tap reads the ifmap pixel and the
            // filter weight and performs the MAC, so the counters fold
            // into one update per primitive (bit-identical totals) and
            // the arithmetic loop stays tight.
            for (x, psum) in psums.iter_mut().enumerate() {
                let window = &ifmap_row[x * stride..x * stride + r];
                for (w, i) in filter_row.iter().zip(window) {
                    *psum += i.wide_mul(*w);
                }
            }
            let ops = (psums.len() * r) as u64;
            self.stats.ifmap_reads += ops;
            self.stats.filter_reads += ops;
            self.stats.macs += ops;
            if accumulate_locally {
                self.stats.psum_reads += ops;
                self.stats.psum_writes += ops;
            }
            return;
        }
        for (x, psum) in psums.iter_mut().enumerate() {
            let window = &ifmap_row[x * stride..x * stride + r];
            for (w, i) in filter_row.iter().zip(window) {
                // The ifmap pixel is always read to be inspected; the
                // filter read, multiply and psum update are gated when it
                // is zero (Section V-E).
                self.stats.ifmap_reads += 1;
                if i.is_zero() {
                    self.stats.skipped_macs += 1;
                    continue;
                }
                self.stats.filter_reads += 1;
                if accumulate_locally {
                    self.stats.psum_reads += 1;
                    self.stats.psum_writes += 1;
                }
                *psum += i.wide_mul(*w);
                self.stats.macs += 1;
            }
        }
    }

    /// [`Pe::run_primitive`] over a CSC-encoded ifmap row (the Eyeriss v2
    /// sparse PE): iterates the row's nonzeros and scatters each into the
    /// output windows it participates in, so zero MACs are never issued.
    /// Psums are **bit-exact** against the dense primitive — the i32
    /// accumulations commute — and the counter invariant
    /// `macs + skipped_macs == dense taps` is preserved; only
    /// `ifmap_reads` differs (one read per *nonzero*, since CSC storage
    /// holds no zeros to inspect).
    ///
    /// `values`/`indices` are the row's CSC form (see
    /// [`crate::csc::encode_row_into`]) and `row_len` its dense length.
    ///
    /// # Panics
    ///
    /// Panics under the dense primitive's conditions, or if an index is
    /// outside `row_len`.
    #[allow(clippy::too_many_arguments)]
    pub fn run_primitive_csc(
        &mut self,
        row_index: usize,
        values: &[Fix16],
        indices: &[u16],
        row_len: usize,
        stride: usize,
        accumulate_locally: bool,
        psums: &mut [i32],
    ) {
        let slides = psums
            .len()
            .checked_sub(1)
            .expect("psum row must be non-empty");
        let r = row_len
            .checked_sub(slides * stride)
            .expect("ifmap row shorter than slide span");
        assert!(
            row_index + r <= self.filter_spad.len(),
            "filter row {row_index}+{r} not resident ({} loaded)",
            self.filter_spad.len()
        );
        let filter_row = &self.filter_spad[row_index..row_index + r];
        let mut performed = 0u64;
        for (v, &j) in values.iter().zip(indices) {
            let j = j as usize;
            assert!(j < row_len, "CSC index {j} outside row of {row_len}");
            // Output positions x whose window covers pixel j:
            // x*stride <= j <= x*stride + r - 1, clamped to the row.
            let x_min = if j >= r {
                (j - r + 1).div_ceil(stride)
            } else {
                0
            };
            let x_max = (j / stride).min(slides);
            for x in x_min..=x_max {
                psums[x] += v.wide_mul(filter_row[j - x * stride]);
                performed += 1;
            }
        }
        let taps = (psums.len() * r) as u64;
        self.stats.ifmap_reads += values.len() as u64;
        self.stats.filter_reads += performed;
        self.stats.macs += performed;
        self.stats.skipped_macs += taps - performed;
        if accumulate_locally {
            self.stats.psum_reads += performed;
            self.stats.psum_writes += performed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeriss_nn::synth;
    use eyeriss_nn::LayerShape;

    fn f(v: f32) -> Fix16 {
        Fix16::from_f32(v)
    }

    #[test]
    fn primitive_matches_direct_1d_conv() {
        let shape = LayerShape::conv(1, 1, 9, 3, 2).unwrap();
        let input = synth::ifmap(&shape, 1, 7);
        let weights = synth::filters(&shape, 8);
        let mut pe = Pe::new(64, 8);
        pe.load_filter_row(weights.row(0, 0, 0)).unwrap();
        let mut psums = vec![0i32; shape.e];
        pe.run_primitive(0, input.row(0, 0, 0), shape.u, true, &mut psums);
        for x in 0..shape.e {
            let mut acc = 0i32;
            for j in 0..3 {
                acc += input[(0, 0, 0, 2 * x + j)].wide_mul(weights[(0, 0, 0, j)]);
            }
            assert_eq!(psums[x], acc, "at {x}");
        }
    }

    #[test]
    fn zero_gating_preserves_results() {
        let mut gated = Pe::new(16, 8);
        gated.set_zero_gating(true);
        let mut plain = Pe::new(16, 8);
        let row = [f(1.0), f(-2.0), f(0.5)];
        gated.load_filter_row(&row).unwrap();
        plain.load_filter_row(&row).unwrap();
        let ifmap = [f(1.0), Fix16::ZERO, f(3.0), Fix16::ZERO, f(-1.0)];
        let mut a = vec![0i32; 3];
        let mut b = vec![0i32; 3];
        gated.run_primitive(0, &ifmap, 1, true, &mut a);
        plain.run_primitive(0, &ifmap, 1, true, &mut b);
        assert_eq!(a, b);
        assert!(gated.stats.skipped_macs > 0);
        assert_eq!(
            gated.stats.macs + gated.stats.skipped_macs,
            plain.stats.macs
        );
        // Gated MACs read neither the filter nor the psum.
        assert!(gated.stats.filter_reads < plain.stats.filter_reads);
    }

    #[test]
    fn filter_spad_capacity_enforced() {
        let mut pe = Pe::new(4, 8);
        assert!(pe.load_filter_row(&[Fix16::ZERO; 3]).is_ok());
        assert_eq!(pe.load_filter_row(&[Fix16::ZERO; 3]), Err(2));
    }

    #[test]
    fn reset_run_matches_a_fresh_pe() {
        let mut pooled = Pe::new(4, 4);
        pooled.set_zero_gating(true);
        pooled.load_filter_row(&[Fix16::ONE; 3]).unwrap();
        let mut acc = vec![0i32; 1];
        pooled.run_primitive(0, &[Fix16::ONE; 3], 1, true, &mut acc);

        pooled.reset_run(8, 16, false);
        let fresh = Pe::new(8, 16);
        assert_eq!(pooled.stats, fresh.stats);
        assert_eq!(pooled.filter_words(), 0);
        assert_eq!(pooled.psum_capacity(), 16);
        // New capacity applies: 8 words now fit.
        assert!(pooled.load_filter_row(&[Fix16::ZERO; 8]).is_ok());
    }

    #[test]
    fn reset_pass_clears_filters_keeps_stats() {
        let mut pe = Pe::new(8, 8);
        pe.load_filter_row(&[Fix16::ONE; 4]).unwrap();
        let writes = pe.stats.filter_writes;
        pe.reset_pass();
        assert_eq!(pe.filter_words(), 0);
        assert_eq!(pe.stats.filter_writes, writes);
    }

    #[test]
    fn mac_counting_is_exact() {
        let mut pe = Pe::new(8, 8);
        pe.load_filter_row(&[f(1.0), f(1.0), f(1.0)]).unwrap();
        let ifmap = [f(1.0); 7];
        let mut psums = vec![0i32; 5];
        pe.run_primitive(0, &ifmap, 1, true, &mut psums);
        assert_eq!(pe.stats.macs, 15); // E=5 slides x R=3 taps
        assert_eq!(pe.stats.ifmap_reads, 15);
        assert_eq!(pe.stats.filter_reads, 15);
        assert_eq!(pe.stats.psum_reads, 15);
        assert_eq!(pe.stats.psum_writes, 15);
        assert_eq!(pe.stats.filter_writes, 3);
    }

    #[test]
    fn csc_primitive_matches_dense_bit_exactly() {
        for (stride, len, psum_len) in [(1usize, 7usize, 5usize), (2, 9, 4), (3, 9, 3)] {
            let mut dense = Pe::new(16, 16);
            let mut sparse = Pe::new(16, 16);
            let row: Vec<Fix16> = (0..len)
                .map(|i| {
                    if i % 3 == 0 {
                        Fix16::ZERO
                    } else {
                        f(i as f32 * 0.25 - 1.0)
                    }
                })
                .collect();
            let filt = [f(1.5), f(-0.5), f(2.0)];
            dense.load_filter_row(&filt).unwrap();
            sparse.load_filter_row(&filt).unwrap();
            let mut a = vec![0i32; psum_len];
            let mut b = vec![0i32; psum_len];
            dense.run_primitive(0, &row, stride, true, &mut a);
            let (mut vals, mut idxs) = (Vec::new(), Vec::new());
            crate::csc::encode_row_into(&row, &mut vals, &mut idxs);
            sparse.run_primitive_csc(0, &vals, &idxs, len, stride, true, &mut b);
            assert_eq!(a, b, "stride {stride}");
            // Work invariant: performed + skipped covers every dense tap.
            assert_eq!(
                sparse.stats.macs + sparse.stats.skipped_macs,
                dense.stats.macs,
                "stride {stride}"
            );
            assert!(sparse.stats.ifmap_reads < dense.stats.ifmap_reads);
        }
    }

    #[test]
    fn csc_all_zero_row_performs_no_macs() {
        let mut pe = Pe::new(8, 8);
        pe.load_filter_row(&[f(1.0); 3]).unwrap();
        let mut psums = vec![0i32; 3];
        pe.run_primitive_csc(0, &[], &[], 5, 1, true, &mut psums);
        assert_eq!(psums, vec![0; 3]);
        assert_eq!(pe.stats.macs, 0);
        assert_eq!(pe.stats.skipped_macs, 9);
        assert_eq!(pe.stats.ifmap_reads, 0);
    }

    proptest::proptest! {
        #[test]
        fn prop_csc_primitive_is_bit_exact_at_any_sparsity(
            raw in proptest::collection::vec(-300i16..300, 1..64),
            stride in 1usize..4,
            r in 1usize..6,
            density in 0u8..5,
        ) {
            // Derive a geometrically valid primitive from the raw pool:
            // len = slides*stride + r, clamped to the data we drew.
            // density 0 zeroes every pixel (the all-zero edge); higher
            // values keep roughly 1/1 .. 1/4 of them.
            let max_slides = (raw.len().saturating_sub(r)) / stride;
            let psum_len = max_slides + 1;
            let len = max_slides * stride + r;
            proptest::prop_assume!(len <= raw.len());
            let row: Vec<Fix16> = raw[..len]
                .iter()
                .map(|&v| {
                    if density == 0 || v.rem_euclid(density as i16) != 0 {
                        Fix16::ZERO
                    } else {
                        Fix16::from_raw(v)
                    }
                })
                .collect();
            let filt: Vec<Fix16> = (0..r).map(|i| f(i as f32 * 0.5 - 1.0)).collect();

            let mut dense = Pe::new(r, psum_len);
            let mut gated = Pe::new(r, psum_len);
            gated.set_zero_gating(true);
            let mut sparse = Pe::new(r, psum_len);
            dense.load_filter_row(&filt).unwrap();
            gated.load_filter_row(&filt).unwrap();
            sparse.load_filter_row(&filt).unwrap();

            let mut a = vec![0i32; psum_len];
            let mut b = vec![0i32; psum_len];
            let mut c = vec![0i32; psum_len];
            dense.run_primitive(0, &row, stride, true, &mut a);
            gated.run_primitive(0, &row, stride, true, &mut b);
            let (mut vals, mut idxs) = (Vec::new(), Vec::new());
            crate::csc::encode_row_into(&row, &mut vals, &mut idxs);
            sparse.run_primitive_csc(0, &vals, &idxs, len, stride, true, &mut c);

            // Psums are bit-exact across all three datapaths.
            proptest::prop_assert_eq!(&a, &b);
            proptest::prop_assert_eq!(&a, &c);
            // CSC performs exactly the MACs the gated datapath performs
            // and accounts for every dense tap it skipped.
            proptest::prop_assert_eq!(sparse.stats.macs, gated.stats.macs);
            proptest::prop_assert_eq!(sparse.stats.skipped_macs, gated.stats.skipped_macs);
            proptest::prop_assert_eq!(
                sparse.stats.macs + sparse.stats.skipped_macs,
                dense.stats.macs
            );
            // CSC storage never inspects zeros: one read per nonzero.
            proptest::prop_assert_eq!(sparse.stats.ifmap_reads, vals.len() as u64);
        }
    }

    #[test]
    fn stats_merge_adds() {
        let mut a = PeStats {
            macs: 1,
            skipped_macs: 2,
            ifmap_reads: 3,
            filter_reads: 4,
            filter_writes: 5,
            psum_reads: 6,
            psum_writes: 7,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.macs, 2);
        assert_eq!(a.rf_reads(), 2 * (3 + 4 + 6));
        assert_eq!(a.rf_writes(), 2 * (5 + 7));
    }
}
