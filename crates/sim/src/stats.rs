//! Measured statistics from a simulated layer run.

use eyeriss_arch::access::{DataType, LayerAccessProfile};
use eyeriss_arch::cost::{CostModel, CostReport};
use eyeriss_arch::energy::Level;

/// Everything the simulator measures while executing one layer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Word-level access counts per hierarchy level and data type,
    /// directly comparable with the analytical model's profiles.
    pub profile: LayerAccessProfile,
    /// Compute cycles (busiest PE per pass, 1 MAC/cycle, summed over
    /// passes). Zero-gated MACs still occupy their cycle — the chip gates
    /// energy, not time.
    pub cycles: u64,
    /// Stall cycles where double-buffered DRAM transfers exceeded the
    /// overlapping compute (Section VI-B's latency-hiding claim).
    pub stall_cycles: u64,
    /// MACs executed.
    pub macs: u64,
    /// MACs skipped by zero-gating.
    pub skipped_macs: u64,
    /// Raw DRAM traffic in 16-bit words (reads + writes).
    pub dram_raw_words: u64,
    /// DRAM traffic after run-length compression, if RLC was enabled.
    pub dram_compressed_words: Option<u64>,
    /// Hierarchical-mesh hop split, if the run executed over a
    /// [`HierarchicalMesh`](crate::mesh::HierarchicalMesh).
    pub mesh: Option<crate::mesh::MeshStats>,
    /// CSC storage accounting (ifmap + filter), if sparse execution was
    /// enabled.
    pub csc: Option<crate::csc::CscStats>,
}

impl SimStats {
    /// Accumulates another run's statistics into this one. Used when a
    /// layer executes as several sequential sub-runs (e.g. one engine per
    /// filter group): cycles, traffic and optional mesh/CSC accounting all
    /// add; the RLC word count stays `None` unless some sub-run measured
    /// one.
    pub fn merge(&mut self, other: &SimStats) {
        self.profile.accumulate(&other.profile);
        self.cycles += other.cycles;
        self.stall_cycles += other.stall_cycles;
        self.macs += other.macs;
        self.skipped_macs += other.skipped_macs;
        self.dram_raw_words += other.dram_raw_words;
        if let Some(c) = other.dram_compressed_words {
            *self.dram_compressed_words.get_or_insert(0) += c;
        }
        if let Some(m) = &other.mesh {
            self.mesh.get_or_insert_with(Default::default).merge(m);
        }
        if let Some(c) = &other.csc {
            self.csc.get_or_insert_with(Default::default).merge(c);
        }
    }

    /// Average PE utilization: useful MACs per (cycle x PE).
    pub fn utilization(&self, num_pes: usize) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        (self.macs + self.skipped_macs) as f64 / (self.cycles as f64 * num_pes as f64)
    }

    /// Normalized data-movement + compute energy under `cost`.
    pub fn energy(&self, cost: &dyn CostModel) -> f64 {
        cost.energy_of(&self.profile)
    }

    /// Prices the measured run into the unified [`CostReport`]
    /// vocabulary. The delay baseline is the *measured* wall clock
    /// ([`SimStats::total_cycles`]), floored by the model's per-level
    /// bandwidths.
    pub fn cost_report(&self, cost: &dyn CostModel) -> CostReport {
        cost.report_with_delay(&self.profile, self.total_cycles() as f64)
    }

    /// Prices the run like [`SimStats::cost_report`], but with DRAM
    /// traffic scaled to the compressed word count (RLC and/or CSC), so
    /// sparse runs' reports charge the storage format the chip actually
    /// moves. All DRAM counts scale by the overall measured ratio —
    /// `dram_compressed_words` is a single total, so the per-type split
    /// is proportional. Identical to `cost_report` when nothing was
    /// compressed.
    pub fn compressed_cost_report(&self, cost: &dyn CostModel) -> CostReport {
        cost.report_with_delay(&self.compressed_profile(), self.total_cycles() as f64)
    }

    /// The access profile with DRAM counts scaled to the compressed
    /// word total. Identity when nothing was compressed.
    pub fn compressed_profile(&self) -> LayerAccessProfile {
        let mut profile = self.profile;
        let Some(compressed) = self.dram_compressed_words else {
            return profile;
        };
        if self.dram_raw_words == 0 {
            return profile;
        }
        let scale = compressed as f64 / self.dram_raw_words as f64;
        for ty in DataType::ALL {
            let counts = profile.of_mut(ty);
            counts.dram_reads *= scale;
            counts.dram_writes *= scale;
        }
        profile
    }

    /// Ratio of RF energy to on-chip-rest (buffer + array) energy — the
    /// quantity the paper verifies against the chip (~4:1 in CONV layers,
    /// Section VII-A).
    pub fn rf_to_onchip_rest_ratio(&self, cost: &dyn CostModel) -> f64 {
        let report = self.cost_report(cost);
        let rf = report.energy_at(Level::Rf);
        let rest = report.energy_at(Level::Buffer) + report.energy_at(Level::Array);
        rf / rest
    }

    /// Total wall-clock cycles including DRAM stalls.
    pub fn total_cycles(&self) -> u64 {
        self.cycles + self.stall_cycles
    }

    /// Fraction of time lost to DRAM stalls (0 when latency hiding works,
    /// as Section VI-B expects).
    pub fn stall_fraction(&self) -> f64 {
        if self.total_cycles() == 0 {
            0.0
        } else {
            self.stall_cycles as f64 / self.total_cycles() as f64
        }
    }

    /// Fraction of MACs eliminated by zero-gating.
    pub fn gating_fraction(&self) -> f64 {
        let total = self.macs + self.skipped_macs;
        if total == 0 {
            0.0
        } else {
            self.skipped_macs as f64 / total as f64
        }
    }

    /// DRAM traffic reduction from RLC (raw / compressed), 1.0 if RLC off.
    pub fn compression_ratio(&self) -> f64 {
        match self.dram_compressed_words {
            Some(c) if c > 0 => self.dram_raw_words as f64 / c as f64,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_and_gating() {
        let s = SimStats {
            macs: 75,
            skipped_macs: 25,
            cycles: 10,
            ..SimStats::default()
        };
        assert_eq!(s.utilization(10), 1.0);
        assert_eq!(s.gating_fraction(), 0.25);
    }

    #[test]
    fn compression_defaults_to_one() {
        let mut s = SimStats {
            dram_raw_words: 1000,
            ..SimStats::default()
        };
        assert_eq!(s.compression_ratio(), 1.0);
        s.dram_compressed_words = Some(250);
        assert_eq!(s.compression_ratio(), 4.0);
    }

    #[test]
    fn zero_cycles_is_zero_utilization() {
        assert_eq!(SimStats::default().utilization(16), 0.0);
        assert_eq!(SimStats::default().stall_fraction(), 0.0);
    }

    #[test]
    fn stall_fraction_combines_cycles() {
        let s = SimStats {
            cycles: 75,
            stall_cycles: 25,
            ..SimStats::default()
        };
        assert_eq!(s.total_cycles(), 100);
        assert_eq!(s.stall_fraction(), 0.25);
    }
}
