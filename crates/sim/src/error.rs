//! Simulator error type.

use std::error::Error;
use std::fmt;

/// Error raised when a layer cannot be mapped or executed on the modeled
/// chip (e.g. the filter is taller than the PE array, or a scratchpad
/// capacity would be exceeded by the chosen mapping).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError {
    message: String,
}

impl SimError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        SimError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl Error for SimError {}

impl From<eyeriss_dataflow::ParamsMismatch> for SimError {
    fn from(m: eyeriss_dataflow::ParamsMismatch) -> Self {
        SimError::new(format!("mapping params mismatch: {m}"))
    }
}

impl From<eyeriss_dataflow::DataflowError> for SimError {
    fn from(e: eyeriss_dataflow::DataflowError) -> Self {
        SimError::new(format!("dataflow error: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_message() {
        assert_eq!(
            SimError::new("no feasible mapping").to_string(),
            "no feasible mapping"
        );
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SimError>();
    }
}
