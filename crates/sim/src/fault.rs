//! Deterministic, seeded fault injection.
//!
//! Real spatial-array deployments see transient bit flips in psum
//! accumulators and weight scratchpads, corrupted DRAM reads, straggler
//! arrays and outright array or worker crashes. This module describes
//! those faults as data — a [`FaultPlan`] of [`FaultSpec`]s on a
//! reproducible schedule — and turns the plan into a shared
//! [`FaultInjector`] that the cluster executor and the serving runtime
//! poll at well-defined points:
//!
//! * **array scope** — once per array per layer execution
//!   ([`FaultInjector::poll_array`], keyed by a fleet-global array id):
//!   psum/weight bit flips, DRAM read corruption, stall/slowdown,
//!   crash;
//! * **worker scope** — once per batch pickup
//!   ([`FaultInjector::poll_worker`], keyed by worker index):
//!   worker panic.
//!
//! Like telemetry, injection is **off by default and zero-cost when
//! disabled**: consumers hold an `Option<FaultInjector>` and the
//! fault-free hot path pays one `is_none()` branch. Every decision is a
//! pure function of `(seed, scope id, run index, spec)`, so a failing
//! chaos run replays exactly — including which element and which bit a
//! flip lands on.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// The kinds of fault the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Flip one bit of one psum accumulator after an array's compute
    /// (a transient SEU in the psum datapath).
    PsumBitFlip,
    /// Flip one bit of one weight word before an array's compute (a
    /// corrupted filter scratchpad fill).
    WeightBitFlip,
    /// Flip one bit of one ifmap word before an array's compute (a
    /// corrupted DRAM read burst).
    DramCorrupt,
    /// Slow the array down: extra stall cycles in its statistics plus a
    /// real wall-clock delay (a straggler, not an error).
    Stall,
    /// The array fails outright for this execution (and, with a
    /// persistent window, every later one).
    Crash,
    /// The worker thread hosting the array panics at batch pickup.
    WorkerPanic,
}

impl FaultKind {
    /// Stable index for per-kind counters.
    fn index(self) -> usize {
        match self {
            FaultKind::PsumBitFlip => 0,
            FaultKind::WeightBitFlip => 1,
            FaultKind::DramCorrupt => 2,
            FaultKind::Stall => 3,
            FaultKind::Crash => 4,
            FaultKind::WorkerPanic => 5,
        }
    }

    /// Number of distinct kinds (size of per-kind counter arrays).
    const COUNT: usize = 6;
}

/// When a spec fires, in scope-local run indices (run 0 is the scope's
/// first execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultWindow {
    /// Fires on exactly one run — a **transient** fault.
    Once(u64),
    /// Fires on every run at or after `0`'s value — a **persistent**
    /// fault (a dead array keeps failing until quarantined).
    From(u64),
    /// Fires periodically: runs `start`, `start + period`, … —
    /// recurring transients.
    Every {
        /// First firing run.
        start: u64,
        /// Runs between firings (clamped to at least 1).
        period: u64,
    },
}

impl FaultWindow {
    fn fires(&self, run: u64) -> bool {
        match *self {
            FaultWindow::Once(n) => run == n,
            FaultWindow::From(n) => run >= n,
            FaultWindow::Every { start, period } => {
                run >= start && (run - start).is_multiple_of(period.max(1))
            }
        }
    }
}

/// One scheduled fault: what, where and when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// Scope id the spec targets: a fleet-global array id for array
    /// faults, a worker index for [`FaultKind::WorkerPanic`]. `None`
    /// targets every scope.
    pub target: Option<usize>,
    /// When the spec fires, in the target scope's run indices.
    pub window: FaultWindow,
}

impl FaultSpec {
    /// A spec of `kind` firing once on run `run` of every scope.
    pub fn once(kind: FaultKind, run: u64) -> FaultSpec {
        FaultSpec {
            kind,
            target: None,
            window: FaultWindow::Once(run),
        }
    }

    /// A persistent spec of `kind` firing on every run at or after
    /// `run`.
    pub fn from(kind: FaultKind, run: u64) -> FaultSpec {
        FaultSpec {
            kind,
            target: None,
            window: FaultWindow::From(run),
        }
    }

    /// Restricts the spec to one scope id (array id or worker index).
    pub fn target(mut self, id: usize) -> FaultSpec {
        self.target = Some(id);
        self
    }

    /// Overrides the firing window.
    pub fn window(mut self, window: FaultWindow) -> FaultSpec {
        self.window = window;
        self
    }
}

/// A reproducible fault schedule: a seed (which element/bit each flip
/// lands on) plus the specs. Carried by configuration
/// (`ServeConfig::faults` in `eyeriss-serve`); `None`/absent means no
/// injection and no cost.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed deriving every per-fault random choice.
    pub seed: u64,
    /// The scheduled faults.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan under `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            specs: Vec::new(),
        }
    }

    /// Adds one spec (builder style).
    pub fn spec(mut self, spec: FaultSpec) -> FaultPlan {
        self.specs.push(spec);
        self
    }

    /// True when no spec can ever fire.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// One corruption to apply to an array execution: the kind and a
/// deterministic salt the consumer maps onto an element index and bit
/// position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Corruption {
    /// [`FaultKind::PsumBitFlip`], [`FaultKind::WeightBitFlip`] or
    /// [`FaultKind::DramCorrupt`].
    pub kind: FaultKind,
    /// Seed-derived salt, unique per `(seed, array, run, spec)`.
    pub salt: u64,
}

/// Everything the injector decided for one array execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArrayInjection {
    /// The array fails this execution.
    pub crash: bool,
    /// The array stalls (consumer adds stall cycles and a real delay).
    pub stall: bool,
    /// Data corruptions to apply, in spec order.
    pub corruptions: Vec<Corruption>,
}

impl ArrayInjection {
    /// True when nothing fires this run.
    pub fn is_clean(&self) -> bool {
        !self.crash && !self.stall && self.corruptions.is_empty()
    }
}

#[derive(Debug, Default)]
struct InjectorState {
    /// Per-array run counters (array faults).
    array_runs: HashMap<usize, u64>,
    /// Per-worker run counters (worker panics).
    worker_runs: HashMap<usize, u64>,
}

#[derive(Debug)]
struct InjectorInner {
    plan: FaultPlan,
    state: Mutex<InjectorState>,
    injected_total: AtomicU64,
    injected_by_kind: [AtomicU64; FaultKind::COUNT],
    /// Mirrored `sim.faults_injected` counter, when telemetry is
    /// attached.
    tele: Option<eyeriss_telemetry::Counter>,
}

/// The shared runtime of a [`FaultPlan`]: run counters per scope and
/// lifetime injection counts. Cheap to clone — all clones share state,
/// so one injector can serve every worker cluster of a pool while
/// keeping a single deterministic timeline per scope.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    inner: Arc<InjectorInner>,
}

/// splitmix64 — a tiny, well-mixed PRF for deriving per-fault salts.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FaultInjector {
    /// Builds the runtime for `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            inner: Arc::new(InjectorInner {
                plan,
                state: Mutex::new(InjectorState::default()),
                injected_total: AtomicU64::new(0),
                injected_by_kind: Default::default(),
                tele: None,
            }),
        }
    }

    /// Mirrors every injection into `tele`'s `sim.faults_injected`
    /// counter. Call before cloning the injector out to consumers.
    pub fn with_telemetry(mut self, tele: &eyeriss_telemetry::Telemetry) -> FaultInjector {
        let inner = Arc::get_mut(&mut self.inner)
            .expect("attach telemetry before sharing the injector across threads");
        inner.tele = Some(tele.counter("sim.faults_injected"));
        self
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.inner.plan
    }

    fn count(&self, kind: FaultKind) {
        self.inner.injected_total.fetch_add(1, Ordering::Relaxed);
        self.inner.injected_by_kind[kind.index()].fetch_add(1, Ordering::Relaxed);
        if let Some(c) = &self.inner.tele {
            c.inc();
        }
    }

    /// Total faults injected so far, across every scope and kind.
    pub fn injected(&self) -> u64 {
        self.inner.injected_total.load(Ordering::Relaxed)
    }

    /// Faults of `kind` injected so far.
    pub fn injected_of(&self, kind: FaultKind) -> u64 {
        self.inner.injected_by_kind[kind.index()].load(Ordering::Relaxed)
    }

    /// Advances `array`'s run counter and returns what (if anything) to
    /// inject into this execution. `array` is a fleet-global id
    /// (`worker_index × arrays_per_worker + local_index` in the serving
    /// runtime), so specs can target one physical array across worker
    /// restarts.
    pub fn poll_array(&self, array: usize) -> ArrayInjection {
        let run = {
            let mut state = self
                .inner
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let slot = state.array_runs.entry(array).or_insert(0);
            let run = *slot;
            *slot += 1;
            run
        };
        let mut inj = ArrayInjection::default();
        for (i, spec) in self.inner.plan.specs.iter().enumerate() {
            if spec.kind == FaultKind::WorkerPanic
                || spec.target.is_some_and(|t| t != array)
                || !spec.window.fires(run)
            {
                continue;
            }
            match spec.kind {
                FaultKind::Crash => inj.crash = true,
                FaultKind::Stall => inj.stall = true,
                FaultKind::PsumBitFlip | FaultKind::WeightBitFlip | FaultKind::DramCorrupt => {
                    inj.corruptions.push(Corruption {
                        kind: spec.kind,
                        salt: mix(self
                            .inner
                            .plan
                            .seed
                            .wrapping_add(mix(array as u64))
                            .wrapping_add(mix(run).rotate_left(17))
                            .wrapping_add(i as u64)),
                    });
                }
                FaultKind::WorkerPanic => unreachable!("filtered above"),
            }
            self.count(spec.kind);
        }
        inj
    }

    /// Advances `worker`'s run counter (one run per batch pickup) and
    /// returns whether a [`FaultKind::WorkerPanic`] fires now.
    pub fn poll_worker(&self, worker: usize) -> bool {
        let run = {
            let mut state = self
                .inner
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let slot = state.worker_runs.entry(worker).or_insert(0);
            let run = *slot;
            *slot += 1;
            run
        };
        let fires = self.inner.plan.specs.iter().any(|spec| {
            spec.kind == FaultKind::WorkerPanic
                && spec.target.is_none_or(|t| t == worker)
                && spec.window.fires(run)
        });
        if fires {
            self.count(FaultKind::WorkerPanic);
        }
        fires
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_fire_as_documented() {
        assert!(FaultWindow::Once(3).fires(3));
        assert!(!FaultWindow::Once(3).fires(2) && !FaultWindow::Once(3).fires(4));
        assert!(FaultWindow::From(2).fires(2) && FaultWindow::From(2).fires(100));
        assert!(!FaultWindow::From(2).fires(1));
        let every = FaultWindow::Every {
            start: 1,
            period: 3,
        };
        assert!(every.fires(1) && every.fires(4) && every.fires(7));
        assert!(!every.fires(0) && !every.fires(2));
        // A zero period is clamped, not a division by zero.
        assert!(FaultWindow::Every {
            start: 0,
            period: 0
        }
        .fires(5));
    }

    #[test]
    fn poll_array_is_deterministic_and_scoped() {
        let plan = FaultPlan::new(42)
            .spec(FaultSpec::once(FaultKind::PsumBitFlip, 1).target(0))
            .spec(FaultSpec::from(FaultKind::Crash, 2).target(1));
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        for _ in 0..4 {
            // Array 0: clean, flip, clean, clean.
            assert_eq!(a.poll_array(0), b.poll_array(0));
            // Array 1: clean, clean, crash, crash.
            assert_eq!(a.poll_array(1), b.poll_array(1));
        }
        assert_eq!(a.injected_of(FaultKind::PsumBitFlip), 1);
        assert_eq!(a.injected_of(FaultKind::Crash), 2);
        assert_eq!(a.injected(), 3);
        // Replays agree injection-for-injection, salt included.
        assert_eq!(b.injected(), 3);
    }

    #[test]
    fn untargeted_specs_hit_every_scope_independently() {
        let inj =
            FaultInjector::new(FaultPlan::new(7).spec(FaultSpec::once(FaultKind::DramCorrupt, 0)));
        let x = inj.poll_array(3);
        let y = inj.poll_array(9);
        assert_eq!(x.corruptions.len(), 1);
        assert_eq!(y.corruptions.len(), 1);
        // Scope feeds the salt: distinct arrays corrupt distinct spots.
        assert_ne!(x.corruptions[0].salt, y.corruptions[0].salt);
        // Each scope's run counter advanced independently past the window.
        assert!(inj.poll_array(3).is_clean());
        assert!(inj.poll_array(9).is_clean());
    }

    #[test]
    fn worker_panic_polls_separate_counters() {
        let inj = FaultInjector::new(
            FaultPlan::new(1).spec(FaultSpec::once(FaultKind::WorkerPanic, 1).target(0)),
        );
        assert!(!inj.poll_worker(0), "run 0 clean");
        assert!(!inj.poll_worker(1), "other worker untouched");
        assert!(inj.poll_worker(0), "run 1 fires");
        assert!(!inj.poll_worker(0));
        // Array polls never see worker specs.
        assert!(inj.poll_array(0).is_clean());
        assert!(inj.poll_array(0).is_clean());
        assert_eq!(inj.injected_of(FaultKind::WorkerPanic), 1);
    }

    #[test]
    fn clones_share_one_timeline() {
        let inj = FaultInjector::new(
            FaultPlan::new(5).spec(FaultSpec::once(FaultKind::Stall, 1).target(2)),
        );
        let clone = inj.clone();
        assert!(inj.poll_array(2).is_clean(), "run 0");
        assert!(clone.poll_array(2).stall, "clone sees run 1");
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn telemetry_mirror_counts_injections() {
        let tele = eyeriss_telemetry::Telemetry::new_enabled();
        let inj = FaultInjector::new(FaultPlan::new(3).spec(FaultSpec::from(FaultKind::Crash, 0)))
            .with_telemetry(&tele);
        inj.poll_array(0);
        inj.poll_array(0);
        assert_eq!(tele.counter("sim.faults_injected").get(), 2);
    }
}
