//! The two-phase mapping (Section V-B) as executed by the simulator.
//!
//! The logical PE array (one PE per 1-D primitive) is folded onto the
//! physical array exactly as in `eyeriss-dataflow`'s row-stationary model;
//! the winning mapping parameters from the same optimizer are reused here
//! so the simulator executes the mapping the analysis framework scored.

use crate::error::SimError;
use eyeriss_arch::config::AcceleratorConfig;
use eyeriss_arch::cost::TableIv;
use eyeriss_dataflow::candidate::MappingParams;
use eyeriss_dataflow::registry::builtin;
use eyeriss_dataflow::search::{self, Objective};
use eyeriss_dataflow::DataflowKind;
use eyeriss_nn::{LayerProblem, LayerShape};

/// A resolved row-stationary mapping for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RsMapping {
    /// Images interleaved per pass.
    pub n: usize,
    /// Filters interleaved per PE.
    pub p: usize,
    /// Channels interleaved per PE.
    pub q: usize,
    /// Ofmap rows per strip.
    pub e: usize,
    /// Vertical sets (channel groups accumulated spatially).
    pub r: usize,
    /// Horizontal sets (filter groups sharing ifmap rows).
    pub t: usize,
    /// Buffer residency policy.
    pub filter_resident: bool,
}

impl RsMapping {
    /// Derives the energy-optimal mapping for `shape` at batch `n_batch`.
    ///
    /// # Errors
    ///
    /// Fails when the row-stationary model has no feasible mapping (e.g.
    /// the filter is taller than the PE array).
    pub fn plan(
        shape: &LayerShape,
        n_batch: usize,
        hw: &AcceleratorConfig,
    ) -> Result<Self, SimError> {
        let rs = builtin(DataflowKind::RowStationary);
        let best = search::optimize(
            rs,
            &LayerProblem::new(*shape, n_batch),
            hw,
            &TableIv,
            Objective::Energy,
        )
        .ok_or_else(|| {
            SimError::new(format!(
                "no feasible row-stationary mapping for {}x{} filter on {}x{} array",
                shape.r, shape.r, hw.grid.rows, hw.grid.cols
            ))
        })?;
        // The typed error path: a candidate carrying another dataflow's
        // params surfaces as a `SimError` instead of aborting.
        let params = best.params.expect_dataflow(rs.id())?;
        RsMapping::from_params(params)
            .ok_or_else(|| SimError::new(format!("row-stationary params expected, got {params}")))
    }

    /// Builds the executable mapping from searched row-stationary
    /// parameters — the bridge that lets a precompiled plan's winning
    /// candidate execute directly, with no repeat search. Returns `None`
    /// for another dataflow's parameters (the caller falls back to
    /// [`RsMapping::plan`]).
    pub fn from_params(params: &MappingParams) -> Option<Self> {
        let &MappingParams::RowStationary {
            n,
            p,
            q,
            e,
            r,
            t,
            filter_resident,
        } = params
        else {
            return None;
        };
        Some(RsMapping {
            n,
            p,
            q,
            e,
            r,
            t,
            filter_resident,
        })
    }

    /// True when this mapping fits `hw`'s per-array resources: its
    /// spatial footprint within the PE grid and its RF interleaving
    /// within the scratchpads — the same feasibility constraints the
    /// row-stationary enumerator prunes with
    /// ([`eyeriss_dataflow::rs::rf_words_needed`] is the shared RF
    /// accounting). Executors use this to screen mappings from plans
    /// compiled against a physically larger array.
    pub fn fits(&self, shape: &LayerShape, hw: &AcceleratorConfig) -> bool {
        self.r * shape.r <= hw.grid.rows
            && self.t * self.e <= hw.grid.cols
            && eyeriss_dataflow::rs::rf_words_needed(shape, self.n, self.p, self.q)
                <= hw.rf_words_per_pe()
    }

    /// Fold counts along each dimension for `shape` at batch `n_batch`:
    /// `(batch groups, filter groups, channel groups, strips)`.
    pub fn fold_counts(&self, shape: &LayerShape, n_batch: usize) -> (usize, usize, usize, usize) {
        (
            n_batch.div_ceil(self.n),
            shape.m.div_ceil(self.p * self.t),
            shape.c.div_ceil(self.q * self.r),
            shape.e.div_ceil(self.e),
        )
    }

    /// Filters handled by horizontal set `sh` of filter group `mg`,
    /// clamped to the layer.
    pub fn filters_of(&self, shape: &LayerShape, mg: usize, sh: usize) -> std::ops::Range<usize> {
        let start = (mg * self.t + sh) * self.p;
        start.min(shape.m)..(start + self.p).min(shape.m)
    }

    /// Channels handled by vertical set `sv` of channel group `cg`,
    /// clamped to the layer.
    pub fn channels_of(&self, shape: &LayerShape, cg: usize, sv: usize) -> std::ops::Range<usize> {
        let start = (cg * self.r + sv) * self.q;
        start.min(shape.c)..(start + self.q).min(shape.c)
    }

    /// Images of batch group `ng`, clamped to the batch.
    pub fn images_of(&self, n_batch: usize, ng: usize) -> std::ops::Range<usize> {
        let start = ng * self.n;
        start.min(n_batch)..(start + self.n).min(n_batch)
    }

    /// Ofmap rows of strip `sg`, clamped to the layer.
    pub fn ofmap_rows_of(&self, shape: &LayerShape, sg: usize) -> std::ops::Range<usize> {
        let start = sg * self.e;
        start.min(shape.e)..(start + self.e).min(shape.e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeriss_nn::alexnet;

    fn chip() -> AcceleratorConfig {
        AcceleratorConfig::eyeriss_chip()
    }

    #[test]
    fn plans_every_alexnet_layer_on_the_chip() {
        for layer in alexnet::all_layers() {
            let m = RsMapping::plan(&layer.shape, 4, &chip()).expect(&layer.name);
            assert!(m.r * layer.shape.r <= 12, "{}", layer.name);
            assert!(m.t * m.e <= 14, "{}", layer.name);
        }
    }

    #[test]
    fn folds_cover_every_coordinate() {
        let shape = alexnet::conv_layers()[1].shape; // CONV2
        let m = RsMapping::plan(&shape, 3, &chip()).unwrap();
        let (ngs, mgs, cgs, sgs) = m.fold_counts(&shape, 3);

        // Filters: union of all (mg, sh) ranges is exactly 0..M.
        let mut seen = vec![false; shape.m];
        for mg in 0..mgs {
            for sh in 0..m.t {
                for f in m.filters_of(&shape, mg, sh) {
                    assert!(!seen[f], "filter {f} mapped twice");
                    seen[f] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "some filters unmapped");

        // Channels.
        let mut seen = vec![false; shape.c];
        for cg in 0..cgs {
            for sv in 0..m.r {
                for c in m.channels_of(&shape, cg, sv) {
                    assert!(!seen[c], "channel {c} mapped twice");
                    seen[c] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "some channels unmapped");

        // Images and ofmap rows.
        let imgs: usize = (0..ngs).map(|ng| m.images_of(3, ng).len()).sum();
        assert_eq!(imgs, 3);
        let rows: usize = (0..sgs).map(|sg| m.ofmap_rows_of(&shape, sg).len()).sum();
        assert_eq!(rows, shape.e);
    }

    #[test]
    fn infeasible_layer_is_an_error() {
        let shape = LayerShape::conv(2, 2, 29, 15, 1).unwrap(); // R=15 > 12 rows
        let err = RsMapping::plan(&shape, 1, &chip()).unwrap_err();
        assert!(err.to_string().contains("no feasible"));
    }
}
