//! Whole-network execution on the simulated accelerator.
//!
//! Runs every stage of an [`eyeriss_nn::network::Network`] on the chip —
//! CONV/FC stages through the row-stationary engine, POOL stages through
//! the MAX datapath (Section V-D) — chaining quantized activations
//! exactly as the software reference does, so the final output is
//! bit-exact.

use crate::chip::Accelerator;
use crate::error::SimError;
use crate::stats::SimStats;
use eyeriss_nn::network::Network;
use eyeriss_nn::{reference, Fix16, LayerKind, Tensor4};

/// Per-stage statistics of a network run.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Stage name.
    pub name: String,
    /// Measured statistics.
    pub stats: SimStats,
}

/// The result of running a network on the accelerator.
#[derive(Debug, Clone)]
pub struct NetworkRun {
    /// Final activations (logits for classifier-terminated networks).
    pub output: Tensor4<Fix16>,
    /// One report per stage, in order.
    pub stages: Vec<StageReport>,
}

impl NetworkRun {
    /// Total wall-clock cycles across stages.
    pub fn total_cycles(&self) -> u64 {
        self.stages.iter().map(|s| s.stats.total_cycles()).sum()
    }

    /// Total normalized energy across stages.
    pub fn total_energy(&self, cost: &dyn eyeriss_arch::CostModel) -> f64 {
        self.stages.iter().map(|s| s.stats.energy(cost)).sum()
    }

    /// Prices the whole run into the unified
    /// [`CostReport`](eyeriss_arch::CostReport) vocabulary (stage reports
    /// accumulated: energies and measured delays add).
    pub fn cost_report(&self, cost: &dyn eyeriss_arch::CostModel) -> eyeriss_arch::CostReport {
        let mut total = eyeriss_arch::CostReport::zero(cost.descriptor());
        for s in &self.stages {
            total.accumulate(&s.stats.cost_report(cost));
        }
        total
    }
}

/// Runs `net` on `chip` for a batch of `n` images.
///
/// # Errors
///
/// Fails if any weighted stage has no feasible mapping.
///
/// # Panics
///
/// Panics if `input` does not match the network's input dimensions.
pub fn run_network(
    chip: &mut Accelerator,
    net: &Network,
    n: usize,
    input: &Tensor4<Fix16>,
) -> Result<NetworkRun, SimError> {
    let (channels, size) = net.input_dims();
    assert_eq!(
        input.dims(),
        [n, channels, size, size],
        "network input dims mismatch"
    );
    let mut act = input.clone();
    let mut stages = Vec::with_capacity(net.stages().len());
    for stage in net.stages() {
        let stats = match stage.shape.kind {
            LayerKind::Pool => {
                let (out, stats) = chip.run_pool(&stage.shape, n, &act);
                act = out;
                stats
            }
            LayerKind::Conv | LayerKind::FullyConnected => {
                let w = stage.weights.as_ref().expect("weighted stage");
                let b = stage.bias.as_ref().expect("weighted stage");
                let run = chip.run_conv(&stage.shape, n, &act, w, b)?;
                act = reference::quantize(&run.psums, stage.relu);
                run.stats
            }
        };
        stages.push(StageReport {
            name: stage.name.clone(),
            stats,
        });
    }
    Ok(NetworkRun {
        output: act,
        stages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::DramModel;
    use eyeriss_arch::AcceleratorConfig;
    use eyeriss_nn::network::NetworkBuilder;
    use eyeriss_nn::synth;

    fn tiny_net() -> Network {
        NetworkBuilder::new(3, 19)
            .conv("C1", 8, 3, 2)
            .unwrap()
            .pool("P1", 3, 2)
            .unwrap()
            .conv("C2", 12, 3, 1)
            .unwrap()
            .fully_connected("FC", 10)
            .unwrap()
            .build(31)
    }

    #[test]
    fn network_run_is_bit_exact() {
        let net = tiny_net();
        let input = synth::ifmap(&net.stages()[0].shape, 2, 55);
        let golden = net.forward(2, &input);
        let mut chip = Accelerator::new(AcceleratorConfig::eyeriss_chip());
        let run = run_network(&mut chip, &net, 2, &input).unwrap();
        assert_eq!(run.output, golden);
        assert_eq!(run.stages.len(), 4);
    }

    #[test]
    fn latency_hiding_claim_holds_at_chip_bandwidth() {
        // Section VI-B: with double buffering, "data movement is not
        // expected to impact overall throughput significantly". This holds
        // for layers with realistic arithmetic intensity (deep channels /
        // many filters), not for toy 3-channel stems.
        let shape = eyeriss_nn::LayerShape::conv(32, 16, 19, 3, 1).unwrap();
        let input = synth::ifmap(&shape, 2, 55);
        let weights = synth::filters(&shape, 56);
        let bias = synth::biases(&shape, 57);
        let mut chip =
            Accelerator::new(AcceleratorConfig::eyeriss_chip()).dram(DramModel::eyeriss_chip());
        let run = chip.run_conv(&shape, 2, &input, &weights, &bias).unwrap();
        let stall = run.stats.stall_fraction();
        assert!(stall < 0.2, "stall fraction {stall:.2} too high");
    }

    #[test]
    fn starved_dram_stalls_the_array() {
        let net = tiny_net();
        let input = synth::ifmap(&net.stages()[0].shape, 1, 55);
        let mut fast =
            Accelerator::new(AcceleratorConfig::eyeriss_chip()).dram(DramModel::new(64.0));
        let mut slow =
            Accelerator::new(AcceleratorConfig::eyeriss_chip()).dram(DramModel::new(0.01));
        let f = run_network(&mut fast, &net, 1, &input).unwrap();
        let s = run_network(&mut slow, &net, 1, &input).unwrap();
        // Same computation, same answer...
        assert_eq!(f.output, s.output);
        // ...but the starved configuration takes far longer.
        assert!(s.total_cycles() > 5 * f.total_cycles());
        assert!(s.stages[0].stats.stall_fraction() > 0.5);
    }

    #[test]
    fn energy_aggregates_over_stages() {
        let net = tiny_net();
        let input = synth::ifmap(&net.stages()[0].shape, 1, 5);
        let mut chip = Accelerator::new(AcceleratorConfig::eyeriss_chip());
        let run = run_network(&mut chip, &net, 1, &input).unwrap();
        let em = eyeriss_arch::TableIv;
        let by_hand: f64 = run.stages.iter().map(|s| s.stats.energy(&em)).sum();
        assert_eq!(run.total_energy(&em), by_hand);
        assert!(run.total_energy(&em) > 0.0);
    }
}
