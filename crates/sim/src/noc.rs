//! The three on-chip networks of the Eyeriss architecture (Section V-E):
//! global multicast NoCs for filters and ifmaps, and the local PE-to-PE
//! chain for psums.
//!
//! The chip tags each PE with a (row, col) ID and buses deliver packets to
//! all PEs whose tag matches; here the tag sets are computed from the
//! mapping (horizontal rows for filters — Fig. 6a, diagonals for ifmaps —
//! Fig. 6b, columns for psums — Fig. 6c) and the networks count word
//! deliveries (array-level hops in the Table IV accounting).

/// Counters for one network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NocStats {
    /// Multicast/chain transactions issued.
    pub transactions: u64,
    /// Word deliveries summed over receiving PEs (the array-hop count).
    pub word_hops: u64,
}

/// A multicast bus: one source transaction delivers `words` to each of
/// `receivers` PEs.
#[derive(Debug, Clone, Default)]
pub struct MulticastBus {
    /// Delivery counters.
    pub stats: NocStats,
}

impl MulticastBus {
    /// Creates an idle bus.
    pub fn new() -> Self {
        MulticastBus::default()
    }

    /// Zeroes the delivery counters (pooled-scratch reuse).
    pub fn reset(&mut self) {
        self.stats = NocStats::default();
    }

    /// Records a multicast of `words` words to `receivers` PEs.
    ///
    /// # Panics
    ///
    /// Panics if there are no receivers — the mapping should never
    /// multicast into the void.
    pub fn multicast(&mut self, words: usize, receivers: usize) {
        assert!(receivers > 0, "multicast needs at least one receiver");
        self.stats.transactions += 1;
        self.stats.word_hops += (words * receivers) as u64;
    }
}

/// The vertical psum chain: words hop PE-to-PE up a column.
#[derive(Debug, Clone, Default)]
pub struct PsumChain {
    /// Delivery counters.
    pub stats: NocStats,
}

impl PsumChain {
    /// Creates an idle chain.
    pub fn new() -> Self {
        PsumChain::default()
    }

    /// Zeroes the delivery counters (pooled-scratch reuse).
    pub fn reset(&mut self) {
        self.stats = NocStats::default();
    }

    /// Records the spatial accumulation of a `words`-wide psum row along a
    /// chain of `length` PEs: `length - 1` hop steps.
    ///
    /// # Panics
    ///
    /// Panics if the chain is empty.
    pub fn accumulate(&mut self, words: usize, length: usize) {
        assert!(length > 0, "psum chain must contain at least one PE");
        self.stats.transactions += 1;
        self.stats.word_hops += (words * (length - 1)) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multicast_counts_words_times_receivers() {
        let mut bus = MulticastBus::new();
        bus.multicast(11, 4);
        bus.multicast(5, 1);
        assert_eq!(bus.stats.transactions, 2);
        assert_eq!(bus.stats.word_hops, 44 + 5);
    }

    #[test]
    fn chain_counts_length_minus_one() {
        let mut chain = PsumChain::new();
        chain.accumulate(13, 3);
        assert_eq!(chain.stats.word_hops, 26);
        chain.accumulate(13, 1); // single PE: no hops
        assert_eq!(chain.stats.word_hops, 26);
    }

    #[test]
    #[should_panic(expected = "at least one receiver")]
    fn empty_multicast_panics() {
        MulticastBus::new().multicast(4, 0);
    }
}
