//! Run-length compression (RLC) of sparse activation data (Section V-E).
//!
//! The Eyeriss chip compresses DRAM traffic by encoding runs of zeros:
//! each 64-bit word packs three (5-bit run, 16-bit level) pairs plus a
//! continuation flag in the LSB. ReLU layers make activation maps highly
//! sparse, so this "compresses the data to reduce data movement" on top of
//! the dataflow savings.
//!
//! Format per 64-bit word (LSB to MSB):
//! `[flag:1][run0:5][level0:16][run1:5][level1:16][run2:5][level2:16]`;
//! the flag is 1 on the final word and trailing unused pairs in the final
//! word are zero-filled (decode stops at the original length).

use eyeriss_nn::Fix16;

/// Maximum zero-run length per pair (5-bit field).
pub const MAX_RUN: usize = 31;

/// An RLC-compressed buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Compressed {
    /// Packed 64-bit code words.
    pub words: Vec<u64>,
    /// Number of original 16-bit values.
    pub original_len: usize,
}

impl Compressed {
    /// Compression ratio: original bits / compressed bits (>1 is smaller).
    pub fn ratio(&self) -> f64 {
        ratio_of(self.original_len, &self.words)
    }

    /// Size of the compressed stream in 16-bit DRAM words.
    pub fn dram_words(&self) -> usize {
        self.words.len() * 4
    }
}

/// Encodes a slice of Q8.8 values.
///
/// # Example
///
/// ```
/// use eyeriss_sim::rlc;
/// use eyeriss_nn::Fix16;
///
/// let mut data = vec![Fix16::ZERO; 100];
/// data[50] = Fix16::ONE;
/// let packed = rlc::encode(&data);
/// assert_eq!(rlc::decode(&packed), data);
/// assert!(packed.ratio() > 3.0); // mostly zeros compress well
/// ```
pub fn encode(values: &[Fix16]) -> Compressed {
    let mut words = Vec::new();
    let original_len = encode_stream(values.iter().copied(), &mut words);
    Compressed {
        words,
        original_len,
    }
}

/// [`encode`] into a caller-owned word buffer (cleared first), so hot
/// paths that compress one strip after another reuse a single allocation
/// — the scratch-buffer entry point used by the simulator's
/// [`crate::SimScratch`]. Returns the number of values consumed (the
/// stream's `original_len`).
pub fn encode_into(values: &[Fix16], words: &mut Vec<u64>) -> usize {
    encode_stream(values.iter().copied(), words)
}

/// Streaming core of the encoder: packs `(run, level)` pairs into
/// `words` as values arrive, with no intermediate pair buffer. `words`
/// is cleared first and always ends holding at least the flag word.
pub fn encode_stream(values: impl Iterator<Item = Fix16>, words: &mut Vec<u64>) -> usize {
    words.clear();
    let mut cur: u64 = 0;
    let mut pair_i = 0usize;
    let mut push_pair = |words: &mut Vec<u64>, r: usize, lvl: u16| {
        let shift = 1 + pair_i * 21;
        cur |= ((r as u64) & 0x1f) << shift;
        cur |= (lvl as u64) << (shift + 5);
        pair_i += 1;
        if pair_i == 3 {
            words.push(cur);
            cur = 0;
            pair_i = 0;
        }
    };
    let mut run = 0usize;
    let mut len = 0usize;
    for v in values {
        len += 1;
        if v.is_zero() && run < MAX_RUN {
            run += 1;
            continue;
        }
        push_pair(words, run, v.raw() as u16);
        run = 0;
    }
    if run > 0 {
        // Trailing zeros: emit them as a run ending in a zero level.
        push_pair(words, run, 0);
    }
    if pair_i > 0 {
        words.push(cur);
    }
    if words.is_empty() {
        words.push(0);
    }
    *words.last_mut().expect("non-empty") |= 1; // final-word flag
    len
}

/// Compression ratio of a packed stream without wrapping it in a
/// [`Compressed`]: original bits / compressed bits, 1.0 for an empty
/// word buffer.
pub fn ratio_of(original_len: usize, words: &[u64]) -> f64 {
    if words.is_empty() {
        return 1.0;
    }
    (original_len as f64 * 16.0) / (words.len() as f64 * 64.0)
}

/// Decodes an RLC stream back to the original values.
///
/// # Panics
///
/// Panics if the stream is malformed (decodes past `original_len` plus a
/// trailing run, or the final flag is missing).
pub fn decode(c: &Compressed) -> Vec<Fix16> {
    let mut out = Vec::with_capacity(c.original_len);
    decode_into(c, &mut out);
    out
}

/// [`decode`] into a caller-owned buffer (cleared first), reusing its
/// allocation across strips.
///
/// # Panics
///
/// Panics if the stream is malformed, as [`decode`].
pub fn decode_into(c: &Compressed, out: &mut Vec<Fix16>) {
    out.clear();
    out.reserve(c.original_len);
    for (wi, w) in c.words.iter().enumerate() {
        let is_last = wi + 1 == c.words.len();
        assert_eq!(w & 1 == 1, is_last, "final-word flag misplaced");
        for i in 0..3 {
            if out.len() >= c.original_len {
                break;
            }
            let shift = 1 + i * 21;
            let run = ((w >> shift) & 0x1f) as usize;
            let level = ((w >> (shift + 5)) & 0xffff) as u16;
            for _ in 0..run {
                out.push(Fix16::ZERO);
            }
            if out.len() < c.original_len {
                out.push(Fix16::from_raw(level as i16));
            }
        }
    }
    // A final zero run may be encoded implicitly.
    while out.len() < c.original_len {
        out.push(Fix16::ZERO);
    }
    assert_eq!(out.len(), c.original_len, "malformed RLC stream");
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_simple() {
        let data: Vec<Fix16> = [0i16, 0, 5, 0, -3, 7, 0, 0, 0, 0]
            .iter()
            .map(|&r| Fix16::from_raw(r))
            .collect();
        assert_eq!(decode(&encode(&data)), data);
    }

    #[test]
    fn empty_input_roundtrips() {
        let data: Vec<Fix16> = Vec::new();
        let c = encode(&data);
        assert_eq!(decode(&c), data);
    }

    #[test]
    fn all_zero_compresses_hard() {
        let data = vec![Fix16::ZERO; 3100];
        let c = encode(&data);
        assert_eq!(decode(&c), data);
        assert!(c.ratio() > 10.0, "ratio {}", c.ratio());
    }

    #[test]
    fn dense_data_expands_modestly() {
        let data: Vec<Fix16> = (1..=300).map(Fix16::from_raw).collect();
        let c = encode(&data);
        assert_eq!(decode(&c), data);
        // One pair (21 bits) per dense value: worst case ~4/3 expansion.
        assert!(c.ratio() > 0.7, "ratio {}", c.ratio());
    }

    #[test]
    fn long_runs_split_at_31() {
        let mut data = vec![Fix16::ZERO; 40];
        data.push(Fix16::ONE);
        let c = encode(&data);
        assert_eq!(decode(&c), data);
    }

    #[test]
    fn run_of_exactly_max_run_zeros() {
        // A run of exactly 31 zeros saturates the 5-bit field in a single
        // (run, level) pair.
        let mut data = vec![Fix16::ZERO; MAX_RUN];
        data.push(Fix16::ONE);
        let c = encode(&data);
        assert_eq!(decode(&c), data);
        assert_eq!(c.words.len(), 1, "31 zeros + level fit one pair");
    }

    #[test]
    fn run_of_exactly_max_run_plus_one_zeros() {
        // 32 zeros must split into a saturated pair (31, 0) plus the
        // 32nd zero starting the next pair's run.
        let mut data = vec![Fix16::ZERO; MAX_RUN + 1];
        data.push(Fix16::ONE);
        let c = encode(&data);
        assert_eq!(decode(&c), data);
        let run0 = ((c.words[0] >> 1) & 0x1f) as usize;
        assert_eq!(run0, MAX_RUN, "first pair must carry a saturated run");
    }

    #[test]
    fn trailing_zero_runs_at_the_31_32_boundary() {
        // All-zero tails of exactly 31 and 32 values: the encoder's
        // trailing-run and implicit-final-run paths both roundtrip.
        for tail in [MAX_RUN, MAX_RUN + 1] {
            let mut data = vec![Fix16::ONE];
            data.extend(std::iter::repeat_n(Fix16::ZERO, tail));
            let c = encode(&data);
            assert_eq!(decode(&c), data, "tail of {tail} zeros");
        }
    }

    #[test]
    fn all_zero_inputs_at_boundary_lengths() {
        for len in [1usize, MAX_RUN, MAX_RUN + 1, 3 * MAX_RUN, 96] {
            let data = vec![Fix16::ZERO; len];
            let c = encode(&data);
            assert_eq!(decode(&c), data, "all-zero length {len}");
            assert_eq!(c.original_len, len);
        }
    }

    #[test]
    fn scratch_entry_points_match_the_owning_api() {
        let mut words = Vec::new();
        let mut decoded = Vec::new();
        for data in [
            vec![],
            vec![Fix16::ZERO; 40],
            (1..=100).map(Fix16::from_raw).collect::<Vec<_>>(),
            [0i16, 0, 5, 0, -3, 7, 0, 0]
                .iter()
                .map(|&r| Fix16::from_raw(r))
                .collect(),
        ] {
            let owned = encode(&data);
            // Reused buffers: same words, same ratio, same roundtrip.
            let len = encode_into(&data, &mut words);
            assert_eq!(len, data.len());
            assert_eq!(words, owned.words);
            assert_eq!(ratio_of(len, &words), owned.ratio());
            decode_into(&owned, &mut decoded);
            assert_eq!(decoded, data);
        }
    }

    #[test]
    fn streaming_encoder_accepts_iterators() {
        let data: Vec<Fix16> = (0..50)
            .map(|i| {
                if i % 7 == 0 {
                    Fix16::from_raw(i)
                } else {
                    Fix16::ZERO
                }
            })
            .collect();
        let mut words = Vec::new();
        let len = encode_stream(data.iter().copied(), &mut words);
        assert_eq!(len, data.len());
        assert_eq!(words, encode(&data).words);
    }

    #[test]
    fn zero_length_input_ratio_is_neutral() {
        let c = encode(&[]);
        assert_eq!(c.original_len, 0);
        assert_eq!(decode(&c), Vec::<Fix16>::new());
        // The flag word still exists; ratio stays consistent with the
        // definition (0 original bits / 64 compressed bits = 0).
        assert_eq!(c.dram_words(), c.words.len() * 4);
        assert!(c.ratio() >= 0.0);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(raw in proptest::collection::vec(-300i16..300, 0..200),
                          sparsify in 0u8..4) {
            let data: Vec<Fix16> = raw
                .iter()
                .map(|&r| {
                    if sparsify > 0 && r.rem_euclid(sparsify as i16 + 1) != 0 {
                        Fix16::ZERO
                    } else {
                        Fix16::from_raw(r)
                    }
                })
                .collect();
            let c = encode(&data);
            prop_assert_eq!(decode(&c), data);
            // ratio() must agree with the packed stream's actual size.
            let expect = if c.words.is_empty() {
                1.0
            } else {
                (c.original_len as f64 * 16.0) / (c.words.len() as f64 * 64.0)
            };
            prop_assert!((c.ratio() - expect).abs() < 1e-12);
            prop_assert_eq!(c.dram_words(), c.words.len() * 4);
        }

        #[test]
        fn prop_sparser_is_smaller(n in 50usize..300) {
            let dense: Vec<Fix16> = (0..n).map(|i| Fix16::from_raw(i as i16 + 1)).collect();
            let sparse: Vec<Fix16> = (0..n)
                .map(|i| if i % 8 == 0 { Fix16::ONE } else { Fix16::ZERO })
                .collect();
            prop_assert!(encode(&sparse).words.len() <= encode(&dense).words.len());
        }
    }
}
