//! The global buffer: capacity-checked staging storage between DRAM and
//! the PE array, with read/write counters.
//!
//! The simulator does not model addresses; it models *occupancy* (the
//! resident tiles of each data type must fit, as in Section V-B's second
//! folding phase) and *traffic* (every word staged in or read out is
//! counted at buffer cost).

use crate::error::SimError;

/// Occupancy and traffic accounting for the global buffer.
#[derive(Debug, Clone, Default)]
pub struct GlobalBuffer {
    capacity_words: usize,
    ifmap_words: usize,
    filter_words: usize,
    psum_words: usize,
    /// Words read out of the buffer.
    pub reads: u64,
    /// Words written into the buffer.
    pub writes: u64,
}

impl GlobalBuffer {
    /// Creates an empty buffer of `capacity_words` 16-bit words (psum
    /// entries are wider on chip; the paper's accounting is word-based).
    pub fn new(capacity_words: usize) -> Self {
        GlobalBuffer {
            capacity_words,
            ifmap_words: 0,
            filter_words: 0,
            psum_words: 0,
            reads: 0,
            writes: 0,
        }
    }

    /// Re-arms a pooled buffer for a fresh run: adopts `capacity_words`
    /// and zeroes occupancy and traffic counters — equivalent to
    /// [`GlobalBuffer::new`] without dropping the struct (the buffer
    /// holds no heap storage, so this exists for the scratch arena's
    /// uniform reset discipline).
    pub fn reset(&mut self, capacity_words: usize) {
        *self = GlobalBuffer::new(capacity_words);
    }

    /// Total words currently resident.
    pub fn occupancy(&self) -> usize {
        self.ifmap_words + self.filter_words + self.psum_words
    }

    /// Capacity in words.
    pub fn capacity(&self) -> usize {
        self.capacity_words
    }

    fn check(&self) -> Result<(), SimError> {
        if self.occupancy() > self.capacity_words {
            return Err(SimError::new(format!(
                "global buffer over capacity: {} of {} words (ifmap {}, filter {}, psum {})",
                self.occupancy(),
                self.capacity_words,
                self.ifmap_words,
                self.filter_words,
                self.psum_words
            )));
        }
        Ok(())
    }

    /// Replaces the resident ifmap tile with one of `words` words,
    /// counting the staging writes.
    ///
    /// # Errors
    ///
    /// Fails if the new occupancy exceeds capacity.
    pub fn stage_ifmap(&mut self, words: usize) -> Result<(), SimError> {
        self.ifmap_words = words;
        self.writes += words as u64;
        self.check()
    }

    /// Replaces the resident filter tile.
    ///
    /// # Errors
    ///
    /// Fails if the new occupancy exceeds capacity.
    pub fn stage_filters(&mut self, words: usize) -> Result<(), SimError> {
        self.filter_words = words;
        self.writes += words as u64;
        self.check()
    }

    /// Reserves the psum tile (allocated once per strip; updates are
    /// counted through [`GlobalBuffer::read_words`]/[`GlobalBuffer::write_words`]).
    ///
    /// # Errors
    ///
    /// Fails if the new occupancy exceeds capacity.
    pub fn reserve_psums(&mut self, words: usize) -> Result<(), SimError> {
        self.psum_words = words;
        self.check()
    }

    /// Releases the psum tile.
    pub fn release_psums(&mut self) {
        self.psum_words = 0;
    }

    /// Counts `n` words read out of the buffer.
    pub fn read_words(&mut self, n: usize) {
        self.reads += n as u64;
    }

    /// Counts `n` words written into the buffer.
    pub fn write_words(&mut self, n: usize) {
        self.writes += n as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staging_counts_writes() {
        let mut g = GlobalBuffer::new(100);
        g.stage_ifmap(40).unwrap();
        g.stage_filters(30).unwrap();
        assert_eq!(g.occupancy(), 70);
        assert_eq!(g.writes, 70);
    }

    #[test]
    fn over_capacity_is_an_error() {
        let mut g = GlobalBuffer::new(100);
        g.stage_ifmap(60).unwrap();
        g.reserve_psums(30).unwrap();
        let err = g.stage_filters(20).unwrap_err();
        assert!(err.to_string().contains("over capacity"));
    }

    #[test]
    fn restaging_replaces_not_accumulates() {
        let mut g = GlobalBuffer::new(100);
        g.stage_ifmap(90).unwrap();
        g.stage_ifmap(50).unwrap();
        assert_eq!(g.occupancy(), 50);
        assert_eq!(g.writes, 140);
    }

    #[test]
    fn psum_release_frees_space() {
        let mut g = GlobalBuffer::new(100);
        g.reserve_psums(100).unwrap();
        assert!(g.stage_ifmap(10).is_err());
        g.release_psums();
        // Re-stage now fits (ifmap tile was still recorded from the failed
        // attempt, so set it again).
        g.stage_ifmap(10).unwrap();
        assert_eq!(g.occupancy(), 10);
    }
}
