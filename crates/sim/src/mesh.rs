//! The hierarchical-mesh NoC of Eyeriss v2, alongside the v1 buses of
//! [`crate::noc`].
//!
//! Eyeriss v1 moves every word over global multicast buses and a psum
//! chain; all array-level deliveries cost one hop. Eyeriss v2 instead
//! groups PEs into *PE clusters* joined by *router clusters* in a 2-D
//! mesh: deliveries inside a cluster ride a local all-to-all fabric
//! (one hop, as before), while words leaving their source cluster also
//! traverse router-to-router links. This module models that second tier:
//! it counts local and router hops per transfer mode and exposes the
//! aggregate router bandwidth, so measured [`crate::SimStats`] and a
//! bandwidth-aware [`StaticCostModel`](eyeriss_arch::cost::StaticCostModel)
//! both see the mesh.
//!
//! The router charge uses the same closed form as the `flex-rs` analytical
//! model ([`eyeriss_dataflow::flex::mesh_routing_factor`]): the simulator
//! and the mapping search must price the mesh identically or the
//! optimizer's choices would not survive execution.

use crate::error::SimError;
use eyeriss_arch::config::GridDims;
use eyeriss_dataflow::flex::mesh_routing_factor;

/// How a transfer uses the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeshMode {
    /// One source cluster to one destination cluster (e.g. a psum handoff
    /// between neighbouring gangs).
    Unicast,
    /// One source to a tagged subset of PEs across the gang's clusters
    /// (filter rows, diagonal ifmap delivery).
    Multicast,
    /// One source to every PE of the gang (v2's weight broadcast mode).
    Broadcast,
}

/// Hop counters of the two mesh tiers.
///
/// Local hops are exact integers; router hops are fractional because the
/// average-distance charge is (the same halo-style averaging the access
/// profiles already use).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MeshStats {
    /// Transfers issued.
    pub transactions: u64,
    /// Word deliveries over intra-cluster fabrics.
    pub local_hops: f64,
    /// Word traversals of router-to-router links.
    pub router_hops: f64,
}

impl MeshStats {
    /// Total array-level hops (local + router), the quantity charged at
    /// the Table IV array cost.
    pub fn total_hops(&self) -> f64 {
        self.local_hops + self.router_hops
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &MeshStats) {
        self.transactions += other.transactions;
        self.local_hops += other.local_hops;
        self.router_hops += other.router_hops;
    }
}

/// A hierarchical mesh over a PE array: the array is tiled into clusters
/// of `cluster` PEs, and `gangs` disjoint gangs each own an equal share
/// of the clusters.
///
/// # Example
///
/// ```
/// use eyeriss_sim::mesh::HierarchicalMesh;
/// use eyeriss_arch::GridDims;
///
/// // The 12x14 chip carved into 3x1 clusters, 8 gangs of 7 clusters.
/// let mesh = HierarchicalMesh::new(GridDims::new(12, 14), GridDims::new(3, 1), 8)?;
/// assert_eq!(mesh.n_clusters(), 56);
/// assert_eq!(mesh.clusters_per_gang(), 7);
/// assert!(mesh.routing_factor() > 1.0);
/// # Ok::<(), eyeriss_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchicalMesh {
    grid: GridDims,
    cluster: GridDims,
    gangs: usize,
}

impl HierarchicalMesh {
    /// Builds a mesh over `grid` with `cluster`-shaped PE clusters and
    /// `gangs` replication gangs.
    ///
    /// # Errors
    ///
    /// Fails unless the cluster tiles the grid exactly and `gangs`
    /// divides the cluster count — ragged meshes have no hardware analog.
    pub fn new(grid: GridDims, cluster: GridDims, gangs: usize) -> Result<Self, SimError> {
        if !grid.rows.is_multiple_of(cluster.rows) || !grid.cols.is_multiple_of(cluster.cols) {
            return Err(SimError::new(format!(
                "{}x{} clusters do not tile a {}x{} array",
                cluster.rows, cluster.cols, grid.rows, grid.cols
            )));
        }
        let n_clusters = (grid.rows / cluster.rows) * (grid.cols / cluster.cols);
        if gangs == 0 || !n_clusters.is_multiple_of(gangs) {
            return Err(SimError::new(format!(
                "{gangs} gangs do not divide {n_clusters} clusters"
            )));
        }
        Ok(HierarchicalMesh {
            grid,
            cluster,
            gangs,
        })
    }

    /// A degenerate mesh equivalent to the v1 single-bus array: one
    /// cluster spanning the whole grid.
    pub fn single_cluster(grid: GridDims) -> Self {
        HierarchicalMesh {
            grid,
            cluster: grid,
            gangs: 1,
        }
    }

    /// The PE array the mesh spans.
    pub fn grid(&self) -> GridDims {
        self.grid
    }

    /// The PE-cluster shape.
    pub fn cluster(&self) -> GridDims {
        self.cluster
    }

    /// Number of PE clusters in the array.
    pub fn n_clusters(&self) -> usize {
        (self.grid.rows / self.cluster.rows) * (self.grid.cols / self.cluster.cols)
    }

    /// Replication gangs sharing the array.
    pub fn gangs(&self) -> usize {
        self.gangs
    }

    /// Clusters owned by one gang.
    pub fn clusters_per_gang(&self) -> usize {
        self.n_clusters() / self.gangs
    }

    /// Average hop inflation of a delivery within one gang — the shared
    /// closed form of [`eyeriss_dataflow::flex::mesh_routing_factor`].
    /// Exactly 1.0 for [`HierarchicalMesh::single_cluster`].
    pub fn routing_factor(&self) -> f64 {
        mesh_routing_factor(
            self.cluster.rows,
            self.cluster.cols,
            self.clusters_per_gang(),
        )
    }

    /// Records one transfer of `words` words to `receivers` PEs.
    ///
    /// Every delivered word costs one local hop (the intra-cluster
    /// all-to-all). Router hops depend on the mode: a broadcast crosses
    /// each of the gang's `cpg - 1` inter-cluster links once per word (a
    /// spanning tree over the gang); a unicast pays the mean inter-cluster
    /// distance `(cpg - 1)/2`; a multicast charges the average-case
    /// boundary-crossing share per delivery — `receivers x` the routing
    /// factor's excess — which is what makes aggregated multicast traffic
    /// match [`HierarchicalMesh::charge_bus`].
    ///
    /// # Panics
    ///
    /// Panics if there are no receivers.
    pub fn transfer(&self, stats: &mut MeshStats, mode: MeshMode, words: usize, receivers: usize) {
        assert!(receivers > 0, "mesh transfer needs at least one receiver");
        let cpg = self.clusters_per_gang() as f64;
        stats.transactions += 1;
        stats.local_hops += (words * receivers) as f64;
        stats.router_hops += match mode {
            MeshMode::Unicast => words as f64 * (cpg - 1.0) / 2.0,
            MeshMode::Broadcast => words as f64 * (cpg - 1.0),
            MeshMode::Multicast => (words * receivers) as f64 * (self.routing_factor() - 1.0),
        };
    }

    /// Folds an aggregate bus hop count (the v1 buses' `word_hops`) into
    /// mesh accounting: all hops stay local, plus the routing factor's
    /// excess as router hops. `total_hops()` afterwards equals
    /// `word_hops x routing_factor()` — the identity the `flex-rs`
    /// analytical profiles rely on.
    pub fn charge_bus(&self, stats: &mut MeshStats, word_hops: f64) {
        stats.local_hops += word_hops;
        stats.router_hops += word_hops * (self.routing_factor() - 1.0);
    }

    /// Aggregate router bandwidth in words per cycle, given each
    /// router-to-router link moves `link_words_per_cycle`: every
    /// inter-cluster link of the 2-D mesh operates concurrently. Feed
    /// this to
    /// [`StaticCostModel::with_bandwidth`](eyeriss_arch::cost::StaticCostModel::with_bandwidth)
    /// at [`Level::Array`](eyeriss_arch::energy::Level::Array) to let the
    /// analytic delay see the mesh.
    pub fn aggregate_bandwidth(&self, link_words_per_cycle: f64) -> f64 {
        let gr = self.grid.rows / self.cluster.rows;
        let gc = self.grid.cols / self.cluster.cols;
        let links = gr * (gc - 1) + gc * (gr - 1);
        // A single-cluster mesh has no router links; its "bandwidth" is
        // the local fabric's, modeled as one link.
        links.max(1) as f64 * link_words_per_cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeriss_arch::cost::{CostModel, StaticCostModel};
    use eyeriss_arch::energy::{EnergyModel, Level};

    fn chip_mesh() -> HierarchicalMesh {
        HierarchicalMesh::new(GridDims::new(12, 14), GridDims::new(3, 1), 8).unwrap()
    }

    #[test]
    fn geometry_is_validated() {
        assert!(HierarchicalMesh::new(GridDims::new(12, 14), GridDims::new(5, 1), 1).is_err());
        assert!(HierarchicalMesh::new(GridDims::new(12, 14), GridDims::new(3, 1), 5).is_err());
        let m = chip_mesh();
        assert_eq!(m.n_clusters(), 56);
        assert_eq!(m.clusters_per_gang(), 7);
        assert_eq!(m.gangs(), 8);
        assert_eq!(m.cluster(), GridDims::new(3, 1));
    }

    #[test]
    fn single_cluster_is_the_v1_bus() {
        let m = HierarchicalMesh::single_cluster(GridDims::new(12, 14));
        assert_eq!(m.routing_factor(), 1.0);
        let mut s = MeshStats::default();
        m.transfer(&mut s, MeshMode::Broadcast, 10, 168);
        assert_eq!(s.router_hops, 0.0);
        assert_eq!(s.total_hops(), 1680.0);
        m.charge_bus(&mut s, 500.0);
        assert_eq!(s.total_hops(), 2180.0);
    }

    #[test]
    fn modes_order_router_cost() {
        let m = chip_mesh();
        let (mut uni, mut multi, mut bcast) = Default::default();
        m.transfer(&mut uni, MeshMode::Unicast, 100, 1);
        m.transfer(&mut multi, MeshMode::Multicast, 100, 21);
        m.transfer(&mut bcast, MeshMode::Broadcast, 100, 21);
        assert_eq!(uni.router_hops, 100.0 * 3.0); // (7-1)/2 links
        assert_eq!(bcast.router_hops, 100.0 * 6.0); // 7-1 links
        assert!(multi.router_hops > 0.0);
        // Every delivered word is one local hop regardless of mode.
        assert_eq!(multi.local_hops, 2100.0);
        assert_eq!(uni.local_hops, 100.0);
    }

    #[test]
    fn charge_bus_matches_the_flex_factor() {
        let m = chip_mesh();
        let mut s = MeshStats::default();
        m.charge_bus(&mut s, 1000.0);
        assert!((s.total_hops() - 1000.0 * m.routing_factor()).abs() < 1e-9);
        assert_eq!(
            m.routing_factor(),
            eyeriss_dataflow::flex::mesh_routing_factor(3, 1, 7)
        );
    }

    #[test]
    fn stats_merge_adds() {
        let m = chip_mesh();
        let mut a = MeshStats::default();
        m.transfer(&mut a, MeshMode::Unicast, 10, 1);
        let b = a;
        a.merge(&b);
        assert_eq!(a.transactions, 2);
        assert_eq!(a.total_hops(), 2.0 * b.total_hops());
    }

    #[test]
    fn aggregate_bandwidth_feeds_a_cost_model() {
        let m = chip_mesh(); // 4x14 cluster grid: 4*13 + 14*3 = 94 links
        let bw = m.aggregate_bandwidth(2.0);
        assert_eq!(bw, 188.0);
        let priced = StaticCostModel::new("mesh-bw", EnergyModel::table_iv())
            .with_bandwidth(Level::Array, bw)
            .unwrap();
        assert_eq!(priced.bandwidth(Level::Array), 188.0);
        // The degenerate mesh still reports a usable bandwidth.
        let solo = HierarchicalMesh::single_cluster(GridDims::new(12, 14));
        assert_eq!(solo.aggregate_bandwidth(2.0), 2.0);
    }
}
