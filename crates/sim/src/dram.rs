//! Off-chip DRAM bandwidth model.
//!
//! Section VI-B argues that "prefetching, double buffering, caching and
//! pipelining ... are quite effective at hiding latency. Therefore, data
//! movement is not expected to impact overall throughput significantly."
//! This model lets the simulator *check* that claim instead of assuming
//! it: each processing pass overlaps its DRAM transfers with the previous
//! pass's compute (double buffering), and only the excess — transfer
//! cycles beyond compute cycles — stalls the array.

/// A bandwidth-limited DRAM channel.
///
/// # Example
///
/// ```
/// use eyeriss_sim::dram::DramModel;
///
/// let dram = DramModel::new(4.0);
/// assert_eq!(dram.transfer_cycles(16), 4);
/// assert_eq!(dram.transfer_cycles(17), 5); // partial beats round up
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramModel {
    words_per_cycle: f64,
}

impl DramModel {
    /// Creates a channel delivering `words_per_cycle` 16-bit words per
    /// accelerator cycle.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not positive.
    pub fn new(words_per_cycle: f64) -> Self {
        assert!(
            words_per_cycle > 0.0 && words_per_cycle.is_finite(),
            "bandwidth must be positive"
        );
        DramModel { words_per_cycle }
    }

    /// The fabricated chip's ballpark: a 64-bit DDR interface at the
    /// 200 MHz core clock (4 words/cycle).
    pub fn eyeriss_chip() -> Self {
        DramModel::new(4.0)
    }

    /// Channel bandwidth in words per cycle.
    pub fn words_per_cycle(&self) -> f64 {
        self.words_per_cycle
    }

    /// Cycles to move `words` (rounded up).
    pub fn transfer_cycles(&self, words: u64) -> u64 {
        (words as f64 / self.words_per_cycle).ceil() as u64
    }

    /// Stall cycles of a pass whose transfers are double-buffered against
    /// `compute_cycles` of array work: only the excess stalls.
    pub fn stall_cycles(&self, words: u64, compute_cycles: u64) -> u64 {
        self.transfer_cycles(words).saturating_sub(compute_cycles)
    }
}

impl Default for DramModel {
    fn default() -> Self {
        DramModel::eyeriss_chip()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_round_up() {
        let d = DramModel::new(3.0);
        assert_eq!(d.transfer_cycles(0), 0);
        assert_eq!(d.transfer_cycles(1), 1);
        assert_eq!(d.transfer_cycles(3), 1);
        assert_eq!(d.transfer_cycles(10), 4);
    }

    #[test]
    fn double_buffering_hides_transfers_under_compute() {
        let d = DramModel::new(2.0);
        assert_eq!(d.stall_cycles(100, 1000), 0);
        assert_eq!(d.stall_cycles(100, 10), 40);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        let _ = DramModel::new(0.0);
    }
}
