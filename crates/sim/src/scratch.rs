//! The reusable simulation arena: every buffer the execution engine
//! needs, owned once and recycled across passes, layers and runs.
//!
//! The Eyeriss argument is that data movement, not compute, dominates
//! cost; the simulator's own hot path used to prove the point by
//! accident — allocating fresh `Vec`s for PE scratchpads, psum strips
//! and RLC code words on every pass. [`SimScratch`] hoists all of that
//! into one arena so the steady-state execute path performs no heap
//! allocation beyond the returned output tensor.

use crate::gbuf::GlobalBuffer;
use crate::noc::{MulticastBus, PsumChain};
use crate::pe::Pe;

/// Reusable buffers for [`Accelerator`](crate::Accelerator) runs.
///
/// # Reuse rules
///
/// * A scratch is **transient state, not configuration**: its contents
///   after a run are meaningless, and every run re-arms it (PE pool
///   resized and reset, buffer/NoC counters zeroed) before executing.
/// * One scratch may be reused across **any** sequence of runs — other
///   layers, other batch sizes, other accelerator configurations, other
///   `Accelerator` instances. Reuse never changes a single output bit
///   or statistic; it only removes allocations. (Proven by the
///   scratch-reuse proptests in `tests/scratch_bitexact.rs`.)
/// * A scratch is **not** shareable between concurrent runs: it is
///   `&mut` for the duration of one layer. Give each worker thread its
///   own (see `eyeriss_par::par_map_slice_with`).
///
/// [`Accelerator::run_conv`](crate::Accelerator::run_conv) keeps a
/// private scratch internally, so plain callers already reuse buffers
/// across layers; pass an explicit scratch via
/// [`Accelerator::run_conv_with`](crate::Accelerator::run_conv_with)
/// only when pooling contexts across accelerators (e.g. a cluster
/// worker).
///
/// # Example
///
/// ```
/// use eyeriss_sim::{Accelerator, SimScratch};
/// use eyeriss_arch::AcceleratorConfig;
/// use eyeriss_nn::{synth, LayerShape};
///
/// let shape = LayerShape::conv(4, 3, 11, 3, 2)?;
/// let input = synth::ifmap(&shape, 1, 1);
/// let weights = synth::filters(&shape, 2);
/// let bias = synth::biases(&shape, 3);
///
/// let mut scratch = SimScratch::new();
/// let mut chip = Accelerator::new(AcceleratorConfig::eyeriss_chip());
/// let a = chip.run_conv_with(&mut scratch, &shape, 1, &input, &weights, &bias)?;
/// let b = chip.run_conv_with(&mut scratch, &shape, 1, &input, &weights, &bias)?;
/// assert_eq!(a.psums, b.psums); // reuse is invisible in the results
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimScratch {
    /// The PE pool: one entry per physical PE, spad allocations kept
    /// across runs.
    pub(crate) pes: Vec<Pe>,
    /// One ofmap row of partial sums (the per-primitive accumulator).
    pub(crate) row_acc: Vec<i32>,
    /// RLC code-word buffer for compression-ratio accounting.
    pub(crate) rlc_words: Vec<u64>,
    /// CSC value buffer for one encoded ifmap row (sparse execution).
    pub(crate) csc_values: Vec<eyeriss_nn::Fix16>,
    /// CSC index buffer paired with `csc_values`.
    pub(crate) csc_indices: Vec<u16>,
    /// Global-buffer occupancy/traffic counters.
    pub(crate) glb: GlobalBuffer,
    /// Filter multicast bus counters.
    pub(crate) filter_bus: MulticastBus,
    /// Ifmap multicast bus counters.
    pub(crate) ifmap_bus: MulticastBus,
    /// Psum chain counters.
    pub(crate) chain: PsumChain,
}

impl SimScratch {
    /// Creates an empty scratch. Buffers grow on first use and are kept
    /// thereafter.
    pub fn new() -> Self {
        SimScratch::default()
    }

    /// Re-arms the scratch for one layer run: the PE pool is resized to
    /// `pes` engines of the given spad capacities (allocations kept),
    /// every counter is zeroed and the global buffer adopts
    /// `buffer_words` capacity.
    pub(crate) fn prepare(
        &mut self,
        pes: usize,
        filter_capacity: usize,
        psum_capacity: usize,
        zero_gating: bool,
        buffer_words: usize,
    ) {
        self.pes
            .resize_with(pes, || Pe::new(filter_capacity, psum_capacity));
        for pe in &mut self.pes {
            pe.reset_run(filter_capacity, psum_capacity, zero_gating);
        }
        self.glb.reset(buffer_words);
        self.filter_bus.reset();
        self.ifmap_bus.reset();
        self.chain.reset();
    }
}
