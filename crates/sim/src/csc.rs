//! Compressed sparse column (CSC) encoding for PE-local sparse execution.
//!
//! Eyeriss v1 exploits sparsity twice — zero-gating the datapath
//! (Section V-E) and run-length compressing DRAM traffic ([`crate::rlc`])
//! — but every zero still occupies a scratchpad slot and a datapath
//! cycle's worth of inspection. Eyeriss v2 goes further: activations and
//! weights are *stored* compressed (a data vector plus a count/address
//! vector, its CSC format) and the PE iterates nonzeros directly, so zero
//! MACs are never even issued. This module provides the row codec and the
//! storage accounting; the PE-side iteration lives in
//! [`Pe::run_primitive_csc`](crate::pe::Pe::run_primitive_csc).
//!
//! The encoder writes into caller-owned buffers (the [`crate::SimScratch`]
//! arena), keeping the steady-state execute path allocation-free, exactly
//! like the RLC codec it sits beside.

use eyeriss_nn::{Fix16, Tensor4};

/// Nonzero count of `row`.
pub fn row_nnz(row: &[Fix16]) -> usize {
    row.iter().filter(|v| !v.is_zero()).count()
}

/// CSC storage accounting over every innermost row of `t` — the
/// granularity the PE consumes (one CSC vector per `(i0, i1, i2)` row).
/// Used to price DRAM traffic for tensors the chip stores compressed.
pub fn tensor_stats(t: &Tensor4<Fix16>) -> CscStats {
    let [d0, d1, d2, _] = t.dims();
    let mut cs = CscStats::default();
    for i0 in 0..d0 {
        for i1 in 0..d1 {
            for i2 in 0..d2 {
                let row = t.row(i0, i1, i2);
                cs.add_row(row.len(), row_nnz(row));
            }
        }
    }
    cs
}

/// Encodes one row into CSC form: `values[i]` is the i-th nonzero and
/// `indices[i]` its position in the dense row. Both buffers are cleared
/// first and only grow on the largest row ever seen (arena reuse).
///
/// # Panics
///
/// Panics if the row is longer than `u16::MAX` positions (layer
/// dimensions are bounded far below that).
pub fn encode_row_into(row: &[Fix16], values: &mut Vec<Fix16>, indices: &mut Vec<u16>) {
    assert!(
        row.len() <= u16::MAX as usize,
        "row too long for u16 indices"
    );
    values.clear();
    indices.clear();
    for (j, v) in row.iter().enumerate() {
        if !v.is_zero() {
            values.push(*v);
            indices.push(j as u16);
        }
    }
}

/// 16-bit words a CSC-encoded row occupies: one data word per nonzero,
/// 4-bit position counts packed four to a word, and one address word
/// anchoring the row in the combined vector (the v2 storage layout).
pub fn storage_words(nnz: usize) -> usize {
    nnz + nnz.div_ceil(4) + 1
}

/// Storage accounting of one layer's tensors under CSC: dense words vs.
/// encoded words, for the ifmap and filter data a run touched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CscStats {
    /// Dense storage of the encoded tensors, in 16-bit words.
    pub dense_words: u64,
    /// CSC storage of the same tensors, in 16-bit words.
    pub sparse_words: u64,
}

impl CscStats {
    /// Adds one row of `len` dense words with `nnz` nonzeros.
    pub fn add_row(&mut self, len: usize, nnz: usize) {
        self.dense_words += len as u64;
        self.sparse_words += storage_words(nnz) as u64;
    }

    /// Merges another accounting into this one.
    pub fn merge(&mut self, other: &CscStats) {
        self.dense_words += other.dense_words;
        self.sparse_words += other.sparse_words;
    }

    /// Dense / sparse storage ratio (1.0 when nothing was encoded; below
    /// 1.0 means the data was too dense for CSC to pay off).
    pub fn compression_ratio(&self) -> f64 {
        if self.sparse_words == 0 {
            1.0
        } else {
            self.dense_words as f64 / self.sparse_words as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(v: f32) -> Fix16 {
        Fix16::from_f32(v)
    }

    #[test]
    fn encode_keeps_only_nonzeros() {
        let row = [
            f(1.0),
            Fix16::ZERO,
            f(-2.0),
            Fix16::ZERO,
            Fix16::ZERO,
            f(0.5),
        ];
        let (mut vals, mut idxs) = (Vec::new(), Vec::new());
        encode_row_into(&row, &mut vals, &mut idxs);
        assert_eq!(vals, vec![f(1.0), f(-2.0), f(0.5)]);
        assert_eq!(idxs, vec![0, 2, 5]);
        assert_eq!(row_nnz(&row), 3);
        // Reuse clears the previous contents.
        encode_row_into(&[Fix16::ZERO; 4], &mut vals, &mut idxs);
        assert!(vals.is_empty() && idxs.is_empty());
    }

    #[test]
    fn storage_counts_data_counts_and_address() {
        assert_eq!(storage_words(0), 1); // empty row still needs its address
        assert_eq!(storage_words(4), 4 + 1 + 1);
        assert_eq!(storage_words(5), 5 + 2 + 1);
    }

    #[test]
    fn stats_ratio_rewards_sparsity() {
        let mut s = CscStats::default();
        s.add_row(32, 4);
        s.add_row(32, 0);
        assert_eq!(s.dense_words, 64);
        assert_eq!(s.sparse_words, (4 + 1 + 1) + 1);
        assert!(s.compression_ratio() > 5.0);
        let mut t = CscStats::default();
        t.merge(&s);
        assert_eq!(t, s);
        assert_eq!(CscStats::default().compression_ratio(), 1.0);
    }
}
