//! The accelerator: pass orchestration of the row-stationary dataflow
//! over the PE array, global buffer and NoCs.
//!
//! The simulator executes real Q8.8 data and is bit-exact against the
//! golden reference, while measuring every word moved across the
//! hierarchy. The second-phase folding loop order follows the mapping's
//! residency policy (Section V-B): either the filter group stays in the
//! buffer across batch/strip loops, or the ifmap strip stays resident
//! across filter groups.

use crate::csc::{self, CscStats};
use crate::dram::DramModel;
use crate::error::SimError;
use crate::mesh::{HierarchicalMesh, MeshStats};
use crate::passes::RsMapping;
use crate::rlc;
use crate::scratch::SimScratch;
use crate::stats::SimStats;
use eyeriss_arch::config::AcceleratorConfig;
use eyeriss_nn::{reference, Fix16, LayerKind, LayerShape, Tensor4};
use eyeriss_telemetry::Telemetry;
use std::collections::HashMap;

/// The result of simulating one layer.
#[derive(Debug, Clone)]
pub struct LayerRun {
    /// Full-precision psums `[N][M][E][E]`, bit-exact against
    /// [`eyeriss_nn::reference::conv_accumulate`].
    pub psums: Tensor4<i32>,
    /// Measured statistics.
    pub stats: SimStats,
    /// The mapping that was executed.
    pub mapping: RsMapping,
}

impl LayerRun {
    /// The quantized, ReLU-activated ofmap (what the chip writes back).
    pub fn ofmap(&self) -> Tensor4<Fix16> {
        reference::quantize(&self.psums, true)
    }
}

/// The simulated Eyeriss accelerator.
///
/// # Example
///
/// ```
/// use eyeriss_sim::Accelerator;
/// use eyeriss_arch::AcceleratorConfig;
///
/// let acc = Accelerator::new(AcceleratorConfig::eyeriss_chip());
/// assert_eq!(acc.config().num_pes(), 168);
/// ```
#[derive(Debug, Clone)]
pub struct Accelerator {
    config: AcceleratorConfig,
    zero_gating: bool,
    rlc_enabled: bool,
    csc_enabled: bool,
    mesh_model: Option<HierarchicalMesh>,
    dram: DramModel,
    /// Where layer/pass spans are recorded (defaults to the disabled
    /// [`Telemetry::global`] instance).
    tele: Telemetry,
    /// Private scratch arena, reused across every run on this chip.
    scratch: SimScratch,
    /// Memoized winning mappings per `(shape, batch)` — the search is
    /// deterministic on a fixed configuration, so replaying a layer
    /// reuses its mapping instead of re-scanning the candidate space.
    mappings: HashMap<(LayerShape, usize), RsMapping>,
}

impl Accelerator {
    /// Creates an accelerator with sparsity features disabled.
    pub fn new(config: AcceleratorConfig) -> Self {
        Accelerator {
            config,
            zero_gating: false,
            rlc_enabled: false,
            csc_enabled: false,
            mesh_model: None,
            dram: DramModel::default(),
            tele: Telemetry::global().clone(),
            scratch: SimScratch::new(),
            mappings: HashMap::new(),
        }
    }

    /// Routes this chip's `sim.layer` / `sim.pass` spans to `tele`
    /// instead of the global instance.
    pub fn telemetry(mut self, tele: Telemetry) -> Self {
        self.tele = tele;
        self
    }

    /// Overrides the DRAM bandwidth model.
    pub fn dram(mut self, dram: DramModel) -> Self {
        self.dram = dram;
        self
    }

    /// Enables zero-gating of the PE datapaths (Section V-E).
    pub fn zero_gating(mut self, on: bool) -> Self {
        self.zero_gating = on;
        self
    }

    /// Enables run-length compression of activation DRAM traffic.
    pub fn rlc(mut self, on: bool) -> Self {
        self.rlc_enabled = on;
        self
    }

    /// Enables CSC sparse execution: ifmap rows are encoded into the
    /// Eyeriss v2 compressed format and the PEs iterate nonzeros directly,
    /// never issuing zero MACs. Psums stay bit-exact against the dense
    /// path; [`SimStats::csc`] reports the storage win.
    pub fn csc(mut self, on: bool) -> Self {
        self.csc_enabled = on;
        self
    }

    /// Executes array traffic over a v2-style hierarchical mesh instead
    /// of the v1 single-bus NoC: array hop counts inflate by the mesh's
    /// routing factor and [`SimStats::mesh`] reports the local/router hop
    /// split.
    ///
    /// # Panics
    ///
    /// Panics if the mesh was built over a different PE grid than this
    /// accelerator's.
    pub fn mesh(mut self, mesh: HierarchicalMesh) -> Self {
        assert_eq!(
            mesh.grid(),
            self.config.grid,
            "mesh spans a different PE grid than this accelerator"
        );
        self.mesh_model = Some(mesh);
        self
    }

    /// The accelerator configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Runs one CONV or FC layer, returning bit-exact psums and measured
    /// statistics.
    ///
    /// Buffers (PE scratchpads, psum strips, RLC code words) and the
    /// winning mapping are reused across calls on the same chip, so
    /// repeated layers execute allocation-free and search-free in steady
    /// state.
    ///
    /// # Errors
    ///
    /// Fails if no feasible mapping exists or a capacity is exceeded.
    ///
    /// # Panics
    ///
    /// Panics if tensor dimensions disagree with `shape`.
    pub fn run_conv(
        &mut self,
        shape: &LayerShape,
        n_batch: usize,
        input: &Tensor4<Fix16>,
        weights: &Tensor4<Fix16>,
        bias: &[Fix16],
    ) -> Result<LayerRun, SimError> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let result = self.run_conv_with(&mut scratch, shape, n_batch, input, weights, bias);
        self.scratch = scratch;
        result
    }

    /// [`Accelerator::run_conv`] against a caller-owned [`SimScratch`] —
    /// for pooled execution contexts shared across accelerators (e.g.
    /// one scratch per cluster worker thread). See [`SimScratch`] for
    /// the reuse rules.
    ///
    /// # Errors
    ///
    /// Fails if no feasible mapping exists or a capacity is exceeded.
    ///
    /// # Panics
    ///
    /// Panics if tensor dimensions disagree with `shape`.
    pub fn run_conv_with(
        &mut self,
        scratch: &mut SimScratch,
        shape: &LayerShape,
        n_batch: usize,
        input: &Tensor4<Fix16>,
        weights: &Tensor4<Fix16>,
        bias: &[Fix16],
    ) -> Result<LayerRun, SimError> {
        let mapping = match self.mappings.get(&(*shape, n_batch)) {
            Some(&m) => m,
            None => {
                let m = RsMapping::plan(shape, n_batch, &self.config)?;
                self.mappings.insert((*shape, n_batch), m);
                m
            }
        };
        self.run_conv_mapped(scratch, mapping, shape, n_batch, input, weights, bias)
    }

    /// [`Accelerator::run_conv_mapped`] against the chip's internal
    /// scratch — the planned-execution path for callers that let the
    /// accelerator own its buffers.
    ///
    /// # Errors
    ///
    /// Fails if the mapping exceeds a scratchpad or buffer capacity.
    ///
    /// # Panics
    ///
    /// Panics if tensor dimensions disagree with `shape`, or the mapping
    /// addresses coordinates outside the layer.
    pub fn run_conv_planned(
        &mut self,
        mapping: RsMapping,
        shape: &LayerShape,
        n_batch: usize,
        input: &Tensor4<Fix16>,
        weights: &Tensor4<Fix16>,
        bias: &[Fix16],
    ) -> Result<LayerRun, SimError> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let result =
            self.run_conv_mapped(&mut scratch, mapping, shape, n_batch, input, weights, bias);
        self.scratch = scratch;
        result
    }

    /// Executes one layer under an explicitly chosen row-stationary
    /// mapping — the planned-execution path: a precompiled plan's
    /// winning candidate runs directly, with no repeat mapping search.
    ///
    /// The mapping must be feasible for `shape` on this configuration
    /// (any mapping produced by the row-stationary search against the
    /// same hardware is); infeasible spad/buffer demands surface as
    /// [`SimError`]s.
    ///
    /// # Errors
    ///
    /// Fails if the mapping exceeds a scratchpad or buffer capacity.
    ///
    /// # Panics
    ///
    /// Panics if tensor dimensions disagree with `shape`, or the mapping
    /// addresses coordinates outside the layer.
    #[allow(clippy::too_many_arguments)]
    pub fn run_conv_mapped(
        &mut self,
        scratch: &mut SimScratch,
        mapping: RsMapping,
        shape: &LayerShape,
        n_batch: usize,
        input: &Tensor4<Fix16>,
        weights: &Tensor4<Fix16>,
        bias: &[Fix16],
    ) -> Result<LayerRun, SimError> {
        assert_eq!(
            input.dims(),
            [n_batch, shape.in_channels(), shape.h, shape.h],
            "ifmap dims mismatch"
        );
        assert_eq!(
            weights.dims(),
            [shape.m, shape.c, shape.r, shape.r],
            "filter dims mismatch"
        );
        assert_eq!(bias.len(), shape.m, "bias length mismatch");

        let _layer_span = self.tele.span_with("sim.layer", "sim", n_batch as u64);
        // Grouped layers execute as `groups` sequential sub-runs over the
        // per-group shape, each engine addressing its own channel/filter
        // slice of the shared tensors. Ungrouped layers are the G = 1 case.
        let per_group = shape.per_group();
        let mut psums = Tensor4::zeros([n_batch, shape.m, shape.e, shape.e]);
        let mut stats = SimStats::default();
        for g in 0..shape.groups {
            let mut engine = Engine::new(
                self,
                scratch,
                &per_group,
                n_batch,
                mapping,
                input,
                weights,
                &mut psums,
                g * per_group.c,
                g * per_group.m,
            );
            engine.run()?;
            stats.merge(&engine.stats);
        }
        // Bias is added once per ofmap value; the paper's accounting
        // ignores its (negligible) movement energy.
        for z in 0..n_batch {
            for (f, bf) in bias.iter().enumerate() {
                let b = bf.to_accum();
                for x in 0..shape.e {
                    for p in psums.row_mut(z, f, x) {
                        *p += b;
                    }
                }
            }
        }
        if self.rlc_enabled || self.csc_enabled {
            // Tensors the chip stores compressed are priced at their
            // measured ratio. CSC supersedes RLC for ifmaps and covers
            // filters too (the v2 storage layout keeps both encoded end
            // to end); its ratio can dip below 1.0 on dense data — the
            // count/address vectors are overhead, and the model charges
            // it. Psums are never CSC-encoded, so their write stream
            // only benefits from RLC.
            let (in_ratio, filt_ratio) = if self.csc_enabled {
                (
                    csc::tensor_stats(input).compression_ratio(),
                    csc::tensor_stats(weights).compression_ratio(),
                )
            } else {
                let in_len = rlc::encode_into(input.as_slice(), &mut scratch.rlc_words);
                (rlc::ratio_of(in_len, &scratch.rlc_words), 1.0)
            };
            let out_ratio = if self.rlc_enabled {
                // The ofmap ratio streams the quantization — no
                // materialized ofmap tensor, identical arithmetic to
                // `reference::quantize(&psums, true)`.
                let out_len = rlc::encode_stream(
                    psums.iter().map(|&p| Fix16::from_accum(p).relu()),
                    &mut scratch.rlc_words,
                );
                rlc::ratio_of(out_len, &scratch.rlc_words)
            } else {
                1.0
            };
            let compressed = stats.profile.ifmap.dram_reads / in_ratio
                + stats.profile.filter.dram_reads / filt_ratio
                + stats.profile.psum.dram_writes / out_ratio;
            stats.dram_compressed_words = Some(compressed.round() as u64);
        }
        Ok(LayerRun {
            psums,
            stats,
            mapping,
        })
    }

    /// Runs a POOL layer by swapping the MAC for a MAX comparison
    /// (Section V-D), plane by plane.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is not a pooling shape or dimensions disagree.
    pub fn run_pool(
        &mut self,
        shape: &LayerShape,
        n_batch: usize,
        input: &Tensor4<Fix16>,
    ) -> (Tensor4<Fix16>, SimStats) {
        assert_eq!(shape.kind, LayerKind::Pool, "shape must be a POOL layer");
        let _pool_span = self.tele.span_with("sim.pool", "sim", n_batch as u64);
        let out = reference::max_pool(shape, n_batch, input);
        let outputs = (n_batch * shape.c * shape.e * shape.e) as u64;
        let window = (shape.r * shape.r) as u64;
        let mut stats = SimStats::default();
        stats.profile.ifmap.dram_reads = (n_batch * shape.c * shape.h * shape.h) as f64;
        stats.profile.ifmap.buffer_reads = stats.profile.ifmap.dram_reads;
        stats.profile.ifmap.rf_reads = (outputs * window) as f64;
        stats.profile.psum.dram_writes = outputs as f64;
        stats.profile.alu_ops = (outputs * window) as f64;
        stats.macs = outputs * window;
        let active = (shape.e * shape.e).min(self.config.num_pes()) as u64;
        stats.cycles = (outputs * window).div_ceil(active);
        (out, stats)
    }
}

/// Internal per-layer execution state. All reusable buffers live in the
/// borrowed [`SimScratch`]; the engine itself only allocates the output
/// tensor it returns.
struct Engine<'a> {
    shape: &'a LayerShape,
    n_batch: usize,
    mapping: RsMapping,
    input: &'a Tensor4<Fix16>,
    weights: &'a Tensor4<Fix16>,
    out: &'a mut Tensor4<i32>,
    /// First input channel of this engine's group slice.
    chan_base: usize,
    /// First filter of this engine's group slice.
    filt_base: usize,
    csc_enabled: bool,
    mesh: Option<HierarchicalMesh>,
    scratch: &'a mut SimScratch,
    grid_cols: usize,
    stats: SimStats,
    folds: (usize, usize, usize, usize),
    filters_from_dram: bool,
    dram: DramModel,
    pending_dram_words: u64,
    tele: &'a Telemetry,
}

impl<'a> Engine<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        acc: &'a Accelerator,
        scratch: &'a mut SimScratch,
        shape: &'a LayerShape,
        n_batch: usize,
        mapping: RsMapping,
        input: &'a Tensor4<Fix16>,
        weights: &'a Tensor4<Fix16>,
        out: &'a mut Tensor4<i32>,
        chan_base: usize,
        filt_base: usize,
    ) -> Self {
        let rf_words = acc.config.rf_words_per_pe();
        let grid = acc.config.grid;
        scratch.prepare(
            grid.count(),
            rf_words,
            rf_words,
            acc.zero_gating,
            acc.config.buffer_words(),
        );
        let folds = mapping.fold_counts(shape, n_batch);
        Engine {
            shape,
            n_batch,
            mapping,
            input,
            weights,
            out,
            chan_base,
            filt_base,
            csc_enabled: acc.csc_enabled,
            mesh: acc.mesh_model,
            scratch,
            grid_cols: grid.cols,
            stats: SimStats::default(),
            folds,
            filters_from_dram: !mapping.filter_resident,
            dram: acc.dram,
            pending_dram_words: 0,
            tele: &acc.tele,
        }
    }

    fn run(&mut self) -> Result<(), SimError> {
        let (ngs, mgs, cgs, sgs) = self.folds;
        if self.mapping.filter_resident {
            for mg in 0..mgs {
                self.stage_filter_group(mg)?;
                for ng in 0..ngs {
                    for sg in 0..sgs {
                        self.reserve_strip_psums(mg, ng, sg, false)?;
                        for cg in 0..cgs {
                            self.stage_ifmap_slice(ng, sg, cg)?;
                            self.run_pass(mg, ng, sg, cg)?;
                        }
                        self.writeback_strip(mg..mg + 1, ng, sg);
                        self.scratch.glb.release_psums();
                    }
                }
            }
        } else {
            for ng in 0..ngs {
                for sg in 0..sgs {
                    self.reserve_strip_psums(0, ng, sg, true)?;
                    for cg in 0..cgs {
                        self.stage_ifmap_slice(ng, sg, cg)?;
                        for mg in 0..mgs {
                            self.run_pass(mg, ng, sg, cg)?;
                        }
                    }
                    self.writeback_strip(0..mgs, ng, sg);
                    self.scratch.glb.release_psums();
                }
            }
        }
        // Fold PE counters into the profile.
        let mut pe_total = crate::pe::PeStats::default();
        for pe in &self.scratch.pes {
            pe_total.merge(&pe.stats);
        }
        self.stats.macs = pe_total.macs;
        self.stats.skipped_macs = pe_total.skipped_macs;
        self.stats.profile.alu_ops = pe_total.macs as f64;
        self.stats.profile.ifmap.rf_reads = pe_total.ifmap_reads as f64;
        self.stats.profile.filter.rf_reads = pe_total.filter_reads as f64;
        self.stats.profile.filter.rf_writes = pe_total.filter_writes as f64;
        self.stats.profile.psum.rf_reads = pe_total.psum_reads as f64;
        self.stats.profile.psum.rf_writes = pe_total.psum_writes as f64;
        let filter_hops = self.scratch.filter_bus.stats.word_hops as f64;
        let ifmap_hops = self.scratch.ifmap_bus.stats.word_hops as f64;
        let psum_hops = self.scratch.chain.stats.word_hops as f64;
        if let Some(mesh) = self.mesh {
            // The v1 buses counted delivery hops; rides over the mesh keep
            // those as local hops and add the routing factor's excess as
            // router traversals, so the charged array cost is
            // hops x factor — the same closed form the flex-rs analytical
            // profiles use.
            let mut ms = MeshStats {
                transactions: self.scratch.filter_bus.stats.transactions
                    + self.scratch.ifmap_bus.stats.transactions
                    + self.scratch.chain.stats.transactions,
                ..MeshStats::default()
            };
            mesh.charge_bus(&mut ms, filter_hops);
            mesh.charge_bus(&mut ms, ifmap_hops);
            mesh.charge_bus(&mut ms, psum_hops);
            let factor = mesh.routing_factor();
            self.stats.profile.filter.array_hops = filter_hops * factor;
            self.stats.profile.ifmap.array_hops = ifmap_hops * factor;
            self.stats.profile.psum.array_hops = psum_hops * factor;
            self.stats.mesh = Some(ms);
        } else {
            self.stats.profile.filter.array_hops = filter_hops;
            self.stats.profile.ifmap.array_hops = ifmap_hops;
            self.stats.profile.psum.array_hops = psum_hops;
        }
        if self.csc_enabled {
            self.stats.csc = Some(self.csc_storage());
        }
        self.stats.dram_raw_words =
            (self.stats.profile.dram_reads() + self.stats.profile.dram_writes()).round() as u64;
        debug_assert!(self.stats.profile.is_valid());
        Ok(())
    }

    /// CSC storage accounting over this engine's slice of the tensors:
    /// every ifmap row of its input channels and every filter row of its
    /// filter group, priced dense vs. encoded.
    fn csc_storage(&self) -> CscStats {
        let mut cs = CscStats::default();
        let s = self.shape;
        for z in 0..self.n_batch {
            for c in 0..s.c {
                for hh in 0..s.h {
                    let row = self.input.row(z, self.chan_base + c, hh);
                    cs.add_row(row.len(), csc::row_nnz(row));
                }
            }
        }
        for f in 0..s.m {
            for c in 0..s.c {
                for i in 0..s.r {
                    let row = self.weights.row(self.filt_base + f, c, i);
                    cs.add_row(row.len(), csc::row_nnz(row));
                }
            }
        }
        cs
    }

    /// Loads a filter group (all channels) into the buffer, once per group.
    fn stage_filter_group(&mut self, mg: usize) -> Result<(), SimError> {
        let mut words = 0usize;
        for sh in 0..self.mapping.t {
            let fs = self.mapping.filters_of(self.shape, mg, sh);
            words += fs.len() * self.shape.c * self.shape.r * self.shape.r;
        }
        self.stats.profile.filter.dram_reads += words as f64;
        self.pending_dram_words += words as u64;
        self.scratch.glb.stage_filters(words)
    }

    /// Reserves the strip's psum tile in the buffer (only needed when the
    /// accumulation folds over more than one channel group).
    fn reserve_strip_psums(
        &mut self,
        mg: usize,
        ng: usize,
        sg: usize,
        all_filters: bool,
    ) -> Result<(), SimError> {
        let (_, _, cgs, _) = self.folds;
        if cgs <= 1 || self.shape.is_fc_shaped() {
            // Completed spatially / retained in the RF: no buffer tile.
            return Ok(());
        }
        let imgs = self.mapping.images_of(self.n_batch, ng).len();
        let rows = self.mapping.ofmap_rows_of(self.shape, sg).len();
        let filters = if all_filters {
            self.shape.m
        } else {
            (0..self.mapping.t)
                .map(|sh| self.mapping.filters_of(self.shape, mg, sh).len())
                .sum()
        };
        self.scratch
            .glb
            .reserve_psums(imgs * filters * rows * self.shape.e)
    }

    /// Fetches the ifmap rows a (batch group, strip, channel group) pass
    /// needs from DRAM into the buffer.
    fn stage_ifmap_slice(&mut self, ng: usize, sg: usize, cg: usize) -> Result<(), SimError> {
        let imgs = self.mapping.images_of(self.n_batch, ng).len();
        let yrows = self.mapping.ofmap_rows_of(self.shape, sg);
        let rows_needed = (yrows.len() - 1) * self.shape.u + self.shape.r;
        let mut channels = 0usize;
        for sv in 0..self.mapping.r {
            channels += self.mapping.channels_of(self.shape, cg, sv).len();
        }
        let words = imgs * channels * rows_needed * self.shape.h;
        self.stats.profile.ifmap.dram_reads += words as f64;
        self.pending_dram_words += words as u64;
        self.scratch.glb.stage_ifmap(words)
    }

    /// Executes one processing pass: filter loads, ifmap multicast, the
    /// 1-D primitives, vertical accumulation and psum folding.
    ///
    /// The pass is allocation-free: ifmap and filter rows are borrowed
    /// straight out of the tensors (contiguous innermost rows), and the
    /// psum row accumulator is the scratch arena's, zeroed per use.
    fn run_pass(&mut self, mg: usize, ng: usize, sg: usize, cg: usize) -> Result<(), SimError> {
        let _span = self.tele.span("sim.pass", "sim");
        let shape = *self.shape;
        let map = self.mapping;
        let (_, _, cgs, _) = self.folds;
        let imgs = map.images_of(self.n_batch, ng);
        let yrows = map.ofmap_rows_of(&shape, sg);
        let e_cols = yrows.len();
        if e_cols == 0 || imgs.is_empty() {
            return Ok(());
        }
        let (r_filt, u, e_dim, h) = (shape.r, shape.u, shape.e, shape.h);
        let grid_cols = self.grid_cols;
        // Split borrows: the scratch's buffers, the engine's counters and
        // the borrowed tensors are disjoint places, so the inner loops
        // index PEs and tensor rows directly with no per-row copies.
        let SimScratch {
            pes,
            row_acc,
            csc_values,
            csc_indices,
            glb,
            filter_bus,
            ifmap_bus,
            chain,
            ..
        } = &mut *self.scratch;
        let stats = &mut self.stats;
        let (input, weights, out) = (self.input, self.weights, &mut *self.out);
        let (chan_base, filt_base, csc_on) = (self.chan_base, self.filt_base, self.csc_enabled);

        // ---- reset and load stationary filter rows -------------------------
        for sv in 0..map.r {
            for i in 0..r_filt {
                for sh in 0..map.t {
                    for yy in 0..e_cols {
                        pes[(sv * r_filt + i) * grid_cols + sh * map.e + yy].reset_pass();
                    }
                }
            }
        }
        for sv in 0..map.r {
            let cs = map.channels_of(&shape, cg, sv);
            for sh in 0..map.t {
                let fs = map.filters_of(&shape, mg, sh);
                for i in 0..r_filt {
                    for f in fs.clone() {
                        for c in cs.clone() {
                            if self.filters_from_dram {
                                stats.profile.filter.dram_reads += r_filt as f64;
                                self.pending_dram_words += r_filt as u64;
                            } else {
                                glb.read_words(r_filt);
                                stats.profile.filter.buffer_reads += r_filt as f64;
                            }
                            filter_bus.multicast(r_filt, e_cols);
                            let row = weights.row(filt_base + f, c, i);
                            for yy in 0..e_cols {
                                pes[(sv * r_filt + i) * grid_cols + sh * map.e + yy]
                                    .load_filter_row(row)
                                    .map_err(|over| {
                                        SimError::new(format!(
                                            "filter spad overflow by {over} words"
                                        ))
                                    })?;
                            }
                        }
                    }
                }
            }
        }

        // ---- ifmap multicast (diagonal within sets, shared across t) -------
        let rows_needed = (e_cols - 1) * u + r_filt;
        for sv in 0..map.r {
            let cs = map.channels_of(&shape, cg, sv);
            for _z in imgs.clone() {
                for _c in cs.clone() {
                    for local_h in 0..rows_needed {
                        let consumers = (0..e_cols)
                            .filter(|yy| local_h >= u * yy && local_h - u * yy < r_filt)
                            .count();
                        if consumers == 0 {
                            continue;
                        }
                        glb.read_words(h);
                        stats.profile.ifmap.buffer_reads += h as f64;
                        ifmap_bus.multicast(h, consumers * map.t);
                    }
                }
            }
        }

        // ---- compute: 1-D primitives + vertical accumulation ---------------
        let mut max_set_ops = 0u64;
        for sh in 0..map.t {
            let fs = map.filters_of(&shape, mg, sh);
            for (yy, y) in yrows.clone().enumerate() {
                for f in fs.clone() {
                    for z in imgs.clone() {
                        row_acc.clear();
                        row_acc.resize(e_dim, 0);
                        let mut chain_len = 0usize;
                        for sv in 0..map.r {
                            let cs = map.channels_of(&shape, cg, sv);
                            if cs.is_empty() {
                                continue;
                            }
                            chain_len += r_filt;
                            for i in 0..r_filt {
                                let pe = &mut pes[(sv * r_filt + i) * grid_cols + sh * map.e + yy];
                                for c in cs.clone() {
                                    let row_index =
                                        ((f - fs.start) * cs.len() + (c - cs.start)) * r_filt;
                                    let row = input.row(z, chan_base + c, u * y + i);
                                    if csc_on {
                                        csc::encode_row_into(row, csc_values, csc_indices);
                                        pe.run_primitive_csc(
                                            row_index,
                                            csc_values,
                                            csc_indices,
                                            row.len(),
                                            u,
                                            true,
                                            row_acc,
                                        );
                                    } else {
                                        pe.run_primitive(row_index, row, u, true, row_acc);
                                    }
                                }
                            }
                        }
                        if chain_len > 0 {
                            chain.accumulate(e_dim, chain_len);
                        }
                        // Fold into the strip psums (through the buffer when
                        // the accumulation spans channel groups).
                        if cgs > 1 {
                            if cg > 0 {
                                glb.read_words(e_dim);
                                stats.profile.psum.buffer_reads += e_dim as f64;
                            }
                            if cg + 1 < cgs {
                                glb.write_words(e_dim);
                                stats.profile.psum.buffer_writes += e_dim as f64;
                            }
                        }
                        for (o, v) in out
                            .row_mut(z, filt_base + f, y)
                            .iter_mut()
                            .zip(row_acc.iter())
                        {
                            *o += v;
                        }
                    }
                }
            }
            // Busiest set bounds the pass latency.
            let set_ops = (imgs.len() * fs.len() * e_dim * r_filt) as u64
                * (0..map.r)
                    .map(|sv| map.channels_of(&shape, cg, sv).len())
                    .max()
                    .unwrap_or(0) as u64;
            max_set_ops = max_set_ops.max(set_ops);
        }
        stats.cycles += max_set_ops;
        // Double buffering overlaps this pass's DRAM traffic with its
        // compute; only the excess stalls the array.
        stats.stall_cycles += self.dram.stall_cycles(self.pending_dram_words, max_set_ops);
        self.pending_dram_words = 0;
        Ok(())
    }

    /// Writes the completed strip psums back to DRAM.
    fn writeback_strip(&mut self, mgs: std::ops::Range<usize>, ng: usize, sg: usize) {
        let imgs = self.mapping.images_of(self.n_batch, ng).len();
        let rows = self.mapping.ofmap_rows_of(self.shape, sg).len();
        let mut filters = 0usize;
        for mg in mgs {
            for sh in 0..self.mapping.t {
                filters += self.mapping.filters_of(self.shape, mg, sh).len();
            }
        }
        let words = imgs * filters * rows * self.shape.e;
        self.stats.profile.psum.dram_writes += words as f64;
        self.pending_dram_words += words as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeriss_nn::{alexnet, synth};

    fn small_chip() -> AcceleratorConfig {
        AcceleratorConfig {
            grid: eyeriss_arch::GridDims::new(6, 8),
            rf_bytes_per_pe: 512.0,
            buffer_bytes: 32.0 * 1024.0,
        }
    }

    fn run_and_check(shape: &LayerShape, n: usize, config: AcceleratorConfig) -> LayerRun {
        let input = synth::ifmap(shape, n, 11);
        let weights = synth::filters(shape, 12);
        let bias = synth::biases(shape, 13);
        let mut acc = Accelerator::new(config);
        let run = acc.run_conv(shape, n, &input, &weights, &bias).unwrap();
        let golden = reference::conv_accumulate(shape, n, &input, &weights, &bias);
        assert_eq!(run.psums, golden, "simulator diverged from golden model");
        run
    }

    #[test]
    fn bit_exact_on_strided_conv() {
        let shape = LayerShape::conv(6, 3, 19, 3, 2).unwrap();
        run_and_check(&shape, 2, small_chip());
    }

    #[test]
    fn bit_exact_on_multi_strip_layer() {
        // E = 13 exceeds the 8-wide array -> strip mining exercised.
        let shape = LayerShape::conv(4, 5, 15, 3, 1).unwrap();
        run_and_check(&shape, 1, small_chip());
    }

    #[test]
    fn bit_exact_on_fc_shape() {
        let shape = LayerShape::fully_connected(10, 6, 4).unwrap();
        run_and_check(&shape, 3, small_chip());
    }

    #[test]
    fn bit_exact_on_scaled_alexnet_conv3() {
        // CONV3 geometry (3x3, 13x13 ofmap) at reduced channel counts.
        let shape = LayerShape::conv(8, 6, 15, 3, 1).unwrap();
        let run = run_and_check(&shape, 2, AcceleratorConfig::eyeriss_chip());
        assert_eq!(run.stats.macs, shape.macs(2));
    }

    #[test]
    fn mac_count_matches_shape() {
        let shape = LayerShape::conv(5, 4, 11, 3, 2).unwrap();
        let run = run_and_check(&shape, 2, small_chip());
        assert_eq!(run.stats.macs, shape.macs(2));
        assert_eq!(
            run.stats.profile.psum.dram_writes,
            shape.ofmap_words(2) as f64
        );
    }

    #[test]
    fn zero_gating_skips_but_matches() {
        let shape = LayerShape::conv(4, 3, 12, 3, 1).unwrap();
        let input = synth::sparse_ifmap(&shape, 1, 5, 0.6);
        let weights = synth::filters(&shape, 6);
        let bias = synth::biases(&shape, 7);
        let golden = reference::conv_accumulate(&shape, 1, &input, &weights, &bias);

        let mut acc = Accelerator::new(small_chip()).zero_gating(true);
        let run = acc.run_conv(&shape, 1, &input, &weights, &bias).unwrap();
        assert_eq!(run.psums, golden);
        assert!(run.stats.gating_fraction() > 0.4);
        assert_eq!(run.stats.macs + run.stats.skipped_macs, shape.macs(1));
    }

    #[test]
    fn rlc_reduces_sparse_dram_traffic() {
        let shape = LayerShape::conv(4, 3, 12, 3, 1).unwrap();
        let input = synth::sparse_ifmap(&shape, 1, 5, 0.7);
        let weights = synth::filters(&shape, 6);
        let bias = synth::biases(&shape, 7);
        let mut acc = Accelerator::new(small_chip()).rlc(true);
        let run = acc.run_conv(&shape, 1, &input, &weights, &bias).unwrap();
        assert!(
            run.stats.compression_ratio() > 1.2,
            "ratio {}",
            run.stats.compression_ratio()
        );
    }

    #[test]
    fn pool_layer_matches_reference() {
        let shape = LayerShape::pool(3, 8, 2, 2).unwrap();
        let input = synth::ifmap(&shape, 2, 3);
        let mut acc = Accelerator::new(small_chip());
        let (out, stats) = acc.run_pool(&shape, 2, &input);
        assert_eq!(out, reference::max_pool(&shape, 2, &input));
        assert_eq!(stats.macs, (2 * 3 * 4 * 4 * 4) as u64);
    }

    #[test]
    fn utilization_is_sane() {
        let shape = LayerShape::conv(8, 6, 15, 3, 1).unwrap();
        let run = run_and_check(&shape, 2, small_chip());
        let util = run.stats.utilization(48);
        assert!(util > 0.05 && util <= 1.0, "utilization {util}");
    }

    #[test]
    fn chip_runs_alexnet_conv1_slice() {
        // CONV1 geometry (11x11, stride 4) with few filters/channels.
        let shape = LayerShape::conv(4, 3, 227, 11, 4).unwrap();
        let run = run_and_check(&shape, 1, AcceleratorConfig::eyeriss_chip());
        assert!(run.stats.cycles > 0);
    }

    #[test]
    fn rf_dominates_onchip_energy_for_conv() {
        use eyeriss_arch::cost::TableIv;
        // The chip-verification claim of Section VII-A: RF : (buffer+array)
        // is roughly 4:1 for CONV layers under RS.
        let shape = LayerShape::conv(16, 8, 19, 3, 1).unwrap();
        let run = run_and_check(&shape, 4, AcceleratorConfig::eyeriss_chip());
        let ratio = run.stats.rf_to_onchip_rest_ratio(&TableIv);
        assert!(
            (1.5..=10.0).contains(&ratio),
            "RF:on-chip-rest ratio {ratio:.2}"
        );
    }

    #[test]
    fn grouped_conv_is_bit_exact() {
        // 3 groups of 2 input channels, 2 filters each.
        let shape = LayerShape::conv_grouped(6, 2, 13, 3, 1, 3).unwrap();
        run_and_check(&shape, 2, small_chip());
    }

    #[test]
    fn depthwise_conv_is_bit_exact() {
        let shape = LayerShape::depthwise(5, 11, 3, 1).unwrap();
        let run = run_and_check(&shape, 2, small_chip());
        assert_eq!(run.stats.macs, shape.macs(2));
    }

    #[test]
    fn csc_execution_is_bit_exact_and_skips_zeros() {
        let shape = LayerShape::conv(4, 3, 12, 3, 1).unwrap();
        let input = synth::sparse_ifmap(&shape, 1, 5, 0.6);
        let weights = synth::filters(&shape, 6);
        let bias = synth::biases(&shape, 7);
        let golden = reference::conv_accumulate(&shape, 1, &input, &weights, &bias);

        let mut dense = Accelerator::new(small_chip());
        let mut sparse = Accelerator::new(small_chip()).csc(true);
        let d = dense.run_conv(&shape, 1, &input, &weights, &bias).unwrap();
        let s = sparse.run_conv(&shape, 1, &input, &weights, &bias).unwrap();
        assert_eq!(s.psums, golden);
        assert_eq!(s.psums, d.psums);
        // CSC never issues the zero MACs the dense path executes.
        assert_eq!(s.stats.macs + s.stats.skipped_macs, d.stats.macs);
        assert!(s.stats.skipped_macs > 0);
        assert!(s.stats.profile.ifmap.rf_reads < d.stats.profile.ifmap.rf_reads);
        let cs = s.stats.csc.expect("CSC stats recorded");
        assert!(cs.compression_ratio() > 1.0, "{cs:?}");
        assert!(d.stats.csc.is_none());
    }

    #[test]
    fn csc_prices_dram_traffic_like_rlc() {
        use eyeriss_arch::cost::TableIv;
        let shape = LayerShape::conv(4, 3, 12, 3, 1).unwrap();
        let input = synth::sparse_ifmap(&shape, 1, 5, 0.7);
        let weights = synth::filters(&shape, 6);
        let bias = synth::biases(&shape, 7);
        let mut sparse = Accelerator::new(small_chip()).csc(true);
        let s = sparse.run_conv(&shape, 1, &input, &weights, &bias).unwrap();
        // Sparse execution prices ifmap + filter DRAM traffic at the
        // measured CSC storage ratio.
        assert!(
            s.stats.compression_ratio() > 1.0,
            "ratio {}",
            s.stats.compression_ratio()
        );
        // The compressed report charges strictly less DRAM energy, and
        // leaves every other level untouched.
        use eyeriss_arch::energy::Level;
        let full = s.stats.cost_report(&TableIv);
        let cheap = s.stats.compressed_cost_report(&TableIv);
        assert!(cheap.energy_at(Level::Dram) < full.energy_at(Level::Dram));
        assert_eq!(cheap.energy_at(Level::Rf), full.energy_at(Level::Rf));
        assert_eq!(
            cheap.energy_at(Level::Buffer),
            full.energy_at(Level::Buffer)
        );
        // A dense run's compressed report is the identity.
        let mut dense = Accelerator::new(small_chip());
        let d = dense.run_conv(&shape, 1, &input, &weights, &bias).unwrap();
        assert_eq!(
            d.stats.compressed_cost_report(&TableIv).data_energy(),
            d.stats.cost_report(&TableIv).data_energy()
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]
        #[test]
        fn prop_csc_chip_runs_are_bit_exact_at_any_sparsity(
            seed in 0u64..1_000,
            // 0 -> fully dense, 10 -> all-zero ifmap, else in between.
            sparsity_tenths in 0u32..=10,
            depthwise in proptest::arbitrary::any::<bool>(),
        ) {
            let sparsity = f64::from(sparsity_tenths) / 10.0;
            // The layer-level version of the PE property: whole grouped
            // and ungrouped runs stay bit-exact under CSC at every
            // sparsity, and the SimStats work invariant holds.
            let shape = if depthwise {
                LayerShape::depthwise(4, 11, 3, 1).unwrap()
            } else {
                LayerShape::conv(3, 2, 11, 3, 1).unwrap()
            };
            let input = synth::sparse_ifmap(&shape, 1, seed, sparsity);
            let weights = synth::filters(&shape, seed ^ 0xf11e);
            let bias = synth::biases(&shape, seed ^ 0xb1a5);
            let golden = reference::conv_accumulate(&shape, 1, &input, &weights, &bias);

            let mut dense = Accelerator::new(small_chip());
            let mut sparse = Accelerator::new(small_chip()).csc(true);
            let d = dense.run_conv(&shape, 1, &input, &weights, &bias).unwrap();
            let s = sparse.run_conv(&shape, 1, &input, &weights, &bias).unwrap();
            proptest::prop_assert_eq!(&s.psums, &golden);
            proptest::prop_assert_eq!(&s.psums, &d.psums);
            proptest::prop_assert_eq!(s.stats.macs + s.stats.skipped_macs, d.stats.macs);
            proptest::prop_assert!(s.stats.csc.is_some());
        }
    }

    #[test]
    fn mesh_execution_inflates_array_hops_by_the_routing_factor() {
        let shape = LayerShape::conv(4, 3, 12, 3, 1).unwrap();
        let input = synth::ifmap(&shape, 1, 5);
        let weights = synth::filters(&shape, 6);
        let bias = synth::biases(&shape, 7);

        let config = small_chip();
        let mesh =
            crate::mesh::HierarchicalMesh::new(config.grid, eyeriss_arch::GridDims::new(3, 1), 4)
                .unwrap();
        let factor = mesh.routing_factor();
        assert!(factor > 1.0);
        let mut bus = Accelerator::new(config);
        let mut meshed = Accelerator::new(config).mesh(mesh);
        let b = bus.run_conv(&shape, 1, &input, &weights, &bias).unwrap();
        let m = meshed.run_conv(&shape, 1, &input, &weights, &bias).unwrap();
        assert_eq!(m.psums, b.psums, "mesh must not change arithmetic");
        for (mh, bh) in [
            (
                m.stats.profile.filter.array_hops,
                b.stats.profile.filter.array_hops,
            ),
            (
                m.stats.profile.ifmap.array_hops,
                b.stats.profile.ifmap.array_hops,
            ),
            (
                m.stats.profile.psum.array_hops,
                b.stats.profile.psum.array_hops,
            ),
        ] {
            assert!((mh - bh * factor).abs() < 1e-6, "{mh} vs {bh} x {factor}");
        }
        let ms = m.stats.mesh.expect("mesh stats recorded");
        let bus_hops = b.stats.profile.filter.array_hops
            + b.stats.profile.ifmap.array_hops
            + b.stats.profile.psum.array_hops;
        assert!((ms.total_hops() - bus_hops * factor).abs() < 1e-6);
        assert!(ms.router_hops > 0.0);
        assert!(b.stats.mesh.is_none());
    }

    #[test]
    fn alexnet_layer_mappings_execute_on_chip() {
        // Shape-preserving shrink of every AlexNet CONV layer (smaller M/C,
        // same R/U geometry) to keep runtimes reasonable.
        for layer in alexnet::conv_layers() {
            let s = &layer.shape;
            let shrunk = LayerShape::conv(4, s.c.min(4), s.h.min(31 + s.r - 1), s.r, s.u);
            let Ok(shape) = shrunk else { continue };
            run_and_check(&shape, 1, AcceleratorConfig::eyeriss_chip());
        }
    }
}
