//! Minimal data-parallelism for the Eyeriss workspace.
//!
//! The cluster executor and the mapping-search hot path want a rayon-style
//! `par_iter().map().collect()`, but this workspace builds offline with no
//! external crates, so this module provides the one primitive they need:
//! an order-preserving parallel map built on [`std::thread::scope`]. Work
//! is split into one contiguous chunk per worker — the workloads here
//! (scoring mapping candidates, simulating per-array sub-problems) are
//! uniform enough that static chunking is within noise of work stealing.

use std::num::NonZeroUsize;
use std::thread;

/// Number of worker threads a parallel call will use (the machine's
/// available parallelism, at least 1).
pub fn num_threads() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` in parallel, preserving order.
///
/// Spawns at most [`num_threads`] scoped threads, each owning one
/// contiguous chunk. Falls back to a plain sequential map for a single
/// item or a single hardware thread. Panics in `f` propagate to the
/// caller (the scope joins all workers first).
///
/// # Example
///
/// ```
/// let squares = eyeriss_par::par_map(vec![1u64, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = num_threads().min(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Split into `workers` contiguous chunks whose sizes differ by <= 1.
    let len = items.len();
    let base = len / workers;
    let extra = len % workers;
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut rest = items;
    for w in 0..workers {
        let take = base + usize::from(w < extra);
        let tail = rest.split_off(take);
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    debug_assert!(rest.is_empty());

    let f = &f;
    thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(len);
        for handle in handles {
            out.extend(handle.join().expect("parallel worker panicked"));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let n = 10_000usize;
        let out = par_map((0..n).collect(), |x| x * 2);
        assert_eq!(out, (0..n).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = par_map((0..997usize).collect(), |x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 997);
        assert_eq!(counter.load(Ordering::Relaxed), 997);
    }

    #[test]
    fn handles_degenerate_sizes() {
        assert_eq!(par_map(Vec::<u8>::new(), |x| x), Vec::<u8>::new());
        assert_eq!(par_map(vec![7u8], |x| x + 1), vec![8]);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let _ = par_map((0..1000u32).collect(), |x| {
            assert!(x != 500, "boom");
            x
        });
    }
}
