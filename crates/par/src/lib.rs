//! Minimal data-parallelism for the Eyeriss workspace.
//!
//! The cluster executor and the mapping-search hot path want a rayon-style
//! `par_iter().map().collect()`, but this workspace builds offline with no
//! external crates, so this module provides the one primitive they need:
//! an order-preserving parallel map built on [`std::thread::scope`]. Work
//! is split into one contiguous chunk per worker — the workloads here
//! (scoring mapping candidates, simulating per-array sub-problems) are
//! uniform enough that static chunking is within noise of work stealing.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Number of worker threads a parallel call will use (the machine's
/// available parallelism, at least 1).
pub fn num_threads() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` in parallel, preserving order.
///
/// Spawns at most [`num_threads`] scoped threads, each owning one
/// contiguous chunk. Falls back to a plain sequential map for a single
/// item or a single hardware thread. Panics in `f` propagate to the
/// caller (the scope joins all workers first).
///
/// # Example
///
/// ```
/// let squares = eyeriss_par::par_map(vec![1u64, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = num_threads().min(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Split into `workers` contiguous chunks whose sizes differ by <= 1.
    let len = items.len();
    let base = len / workers;
    let extra = len % workers;
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut rest = items;
    for w in 0..workers {
        let take = base + usize::from(w < extra);
        let tail = rest.split_off(take);
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    debug_assert!(rest.is_empty());

    let f = &f;
    thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(len);
        for handle in handles {
            out.extend(handle.join().expect("parallel worker panicked"));
        }
        out
    })
}

/// How many chunks each worker gets on average in the slice-borrowing
/// maps. Oversubscribing chunks (more chunks than workers, handed out
/// dynamically) keeps every thread busy when per-item costs are skewed —
/// e.g. cluster sub-problems whose tile counts differ, or mapping
/// candidates whose validation cost varies with the fold structure.
const CHUNKS_PER_WORKER: usize = 4;

/// Maps `f` over a borrowed slice in parallel, preserving order, without
/// taking ownership of (or moving) any element.
///
/// Unlike [`par_map`], items stay where they are: workers receive `&T`,
/// so the caller can map over data it only borrows (a compiled plan's
/// sub-problems, a candidate list that will be indexed afterwards). Work
/// is handed out as several times more chunks than workers
/// (`CHUNKS_PER_WORKER`), claimed dynamically, so skewed per-item costs
/// do not leave threads idle behind one unlucky static chunk.
///
/// # Example
///
/// ```
/// let data = vec![1u64, 2, 3, 4];
/// let squares = eyeriss_par::par_map_slice(&data, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// assert_eq!(data.len(), 4); // still owned by the caller
/// ```
pub fn par_map_slice<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_slice_with(items, || (), move |(), item| f(item))
}

/// [`par_map_slice`] with per-worker state: `init` runs once on each
/// worker thread and the resulting state is threaded through every item
/// that worker processes.
///
/// This is the hook for persistent execution contexts — e.g. one
/// simulator (with its scratch arena) per worker, reused across every
/// sub-problem that worker claims, instead of a fresh allocation per
/// item. Falls back to a sequential map (single state) for tiny inputs
/// or single-threaded machines. Panics in `init` or `f` propagate to the
/// caller.
///
/// # Example
///
/// ```
/// let data = vec![3u64, 1, 4, 1, 5];
/// let out = eyeriss_par::par_map_slice_with(
///     &data,
///     Vec::new,                 // per-worker scratch buffer
///     |scratch: &mut Vec<u64>, &x| {
///         scratch.clear();
///         scratch.extend(0..x);
///         scratch.iter().sum::<u64>()
///     },
/// );
/// assert_eq!(out, vec![3, 0, 6, 0, 10]);
/// ```
pub fn par_map_slice_with<T, S, R, I, F>(items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let workers = num_threads().min(items.len());
    if workers <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }

    // More chunks than workers, claimed off a shared counter: a worker
    // that drew cheap items moves on to the next chunk instead of idling.
    let chunks = (workers * CHUNKS_PER_WORKER).min(items.len());
    let chunk_len = items.len().div_ceil(chunks);
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(chunks));

    {
        let (next, done, init, f) = (&next, &done, &init, &f);
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(move || {
                    let mut state = init();
                    loop {
                        let chunk = next.fetch_add(1, Ordering::Relaxed);
                        let start = chunk * chunk_len;
                        if start >= items.len() {
                            break;
                        }
                        let part: Vec<R> = items[start..(start + chunk_len).min(items.len())]
                            .iter()
                            .map(|item| f(&mut state, item))
                            .collect();
                        done.lock().expect("worker panicked").push((chunk, part));
                    }
                });
            }
        });
    }

    let mut parts = done.into_inner().expect("worker panicked");
    parts.sort_unstable_by_key(|(chunk, _)| *chunk);
    let mut out = Vec::with_capacity(items.len());
    for (_, part) in parts {
        out.extend(part);
    }
    debug_assert_eq!(out.len(), items.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let n = 10_000usize;
        let out = par_map((0..n).collect(), |x| x * 2);
        assert_eq!(out, (0..n).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = par_map((0..997usize).collect(), |x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 997);
        assert_eq!(counter.load(Ordering::Relaxed), 997);
    }

    #[test]
    fn handles_degenerate_sizes() {
        assert_eq!(par_map(Vec::<u8>::new(), |x| x), Vec::<u8>::new());
        assert_eq!(par_map(vec![7u8], |x| x + 1), vec![8]);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let _ = par_map((0..1000u32).collect(), |x| {
            assert!(x != 500, "boom");
            x
        });
    }

    #[test]
    fn slice_map_preserves_order_without_moving() {
        let items: Vec<usize> = (0..10_007).collect();
        let out = par_map_slice(&items, |&x| x * 3);
        assert_eq!(out, items.iter().map(|&x| x * 3).collect::<Vec<_>>());
        assert_eq!(items.len(), 10_007, "slice still owned by caller");
    }

    #[test]
    fn slice_map_visits_every_item_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..997).collect();
        let out = par_map_slice(&items, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out, items);
        assert_eq!(counter.load(Ordering::Relaxed), 997);
    }

    #[test]
    fn slice_map_handles_degenerate_sizes() {
        assert_eq!(par_map_slice(&[] as &[u8], |&x| x), Vec::<u8>::new());
        assert_eq!(par_map_slice(&[7u8], |&x| x + 1), vec![8]);
    }

    #[test]
    fn stateful_map_reuses_worker_state() {
        // Each worker's state counts how many items it processed; states
        // are created at most once per worker, so the number of distinct
        // states is bounded by the thread count.
        let states = AtomicUsize::new(0);
        let items: Vec<usize> = (0..4096).collect();
        let out = par_map_slice_with(
            &items,
            || {
                states.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |seen, &x| {
                *seen += 1;
                x + 1
            },
        );
        assert_eq!(out, (1..=4096).collect::<Vec<_>>());
        assert!(states.load(Ordering::Relaxed) <= num_threads().max(1));
    }

    #[test]
    #[should_panic]
    fn slice_worker_panics_propagate() {
        let items: Vec<u32> = (0..1000).collect();
        let _ = par_map_slice(&items, |&x| {
            assert!(x != 500, "boom");
            x
        });
    }
}
