//! # eyeriss — a Rust reproduction of the Eyeriss spatial architecture
//!
//! This crate is the facade over a from-scratch reproduction of
//! *Eyeriss: A Spatial Architecture for Energy-Efficient Dataflow for
//! Convolutional Neural Networks* (Chen, Emer, Sze — ISCA 2016):
//!
//! * [`nn`] — CNN substrate: Table I/II shapes, Q8.8 tensors, golden
//!   CONV/FC/POOL references.
//! * [`arch`] — the Table IV energy hierarchy, Fig. 7a area model and
//!   accelerator configurations.
//! * [`dataflow`] — the six dataflow mapping spaces (RS, WS, OSA, OSB,
//!   OSC, NLR) with exact access counting and the Section VI-C optimizer.
//! * [`analysis`] — experiment runners regenerating every evaluation
//!   figure (7, 10–15).
//! * [`sim`] — a functional chip simulator executing the row-stationary
//!   dataflow bit-exactly against the golden reference.
//! * [`cluster`] — multi-array partitioning and parallel scheduling:
//!   batch/channel/tile/hybrid partitions co-optimized with the mapping
//!   search and executed bit-exactly across arrays (beyond the paper).
//! * [`serve`] — the inference-serving runtime: plan compilation into a
//!   content-keyed cache, dynamic batching and a multi-array scheduler
//!   with per-request latency accounting (beyond the paper).
//!
//! # Quickstart
//!
//! Map AlexNet CONV3 onto a 256-PE accelerator with every dataflow and
//! compare energy:
//!
//! ```
//! use eyeriss::prelude::*;
//!
//! let shape = LayerShape::conv(384, 256, 15, 3, 1)?; // AlexNet CONV3
//! let em = EnergyModel::table_iv();
//! let mut results = Vec::new();
//! for kind in DataflowKind::ALL {
//!     let hw = comparison_hardware(kind, 256);
//!     if let Some(best) = best_mapping(kind, &shape, 16, &hw, &em) {
//!         results.push((kind, best.profile.total_energy(&em)));
//!     }
//! }
//! let rs = results[0].1;
//! assert!(results.iter().skip(1).all(|&(_, e)| e > rs), "RS wins");
//! # Ok::<(), eyeriss::nn::ShapeError>(())
//! ```
//!
//! Simulate a layer on the fabricated chip's configuration and verify the
//! result bit-exactly:
//!
//! ```
//! use eyeriss::prelude::*;
//!
//! let shape = LayerShape::conv(8, 4, 13, 3, 2)?;
//! let input = synth::ifmap(&shape, 1, 1);
//! let weights = synth::filters(&shape, 2);
//! let bias = synth::biases(&shape, 3);
//!
//! let mut chip = Accelerator::new(AcceleratorConfig::eyeriss_chip());
//! let run = chip.run_conv(&shape, 1, &input, &weights, &bias)?;
//! assert_eq!(run.psums, reference::conv_accumulate(&shape, 1, &input, &weights, &bias));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use eyeriss_analysis as analysis;
pub use eyeriss_arch as arch;
pub use eyeriss_cluster as cluster;
pub use eyeriss_dataflow as dataflow;
pub use eyeriss_nn as nn;
pub use eyeriss_serve as serve;
pub use eyeriss_sim as sim;

/// One-stop imports for the common workflows.
pub mod prelude {
    pub use eyeriss_analysis::{run_conv_layers, run_fc_layers, run_layers, DataflowRun};
    pub use eyeriss_arch::energy::{EnergyModel, Level};
    pub use eyeriss_arch::{AcceleratorConfig, DataType, GridDims};
    pub use eyeriss_cluster::{plan_layer, Cluster, ClusterRun, Partition, SharedDram};
    pub use eyeriss_dataflow::search::{best_mapping, comparison_hardware};
    pub use eyeriss_dataflow::{DataflowKind, MappingCandidate};
    pub use eyeriss_nn::{alexnet, reference, synth, Fix16, LayerShape, Tensor4};
    pub use eyeriss_serve::{BatchPolicy, PlanCompiler, ServeConfig, Server};
    pub use eyeriss_sim::{Accelerator, SimStats};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let shape = LayerShape::conv(4, 3, 9, 3, 1).unwrap();
        let hw = comparison_hardware(DataflowKind::RowStationary, 256);
        let best = best_mapping(
            DataflowKind::RowStationary,
            &shape,
            1,
            &hw,
            &EnergyModel::table_iv(),
        )
        .unwrap();
        assert!(best.profile.alu_ops > 0.0);
    }
}
