//! # eyeriss — a Rust reproduction of the Eyeriss spatial architecture
//!
//! This crate is the facade over a from-scratch reproduction of
//! *Eyeriss: A Spatial Architecture for Energy-Efficient Dataflow for
//! Convolutional Neural Networks* (Chen, Emer, Sze — ISCA 2016):
//!
//! * [`nn`] — CNN substrate: Table I/II shapes, Q8.8 tensors, golden
//!   CONV/FC/POOL references, and the shared [`LayerProblem`]/[`Workload`]
//!   vocabulary.
//! * [`arch`] — the Table IV energy hierarchy, Fig. 7a area model and
//!   accelerator configurations.
//! * [`dataflow`] — the open [`Dataflow`] trait, the six builtin mapping
//!   spaces (RS, WS, OSA, OSB, OSC, NLR), the [`DataflowRegistry`] and
//!   the Section VI-C optimizer (generic over any registered space).
//! * [`analysis`] — experiment runners regenerating every evaluation
//!   figure (7, 10–15).
//! * [`sim`] — a functional chip simulator executing the row-stationary
//!   dataflow bit-exactly against the golden reference.
//! * [`cluster`] — multi-array partitioning and parallel scheduling
//!   (beyond the paper).
//! * [`serve`] — the inference-serving runtime: plan compilation into a
//!   content-keyed cache (persistable to disk), dynamic batching and a
//!   multi-array scheduler (beyond the paper).
//! * [`telemetry`] — live counters/gauges/histograms, spans and the
//!   snapshot + Chrome-trace exporters every layer records into.
//!
//! The public API is the [`Engine`] façade: one typed builder, three
//! execution tiers (`simulate` / `run` / `serve`) and a shared,
//! persistable plan cache.
//!
//! # Quickstart
//!
//! ```
//! use eyeriss::{Engine, Objective};
//! use eyeriss::prelude::*;
//!
//! // One engine = one deployment: hardware, cluster width, objective,
//! // mapping space (any registered `Dataflow`; row stationary default).
//! let engine = Engine::builder()
//!     .hardware(AcceleratorConfig::eyeriss_chip())
//!     .arrays(2)
//!     .objective(Objective::EnergyDelayProduct)
//!     .build()?;
//!
//! // Search tier: optimal mapping + compiled cluster plan, cached.
//! let conv = LayerProblem::new(LayerShape::conv(8, 4, 13, 3, 2)?, 2);
//! let best = engine.best_mapping(&conv)?;
//! assert!(best.active_pes > 0);
//! let plan = engine.plan(&conv)?;
//!
//! // Execution tiers are bit-exact against the golden reference.
//! let input = synth::ifmap(&conv.shape, 2, 1);
//! let weights = synth::filters(&conv.shape, 2);
//! let bias = synth::biases(&conv.shape, 3);
//! let golden = reference::conv_accumulate(&conv.shape, 2, &input, &weights, &bias);
//! assert_eq!(engine.simulate(&conv, &input, &weights, &bias)?.psums, golden);
//! assert_eq!(engine.run(&conv, &input, &weights, &bias)?.psums, golden);
//! assert_eq!(plan.arrays, 2);
//! # Ok::<(), eyeriss::EngineError>(())
//! ```
//!
//! Compare the six dataflows on AlexNet CONV3 under the paper's
//! fixed-area comparison:
//!
//! ```
//! use eyeriss::prelude::*;
//! use eyeriss::Objective;
//! use eyeriss::dataflow::search;
//!
//! let problem = LayerProblem::new(LayerShape::conv(384, 256, 15, 3, 1)?, 16);
//! let em = TableIv; // the canonical CostModel; any registered model works
//! let reg = DataflowRegistry::builtin();
//! let mut results = Vec::new();
//! for df in reg.iter() {
//!     let hw = df.comparison_hardware(256);
//!     if let Some(best) = search::optimize(df.as_ref(), &problem, &hw, &em, Objective::Energy) {
//!         results.push((df.id(), em.energy_of(&best.profile)));
//!     }
//! }
//! let rs = results[0].1;
//! assert!(results.iter().skip(1).all(|&(_, e)| e > rs), "RS wins");
//! # Ok::<(), eyeriss::nn::ShapeError>(())
//! ```

pub use eyeriss_analysis as analysis;
pub use eyeriss_arch as arch;
pub use eyeriss_cluster as cluster;
pub use eyeriss_dataflow as dataflow;
pub use eyeriss_nn as nn;
pub use eyeriss_serve as serve;
pub use eyeriss_sim as sim;
pub use eyeriss_telemetry as telemetry;
pub use eyeriss_wire as wire;

pub mod engine;
pub mod error;

pub use engine::{Engine, EngineBuilder, ServeOptions};
pub use error::{BuildError, EngineError};

// The façade's shared vocabulary, re-exported at the crate root.
pub use eyeriss_dataflow::search::Objective;
pub use eyeriss_dataflow::{Dataflow, DataflowId, DataflowKind, DataflowRegistry};
pub use eyeriss_nn::{LayerProblem, Workload};

/// # Migration guide: the pre-`Engine` API → the builder-first API
///
/// The version-0.1 `#[deprecated]` shims were **removed** this release
/// (one release after deprecation, as promised). Migrate as follows:
///
/// | Old entry point | New API |
/// |---|---|
/// | `search::best_mapping(kind, &shape, n, &hw, &em)` | `engine.best_mapping(&LayerProblem::new(shape, n))`, or `search::optimize(registry::builtin(kind), &problem, &hw, &cost, objective)` |
/// | `search::best_mapping_with(kind, …, objective)` | same as above — the objective is part of the engine/builder |
/// | `search::best_mappings_with(kind, &[(shape, n)], …)` | `search::optimize_all(df, &[LayerProblem], …)` |
/// | `search::comparison_hardware(kind, pes)` | `registry::builtin(kind).comparison_hardware(pes)` (any `Dataflow` has it) |
/// | `model::model_for(kind)` | `registry::builtin(kind)` or `DataflowRegistry::builtin().get(id)` |
/// | `Cluster::run_conv(partition, &shape, n, …)` | `engine.run(&problem, …)`, or `Cluster::execute_partition(partition, &problem, …)` |
/// | `Cluster::run_planned(&plan, &shape, n, …)` | `engine.run(&problem, …)` (plans cached), or `Cluster::execute(&plan, &problem, …)` |
///
/// ## `EnergyModel` → `CostModel` (this release)
///
/// Cost accounting opened up exactly like the dataflow layer did: the
/// closed `EnergyModel` struct threaded as `&EnergyModel` through every
/// search/plan/stats call is replaced by the open
/// [`CostModel`](eyeriss_arch::CostModel) trait, its canonical
/// [`TableIv`](eyeriss_arch::TableIv) implementation, and a
/// [`CostModelRegistry`](eyeriss_arch::CostModelRegistry):
///
/// | Old | New |
/// |---|---|
/// | `search::optimize(df, &p, &hw, &EnergyModel::table_iv(), obj)` | `search::optimize(df, &p, &hw, &TableIv, obj)` — or any `&dyn CostModel` |
/// | `EnergyModel::new(d, b, a, r, alu)` (panicked) | returns `Result<_, CostModelError>`; wrap in `StaticCostModel::new("id", em)` to search/plan under it |
/// | `Engine::builder().energy_model(em)` | `.cost_model(Arc::new(StaticCostModel::new("id", em)))`, `.register_cost_model(..)` + `.cost_model_id(id)` |
/// | `engine.energy_model()` | `engine.cost_model()` (an `Arc<dyn CostModel>`) and `engine.cost_registry()` |
/// | `PlanCompiler::with_energy_model(em)` | `PlanCompiler::with_cost_model(Arc<dyn CostModel>)` |
/// | `SimStats::energy(&em)` / `ClusterStats::energy(&em)` | same names over `&dyn CostModel`, plus unified `cost_report(..) -> CostReport` |
/// | `profile.energy_at_level(&em, l)` / `energy_of_type(&em, t)` | `CostReport::energy_at(l)` / `energy_of(t)` from `cost.report(&profile, pes)` |
/// | `plan_layer(df, &p, arrays, &hw, &em, ..)` | identical shape, `&dyn CostModel` in place of `&EnergyModel` |
/// | `analysis::experiments::sensitivity::scenarios()` | `scenario_registry()` — perturbed models are registered `CostModel`s |
///
/// [`CostReport`](eyeriss_arch::CostReport) is the unified result
/// vocabulary (per-level × per-data-type energy plus an analytic delay
/// derived from per-level bandwidth); Table IV totals are bit-identical
/// to the old `EnergyModel` path. On disk, every plan-cache key and
/// cluster plan now records a *cost-model descriptor* (label + exact
/// numeric fingerprint; see
/// [`eyeriss_arch::wire::COST_DESCRIPTOR_VERSION`]),
/// which bumped the persisted schemas: plan-cache files to
/// `CACHE_VERSION = 2` and compiled plans to `COMPILED_VERSION = 2`
/// (cluster plans to `PLAN_VERSION = 2`). Version-1 files predate open
/// cost models and are rejected with a typed error — recompile them by
/// warming a fresh cache. Loading resolves descriptors against the
/// engine's cost registry; plans priced under distinct fingerprints
/// never cross-hit the cache, even when they share a label.
///
/// Two older semantic changes to be aware of:
///
/// 1. **Batch size lives in [`LayerProblem`].** Every search/plan/run
///    call takes one `problem` value instead of a `(shape, n)` pair, so
///    caches and persisted plans agree on problem identity.
/// 2. **Dataflows are open.** `DataflowKind` still names the paper's
///    six, but everything dispatches through the [`Dataflow`] trait;
///    `MappingParams::kind()` now returns `Option<DataflowKind>`
///    (`None` for registered extensions) and `params.dataflow()` is the
///    total function. `ParamsMismatch` carries [`DataflowId`]s.
pub mod migration {}

/// One-stop imports for the common workflows.
pub mod prelude {
    pub use crate::engine::{Engine, EngineBuilder, ServeOptions};
    pub use crate::error::{BuildError, EngineError};
    pub use eyeriss_analysis::{run_conv_layers, run_fc_layers, run_layers, DataflowRun};
    pub use eyeriss_arch::cost::{
        CostDescriptor, CostModel, CostModelError, CostModelId, CostModelRegistry, CostReport,
        StaticCostModel, TableIv,
    };
    pub use eyeriss_arch::energy::{EnergyModel, Level};
    pub use eyeriss_arch::{AcceleratorConfig, DataType, GridDims};
    pub use eyeriss_cluster::{plan_layer, Cluster, ClusterRun, Partition, SharedDram};
    pub use eyeriss_dataflow::registry;
    pub use eyeriss_dataflow::search::{optimize, Objective};
    pub use eyeriss_dataflow::{
        Dataflow, DataflowId, DataflowKind, DataflowRegistry, MappingCandidate,
    };
    pub use eyeriss_nn::{
        alexnet, mobilenet, reference, synth, Fix16, LayerProblem, LayerShape, Tensor4, Workload,
    };
    pub use eyeriss_serve::{BatchPolicy, PlanCache, PlanCompiler, ServeConfig, Server};
    pub use eyeriss_sim::{Accelerator, SimStats};
    pub use eyeriss_telemetry::{Telemetry, TelemetrySnapshot};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let engine = Engine::builder().build().unwrap();
        let problem = LayerProblem::new(LayerShape::conv(4, 3, 9, 3, 1).unwrap(), 1);
        let best = engine.best_mapping(&problem).unwrap();
        assert!(best.profile.alu_ops > 0.0);
    }

    #[test]
    fn canonical_cost_model_agrees_with_the_energy_table() {
        // The TableIv trait object prices searches bit-identically to
        // re-scoring the winner under the raw Table IV energy table.
        let shape = LayerShape::conv(4, 3, 9, 3, 1).unwrap();
        let rs = registry::builtin(DataflowKind::RowStationary);
        let hw = rs.comparison_hardware(256);
        let best = optimize(
            rs,
            &LayerProblem::new(shape, 1),
            &hw,
            &TableIv,
            Objective::Energy,
        )
        .unwrap();
        assert_eq!(
            TableIv.energy_of(&best.profile).to_bits(),
            best.profile
                .total_energy(&EnergyModel::table_iv())
                .to_bits()
        );
    }
}
