//! The unified `Engine` façade over the whole reproduction.
//!
//! Three generations of entry points (`search::best_mapping*`,
//! `Cluster::run_conv`/`run_planned`, the serving runtime) collapse into
//! one typed builder and three execution tiers sharing the
//! [`LayerProblem`]/[`Workload`] vocabulary:
//!
//! | Tier | Method | Executes on |
//! |------|--------|-------------|
//! | simulate | [`Engine::simulate`] | one bit-exact functional array |
//! | run | [`Engine::run`] | the multi-array cluster, via cached plans |
//! | serve | [`Engine::serve`] | the batching runtime (a [`Server`] handle) |
//!
//! Underneath, every tier is generic over the engine's
//! [`Dataflow`]: dataflows registered with
//! [`EngineBuilder::register`] are searched, planned, persisted and
//! served exactly like the builtin six.
//!
//! # Example
//!
//! ```
//! use eyeriss::{Engine, Objective};
//! use eyeriss::prelude::*;
//!
//! let engine = Engine::builder()
//!     .hardware(AcceleratorConfig::eyeriss_chip())
//!     .arrays(4)
//!     .objective(Objective::EnergyDelayProduct)
//!     .build()?;
//!
//! let conv3 = LayerProblem::new(LayerShape::conv(384, 256, 15, 3, 1)?, 16);
//! let best = engine.best_mapping(&conv3)?;
//! assert!(best.active_pes > 0);
//! let plan = engine.plan(&conv3)?;
//! assert_eq!(plan.arrays, 4);
//! # Ok::<(), eyeriss::EngineError>(())
//! ```

use crate::error::{BuildError, EngineError};
use eyeriss_arch::cost::{CostModel, CostModelId, CostModelRegistry, TableIv};
use eyeriss_arch::AcceleratorConfig;
use eyeriss_cluster::{Cluster, ClusterPlan, ClusterRun, SharedDram};
use eyeriss_dataflow::search::{optimize, Objective};
use eyeriss_dataflow::{Dataflow, DataflowId, DataflowKind, DataflowRegistry, MappingCandidate};
use eyeriss_nn::network::Network;
use eyeriss_nn::{Fix16, LayerProblem, Tensor4, Workload};
use eyeriss_serve::{
    BatchPolicy, CacheStats, CompiledPlan, PlanCache, PlanCompiler, SchedConfig, ServeConfig,
    Server, SloSpec,
};
use eyeriss_sim::chip::LayerRun as SimRun;
use eyeriss_sim::Accelerator;
use eyeriss_telemetry::Telemetry;
use std::path::Path;
use std::sync::Arc;

/// Serving-tier sizing knobs (everything else comes from the engine).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads, each owning a private cluster of the engine's
    /// width.
    pub workers: usize,
    /// Dynamic batching bounds.
    pub policy: BatchPolicy,
    /// Submission-queue depth (full queue = backpressure).
    pub queue_capacity: usize,
    /// Declarative service-level objectives, evaluated live by the
    /// server's [`SloMonitor`](eyeriss_serve::SloMonitor) (empty =
    /// monitoring off). Only effective with telemetry enabled.
    pub slos: Vec<SloSpec>,
    /// Multi-tenant scheduling layer (`None` = the legacy FIFO path);
    /// see [`eyeriss_serve::sched`].
    pub sched: Option<SchedConfig>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        let d = ServeConfig::new();
        ServeOptions {
            workers: d.workers,
            policy: d.policy,
            queue_capacity: d.queue_capacity,
            slos: d.slos,
            sched: d.sched,
        }
    }
}

/// The selected dataflow of an [`EngineBuilder`].
enum DataflowChoice {
    Id(DataflowId),
    Instance(Arc<dyn Dataflow>),
}

/// The selected cost model of an [`EngineBuilder`].
enum CostChoice {
    Id(CostModelId),
    Instance(Arc<dyn CostModel>),
}

/// Typed builder for [`Engine`].
pub struct EngineBuilder {
    hw: AcceleratorConfig,
    arrays: usize,
    objective: Objective,
    registry: DataflowRegistry,
    pending: Vec<Arc<dyn Dataflow>>,
    dataflow: DataflowChoice,
    costs: CostModelRegistry,
    pending_costs: Vec<Arc<dyn CostModel>>,
    cost: CostChoice,
    cache: Option<Arc<PlanCache>>,
    telemetry: Option<Telemetry>,
}

impl EngineBuilder {
    fn new() -> Self {
        EngineBuilder {
            hw: AcceleratorConfig::eyeriss_chip(),
            arrays: 1,
            objective: Objective::EnergyDelayProduct,
            registry: DataflowRegistry::builtin(),
            pending: Vec::new(),
            dataflow: DataflowChoice::Id(DataflowKind::RowStationary.id()),
            costs: CostModelRegistry::builtin(),
            pending_costs: Vec::new(),
            cost: CostChoice::Id(TableIv::ID),
            cache: None,
            telemetry: None,
        }
    }

    /// Per-array accelerator configuration (default: the fabricated
    /// Eyeriss chip).
    pub fn hardware(mut self, hw: AcceleratorConfig) -> Self {
        self.hw = hw;
        self
    }

    /// Uses an explicit cost model instance for every pricing decision
    /// (default: the canonical [`TableIv`]), registering it with the
    /// engine's cost registry when its id is not already taken — so
    /// persisted plans naming it reload in an identically-built engine.
    pub fn cost_model(mut self, cost: Arc<dyn CostModel>) -> Self {
        self.cost = CostChoice::Instance(cost);
        self
    }

    /// Selects any registered cost model by id — including ones passed
    /// to [`EngineBuilder::register_cost_model`] in this same builder
    /// chain.
    pub fn cost_model_id(mut self, id: CostModelId) -> Self {
        self.cost = CostChoice::Id(id);
        self
    }

    /// Registers an additional cost model with the engine's cost
    /// registry (checked for duplicate ids at [`EngineBuilder::build`]).
    pub fn register_cost_model(mut self, cost: Arc<dyn CostModel>) -> Self {
        self.pending_costs.push(cost);
        self
    }

    /// Cluster width (default 1; must be at least 1).
    pub fn arrays(mut self, arrays: usize) -> Self {
        self.arrays = arrays;
        self
    }

    /// Optimization objective for every search (default: EDP, the
    /// serving default; use [`Objective::Energy`] for the paper's
    /// figures).
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Selects a builtin dataflow (default: row stationary).
    pub fn dataflow(mut self, kind: DataflowKind) -> Self {
        self.dataflow = DataflowChoice::Id(kind.id());
        self
    }

    /// Selects any registered dataflow by id — including ones passed to
    /// [`EngineBuilder::register`] in this same builder chain.
    pub fn dataflow_id(mut self, id: DataflowId) -> Self {
        self.dataflow = DataflowChoice::Id(id);
        self
    }

    /// Uses an explicit dataflow instance, registering it with the
    /// engine's registry when its id is not already taken (so persisted
    /// plans naming it reload in an identically-built engine).
    pub fn dataflow_instance(mut self, df: Arc<dyn Dataflow>) -> Self {
        self.dataflow = DataflowChoice::Instance(df);
        self
    }

    /// Registers an additional dataflow with the engine's registry
    /// (checked for duplicate ids at [`EngineBuilder::build`]).
    pub fn register(mut self, df: Arc<dyn Dataflow>) -> Self {
        self.pending.push(df);
        self
    }

    /// Shares an existing plan cache (e.g. one reloaded from disk or
    /// shared with another engine).
    pub fn plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Records the engine's execution into `tele`: cluster and simulator
    /// spans, contention counters and reassembly histograms all land in
    /// this instance, retrievable any time via [`Engine::telemetry`].
    /// The default is a private **disabled** instance — every
    /// instrumentation site then costs one relaxed atomic load.
    pub fn telemetry(mut self, tele: Telemetry) -> Self {
        self.telemetry = Some(tele);
        self
    }

    /// Opt-in shorthand: `true` gives the engine a private, enabled
    /// telemetry instance (equivalent to
    /// `.telemetry(Telemetry::new_enabled())`).
    pub fn telemetry_enabled(self, on: bool) -> Self {
        if on {
            self.telemetry(Telemetry::new_enabled())
        } else {
            self.telemetry(Telemetry::new())
        }
    }

    /// Validates the configuration and builds the engine.
    ///
    /// # Errors
    ///
    /// [`BuildError::ZeroArrays`] for an empty cluster,
    /// [`BuildError::DuplicateDataflow`] /
    /// [`BuildError::DuplicateCostModel`] for conflicting registrations,
    /// [`BuildError::UnknownDataflow`] /
    /// [`BuildError::UnknownCostModel`] when a selected id resolves to
    /// nothing.
    pub fn build(self) -> Result<Engine, EngineError> {
        if self.arrays == 0 {
            return Err(BuildError::ZeroArrays.into());
        }
        let mut registry = self.registry;
        for df in self.pending {
            let id = df.id();
            registry
                .register(df)
                .map_err(|_| BuildError::DuplicateDataflow(id))?;
        }
        let dataflow: Arc<dyn Dataflow> = match self.dataflow {
            DataflowChoice::Instance(df) => {
                // Register the instance (when its id is free) so
                // persisted plans naming it resolve on reload — the
                // save_plans/load_plans round trip must not depend on
                // how the dataflow was selected.
                if registry.get(df.id()).is_none() {
                    registry
                        .register(Arc::clone(&df))
                        .expect("id checked free above");
                }
                df
            }
            DataflowChoice::Id(id) => Arc::clone(
                registry
                    .get(id)
                    .ok_or_else(|| BuildError::UnknownDataflow(id.label().to_string()))?,
            ),
        };
        let mut costs = self.costs;
        for cm in self.pending_costs {
            let id = cm.id();
            costs
                .register(cm)
                .map_err(|_| BuildError::DuplicateCostModel(id))?;
        }
        // Symmetric with the dataflow choice: instances self-register
        // when their id is free, ids resolve against the registry.
        let cost: Arc<dyn CostModel> = match self.cost {
            CostChoice::Instance(cm) => {
                if costs.get(cm.id()).is_none() {
                    costs
                        .register(Arc::clone(&cm))
                        .expect("id checked free above");
                }
                cm
            }
            CostChoice::Id(id) => Arc::clone(
                costs
                    .get(id)
                    .ok_or_else(|| BuildError::UnknownCostModel(id.label().to_string()))?,
            ),
        };
        let mut compiler = PlanCompiler::new(self.arrays, self.hw)
            .objective(self.objective)
            .with_cost_model(Arc::clone(&cost))
            .with_dataflow(Arc::clone(&dataflow));
        if let Some(cache) = self.cache {
            compiler = compiler.with_cache(cache);
        }
        let tele = self.telemetry.unwrap_or_default();
        let cluster = Cluster::new(self.arrays, self.hw)
            .shared_dram(SharedDram::scaled(self.arrays))
            .with_telemetry(tele.clone());
        Ok(Engine {
            hw: self.hw,
            arrays: self.arrays,
            objective: self.objective,
            registry,
            dataflow,
            costs,
            cost,
            compiler,
            cluster,
            sim_pool: std::sync::Mutex::new(Vec::new()),
            tele,
        })
    }
}

/// The unified façade: one configured accelerator deployment, exposing
/// mapping search, bit-exact simulation, cluster execution and serving
/// over a shared plan cache.
pub struct Engine {
    hw: AcceleratorConfig,
    arrays: usize,
    objective: Objective,
    registry: DataflowRegistry,
    dataflow: Arc<dyn Dataflow>,
    costs: CostModelRegistry,
    cost: Arc<dyn CostModel>,
    compiler: PlanCompiler,
    cluster: Cluster,
    /// Pooled single-array simulation contexts for [`Engine::simulate`]:
    /// checked out per call, returned afterwards, so back-to-back
    /// simulations reuse one scratch arena and mapping memo.
    sim_pool: std::sync::Mutex<Vec<Accelerator>>,
    tele: Telemetry,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("hw", &self.hw)
            .field("arrays", &self.arrays)
            .field("objective", &self.objective)
            .field("dataflow", &self.dataflow.id())
            .field("registry", &self.registry)
            .field("cost", &self.cost.id())
            .field("cost_registry", &self.costs)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Starts a builder with the serving defaults (one fabricated-chip
    /// array, row-stationary mapping, EDP objective).
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    // ----- accessors -------------------------------------------------------

    /// Per-array hardware configuration.
    pub fn hardware(&self) -> &AcceleratorConfig {
        &self.hw
    }

    /// The cost model every search, plan and report is priced under.
    pub fn cost_model(&self) -> &Arc<dyn CostModel> {
        &self.cost
    }

    /// The engine's cost-model registry (Table IV plus registrations).
    pub fn cost_registry(&self) -> &CostModelRegistry {
        &self.costs
    }

    /// Cluster width.
    pub fn arrays(&self) -> usize {
        self.arrays
    }

    /// Optimization objective.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// The active mapping space.
    pub fn dataflow(&self) -> &Arc<dyn Dataflow> {
        &self.dataflow
    }

    /// The engine's dataflow registry (builtin six plus registrations).
    pub fn registry(&self) -> &DataflowRegistry {
        &self.registry
    }

    /// The shared plan cache.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        self.compiler.cache()
    }

    /// Plan-cache hit/miss counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.compiler.cache().stats()
    }

    /// The engine's telemetry instance (disabled unless one was injected
    /// via [`EngineBuilder::telemetry`] /
    /// [`EngineBuilder::telemetry_enabled`]). Cluster and simulator
    /// activity records here; snapshot it with
    /// [`eyeriss_telemetry::Telemetry::snapshot`] and export via
    /// [`eyeriss_telemetry::TelemetrySnapshot::to_wire`] or
    /// [`eyeriss_telemetry::TelemetrySnapshot::chrome_trace`].
    ///
    /// Mapping-search metrics (`search.*`) are the one exception: they
    /// record into [`eyeriss_telemetry::Telemetry::global`], because the
    /// search API is free functions with no instance to carry.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tele
    }

    // ----- search tier -----------------------------------------------------

    /// The engine-optimal single-array mapping of `problem`.
    ///
    /// # Errors
    ///
    /// [`EngineError::NoMapping`] when the dataflow cannot operate on
    /// this problem.
    pub fn best_mapping(&self, problem: &LayerProblem) -> Result<MappingCandidate, EngineError> {
        optimize(
            self.dataflow.as_ref(),
            problem,
            &self.hw,
            self.cost.as_ref(),
            self.objective,
        )
        .ok_or_else(|| self.no_mapping(problem))
    }

    /// The best mapping of `problem` in a *different* registered space
    /// (e.g. to compare a registered extension against the engine's
    /// default).
    ///
    /// # Errors
    ///
    /// [`EngineError::Dataflow`] for unregistered ids,
    /// [`EngineError::NoMapping`] when the space cannot operate.
    pub fn best_mapping_in(
        &self,
        id: DataflowId,
        problem: &LayerProblem,
    ) -> Result<MappingCandidate, EngineError> {
        let df = self.registry.resolve(id)?;
        optimize(
            df.as_ref(),
            problem,
            &self.hw,
            self.cost.as_ref(),
            self.objective,
        )
        .ok_or_else(|| EngineError::NoMapping {
            dataflow: id,
            detail: render_problem(problem),
        })
    }

    /// The compiled `(partition, mapping)` cluster plan of `problem`,
    /// served from the plan cache (searched at most once per distinct
    /// problem per engine lifetime — or zero times after
    /// [`Engine::load_plans`]).
    ///
    /// # Errors
    ///
    /// [`EngineError::Serve`] wrapping `NoPlan` when no feasible
    /// partition/mapping exists.
    pub fn plan(&self, problem: &LayerProblem) -> Result<Arc<ClusterPlan>, EngineError> {
        Ok(self.compiler.compile_layer(&problem.shape, problem.batch)?)
    }

    /// Plans every problem of `workload` through the cache, returning
    /// `(name, plan)` pairs in workload order.
    ///
    /// # Errors
    ///
    /// Fails on the first problem with no feasible plan.
    pub fn plan_workload(
        &self,
        workload: &Workload,
    ) -> Result<Vec<(String, Arc<ClusterPlan>)>, EngineError> {
        workload
            .problems()
            .iter()
            .map(|(name, p)| Ok((name.clone(), self.plan(p)?)))
            .collect()
    }

    /// Compiles a whole network at batch `n`: one plan per weighted
    /// stage, POOL stages passed through.
    ///
    /// # Errors
    ///
    /// Fails if any weighted stage has no feasible plan.
    pub fn compile(&self, net: &Network, n: usize) -> Result<CompiledPlan, EngineError> {
        Ok(self.compiler.compile_network(net, n)?)
    }

    // ----- tier 1: single-array bit-exact simulation -----------------------

    /// Executes `problem` on one functional array (the fabricated chip's
    /// row-stationary dataflow), returning bit-exact psums and measured
    /// access statistics.
    ///
    /// # Errors
    ///
    /// [`EngineError::Sim`] when the chip cannot map or run the layer.
    ///
    /// # Panics
    ///
    /// Panics if tensor dimensions disagree with the problem.
    pub fn simulate(
        &self,
        problem: &LayerProblem,
        input: &Tensor4<Fix16>,
        weights: &Tensor4<Fix16>,
        bias: &[Fix16],
    ) -> Result<SimRun, EngineError> {
        // Reuse a pooled chip: repeated simulations share one scratch
        // arena and mapping memo instead of reallocating per call.
        let mut chip = self
            .sim_pool
            .lock()
            .expect("sim pool poisoned")
            .pop()
            .unwrap_or_else(|| Accelerator::new(self.hw).telemetry(self.tele.clone()));
        let run = chip.run_conv(&problem.shape, problem.batch, input, weights, bias);
        self.sim_pool.lock().expect("sim pool poisoned").push(chip);
        Ok(run?)
    }

    // ----- tier 2: cluster execution ---------------------------------------

    /// Executes `problem` across the engine's cluster from its cached
    /// plan (planning it first on a cache miss), returning the bit-exact
    /// reassembled psums and per-array statistics.
    ///
    /// # Errors
    ///
    /// Plan-compilation and cluster-execution failures, each typed.
    ///
    /// # Panics
    ///
    /// Panics if tensor dimensions disagree with the problem.
    pub fn run(
        &self,
        problem: &LayerProblem,
        input: &Tensor4<Fix16>,
        weights: &Tensor4<Fix16>,
        bias: &[Fix16],
    ) -> Result<ClusterRun, EngineError> {
        let plan = self.plan(problem)?;
        Ok(self.cluster.execute(&plan, problem, input, weights, bias)?)
    }

    // ----- tier 3: serving -------------------------------------------------

    /// Starts a serving runtime for `net` with default sizing, sharing
    /// this engine's plan cache, dataflow and objective. The returned
    /// [`Server`] handle accepts requests; the engine remains usable for
    /// planning and analysis alongside it.
    ///
    /// # Errors
    ///
    /// [`BuildError::ZeroWorkers`] via [`Engine::serve_with`].
    pub fn serve(&self, net: Network) -> Result<Server, EngineError> {
        self.serve_with(net, ServeOptions::default())
    }

    /// [`Engine::serve`] with explicit sizing.
    ///
    /// # Errors
    ///
    /// [`BuildError::ZeroWorkers`] when `opts.workers` is zero.
    pub fn serve_with(&self, net: Network, opts: ServeOptions) -> Result<Server, EngineError> {
        if opts.workers == 0 {
            return Err(BuildError::ZeroWorkers.into());
        }
        let defaults = ServeConfig::new();
        let cfg = ServeConfig {
            arrays: self.arrays,
            workers: opts.workers,
            policy: opts.policy,
            queue_capacity: opts.queue_capacity,
            hw: self.hw,
            // An enabled engine instance absorbs the server's metrics
            // and spans into one timeline; otherwise the server gets its
            // own live instance so `Server::snapshot()` still works.
            telemetry: self.tele.enabled().then(|| self.tele.clone()),
            slos: opts.slos,
            sched: opts.sched,
            ..defaults
        };
        Ok(Server::start_with_compiler(net, cfg, self.compiler.clone()))
    }

    // ----- persistence -----------------------------------------------------

    /// Persists every compiled plan to `path`, returning how many were
    /// written. A later engine — in a different process — can
    /// [`Engine::load_plans`] them and serve with zero mapping searches.
    ///
    /// # Errors
    ///
    /// [`EngineError::Serve`] wrapping I/O failures.
    pub fn save_plans(&self, path: impl AsRef<Path>) -> Result<usize, EngineError> {
        Ok(self.compiler.cache().save(path)?)
    }

    /// Loads plans persisted by [`Engine::save_plans`] into this
    /// engine's cache, resolving dataflow labels against this engine's
    /// registry. Returns how many plans were read.
    ///
    /// # Errors
    ///
    /// [`EngineError::Serve`] wrapping I/O, schema and
    /// unknown-dataflow failures.
    pub fn load_plans(&self, path: impl AsRef<Path>) -> Result<usize, EngineError> {
        Ok(self
            .compiler
            .cache()
            .load_into(path, &self.registry, &self.costs)?)
    }

    fn no_mapping(&self, problem: &LayerProblem) -> EngineError {
        EngineError::NoMapping {
            dataflow: self.dataflow.id(),
            detail: render_problem(problem),
        }
    }
}

fn render_problem(p: &LayerProblem) -> String {
    format!(
        "{} {}x{}x{} (batch {})",
        p.shape.kind.label(),
        p.shape.m,
        p.shape.c,
        p.shape.h,
        p.batch
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeriss_arch::GridDims;
    use eyeriss_nn::network::NetworkBuilder;
    use eyeriss_nn::{reference, synth, LayerShape};

    fn small_hw() -> AcceleratorConfig {
        AcceleratorConfig {
            grid: GridDims::new(6, 8),
            rf_bytes_per_pe: 512.0,
            buffer_bytes: 32.0 * 1024.0,
        }
    }

    fn small_engine(arrays: usize) -> Engine {
        Engine::builder()
            .hardware(small_hw())
            .arrays(arrays)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates_configuration() {
        assert!(matches!(
            Engine::builder().arrays(0).build(),
            Err(EngineError::Build(BuildError::ZeroArrays))
        ));
        assert!(matches!(
            Engine::builder()
                .dataflow_id(DataflowId::new("NOPE"))
                .build(),
            Err(EngineError::Build(BuildError::UnknownDataflow(_)))
        ));
        let engine = Engine::builder()
            .arrays(2)
            .dataflow(DataflowKind::OutputStationaryC)
            .objective(Objective::Energy)
            .build()
            .unwrap();
        assert_eq!(engine.arrays(), 2);
        assert_eq!(engine.objective(), Objective::Energy);
        assert_eq!(engine.dataflow().id().label(), "OSC");
        assert_eq!(engine.registry().len(), 6);
        assert!(format!("{engine:?}").contains("OSC"));
    }

    #[test]
    fn builder_cost_model_reaches_the_plan_search() {
        // A flat on-chip hierarchy vs Table IV: the two engines must not
        // share plans (the cost descriptor is part of the plan key), and
        // each plan's energy must be scored under its own model.
        use eyeriss_arch::cost::StaticCostModel;
        use eyeriss_arch::EnergyModel;
        let cache = Arc::new(PlanCache::new());
        let table = Engine::builder()
            .hardware(small_hw())
            .arrays(2)
            .plan_cache(Arc::clone(&cache))
            .build()
            .unwrap();
        let flat_em = EnergyModel::new(200.0, 2.0, 2.0, 1.0, 1.0).unwrap();
        let flat_model = StaticCostModel::new("flat", flat_em);
        let flat = Engine::builder()
            .hardware(small_hw())
            .arrays(2)
            .cost_model(Arc::new(flat_model))
            .plan_cache(Arc::clone(&cache))
            .build()
            .unwrap();
        assert_eq!(flat.cost_model().id().label(), "flat");
        assert_eq!(
            flat.cost_registry().len(),
            2,
            "selected instance self-registers next to Table IV"
        );
        let p = LayerProblem::new(LayerShape::conv(8, 3, 13, 3, 2).unwrap(), 2);
        let a = table.plan(&p).unwrap();
        let b = flat.plan(&p).unwrap();
        assert_eq!(
            cache.stats().hits,
            0,
            "different cost models must not collide"
        );
        assert_eq!(cache.len(), 2);
        // The flat plan's recorded energy equals its tiles re-scored
        // under the flat model — proof the search used the builder's
        // cost model — and the plan records its pricer's descriptor.
        let rescored: f64 = b
            .per_array
            .iter()
            .flat_map(|ar| &ar.tiles)
            .map(|t| t.mapping.profile.total_energy(&flat_em))
            .sum();
        assert_eq!(b.energy.to_bits(), rescored.to_bits());
        assert_ne!(a.energy.to_bits(), b.energy.to_bits());
        use eyeriss_arch::cost::CostModel as _;
        assert_eq!(b.cost, flat_model.descriptor());
        assert_eq!(a.cost.id.label(), "table-iv");
    }

    #[test]
    fn builder_validates_cost_models() {
        use eyeriss_arch::cost::{CostModelId, StaticCostModel};
        use eyeriss_arch::EnergyModel;
        assert!(matches!(
            Engine::builder()
                .cost_model_id(CostModelId::new("nope"))
                .build(),
            Err(EngineError::Build(BuildError::UnknownCostModel(_)))
        ));
        let dup = Arc::new(StaticCostModel::new("dup", EnergyModel::table_iv()));
        assert!(matches!(
            Engine::builder()
                .register_cost_model(Arc::clone(&dup) as Arc<dyn eyeriss_arch::CostModel>)
                .register_cost_model(dup as Arc<dyn eyeriss_arch::CostModel>)
                .build(),
            Err(EngineError::Build(BuildError::DuplicateCostModel(id))) if id.label() == "dup"
        ));
        // Registered models are selectable by id.
        let lp = Arc::new(StaticCostModel::new(
            "lp",
            EnergyModel::new(100.0, 6.0, 2.0, 1.0, 1.0).unwrap(),
        ));
        let engine = Engine::builder()
            .register_cost_model(lp)
            .cost_model_id(CostModelId::new("lp"))
            .build()
            .unwrap();
        assert_eq!(engine.cost_model().id().label(), "lp");
    }

    #[test]
    fn plan_goes_through_the_shared_cache() {
        let engine = small_engine(2);
        let p = LayerProblem::new(LayerShape::conv(8, 3, 13, 3, 2).unwrap(), 2);
        let a = engine.plan(&p).unwrap();
        let b = engine.plan(&p).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn simulate_and_run_agree_bit_exactly() {
        let engine = small_engine(2);
        let shape = LayerShape::conv(6, 3, 13, 3, 2).unwrap();
        let p = LayerProblem::new(shape, 3);
        let input = synth::ifmap(&shape, 3, 1);
        let weights = synth::filters(&shape, 2);
        let bias = synth::biases(&shape, 3);
        let golden = reference::conv_accumulate(&shape, 3, &input, &weights, &bias);
        let sim = engine.simulate(&p, &input, &weights, &bias).unwrap();
        assert_eq!(sim.psums, golden);
        let run = engine.run(&p, &input, &weights, &bias).unwrap();
        assert_eq!(run.psums, golden);
    }

    #[test]
    fn infeasible_mapping_is_a_typed_error() {
        // WS at batch 64 on 256 PEs "cannot operate" (Fig. 11a).
        let engine = Engine::builder()
            .hardware(AcceleratorConfig::under_baseline_area(
                256,
                DataflowKind::WeightStationary.rf_bytes(),
            ))
            .dataflow(DataflowKind::WeightStationary)
            .build()
            .unwrap();
        let conv1 = LayerProblem::new(LayerShape::conv(96, 3, 227, 11, 4).unwrap(), 64);
        let err = engine.best_mapping(&conv1).unwrap_err();
        assert!(matches!(
            err,
            EngineError::NoMapping { dataflow, .. } if dataflow.label() == "WS"
        ));
    }

    #[test]
    fn workload_planning_names_every_problem() {
        let engine = small_engine(2);
        let net = NetworkBuilder::new(3, 19)
            .conv("C1", 8, 3, 2)
            .unwrap()
            .pool("P1", 3, 2)
            .unwrap()
            .fully_connected("FC", 10)
            .unwrap()
            .build(7);
        let w = Workload::from_network("tiny", &net, 2);
        let plans = engine.plan_workload(&w).unwrap();
        assert_eq!(plans.len(), 2, "POOL stages carry no plan");
        assert_eq!(plans[0].0, "C1");
        assert_eq!(plans[1].0, "FC");
        let compiled = engine.compile(&net, 2).unwrap();
        assert_eq!(compiled.stages.len(), 3);
        // compile() reuses the workload plans: no new searches.
        assert_eq!(compiled.searched, 0);
        assert_eq!(compiled.cached, 2);
    }

    #[test]
    fn telemetry_opt_in_records_cluster_and_sim_activity() {
        let engine = Engine::builder()
            .hardware(small_hw())
            .arrays(2)
            .telemetry_enabled(true)
            .build()
            .unwrap();
        assert!(engine.telemetry().enabled());
        let shape = LayerShape::conv(6, 3, 13, 3, 2).unwrap();
        let p = LayerProblem::new(shape, 2);
        let input = synth::ifmap(&shape, 2, 1);
        let weights = synth::filters(&shape, 2);
        let bias = synth::biases(&shape, 3);
        engine.run(&p, &input, &weights, &bias).unwrap();
        engine.simulate(&p, &input, &weights, &bias).unwrap();
        let snap = engine.telemetry().snapshot();
        assert!(snap.spans.iter().any(|s| s.name == "cluster.execute"));
        assert!(snap.spans.iter().any(|s| s.name == "cluster.array"));
        assert!(snap.spans.iter().any(|s| s.name == "sim.layer"));
        assert!(snap
            .histogram("cluster.reassemble_ns")
            .is_some_and(|h| h.count() > 0));
        // The default engine stays disabled and records nothing.
        let quiet = small_engine(2);
        assert!(!quiet.telemetry().enabled());
        quiet.run(&p, &input, &weights, &bias).unwrap();
        assert!(quiet.telemetry().snapshot().spans.is_empty());
    }

    #[test]
    fn serving_tier_shares_the_engine_cache() {
        let engine = small_engine(2);
        let net = NetworkBuilder::new(3, 19)
            .conv("C1", 8, 3, 2)
            .unwrap()
            .pool("P1", 3, 2)
            .unwrap()
            .fully_connected("FC", 10)
            .unwrap()
            .build(7);
        let shape = net.stages()[0].shape;
        // Pre-plan at batch 1 through the engine, then serve: the
        // server's single-request batches hit the same cache.
        engine.plan(&LayerProblem::new(shape, 1)).unwrap();
        let golden = net.clone();
        let opts = ServeOptions {
            workers: 1,
            policy: BatchPolicy::unbatched(),
            queue_capacity: 8,
            slos: Vec::new(),
            sched: None,
        };
        let server = engine.serve_with(net, opts).unwrap();
        let input = synth::ifmap(&shape, 1, 42);
        let response = server.submit(input.clone()).unwrap().wait().unwrap();
        assert_eq!(response.output, golden.forward(1, &input));
        server.shutdown();
        assert!(engine.cache_stats().hits > 0, "server reused engine plans");
        assert!(matches!(
            engine.serve_with(
                golden,
                ServeOptions {
                    workers: 0,
                    ..ServeOptions::default()
                }
            ),
            Err(EngineError::Build(BuildError::ZeroWorkers))
        ));
    }
}
