//! Typed errors of the [`crate::Engine`] façade.
//!
//! One enum covers every tier, with `From` conversions from each layer's
//! own error type, so `?` composes across the whole stack and callers
//! can still match on *which* layer refused.

use eyeriss_arch::CostModelError;
use eyeriss_cluster::ClusterError;
use eyeriss_dataflow::{DataflowError, DataflowId};
use eyeriss_nn::ShapeError;
use eyeriss_serve::ServeError;
use eyeriss_sim::SimError;
use std::fmt;

/// Why an [`crate::Engine`] could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// `arrays(0)` — a cluster needs at least one array.
    ZeroArrays,
    /// `workers == 0` in serving options.
    ZeroWorkers,
    /// The selected dataflow id is not in the engine's registry.
    UnknownDataflow(String),
    /// Two registered dataflows share an id.
    DuplicateDataflow(DataflowId),
    /// The selected cost-model id is not in the engine's registry.
    UnknownCostModel(String),
    /// Two registered cost models share an id.
    DuplicateCostModel(eyeriss_arch::CostModelId),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::ZeroArrays => write!(f, "engine needs at least one array"),
            BuildError::ZeroWorkers => write!(f, "serving needs at least one worker"),
            BuildError::UnknownDataflow(label) => {
                write!(f, "dataflow {label:?} is not registered with this engine")
            }
            BuildError::DuplicateDataflow(id) => {
                write!(f, "dataflow {id} registered twice")
            }
            BuildError::UnknownCostModel(label) => {
                write!(f, "cost model {label:?} is not registered with this engine")
            }
            BuildError::DuplicateCostModel(id) => {
                write!(f, "cost model {id} registered twice")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Why an engine operation failed.
#[derive(Debug, Clone)]
pub enum EngineError {
    /// The engine could not be configured.
    Build(BuildError),
    /// A layer shape failed validation.
    Shape(ShapeError),
    /// The selected dataflow has no feasible mapping for a problem.
    NoMapping {
        /// The dataflow that was searched.
        dataflow: DataflowId,
        /// The problem, rendered.
        detail: String,
    },
    /// The dataflow layer refused (params mismatch, unknown id, invalid
    /// candidate).
    Dataflow(DataflowError),
    /// The single-array simulator failed.
    Sim(SimError),
    /// The cluster executor failed.
    Cluster(ClusterError),
    /// The serving layer failed (plan compilation, queueing, persistence).
    Serve(ServeError),
    /// The cost layer refused (invalid costs, unordered hierarchy,
    /// registry misses).
    Cost(CostModelError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Build(e) => write!(f, "engine build failed: {e}"),
            EngineError::Shape(e) => write!(f, "invalid layer shape: {e}"),
            EngineError::NoMapping { dataflow, detail } => {
                write!(f, "{dataflow} has no feasible mapping for {detail}")
            }
            EngineError::Dataflow(e) => write!(f, "dataflow error: {e}"),
            EngineError::Sim(e) => write!(f, "simulation failed: {e}"),
            EngineError::Cluster(e) => write!(f, "cluster execution failed: {e}"),
            EngineError::Serve(e) => write!(f, "serving failed: {e}"),
            EngineError::Cost(e) => write!(f, "cost model error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<BuildError> for EngineError {
    fn from(e: BuildError) -> Self {
        EngineError::Build(e)
    }
}

impl From<ShapeError> for EngineError {
    fn from(e: ShapeError) -> Self {
        EngineError::Shape(e)
    }
}

impl From<DataflowError> for EngineError {
    fn from(e: DataflowError) -> Self {
        EngineError::Dataflow(e)
    }
}

impl From<SimError> for EngineError {
    fn from(e: SimError) -> Self {
        EngineError::Sim(e)
    }
}

impl From<ClusterError> for EngineError {
    fn from(e: ClusterError) -> Self {
        EngineError::Cluster(e)
    }
}

impl From<ServeError> for EngineError {
    fn from(e: ServeError) -> Self {
        EngineError::Serve(e)
    }
}

impl From<CostModelError> for EngineError {
    fn from(e: CostModelError) -> Self {
        EngineError::Cost(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_every_variant() {
        assert!(EngineError::from(BuildError::ZeroArrays)
            .to_string()
            .contains("at least one array"));
        assert!(
            EngineError::Build(BuildError::UnknownDataflow("TOY".into()))
                .to_string()
                .contains("TOY")
        );
        assert!(EngineError::NoMapping {
            dataflow: DataflowId::new("WS"),
            detail: "CONV1 at batch 64".into(),
        }
        .to_string()
        .contains("WS"));
        assert!(EngineError::Serve(ServeError::Saturated)
            .to_string()
            .contains("full"));
        assert!(
            EngineError::Build(BuildError::UnknownCostModel("lp-28nm".into()))
                .to_string()
                .contains("lp-28nm")
        );
        assert!(EngineError::Cost(CostModelError::Unknown("x".into()))
            .to_string()
            .contains("cost model"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<EngineError>();
        check::<BuildError>();
    }
}
