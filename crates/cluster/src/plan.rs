//! Cluster-level (partition, mapping) co-optimization.
//!
//! Composes the partition space of [`crate::partition`] with the
//! per-array mapping optimizer of [`eyeriss_dataflow::search`]
//! (Section VI-C of the paper): for every feasible partition of a layer,
//! each distinct sub-problem is mapped optimally onto its array, and the
//! partition is scored by total energy and cluster delay under the
//! shared-DRAM contention model. The best `(partition, mapping)` pair is
//! picked per layer under an energy or energy-delay-product objective —
//! the TETRIS-style scheduling loop, one level above the paper's
//! single-array optimizer. The planner is generic over
//! [`&dyn Dataflow`](Dataflow): it co-optimizes any registered mapping
//! space, not just the builtin six.

use crate::contention::SharedDram;
use crate::partition::{enumerate, split, Partition, Tile};
use eyeriss_arch::access::LayerAccessProfile;
use eyeriss_arch::config::AcceleratorConfig;
use eyeriss_arch::cost::{CostDescriptor, CostModel, CostReport};
use eyeriss_dataflow::search::{MappingMemo, Objective};
use eyeriss_dataflow::{Dataflow, MappingCandidate};
use eyeriss_nn::LayerProblem;

/// One tile with its optimal per-array mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct TilePlan {
    /// The tile.
    pub tile: Tile,
    /// The energy-optimal mapping of that tile on one array.
    pub mapping: MappingCandidate,
}

/// The planned work of one array.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayPlan {
    /// Which array.
    pub array_id: usize,
    /// Planned tiles, executed sequentially.
    pub tiles: Vec<TilePlan>,
}

impl ArrayPlan {
    /// Delay proxy of this array: the sum of its tiles' mapping delays
    /// (MACs / active PEs, the Section VII-B delay model).
    pub fn delay(&self) -> f64 {
        self.tiles.iter().map(|t| t.mapping.delay()).sum()
    }

    /// Analytic delay of this array under `cost`: per-tile compute
    /// proxies floored by the model's per-level bandwidths (identical to
    /// [`ArrayPlan::delay`] for latency-transparent models).
    pub fn delay_under(&self, cost: &dyn CostModel) -> f64 {
        self.tiles
            .iter()
            .map(|t| cost.delay_of(&t.mapping.profile, t.mapping.active_pes))
            .sum()
    }

    /// Total analytic energy of this array's tiles under `cost`.
    pub fn energy(&self, cost: &dyn CostModel) -> f64 {
        self.tiles
            .iter()
            .map(|t| cost.energy_of(&t.mapping.profile))
            .sum()
    }
}

/// A fully planned layer: one partition, per-array optimal mappings and
/// the cluster-level cost model evaluated.
///
/// Serializable through [`crate::wire`] with a versioned schema, so a
/// serving plan cache can persist compiled plans across restarts and a
/// cold process re-executes them bit-exactly without a single mapping
/// search.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterPlan {
    /// The chosen partition.
    pub partition: Partition,
    /// Number of arrays planned for.
    pub arrays: usize,
    /// Which cost model priced this plan (identity + exact numeric
    /// fingerprint) — persisted with the plan, so reloads never cross-hit
    /// plans priced under different numbers.
    pub cost: CostDescriptor,
    /// Per-array plans, in array order (idle arrays have no tiles).
    pub per_array: Vec<ArrayPlan>,
    /// Total analytic energy across arrays (MAC units). Energy is
    /// additive — partitioning buys delay, not energy.
    pub energy: f64,
    /// Cluster delay: critical-path array delay, floored by the shared
    /// DRAM channel's aggregate transfer time.
    pub delay: f64,
    /// The shared-channel transfer component of [`ClusterPlan::delay`].
    pub dram_delay: f64,
}

impl ClusterPlan {
    /// Energy-delay product of the planned layer.
    pub fn edp(&self) -> f64 {
        self.energy * self.delay
    }

    /// Aggregate access profile across every planned tile.
    pub fn total_profile(&self) -> LayerAccessProfile {
        profile_of(&self.per_array)
    }

    /// Re-prices the plan into the unified [`CostReport`] vocabulary.
    /// Energies add across arrays; per-level transfer floors are the
    /// *per-array maximum* (arrays run in parallel, each owning private
    /// bandwidth at every level), applied on top of the plan's own
    /// cluster delay (critical path, shared-DRAM-floored).
    pub fn report(&self, cost: &dyn CostModel) -> CostReport {
        let per_array: Vec<LayerAccessProfile> = self
            .per_array
            .iter()
            .map(|a| {
                let mut p = LayerAccessProfile::new();
                for t in &a.tiles {
                    p.accumulate(&t.mapping.profile);
                }
                p
            })
            .collect();
        let refs: Vec<&LayerAccessProfile> = per_array.iter().collect();
        cost.report_parallel(&refs, self.delay)
    }

    /// True when the shared DRAM channel, not compute, bounds the delay.
    pub fn bandwidth_bound(&self) -> bool {
        self.dram_delay >= self.delay
    }

    /// The executor sub-problems this plan describes (each array's
    /// planned tiles, in array order), borrowed straight from the plan —
    /// no tile clones — so a runtime can execute a cached plan via
    /// [`crate::Cluster::execute`] without re-partitioning or
    /// re-searching.
    pub fn subproblems(&self) -> impl Iterator<Item = SubProblemView<'_>> {
        self.per_array.iter().map(|a| SubProblemView {
            array_id: a.array_id,
            tiles: &a.tiles,
        })
    }
}

/// Borrowed view of one array's planned work ([`ClusterPlan::subproblems`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubProblemView<'a> {
    /// Which array runs these tiles.
    pub array_id: usize,
    /// The planned tiles, executed sequentially on that array.
    pub tiles: &'a [TilePlan],
}

/// Sums the access profiles of every tile across `per_array`.
fn profile_of(per_array: &[ArrayPlan]) -> LayerAccessProfile {
    let mut p = LayerAccessProfile::new();
    for a in per_array {
        for t in &a.tiles {
            p.accumulate(&t.mapping.profile);
        }
    }
    p
}

/// Plans one specific `partition` of `problem` over `arrays` arrays of
/// configuration `hw`, optimizing each distinct sub-problem within
/// `df`'s mapping space. Returns `None` when the partition is infeasible
/// or any tile has no feasible mapping.
#[allow(clippy::too_many_arguments)]
pub fn plan_partition(
    df: &dyn Dataflow,
    partition: Partition,
    problem: &LayerProblem,
    arrays: usize,
    hw: &AcceleratorConfig,
    cost: &dyn CostModel,
    shared: &SharedDram,
    objective: Objective,
) -> Option<ClusterPlan> {
    let mut memo = MappingMemo::new(hw, cost, objective);
    plan_partition_memo(&mut memo, df, partition, problem, arrays, cost, shared)
}

/// [`plan_partition`] against a caller-owned [`MappingMemo`], so distinct
/// tile problems — which repeat both *within* a partition (balanced
/// chunking yields at most two distinct sizes per dimension) and
/// *across* the partitions a layer search enumerates — are each mapped
/// exactly once.
fn plan_partition_memo(
    memo: &mut MappingMemo<'_>,
    df: &dyn Dataflow,
    partition: Partition,
    problem: &LayerProblem,
    arrays: usize,
    cost: &dyn CostModel,
    shared: &SharedDram,
) -> Option<ClusterPlan> {
    let subs = split(partition, &problem.shape, problem.batch, arrays).ok()?;
    let mut per_array = Vec::with_capacity(subs.len());
    for sub in subs {
        let mut tiles = Vec::with_capacity(sub.tiles.len());
        for tile in sub.tiles {
            let mapping = memo.best(df, &LayerProblem::new(tile.shape, tile.n))?;
            tiles.push(TilePlan { tile, mapping });
        }
        per_array.push(ArrayPlan {
            array_id: sub.array_id,
            tiles,
        });
    }
    let energy: f64 = per_array.iter().map(|a| a.energy(cost)).sum();
    let compute_delay = per_array
        .iter()
        .map(|a| a.delay_under(cost))
        .fold(0.0f64, f64::max);
    let dram_delay = shared.transfer_delay(profile_of(&per_array).dram_accesses());
    Some(ClusterPlan {
        partition,
        arrays,
        cost: cost.descriptor(),
        per_array,
        energy,
        delay: compute_delay.max(dram_delay),
        dram_delay,
    })
}

/// Plans `problem` over the cluster, searching every feasible partition
/// and returning the best under `objective`. Returns `None` only when no
/// partition of this layer is feasible at all.
///
/// # Example
///
/// ```
/// use eyeriss_cluster::{plan_layer, SharedDram};
/// use eyeriss_dataflow::search::Objective;
/// use eyeriss_dataflow::{registry, DataflowKind};
/// use eyeriss_arch::{AcceleratorConfig, TableIv};
/// use eyeriss_nn::{LayerProblem, LayerShape};
///
/// let conv3 = LayerProblem::new(LayerShape::conv(384, 256, 15, 3, 1)?, 16);
/// let hw = AcceleratorConfig::eyeriss_chip();
/// let plan = plan_layer(
///     registry::builtin(DataflowKind::RowStationary), &conv3, 4, &hw,
///     &TableIv, &SharedDram::scaled(4),
///     Objective::EnergyDelayProduct,
/// ).expect("CONV3 partitions over 4 arrays");
/// assert_eq!(plan.arrays, 4);
/// assert!(plan.delay > 0.0);
/// # Ok::<(), eyeriss_nn::ShapeError>(())
/// ```
pub fn plan_layer(
    df: &dyn Dataflow,
    problem: &LayerProblem,
    arrays: usize,
    hw: &AcceleratorConfig,
    cost: &dyn CostModel,
    shared: &SharedDram,
    objective: Objective,
) -> Option<ClusterPlan> {
    let score = |p: &ClusterPlan| -> f64 { objective.score(p.energy, p.delay) };
    // One memo across every enumerated partition: sub-shapes recur from
    // partition to partition (idle splits, balanced chunk sizes), so the
    // shared memo turns the layer search into one scan per distinct tile.
    let mut memo = MappingMemo::new(hw, cost, objective);
    enumerate(&problem.shape, problem.batch, arrays)
        .into_iter()
        .filter_map(|p| plan_partition_memo(&mut memo, df, p, problem, arrays, cost, shared))
        .min_by(|a, b| score(a).partial_cmp(&score(b)).expect("finite scores"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeriss_arch::cost::TableIv;
    use eyeriss_dataflow::registry::builtin;
    use eyeriss_dataflow::DataflowKind;
    use eyeriss_nn::LayerShape;

    fn hw() -> AcceleratorConfig {
        AcceleratorConfig::eyeriss_chip()
    }

    fn rs() -> &'static dyn Dataflow {
        builtin(DataflowKind::RowStationary)
    }

    fn plan(
        partition: Partition,
        shape: &LayerShape,
        n: usize,
        arrays: usize,
    ) -> Option<ClusterPlan> {
        plan_partition(
            rs(),
            partition,
            &LayerProblem::new(*shape, n),
            arrays,
            &hw(),
            &TableIv,
            &SharedDram::scaled(arrays),
            Objective::Energy,
        )
    }

    #[test]
    fn batch_partition_divides_delay() {
        let conv3 = LayerShape::conv(384, 256, 15, 3, 1).unwrap();
        let one = plan(Partition::Batch, &conv3, 16, 1).unwrap();
        let four = plan(Partition::Batch, &conv3, 16, 4).unwrap();
        assert!(four.delay < one.delay * 0.5, "no speedup from 4 arrays");
        // Energy does not parallelize away; mapping smaller batches can
        // shift it somewhat, but it must stay in the same regime.
        assert!((0.5..2.0).contains(&(four.energy / one.energy)));
    }

    #[test]
    fn plan_layer_picks_the_best_partition() {
        let conv3 = LayerProblem::new(LayerShape::conv(384, 256, 15, 3, 1).unwrap(), 16);
        let shared = SharedDram::scaled(4);
        let best =
            plan_layer(rs(), &conv3, 4, &hw(), &TableIv, &shared, Objective::Energy).unwrap();
        assert_eq!(best.cost, TableIv.descriptor(), "plan records its pricer");
        for p in enumerate(&conv3.shape, 16, 4) {
            if let Some(candidate) = plan_partition(
                rs(),
                p,
                &conv3,
                4,
                &hw(),
                &TableIv,
                &shared,
                Objective::Energy,
            ) {
                assert!(best.energy <= candidate.energy * (1.0 + 1e-9), "{p}");
            }
        }
    }

    #[test]
    fn fc_layer_plans_via_channel_partition() {
        let fc = LayerProblem::new(LayerShape::fully_connected(4096, 256, 6).unwrap(), 16);
        let plan = plan_layer(
            rs(),
            &fc,
            8,
            &hw(),
            &TableIv,
            &SharedDram::scaled(8),
            Objective::Energy,
        )
        .unwrap();
        assert_eq!(plan.per_array.len(), 8);
        assert!(plan.per_array.iter().all(|a| !a.tiles.is_empty()));
    }

    #[test]
    fn scarce_shared_bandwidth_becomes_the_bound() {
        let conv1 = LayerProblem::new(LayerShape::conv(96, 3, 227, 11, 4).unwrap(), 4);
        let p = plan_partition(
            rs(),
            Partition::OfmapChannel,
            &conv1,
            4,
            &hw(),
            &TableIv,
            &SharedDram::new(0.001),
            Objective::EnergyDelayProduct,
        )
        .unwrap();
        assert!(p.bandwidth_bound());
        assert!(p.delay >= p.dram_delay);
    }

    #[test]
    fn batch_one_rejects_batch_partition_but_plans_others() {
        let conv3 = LayerShape::conv(384, 256, 15, 3, 1).unwrap();
        assert!(plan(Partition::Batch, &conv3, 1, 4).is_none());
        assert!(plan(Partition::OfmapChannel, &conv3, 1, 4).is_some());
        assert!(plan(Partition::FmapTile, &conv3, 1, 4).is_some());
    }

    #[test]
    fn profile_aggregates_all_tiles() {
        let conv3 = LayerShape::conv(384, 256, 15, 3, 1).unwrap();
        let p = plan(Partition::OfmapChannel, &conv3, 4, 4).unwrap();
        let profile = p.total_profile();
        assert_eq!(profile.alu_ops, conv3.macs(4) as f64);
        assert!(profile.is_valid());
        // The unified report re-prices the same profile: totals agree
        // bit-exactly with the plan's energy accounting order-for-order
        // up to the per-array association, and the delay baseline is the
        // plan's own cluster delay.
        let report = p.report(&TableIv);
        assert!((report.total_energy - p.energy).abs() < 1e-6 * p.energy.max(1.0));
        assert_eq!(report.delay, p.delay);
        assert_eq!(report.model, TableIv.descriptor());
    }
}
