//! Array health tracking: fault strikes and quarantine.
//!
//! A [`ClusterHealth`] is the shared, lock-free health record of one
//! cluster's arrays. The executor notes a **strike** against an array on
//! every detected fault (ABFT checksum mismatch, injected crash) and
//! clears strikes when the array completes a clean execution, so the
//! strike count distinguishes *transient* faults (one strike, then
//! clean) from *persistent* ones (strikes accumulate across retries).
//! The serving supervisor quarantines an array whose strikes reach its
//! threshold; quarantined arrays drop out of
//! [`healthy_indices`](ClusterHealth::healthy_indices) and the cluster
//! re-plans onto the survivors.
//!
//! The record is shared by `Arc` across a worker's cluster *and* its
//! restarts: a supervisor that respawns a dead worker hands the fresh
//! cluster the same `ClusterHealth`, so a persistently-bad array stays
//! quarantined through the restart.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Shared health state for up to 64 arrays: a quarantine bitmask plus
/// per-array strike counters. All operations are lock-free.
#[derive(Debug)]
pub struct ClusterHealth {
    arrays: usize,
    /// Bit `i` set ⇒ array `i` is quarantined.
    quarantined: AtomicU64,
    strikes: Vec<AtomicU32>,
}

impl ClusterHealth {
    /// Fresh health record: every array healthy, zero strikes.
    ///
    /// # Panics
    ///
    /// Panics if `arrays` is zero or exceeds 64 (the bitmask width).
    pub fn new(arrays: usize) -> Self {
        assert!(arrays > 0, "health record needs at least one array");
        assert!(arrays <= 64, "quarantine bitmask holds at most 64 arrays");
        ClusterHealth {
            arrays,
            quarantined: AtomicU64::new(0),
            strikes: (0..arrays).map(|_| AtomicU32::new(0)).collect(),
        }
    }

    /// Number of arrays tracked (healthy or not).
    pub fn arrays(&self) -> usize {
        self.arrays
    }

    /// Is `array` quarantined?
    pub fn is_quarantined(&self, array: usize) -> bool {
        self.quarantined.load(Ordering::Acquire) & (1u64 << array) != 0
    }

    /// Quarantines `array`; returns `true` if this call newly set the
    /// bit (callers use this to count each quarantine exactly once).
    pub fn quarantine(&self, array: usize) -> bool {
        assert!(array < self.arrays, "array index out of range");
        let bit = 1u64 << array;
        self.quarantined.fetch_or(bit, Ordering::AcqRel) & bit == 0
    }

    /// Number of quarantined arrays.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.load(Ordering::Acquire).count_ones() as usize
    }

    /// Number of healthy (non-quarantined) arrays.
    pub fn healthy_count(&self) -> usize {
        self.arrays - self.quarantined_count()
    }

    /// Indices of the healthy arrays, ascending.
    pub fn healthy_indices(&self) -> Vec<usize> {
        let mask = self.quarantined.load(Ordering::Acquire);
        (0..self.arrays)
            .filter(|i| mask & (1u64 << i) == 0)
            .collect()
    }

    /// Records one fault strike against `array`; returns the new count.
    pub fn note_strike(&self, array: usize) -> u32 {
        self.strikes[array].fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Current strike count for `array`.
    pub fn strikes(&self, array: usize) -> u32 {
        self.strikes[array].load(Ordering::Acquire)
    }

    /// Clears `array`'s strikes after a clean execution — a transient
    /// fault followed by a successful retry leaves no record, so only
    /// *consecutive* failures (persistent faults) reach the quarantine
    /// threshold.
    pub fn clear_strikes(&self, array: usize) {
        self.strikes[array].store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_record_is_fully_healthy() {
        let h = ClusterHealth::new(4);
        assert_eq!(h.healthy_count(), 4);
        assert_eq!(h.healthy_indices(), vec![0, 1, 2, 3]);
        assert_eq!(h.quarantined_count(), 0);
        assert!(!h.is_quarantined(3));
    }

    #[test]
    fn quarantine_sets_once_and_shrinks_healthy_set() {
        let h = ClusterHealth::new(4);
        assert!(h.quarantine(2), "first call newly sets");
        assert!(!h.quarantine(2), "second call is a no-op");
        assert!(h.is_quarantined(2));
        assert_eq!(h.healthy_indices(), vec![0, 1, 3]);
        assert_eq!(h.healthy_count(), 3);
    }

    #[test]
    fn strikes_accumulate_and_clear() {
        let h = ClusterHealth::new(2);
        assert_eq!(h.note_strike(1), 1);
        assert_eq!(h.note_strike(1), 2);
        assert_eq!(h.strikes(1), 2);
        assert_eq!(h.strikes(0), 0, "strikes are per-array");
        h.clear_strikes(1);
        assert_eq!(h.strikes(1), 0);
        assert_eq!(h.note_strike(1), 1, "counting restarts after a clean run");
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn rejects_more_than_bitmask_width() {
        let _ = ClusterHealth::new(65);
    }
}
