//! Error type for cluster partitioning and execution.

use eyeriss_dataflow::DataflowError;
use eyeriss_sim::SimError;
use std::fmt;

/// Why a partition could not be formed or executed.
#[derive(Debug, Clone)]
pub enum ClusterError {
    /// The partition cannot split this layer over this many arrays
    /// (e.g. batch partitioning with fewer images than arrays).
    Infeasible(String),
    /// An array's simulator failed on its sub-problem.
    Sim(SimError),
    /// The dataflow layer rejected a mapping (params mismatch, unknown
    /// dataflow, invalid candidate).
    Dataflow(DataflowError),
    /// ABFT checksum verification caught corrupted psums from this
    /// array. Retryable: a transient flip will not recur, a persistent
    /// one accumulates strikes until the array is quarantined.
    Corrupted {
        /// Cluster-local index of the faulty array.
        array: usize,
    },
    /// The array failed outright during execution (injected crash or
    /// hardware loss). Retryable on the remaining arrays after
    /// quarantine.
    Crashed {
        /// Cluster-local index of the crashed array.
        array: usize,
    },
}

impl ClusterError {
    /// Builds an infeasibility error.
    pub fn infeasible(msg: impl Into<String>) -> Self {
        ClusterError::Infeasible(msg.into())
    }
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Infeasible(m) => write!(f, "infeasible partition: {m}"),
            ClusterError::Sim(e) => write!(f, "array simulation failed: {e}"),
            ClusterError::Dataflow(e) => write!(f, "dataflow rejected the mapping: {e}"),
            ClusterError::Corrupted { array } => {
                write!(
                    f,
                    "ABFT checksum mismatch: array {array} produced corrupted psums"
                )
            }
            ClusterError::Crashed { array } => write!(f, "array {array} crashed mid-execution"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<SimError> for ClusterError {
    fn from(e: SimError) -> Self {
        ClusterError::Sim(e)
    }
}

impl From<DataflowError> for ClusterError {
    fn from(e: DataflowError) -> Self {
        ClusterError::Dataflow(e)
    }
}
