//! Shared-DRAM bandwidth contention across arrays.
//!
//! A multi-array cluster does not get one private DRAM channel per array:
//! the arrays share membership of one memory system. The model here is
//! the cluster-level analogue of [`eyeriss_sim::dram::DramModel`]'s
//! double-buffering argument: every array's DRAM traffic must stream
//! through one shared channel, overlapped with the cluster's compute.
//! Only the excess — total transfer cycles beyond the slowest array's
//! compute — stalls the cluster.

/// A shared, bandwidth-limited cluster DRAM channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharedDram {
    words_per_cycle: f64,
}

impl SharedDram {
    /// Creates a shared channel delivering `words_per_cycle` 16-bit words
    /// per cluster cycle.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not positive.
    pub fn new(words_per_cycle: f64) -> Self {
        assert!(
            words_per_cycle > 0.0 && words_per_cycle.is_finite(),
            "bandwidth must be positive"
        );
        SharedDram { words_per_cycle }
    }

    /// The fabricated chip's interface (4 words/cycle), shared by the
    /// whole cluster — the pessimistic default that makes bandwidth
    /// scaling visible in sweeps.
    pub fn eyeriss_chip() -> Self {
        SharedDram::new(4.0)
    }

    /// A channel scaled to `arrays` (each array gets chip-class
    /// bandwidth; contention only from imbalance).
    pub fn scaled(arrays: usize) -> Self {
        SharedDram::new(4.0 * arrays.max(1) as f64)
    }

    /// Channel bandwidth in words per cluster cycle.
    pub fn words_per_cycle(&self) -> f64 {
        self.words_per_cycle
    }

    /// Cycles to stream `words` through the shared channel (rounded up).
    pub fn transfer_cycles(&self, words: u64) -> u64 {
        (words as f64 / self.words_per_cycle).ceil() as u64
    }

    /// Stall cycles the cluster pays when `total_words` of aggregate DRAM
    /// traffic overlap `compute_cycles` of (critical-path) array compute.
    pub fn contention_stall(&self, total_words: u64, compute_cycles: u64) -> u64 {
        self.transfer_cycles(total_words)
            .saturating_sub(compute_cycles)
    }

    /// Analytic form of [`SharedDram::contention_stall`] for the planner's
    /// fractional access counts.
    pub fn transfer_delay(&self, words: f64) -> f64 {
        words / self.words_per_cycle
    }
}

impl Default for SharedDram {
    fn default() -> Self {
        SharedDram::eyeriss_chip()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_is_excess_over_compute() {
        let d = SharedDram::new(2.0);
        assert_eq!(d.contention_stall(100, 10), 40);
        assert_eq!(d.contention_stall(100, 1000), 0);
    }

    #[test]
    fn scaled_grows_with_arrays() {
        assert_eq!(SharedDram::scaled(4).words_per_cycle(), 16.0);
        assert_eq!(SharedDram::scaled(0).words_per_cycle(), 4.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_bandwidth() {
        let _ = SharedDram::new(0.0);
    }
}
