//! The parallel cluster executor.
//!
//! Runs one partitioned layer across `M` independent
//! [`eyeriss_sim::Accelerator`]s — one OS thread per array via
//! `eyeriss-par` — then reassembles the per-tile psums into the full
//! ofmap **bit-exactly** and aggregates per-array statistics under the
//! shared-DRAM contention model.

use crate::contention::SharedDram;
use crate::error::ClusterError;
use crate::health::ClusterHealth;
use crate::partition::{split, Partition, Tile};
use crate::plan::ClusterPlan;
use crate::stats::{merge_stats, ClusterStats};
use eyeriss_arch::AcceleratorConfig;
use eyeriss_nn::{abft, reference, Fix16, LayerProblem, LayerShape, Tensor4};
use eyeriss_sim::fault::{ArrayInjection, FaultInjector, FaultKind};
use eyeriss_sim::passes::RsMapping;
use eyeriss_sim::{Accelerator, SimStats};
use eyeriss_telemetry::{Counter, Gauge, Histogram, Telemetry};
use std::borrow::Cow;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// The result of one cluster-level layer execution.
#[derive(Debug, Clone)]
pub struct ClusterRun {
    /// The partition that was executed.
    pub partition: Partition,
    /// Full-precision psums `[N][M][E][E]`, bit-exact against a
    /// single-array [`Accelerator::run_conv`] of the same layer.
    pub psums: Tensor4<i32>,
    /// Per-array measurements plus contention accounting.
    pub stats: ClusterStats,
}

impl ClusterRun {
    /// The quantized, ReLU-activated ofmap (what the cluster writes back).
    pub fn ofmap(&self) -> Tensor4<Fix16> {
        reference::quantize(&self.psums, true)
    }
}

/// A cluster of identical Eyeriss arrays behind one shared DRAM channel.
///
/// # Example
///
/// ```
/// use eyeriss_cluster::{Cluster, Partition};
/// use eyeriss_arch::AcceleratorConfig;
/// use eyeriss_nn::{reference, synth, LayerProblem, LayerShape};
/// use eyeriss_sim::Accelerator;
///
/// let shape = LayerShape::conv(8, 3, 13, 3, 2)?;
/// let problem = LayerProblem::new(shape, 4);
/// let input = synth::ifmap(&shape, 4, 1);
/// let weights = synth::filters(&shape, 2);
/// let bias = synth::biases(&shape, 3);
///
/// let cluster = Cluster::new(4, AcceleratorConfig::eyeriss_chip());
/// let run = cluster.execute_partition(Partition::Batch, &problem, &input, &weights, &bias)?;
/// assert_eq!(run.psums, reference::conv_accumulate(&shape, 4, &input, &weights, &bias));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    arrays: usize,
    config: AcceleratorConfig,
    shared_dram: SharedDram,
    zero_gating: bool,
    rlc: bool,
    /// Pooled per-worker execution contexts: one warmed [`Accelerator`]
    /// (scratch arena + mapping memo) per worker thread, checked out for
    /// the duration of one layer execution and returned afterwards, so
    /// back-to-back layers reuse buffers instead of reallocating them.
    /// Shared across clones (a cloned handle serves the same pool).
    ctx_pool: Arc<Mutex<Vec<Accelerator>>>,
    /// Where spans and cluster metrics are recorded (defaults to the
    /// disabled [`Telemetry::global`] instance).
    tele: Telemetry,
    /// Pre-resolved handles so the execution hot path never takes the
    /// registry lock.
    contention_stalls: Counter,
    reassemble_ns: Histogram,
    /// Shared array health: strikes and quarantine. Execution runs on
    /// the healthy subset only; an `Arc` lets a serving supervisor keep
    /// quarantine decisions across worker restarts.
    health: Arc<ClusterHealth>,
    /// Seeded fault injector (chaos testing); `None` ⇒ zero-cost.
    faults: Option<FaultInjector>,
    /// Offset added to local array indices when polling the injector,
    /// so fault specs can target one fleet-global array across a pool
    /// of per-worker clusters.
    array_base: usize,
    /// ABFT checksum verification of every tile's psums (off by
    /// default; costs one reference accumulator per filter group, see
    /// [`abft::checksum_macs`]).
    abft: bool,
    faults_detected: Counter,
    quarantined_gauge: Gauge,
}

impl Cluster {
    /// Creates a cluster of `arrays` identical arrays.
    ///
    /// # Panics
    ///
    /// Panics if `arrays` is zero.
    pub fn new(arrays: usize, config: AcceleratorConfig) -> Self {
        assert!(arrays > 0, "cluster needs at least one array");
        let tele = Telemetry::global().clone();
        let contention_stalls = tele.counter("cluster.contention_stalls");
        let reassemble_ns = tele.histogram("cluster.reassemble_ns");
        let faults_detected = tele.counter("sim.faults_detected");
        let quarantined_gauge = tele.gauge("cluster.quarantined_arrays");
        Cluster {
            arrays,
            config,
            shared_dram: SharedDram::eyeriss_chip(),
            zero_gating: false,
            rlc: false,
            ctx_pool: Arc::new(Mutex::new(Vec::new())),
            tele,
            contention_stalls,
            reassemble_ns,
            health: Arc::new(ClusterHealth::new(arrays)),
            faults: None,
            array_base: 0,
            abft: false,
            faults_detected,
            quarantined_gauge,
        }
    }

    /// Routes this cluster's spans (`cluster.execute`, per-array
    /// `cluster.array`, `cluster.reassemble` — idle time is the gap
    /// between consecutive array spans) and metrics
    /// (`cluster.contention_stalls`, `cluster.reassemble_ns`) to `tele`
    /// instead of the global instance. Pooled execution contexts are
    /// rebuilt so per-array `sim.*` spans land in the same instance.
    pub fn with_telemetry(mut self, tele: Telemetry) -> Self {
        self.contention_stalls = tele.counter("cluster.contention_stalls");
        self.reassemble_ns = tele.histogram("cluster.reassemble_ns");
        self.faults_detected = tele.counter("sim.faults_detected");
        self.quarantined_gauge = tele.gauge("cluster.quarantined_arrays");
        self.tele = tele;
        self.ctx_pool = Arc::new(Mutex::new(Vec::new()));
        self
    }

    /// Attaches a seeded fault injector (chaos testing). `None` — the
    /// default — keeps execution fault-free at zero cost.
    pub fn with_faults(mut self, faults: Option<FaultInjector>) -> Self {
        self.faults = faults;
        self
    }

    /// Offsets local array indices by `base` when polling the fault
    /// injector, making injector scopes fleet-global across a pool of
    /// per-worker clusters (worker `w` with `A` arrays uses `w · A`).
    pub fn array_base(mut self, base: usize) -> Self {
        self.array_base = base;
        self
    }

    /// Enables ABFT checksum verification of every executed tile's
    /// psums. A mismatch fails the run with [`ClusterError::Corrupted`]
    /// and strikes the offending array.
    pub fn abft(mut self, on: bool) -> Self {
        self.abft = on;
        self
    }

    /// Shares an existing health record (strikes + quarantine), e.g.
    /// one that must survive a supervisor's worker restart.
    ///
    /// # Panics
    ///
    /// Panics if the record tracks a different array count.
    pub fn with_health(mut self, health: Arc<ClusterHealth>) -> Self {
        assert_eq!(
            health.arrays(),
            self.arrays,
            "health record array count mismatch"
        );
        self.health = health;
        self
    }

    /// The shared health record.
    pub fn health(&self) -> &Arc<ClusterHealth> {
        &self.health
    }

    /// Number of healthy (non-quarantined) arrays execution runs on.
    pub fn healthy_arrays(&self) -> usize {
        self.health.healthy_count()
    }

    /// Quarantines `array` (cluster-local index); returns `true` when
    /// newly quarantined. Updates the `cluster.quarantined_arrays`
    /// gauge. Execution thereafter runs on the surviving subset — plans
    /// must be recompiled for the new width.
    pub fn quarantine(&self, array: usize) -> bool {
        let newly = self.health.quarantine(array);
        if newly {
            self.quarantined_gauge.inc();
        }
        newly
    }

    /// Builds one array's execution context with this cluster's feature
    /// flags.
    fn new_ctx(&self) -> Accelerator {
        Accelerator::new(self.config)
            .zero_gating(self.zero_gating)
            .rlc(self.rlc)
            .telemetry(self.tele.clone())
    }

    /// Checks a pooled context out (or builds one on first use). The
    /// pool holds plain reusable arenas, so a panicking worker cannot
    /// leave it in an invalid state — recover from poisoning rather
    /// than cascading the panic across the pool.
    fn checkout_ctx(&self) -> Accelerator {
        self.ctx_pool
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_else(|| self.new_ctx())
    }

    /// Overrides the shared DRAM channel model.
    pub fn shared_dram(mut self, dram: SharedDram) -> Self {
        self.shared_dram = dram;
        self
    }

    /// Enables zero-gating on every array.
    pub fn zero_gating(mut self, on: bool) -> Self {
        self.zero_gating = on;
        // Pooled contexts bake the feature flags in; start a fresh pool.
        self.ctx_pool = Arc::new(Mutex::new(Vec::new()));
        self
    }

    /// Enables run-length compression on every array's DRAM traffic.
    pub fn rlc(mut self, on: bool) -> Self {
        self.rlc = on;
        self.ctx_pool = Arc::new(Mutex::new(Vec::new()));
        self
    }

    /// Number of arrays.
    pub fn arrays(&self) -> usize {
        self.arrays
    }

    /// The per-array accelerator configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Runs one CONV or FC layer problem partitioned over the cluster
    /// with an explicitly chosen partition.
    ///
    /// Each array executes its tiles sequentially on a private
    /// [`Accelerator`]; arrays run concurrently. The reassembled psums
    /// are bit-exact against the single-array simulator because every
    /// partition is output-disjoint (see [`crate::partition`]).
    ///
    /// # Errors
    ///
    /// Fails if the partition cannot split this layer over the cluster,
    /// or any array's simulation fails.
    ///
    /// # Panics
    ///
    /// Panics if tensor dimensions disagree with the problem.
    pub fn execute_partition(
        &self,
        partition: Partition,
        problem: &LayerProblem,
        input: &Tensor4<Fix16>,
        weights: &Tensor4<Fix16>,
        bias: &[Fix16],
    ) -> Result<ClusterRun, ClusterError> {
        let (shape, n_batch) = (&problem.shape, problem.batch);
        assert_eq!(
            input.dims(),
            [n_batch, shape.in_channels(), shape.h, shape.h],
            "ifmap dims mismatch"
        );
        assert_eq!(
            weights.dims(),
            [shape.m, shape.c, shape.r, shape.r],
            "filter dims mismatch"
        );
        assert_eq!(bias.len(), shape.m, "bias length mismatch");

        let healthy = self.health.healthy_indices();
        let subs = split(partition, shape, n_batch, healthy.len())?;
        let work: Vec<Vec<(&Tile, Option<RsMapping>)>> = subs
            .iter()
            .map(|s| s.tiles.iter().map(|t| (t, None)).collect())
            .collect();
        self.execute_work(
            partition, shape, n_batch, &work, &healthy, input, weights, bias,
        )
    }

    /// Executes one layer problem from a precompiled [`ClusterPlan`] —
    /// the serving path: partitioning and mapping search already happened
    /// at plan-compile time (possibly in a *previous process*, with the
    /// plan reloaded from disk), so this only validates that the plan
    /// matches `problem` and this cluster's width, then runs the tiles.
    ///
    /// # Errors
    ///
    /// Fails with [`ClusterError::Infeasible`] if the plan was compiled
    /// for a different layer shape, batch size or array count, or if any
    /// array's simulation fails.
    ///
    /// # Panics
    ///
    /// Panics if tensor dimensions disagree with the problem.
    pub fn execute(
        &self,
        plan: &ClusterPlan,
        problem: &LayerProblem,
        input: &Tensor4<Fix16>,
        weights: &Tensor4<Fix16>,
        bias: &[Fix16],
    ) -> Result<ClusterRun, ClusterError> {
        let healthy = self.health.healthy_indices();
        if plan.arrays != healthy.len() {
            return Err(ClusterError::infeasible(format!(
                "plan compiled for {} arrays, cluster has {} healthy",
                plan.arrays,
                healthy.len()
            )));
        }
        validate_coverage(
            plan.per_array
                .iter()
                .flat_map(|a| &a.tiles)
                .map(|t| &t.tile),
            &problem.shape,
            problem.batch,
        )?;
        // The plan's winning per-tile mappings execute directly — no
        // repeat mapping search at request time. Mappings from another
        // dataflow's space, or compiled against a physically larger grid
        // (pre-filtered here) or larger scratchpad/buffer capacities
        // (caught at execution), fall back to this cluster's own
        // row-stationary search.
        let work: Vec<Vec<(&Tile, Option<RsMapping>)>> = plan
            .per_array
            .iter()
            .map(|a| {
                a.tiles
                    .iter()
                    .map(|t| {
                        let mapping = RsMapping::from_params(&t.mapping.params)
                            .filter(|m| self.mapping_fits(m, &t.tile.shape));
                        (&t.tile, mapping)
                    })
                    .collect()
            })
            .collect();
        self.execute_work(
            plan.partition,
            &problem.shape,
            problem.batch,
            &work,
            &healthy,
            input,
            weights,
            bias,
        )
    }

    /// True when a planned mapping fits this cluster's per-array
    /// resources ([`RsMapping::fits`] — the enumerator's own grid and
    /// RF feasibility constraints). Guards against executing a plan
    /// compiled for a physically larger array — the psum interleaving
    /// in particular is not re-checked at execution, so it must be
    /// screened here.
    fn mapping_fits(&self, m: &RsMapping, shape: &LayerShape) -> bool {
        m.fits(shape, &self.config)
    }

    /// Runs prepared per-array tile lists — worker threads with pooled
    /// execution contexts — and reassembles psums and statistics. Shared
    /// tail of [`Cluster::execute_partition`] and [`Cluster::execute`].
    ///
    /// `healthy` maps work-list positions to physical array indices:
    /// the `i`-th tile list runs as array `healthy[i]`, so fault
    /// injection, strikes and quarantine stay attached to physical
    /// arrays while work is laid out over the surviving subset.
    #[allow(clippy::too_many_arguments)]
    fn execute_work(
        &self,
        partition: Partition,
        shape: &LayerShape,
        n_batch: usize,
        work: &[Vec<(&Tile, Option<RsMapping>)>],
        healthy: &[usize],
        input: &Tensor4<Fix16>,
        weights: &Tensor4<Fix16>,
        bias: &[Fix16],
    ) -> Result<ClusterRun, ClusterError> {
        type TileOut<'t> = (&'t Tile, Tensor4<i32>);
        type ArrayWork<'w, 't> = (usize, &'w [(&'t Tile, Option<RsMapping>)]);
        debug_assert_eq!(work.len(), healthy.len());
        let _exec_span = self
            .tele
            .span_with("cluster.execute", "cluster", work.len() as u64);
        // Array work runs on pool threads, which do not inherit this
        // thread's ambient trace context — capture it here and install
        // it in each worker so `cluster.array` (and the `sim.*` spans
        // beneath it) parent under `cluster.execute`.
        let ctx = self.tele.current_context();
        let indexed: Vec<ArrayWork<'_, '_>> = work
            .iter()
            .zip(healthy)
            .map(|(w, &phys)| (phys, w.as_slice()))
            .collect();
        let per_array: Vec<Result<(Vec<TileOut<'_>>, SimStats), ClusterError>> =
            eyeriss_par::par_map_slice_with(
                &indexed,
                || PooledCtx::checkout(self),
                |pooled, &(array_index, tiles)| {
                    let _ctx_guard = self.tele.in_context(ctx);
                    let _busy_span =
                        self.tele
                            .span_with("cluster.array", "cluster", array_index as u64);
                    // One injector run per array per layer execution;
                    // `None` when injection is disabled (the fault-free
                    // hot path pays this single branch).
                    let inject: Option<ArrayInjection> = match &self.faults {
                        Some(f) if !tiles.is_empty() => {
                            Some(f.poll_array(self.array_base + array_index))
                        }
                        _ => None,
                    };
                    let mut stats = SimStats::default();
                    if let Some(inj) = &inject {
                        if inj.crash {
                            self.health.note_strike(array_index);
                            return Err(ClusterError::Crashed { array: array_index });
                        }
                        if inj.stall {
                            // A straggler, not an error: real wall-clock
                            // delay plus visible stall cycles.
                            std::thread::sleep(Duration::from_micros(500));
                            stats.stall_cycles += STALL_PENALTY_CYCLES;
                        }
                    }
                    let acc = pooled.get();
                    let mut outs = Vec::with_capacity(tiles.len());
                    for (tile_index, &(tile, mapping)) in tiles.iter().enumerate() {
                        let mut t_input = tile_input(input, shape, tile);
                        let mut t_weights = tile_weights(weights, shape, tile);
                        let t_bias = &bias[tile.m0..tile.m0 + tile.shape.m];
                        // ABFT checksum over the *pristine* operands —
                        // formed before any injected corruption, so
                        // corrupted weights/ifmaps are caught through
                        // the psums they produce.
                        let expected = self.abft.then(|| {
                            abft::expected_sum(&tile.shape, tile.n, &t_input, &t_weights, t_bias)
                        });
                        if tile_index == 0 {
                            if let Some(inj) = &inject {
                                for c in &inj.corruptions {
                                    match c.kind {
                                        FaultKind::WeightBitFlip => {
                                            flip_word(t_weights.to_mut().as_mut_slice(), c.salt)
                                        }
                                        FaultKind::DramCorrupt => {
                                            flip_word(t_input.to_mut().as_mut_slice(), c.salt)
                                        }
                                        _ => {}
                                    }
                                }
                            }
                        }
                        // A planned mapping that proves infeasible on
                        // *this* cluster's capacities (e.g. a plan
                        // compiled against a larger RF or buffer) falls
                        // back to the local search, matching the
                        // pre-planned-execution behavior for foreign
                        // plans instead of failing the request.
                        let planned = mapping.and_then(|m| {
                            acc.run_conv_planned(
                                m,
                                &tile.shape,
                                tile.n,
                                &t_input,
                                &t_weights,
                                t_bias,
                            )
                            .ok()
                        });
                        let mut run = match planned {
                            Some(run) => run,
                            None => {
                                acc.run_conv(&tile.shape, tile.n, &t_input, &t_weights, t_bias)?
                            }
                        };
                        if tile_index == 0 {
                            if let Some(inj) = &inject {
                                for c in &inj.corruptions {
                                    if c.kind == FaultKind::PsumBitFlip {
                                        flip_psum(run.psums.as_mut_slice(), c.salt);
                                    }
                                }
                            }
                        }
                        if let Some(expected) = expected {
                            if expected != abft::actual_sum(&run.psums) {
                                self.faults_detected.inc();
                                self.health.note_strike(array_index);
                                return Err(ClusterError::Corrupted { array: array_index });
                            }
                        }
                        merge_stats(&mut stats, &run.stats);
                        outs.push((tile, run.psums));
                    }
                    // A clean completion wipes transient strikes: only
                    // *consecutive* failures reach the quarantine
                    // threshold.
                    self.health.clear_strikes(array_index);
                    Ok((outs, stats))
                },
            );

        let mut psums = Tensor4::zeros([n_batch, shape.m, shape.e, shape.e]);
        let mut stats = ClusterStats::default();
        let reassemble_started = self.tele.enabled().then(Instant::now);
        let reassemble_span = self.tele.span("cluster.reassemble", "cluster");
        for result in per_array {
            let (outs, array_stats) = result?;
            stats.per_array.push(array_stats);
            for (tile, tile_psums) in outs {
                // Row-contiguous reassembly: one bounds check per kept
                // row instead of four index multiplications per element.
                for z in 0..tile.n {
                    for f in 0..tile.shape.m {
                        for y in 0..tile.keep_y {
                            let dst = psums.row_mut(tile.img0 + z, tile.m0 + f, tile.y0 + y);
                            dst[tile.x0..tile.x0 + tile.keep_x]
                                .copy_from_slice(&tile_psums.row(z, f, y)[..tile.keep_x]);
                        }
                    }
                }
            }
        }

        drop(reassemble_span);
        if let Some(t0) = reassemble_started {
            self.reassemble_ns.record_duration(t0.elapsed());
        }

        // Shared-channel contention on top of the critical-path array.
        stats.contention_stalls = self
            .shared_dram
            .contention_stall(stats.dram_words(), stats.critical_cycles());
        self.contention_stalls.add(stats.contention_stalls);

        Ok(ClusterRun {
            partition,
            psums,
            stats,
        })
    }
}

/// Stall cycles charged to an array when a [`FaultKind::Stall`] fires —
/// a fixed straggler penalty, visible in the run's statistics.
const STALL_PENALTY_CYCLES: u64 = 100_000;

/// Flips one seed-chosen bit of one seed-chosen Q8.8 word in `words`.
fn flip_word(words: &mut [Fix16], salt: u64) {
    if words.is_empty() {
        return;
    }
    let idx = (salt % words.len() as u64) as usize;
    let bit = ((salt >> 48) % 16) as u32;
    words[idx] = Fix16::from_raw(words[idx].raw() ^ (1i16 << bit));
}

/// Flips one seed-chosen bit of one seed-chosen psum accumulator.
fn flip_psum(psums: &mut [i32], salt: u64) {
    if psums.is_empty() {
        return;
    }
    let idx = (salt % psums.len() as u64) as usize;
    let bit = ((salt >> 48) % 32) as u32;
    psums[idx] ^= 1i32 << bit;
}

/// A pooled execution context checked out of a [`Cluster`]'s pool for
/// the duration of one worker's run; returned on drop so the next layer
/// reuses its scratch arena and mapping memo.
struct PooledCtx<'a> {
    pool: &'a Mutex<Vec<Accelerator>>,
    acc: Option<Accelerator>,
}

impl<'a> PooledCtx<'a> {
    fn checkout(cluster: &'a Cluster) -> Self {
        PooledCtx {
            pool: &cluster.ctx_pool,
            acc: Some(cluster.checkout_ctx()),
        }
    }

    fn get(&mut self) -> &mut Accelerator {
        self.acc.as_mut().expect("context present until drop")
    }
}

impl Drop for PooledCtx<'_> {
    fn drop(&mut self) {
        if let (Some(acc), Ok(mut pool)) = (self.acc.take(), self.pool.lock()) {
            pool.push(acc);
        }
    }
}

/// Extracts the ifmap slice a tile needs: its image range and — for
/// spatial tiles — the halo-exact window starting at ofmap row/column
/// `(y0, x0)`, zero-padded where a square-padded edge tile reads past the
/// plane (those outputs are cropped on reassembly). A tile covering the
/// whole input borrows it (no copy at all).
fn tile_input<'a>(
    input: &'a Tensor4<Fix16>,
    orig: &LayerShape,
    tile: &Tile,
) -> Cow<'a, Tensor4<Fix16>> {
    let s = &tile.shape;
    if tile.y0 == 0 && tile.x0 == 0 && s.h == orig.h && tile.img0 == 0 && tile.n == input.dims()[0]
    {
        return Cow::Borrowed(input);
    }
    let (row0, col0) = (tile.y0 * orig.u, tile.x0 * orig.u);
    // Row-contiguous extraction: copy the in-bounds span of each ifmap
    // row; rows and columns past a square-padded edge stay zero.
    let mut t = Tensor4::zeros([tile.n, s.in_channels(), s.h, s.h]);
    let cols = s.h.min(orig.h.saturating_sub(col0));
    if cols == 0 {
        return Cow::Owned(t);
    }
    for z in 0..tile.n {
        for c in 0..s.in_channels() {
            for i in 0..s.h.min(orig.h.saturating_sub(row0)) {
                let src = input.row(tile.img0 + z, c, row0 + i);
                t.row_mut(z, c, i)[..cols].copy_from_slice(&src[col0..col0 + cols]);
            }
        }
    }
    Cow::Owned(t)
}

/// Checks that `tiles` describe exactly the output volume of
/// `(shape, n)`: every tile stays in bounds, shares the layer's kernel
/// geometry, and the kept outputs sum to the full `n·M·E²` volume.
/// Disjointness holds by construction for plans built from
/// [`crate::partition::split`]; the volume check catches a plan compiled
/// for a different layer or batch.
fn validate_coverage<'t>(
    tiles: impl Iterator<Item = &'t Tile>,
    shape: &LayerShape,
    n: usize,
) -> Result<(), ClusterError> {
    let mut kept: u64 = 0;
    for tile in tiles {
        let in_bounds = tile.img0 + tile.n <= n
            && tile.m0 + tile.shape.m <= shape.m
            && tile.y0 + tile.keep_y <= shape.e
            && tile.x0 + tile.keep_x <= shape.e
            && tile.keep_y <= tile.shape.e
            && tile.keep_x <= tile.shape.e;
        let same_kernel = tile.shape.c == shape.c
            && tile.shape.r == shape.r
            && tile.shape.u == shape.u
            && tile.shape.groups == shape.groups;
        if !in_bounds || !same_kernel {
            return Err(ClusterError::infeasible(
                "plan does not match this layer shape/batch",
            ));
        }
        kept += (tile.n * tile.shape.m * tile.keep_y * tile.keep_x) as u64;
    }
    let want = n as u64 * shape.m as u64 * (shape.e * shape.e) as u64;
    if kept != want {
        return Err(ClusterError::infeasible(format!(
            "plan covers {kept} outputs, layer has {want}"
        )));
    }
    Ok(())
}

/// Extracts the filter-bank slice `m0..m0 + shape.m` a tile needs; a
/// tile keeping the full bank borrows it.
fn tile_weights<'a>(
    weights: &'a Tensor4<Fix16>,
    orig: &LayerShape,
    tile: &Tile,
) -> Cow<'a, Tensor4<Fix16>> {
    if tile.m0 == 0 && tile.shape.m == orig.m {
        return Cow::Borrowed(weights);
    }
    let s = &tile.shape;
    // Filter banks slice along the outermost dimension only: each
    // filter's `[C][R][R]` volume is one contiguous copy.
    let mut t = Tensor4::zeros([s.m, s.c, s.r, s.r]);
    for f in 0..s.m {
        t.image_mut(f).copy_from_slice(weights.image(tile.m0 + f));
    }
    Cow::Owned(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition;
    use eyeriss_nn::synth;

    fn small_config() -> AcceleratorConfig {
        AcceleratorConfig {
            grid: eyeriss_arch::GridDims::new(6, 8),
            rf_bytes_per_pe: 512.0,
            buffer_bytes: 32.0 * 1024.0,
        }
    }

    fn check_bit_exact(shape: &LayerShape, n: usize, arrays: usize, p: Partition) -> ClusterRun {
        let input = synth::ifmap(shape, n, 31);
        let weights = synth::filters(shape, 32);
        let bias = synth::biases(shape, 33);
        let cluster = Cluster::new(arrays, small_config());
        let run = cluster
            .execute_partition(p, &LayerProblem::new(*shape, n), &input, &weights, &bias)
            .unwrap();
        let golden = reference::conv_accumulate(shape, n, &input, &weights, &bias);
        assert_eq!(run.psums, golden, "{p} diverged on {arrays} arrays");
        run
    }

    #[test]
    fn batch_partition_is_bit_exact() {
        let shape = LayerShape::conv(6, 3, 13, 3, 2).unwrap();
        let run = check_bit_exact(&shape, 5, 2, Partition::Batch);
        assert_eq!(run.stats.per_array.len(), 2);
        assert_eq!(run.stats.macs(), shape.macs(5));
    }

    #[test]
    fn channel_partition_is_bit_exact() {
        let shape = LayerShape::conv(10, 4, 11, 3, 2).unwrap();
        check_bit_exact(&shape, 2, 4, Partition::OfmapChannel);
    }

    #[test]
    fn grouped_layers_batch_split_and_reject_channel_splits() {
        let shape = LayerShape::depthwise(4, 11, 3, 1).unwrap();
        let run = check_bit_exact(&shape, 4, 2, Partition::Batch);
        assert_eq!(run.stats.macs(), shape.macs(4));
        let err = partition::split(Partition::OfmapChannel, &shape, 4, 2);
        assert!(err.is_err(), "channel splits must reject grouped layers");
    }

    #[test]
    fn fmap_partition_is_bit_exact() {
        let shape = LayerShape::conv(4, 3, 15, 3, 1).unwrap(); // E = 13
        let run = check_bit_exact(&shape, 2, 4, Partition::FmapTile);
        // Padded edge tiles compute extra (cropped) outputs.
        assert!(run.stats.macs() >= shape.macs(2));
    }

    #[test]
    fn hybrid_partition_is_bit_exact() {
        let shape = LayerShape::conv(9, 2, 9, 3, 2).unwrap();
        check_bit_exact(
            &shape,
            4,
            4,
            Partition::Hybrid {
                batch_ways: 2,
                channel_ways: 2,
            },
        );
    }

    #[test]
    fn fc_channel_partition_is_bit_exact() {
        let shape = LayerShape::fully_connected(12, 6, 4).unwrap();
        check_bit_exact(&shape, 3, 3, Partition::OfmapChannel);
    }

    #[test]
    fn every_enumerated_partition_is_bit_exact() {
        let shape = LayerShape::conv(8, 3, 11, 3, 2).unwrap();
        for arrays in [2usize, 4] {
            for p in partition::enumerate(&shape, 4, arrays) {
                check_bit_exact(&shape, 4, arrays, p);
            }
        }
    }

    #[test]
    fn sparsity_features_survive_partitioning() {
        let shape = LayerShape::conv(6, 3, 12, 3, 1).unwrap();
        let input = synth::sparse_ifmap(&shape, 4, 7, 0.6);
        let weights = synth::filters(&shape, 8);
        let bias = synth::biases(&shape, 9);
        let cluster = Cluster::new(2, small_config()).zero_gating(true).rlc(true);
        let run = cluster
            .execute_partition(
                Partition::Batch,
                &LayerProblem::new(shape, 4),
                &input,
                &weights,
                &bias,
            )
            .unwrap();
        let golden = reference::conv_accumulate(&shape, 4, &input, &weights, &bias);
        assert_eq!(run.psums, golden);
        let skipped: u64 = run.stats.per_array.iter().map(|s| s.skipped_macs).sum();
        assert!(skipped > 0, "zero-gating inactive");
    }

    #[test]
    fn contention_stalls_appear_under_scarce_bandwidth() {
        let shape = LayerShape::conv(8, 4, 13, 3, 1).unwrap();
        let input = synth::ifmap(&shape, 4, 3);
        let weights = synth::filters(&shape, 4);
        let bias = synth::biases(&shape, 5);
        let starved = Cluster::new(4, small_config())
            .shared_dram(SharedDram::new(0.05))
            .execute_partition(
                Partition::Batch,
                &LayerProblem::new(shape, 4),
                &input,
                &weights,
                &bias,
            )
            .unwrap();
        let ample = Cluster::new(4, small_config())
            .shared_dram(SharedDram::scaled(4))
            .execute_partition(
                Partition::Batch,
                &LayerProblem::new(shape, 4),
                &input,
                &weights,
                &bias,
            )
            .unwrap();
        assert!(starved.stats.contention_stalls > 0);
        assert!(starved.stats.cluster_cycles() > ample.stats.cluster_cycles());
    }

    #[test]
    fn single_array_cluster_matches_accelerator_stats() {
        let shape = LayerShape::conv(5, 3, 11, 3, 2).unwrap();
        let input = synth::ifmap(&shape, 2, 1);
        let weights = synth::filters(&shape, 2);
        let bias = synth::biases(&shape, 3);
        let cluster = Cluster::new(1, small_config());
        let crun = cluster
            .execute_partition(
                Partition::Batch,
                &LayerProblem::new(shape, 2),
                &input,
                &weights,
                &bias,
            )
            .unwrap();
        let mut acc = Accelerator::new(small_config());
        let arun = acc.run_conv(&shape, 2, &input, &weights, &bias).unwrap();
        assert_eq!(crun.psums, arun.psums);
        assert_eq!(crun.stats.per_array[0].cycles, arun.stats.cycles);
        assert_eq!(crun.stats.macs(), arun.stats.macs);
    }

    #[test]
    fn ofmap_applies_relu_quantization() {
        let shape = LayerShape::conv(4, 2, 9, 3, 2).unwrap();
        let run = check_bit_exact(&shape, 2, 2, Partition::Batch);
        let quantized = run.ofmap();
        assert!(quantized.iter().all(|v| v.raw() >= 0), "ReLU not applied");
    }

    #[test]
    fn planned_execution_is_bit_exact_and_reusable() {
        use crate::plan::plan_layer;
        use eyeriss_arch::cost::TableIv;
        use eyeriss_dataflow::registry::builtin;
        use eyeriss_dataflow::search::Objective;
        use eyeriss_dataflow::DataflowKind;

        let shape = LayerShape::conv(8, 3, 13, 3, 2).unwrap();
        let problem = LayerProblem::new(shape, 4);
        let hw = small_config();
        let plan = plan_layer(
            builtin(DataflowKind::RowStationary),
            &problem,
            2,
            &hw,
            &TableIv,
            &SharedDram::scaled(2),
            Objective::EnergyDelayProduct,
        )
        .unwrap();
        let cluster = Cluster::new(2, hw);
        // The same compiled plan serves several requests.
        for seed in [5u64, 6, 7] {
            let input = synth::ifmap(&shape, 4, seed);
            let weights = synth::filters(&shape, seed + 100);
            let bias = synth::biases(&shape, seed + 200);
            let run = cluster
                .execute(&plan, &problem, &input, &weights, &bias)
                .unwrap();
            let golden = reference::conv_accumulate(&shape, 4, &input, &weights, &bias);
            assert_eq!(run.psums, golden, "planned run diverged (seed {seed})");
            assert_eq!(run.partition, plan.partition);
        }
    }

    #[test]
    fn plan_from_larger_capacity_config_falls_back_to_local_search() {
        use crate::plan::plan_layer;
        use eyeriss_arch::cost::TableIv;
        use eyeriss_dataflow::registry::builtin;
        use eyeriss_dataflow::search::Objective;
        use eyeriss_dataflow::DataflowKind;

        let shape = LayerShape::conv(8, 4, 13, 3, 2).unwrap();
        let problem = LayerProblem::new(shape, 4);
        let mut plan = plan_layer(
            builtin(DataflowKind::RowStationary),
            &problem,
            2,
            &small_config(),
            &TableIv,
            &SharedDram::scaled(2),
            Objective::Energy,
        )
        .unwrap();
        // Model a plan compiled against a chip with far larger
        // scratchpads: overwrite one tile's winning mapping with an RF
        // interleaving this cluster cannot hold (p·q·R + q·n·R + p·n
        // far beyond the 256-word RF). Execution must screen it and
        // fall back to the local search instead of failing the request
        // or silently running an infeasible mapping.
        let tampered = &mut plan.per_array[0].tiles[0];
        tampered.mapping.params = eyeriss_dataflow::candidate::MappingParams::RowStationary {
            n: tampered.tile.n,
            p: 64,
            q: tampered.tile.shape.c,
            e: 1,
            r: 1,
            t: 1,
            filter_resident: true,
        };
        let cluster = Cluster::new(2, small_config());
        // Self-validating precondition: the tampered mapping really is
        // screened on this chip.
        let screened = plan
            .per_array
            .iter()
            .flat_map(|a| &a.tiles)
            .filter(|t| {
                RsMapping::from_params(&t.mapping.params)
                    .is_some_and(|m| !cluster.mapping_fits(&m, &t.tile.shape))
            })
            .count();
        assert_eq!(screened, 1, "fixture must exceed the small RF");

        let input = synth::ifmap(&shape, 4, 1);
        let weights = synth::filters(&shape, 2);
        let bias = synth::biases(&shape, 3);
        let run = cluster
            .execute(&plan, &problem, &input, &weights, &bias)
            .unwrap();
        let golden = reference::conv_accumulate(&shape, 4, &input, &weights, &bias);
        assert_eq!(run.psums, golden, "fallback execution diverged");
        // The fallback is observable: screened mappings re-search with
        // the local configuration, which is exactly what the unplanned
        // path does for the same partition — the per-array measurements
        // must therefore coincide (they would not under the big-RF
        // mappings, which interleave more work per PE).
        let unplanned = cluster
            .execute_partition(plan.partition, &problem, &input, &weights, &bias)
            .unwrap();
        assert_eq!(
            run.stats.per_array, unplanned.stats.per_array,
            "fallback did not take the local-search path"
        );
    }

    #[test]
    fn planned_execution_rejects_mismatched_plan() {
        use crate::plan::plan_layer;
        use eyeriss_arch::cost::TableIv;
        use eyeriss_dataflow::registry::builtin;
        use eyeriss_dataflow::search::Objective;
        use eyeriss_dataflow::DataflowKind;

        let shape = LayerShape::conv(8, 3, 13, 3, 2).unwrap();
        let problem = LayerProblem::new(shape, 4);
        let hw = small_config();
        let plan = plan_layer(
            builtin(DataflowKind::RowStationary),
            &problem,
            2,
            &hw,
            &TableIv,
            &SharedDram::scaled(2),
            Objective::Energy,
        )
        .unwrap();
        // Wrong cluster width.
        let wide = Cluster::new(4, hw);
        let input = synth::ifmap(&shape, 4, 1);
        let weights = synth::filters(&shape, 2);
        let bias = synth::biases(&shape, 3);
        let err = wide
            .execute(&plan, &problem, &input, &weights, &bias)
            .unwrap_err();
        assert!(matches!(err, ClusterError::Infeasible(_)));
        // Wrong batch for the plan (tensors sized for the claimed batch).
        let cluster = Cluster::new(2, hw);
        let input2 = synth::ifmap(&shape, 2, 1);
        let err = cluster
            .execute(
                &plan,
                &LayerProblem::new(shape, 2),
                &input2,
                &weights,
                &bias,
            )
            .unwrap_err();
        assert!(matches!(err, ClusterError::Infeasible(_)));
    }

    #[test]
    fn injected_crash_fails_with_array_identity() {
        use eyeriss_sim::fault::{FaultPlan, FaultSpec};
        let shape = LayerShape::conv(6, 3, 13, 3, 2).unwrap();
        let problem = LayerProblem::new(shape, 4);
        let input = synth::ifmap(&shape, 4, 1);
        let weights = synth::filters(&shape, 2);
        let bias = synth::biases(&shape, 3);
        let plan = FaultPlan::new(9).spec(FaultSpec::once(FaultKind::Crash, 0).target(1));
        let cluster = Cluster::new(2, small_config()).with_faults(Some(FaultInjector::new(plan)));
        let err = cluster
            .execute_partition(Partition::Batch, &problem, &input, &weights, &bias)
            .unwrap_err();
        assert!(matches!(err, ClusterError::Crashed { array: 1 }), "{err}");
        assert_eq!(cluster.health().strikes(1), 1);
        // The crash was transient (Once): the next run is clean and
        // clears the strike.
        let run = cluster
            .execute_partition(Partition::Batch, &problem, &input, &weights, &bias)
            .unwrap();
        assert_eq!(
            run.psums,
            reference::conv_accumulate(&shape, 4, &input, &weights, &bias)
        );
        assert_eq!(cluster.health().strikes(1), 0);
    }

    #[test]
    fn abft_detects_every_injected_corruption_kind() {
        use eyeriss_sim::fault::{FaultPlan, FaultSpec};
        let shape = LayerShape::conv(6, 3, 13, 3, 2).unwrap();
        let problem = LayerProblem::new(shape, 4);
        let input = synth::ifmap(&shape, 4, 1);
        let weights = synth::filters(&shape, 2);
        let bias = synth::biases(&shape, 3);
        for kind in [
            FaultKind::PsumBitFlip,
            FaultKind::WeightBitFlip,
            FaultKind::DramCorrupt,
        ] {
            // Several seeds so the flip lands on different words/bits.
            for seed in 0..5u64 {
                let plan = FaultPlan::new(seed).spec(FaultSpec::once(kind, 0).target(0));
                let injector = FaultInjector::new(plan);
                let cluster = Cluster::new(2, small_config())
                    .abft(true)
                    .with_faults(Some(injector.clone()));
                let err = cluster
                    .execute_partition(Partition::Batch, &problem, &input, &weights, &bias)
                    .unwrap_err();
                assert!(
                    matches!(err, ClusterError::Corrupted { array: 0 }),
                    "{kind:?} seed {seed} not detected: {err}"
                );
                assert_eq!(injector.injected(), 1);
            }
        }
    }

    #[test]
    fn abft_passes_clean_runs_bit_exactly() {
        let shape = LayerShape::conv(6, 3, 13, 3, 2).unwrap();
        let problem = LayerProblem::new(shape, 4);
        let input = synth::ifmap(&shape, 4, 1);
        let weights = synth::filters(&shape, 2);
        let bias = synth::biases(&shape, 3);
        let cluster = Cluster::new(2, small_config()).abft(true);
        let run = cluster
            .execute_partition(Partition::Batch, &problem, &input, &weights, &bias)
            .unwrap();
        assert_eq!(
            run.psums,
            reference::conv_accumulate(&shape, 4, &input, &weights, &bias)
        );
    }

    #[test]
    fn quarantine_replans_onto_healthy_subset() {
        let shape = LayerShape::conv(6, 3, 13, 3, 2).unwrap();
        let problem = LayerProblem::new(shape, 4);
        let input = synth::ifmap(&shape, 4, 1);
        let weights = synth::filters(&shape, 2);
        let bias = synth::biases(&shape, 3);
        let cluster = Cluster::new(4, small_config());
        assert!(cluster.quarantine(2));
        assert!(!cluster.quarantine(2), "idempotent");
        assert_eq!(cluster.healthy_arrays(), 3);
        // Unplanned execution splits over the three survivors.
        let run = cluster
            .execute_partition(Partition::Batch, &problem, &input, &weights, &bias)
            .unwrap();
        assert_eq!(run.stats.per_array.len(), 3);
        assert_eq!(
            run.psums,
            reference::conv_accumulate(&shape, 4, &input, &weights, &bias)
        );
        // Planned execution must match the degraded width, not the
        // configured one.
        use crate::plan::plan_layer;
        use eyeriss_arch::cost::TableIv;
        use eyeriss_dataflow::registry::builtin;
        use eyeriss_dataflow::search::Objective;
        use eyeriss_dataflow::DataflowKind;
        let stale = plan_layer(
            builtin(DataflowKind::RowStationary),
            &problem,
            4,
            &small_config(),
            &TableIv,
            &SharedDram::scaled(4),
            Objective::Energy,
        )
        .unwrap();
        let err = cluster
            .execute(&stale, &problem, &input, &weights, &bias)
            .unwrap_err();
        assert!(matches!(err, ClusterError::Infeasible(_)));
        let resized = plan_layer(
            builtin(DataflowKind::RowStationary),
            &problem,
            3,
            &small_config(),
            &TableIv,
            &SharedDram::scaled(3),
            Objective::Energy,
        )
        .unwrap();
        let run = cluster
            .execute(&resized, &problem, &input, &weights, &bias)
            .unwrap();
        assert_eq!(
            run.psums,
            reference::conv_accumulate(&shape, 4, &input, &weights, &bias)
        );
    }

    #[test]
    fn stall_injection_slows_but_stays_bit_exact() {
        use eyeriss_sim::fault::{FaultPlan, FaultSpec};
        let shape = LayerShape::conv(6, 3, 13, 3, 2).unwrap();
        let problem = LayerProblem::new(shape, 4);
        let input = synth::ifmap(&shape, 4, 1);
        let weights = synth::filters(&shape, 2);
        let bias = synth::biases(&shape, 3);
        let plan = FaultPlan::new(3).spec(FaultSpec::once(FaultKind::Stall, 0).target(0));
        let cluster = Cluster::new(2, small_config()).with_faults(Some(FaultInjector::new(plan)));
        let run = cluster
            .execute_partition(Partition::Batch, &problem, &input, &weights, &bias)
            .unwrap();
        assert_eq!(
            run.psums,
            reference::conv_accumulate(&shape, 4, &input, &weights, &bias)
        );
        let stalls: u64 = run.stats.per_array.iter().map(|s| s.stall_cycles).sum();
        assert!(stalls >= STALL_PENALTY_CYCLES, "stall penalty missing");
    }

    #[test]
    fn infeasible_partition_reports_error() {
        let shape = LayerShape::conv(4, 2, 9, 3, 2).unwrap();
        let input = synth::ifmap(&shape, 1, 1);
        let weights = synth::filters(&shape, 2);
        let bias = synth::biases(&shape, 3);
        let cluster = Cluster::new(4, small_config());
        let err = cluster
            .execute_partition(
                Partition::Batch,
                &LayerProblem::new(shape, 1),
                &input,
                &weights,
                &bias,
            )
            .unwrap_err();
        assert!(matches!(err, ClusterError::Infeasible(_)));
    }
}
