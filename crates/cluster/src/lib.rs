//! Multi-array partitioning and parallel scheduling for the Eyeriss
//! reproduction.
//!
//! The paper's accelerator is a single 168-PE array; serving production
//! traffic means scaling *beyond* one array. This crate schedules a CNN
//! layer across `M` independent Eyeriss arrays, following the
//! partitioning taxonomy of TETRIS/nn-dataflow and the multi-cluster
//! direction of Eyeriss v2:
//!
//! * [`partition`] — the [`Partition`] schemes (batch / ofmap-channel /
//!   fmap-tile / hybrid) that split a layer into per-array sub-problems,
//!   each itself a complete `LayerShape` a single array can run.
//! * [`plan`] — `(partition, mapping)` co-optimization: every feasible
//!   partition is scored by composing the per-array mapping optimizer of
//!   `eyeriss_dataflow::search` with a cluster cost model (additive
//!   energy, critical-path delay, shared-DRAM transfer floor).
//! * [`exec`] — the parallel executor: one thread per array, each running
//!   its tiles on a private [`eyeriss_sim::Accelerator`], with the ofmap
//!   reassembled **bit-exactly** against the single-array simulator.
//! * [`contention`] — the shared-DRAM bandwidth model.
//! * [`stats`] — per-array and cluster-level aggregate statistics.
//!
//! # Example
//!
//! Partition AlexNet CONV1 over four arrays and verify bit-exactness:
//!
//! ```
//! use eyeriss_cluster::{Cluster, Partition};
//! use eyeriss_arch::AcceleratorConfig;
//! use eyeriss_nn::{reference, synth, LayerProblem, LayerShape};
//!
//! let conv1 = LayerShape::conv(4, 3, 227, 11, 4)?; // CONV1 geometry slice
//! let problem = LayerProblem::new(conv1, 4);
//! let input = synth::ifmap(&conv1, 4, 1);
//! let weights = synth::filters(&conv1, 2);
//! let bias = synth::biases(&conv1, 3);
//!
//! let cluster = Cluster::new(4, AcceleratorConfig::eyeriss_chip());
//! let run = cluster.execute_partition(Partition::FmapTile, &problem, &input, &weights, &bias)?;
//! assert_eq!(run.psums, reference::conv_accumulate(&conv1, 4, &input, &weights, &bias));
//! println!("{} arrays, {} cycles", run.stats.per_array.len(), run.stats.cluster_cycles());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod contention;
pub mod error;
pub mod exec;
pub mod health;
pub mod partition;
pub mod plan;
pub mod stats;
pub mod wire;

pub use contention::SharedDram;
pub use error::ClusterError;
pub use exec::{Cluster, ClusterRun};
pub use health::ClusterHealth;
pub use partition::{Partition, SubProblem, Tile};
pub use plan::{plan_layer, plan_partition, ArrayPlan, ClusterPlan, SubProblemView, TilePlan};
pub use stats::ClusterStats;
