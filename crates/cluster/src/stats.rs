//! Aggregated statistics for a cluster-level layer run.

use eyeriss_arch::access::LayerAccessProfile;
use eyeriss_arch::cost::{CostModel, CostReport};
use eyeriss_sim::SimStats;

/// Merges `other` into `acc` (summing every counter; used to fold the
/// tiles an array ran sequentially, and to total the cluster).
pub fn merge_stats(acc: &mut SimStats, other: &SimStats) {
    acc.profile.accumulate(&other.profile);
    acc.cycles += other.cycles;
    acc.stall_cycles += other.stall_cycles;
    acc.macs += other.macs;
    acc.skipped_macs += other.skipped_macs;
    acc.dram_raw_words += other.dram_raw_words;
    // A side without RLC contributes its raw traffic to the compressed
    // total; note `acc.dram_raw_words` was already updated above.
    acc.dram_compressed_words = match (acc.dram_compressed_words, other.dram_compressed_words) {
        (None, None) => None,
        (a, b) => Some(
            a.unwrap_or(acc.dram_raw_words - other.dram_raw_words)
                + b.unwrap_or(other.dram_raw_words),
        ),
    };
}

/// Everything measured while executing one layer across the cluster.
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// Per-array measured statistics, in array order (each the sum over
    /// the tiles that array executed sequentially).
    pub per_array: Vec<SimStats>,
    /// Stall cycles charged by the shared-DRAM contention model on top
    /// of the critical-path array.
    pub contention_stalls: u64,
}

impl ClusterStats {
    /// Total access profile across arrays.
    pub fn total_profile(&self) -> LayerAccessProfile {
        let mut p = LayerAccessProfile::new();
        for s in &self.per_array {
            p.accumulate(&s.profile);
        }
        p
    }

    /// Total MACs executed across arrays.
    pub fn macs(&self) -> u64 {
        self.per_array.iter().map(|s| s.macs).sum()
    }

    /// Total raw DRAM traffic across arrays, in words.
    pub fn dram_words(&self) -> u64 {
        self.per_array.iter().map(|s| s.dram_raw_words).sum()
    }

    /// Critical-path array cycles: the slowest array's total (arrays run
    /// in parallel). This is also the compute baseline the contention
    /// model charges stalls against.
    pub fn critical_cycles(&self) -> u64 {
        self.per_array
            .iter()
            .map(SimStats::total_cycles)
            .max()
            .unwrap_or(0)
    }

    /// Cluster makespan: [`ClusterStats::critical_cycles`] plus
    /// shared-DRAM contention stalls.
    pub fn cluster_cycles(&self) -> u64 {
        self.critical_cycles() + self.contention_stalls
    }

    /// Total normalized energy across arrays (energy is additive; it does
    /// not parallelize away).
    pub fn energy(&self, cost: &dyn CostModel) -> f64 {
        self.per_array.iter().map(|s| s.energy(cost)).sum()
    }

    /// Prices the whole cluster run into the unified [`CostReport`]
    /// vocabulary: energies add across arrays, per-level transfer floors
    /// are the per-array maximum (arrays move their own words in
    /// parallel), and the measured cluster makespan
    /// ([`ClusterStats::cluster_cycles`]) is the delay baseline.
    pub fn cost_report(&self, cost: &dyn CostModel) -> CostReport {
        let profiles: Vec<&LayerAccessProfile> =
            self.per_array.iter().map(|s| &s.profile).collect();
        cost.report_parallel(&profiles, self.cluster_cycles() as f64)
    }

    /// Like [`ClusterStats::cost_report`], but each array's DRAM
    /// traffic is scaled to its compressed word count first
    /// ([`SimStats::compressed_profile`]) — sparse/RLC runs priced at
    /// the storage format the chip actually moves. Identical to
    /// `cost_report` when no array compressed anything.
    pub fn compressed_cost_report(&self, cost: &dyn CostModel) -> CostReport {
        let profiles: Vec<LayerAccessProfile> = self
            .per_array
            .iter()
            .map(SimStats::compressed_profile)
            .collect();
        let refs: Vec<&LayerAccessProfile> = profiles.iter().collect();
        cost.report_parallel(&refs, self.cluster_cycles() as f64)
    }

    /// Work imbalance: critical-path cycles over mean per-array cycles
    /// (1.0 = perfectly balanced; only counts busy arrays).
    pub fn imbalance(&self) -> f64 {
        let busy: Vec<u64> = self
            .per_array
            .iter()
            .map(SimStats::total_cycles)
            .filter(|&c| c > 0)
            .collect();
        if busy.is_empty() {
            return 1.0;
        }
        let max = *busy.iter().max().expect("non-empty") as f64;
        let mean = busy.iter().sum::<u64>() as f64 / busy.len() as f64;
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(cycles: u64, macs: u64) -> SimStats {
        let mut s = SimStats {
            cycles,
            macs,
            dram_raw_words: 10,
            ..SimStats::default()
        };
        s.profile.alu_ops = macs as f64;
        s
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = stats(10, 100);
        merge_stats(&mut a, &stats(5, 50));
        assert_eq!(a.cycles, 15);
        assert_eq!(a.macs, 150);
        assert_eq!(a.dram_raw_words, 20);
        assert_eq!(a.profile.alu_ops, 150.0);
    }

    #[test]
    fn cluster_cycles_take_critical_path() {
        let cs = ClusterStats {
            per_array: vec![stats(10, 1), stats(30, 1), stats(20, 1)],
            contention_stalls: 5,
        };
        assert_eq!(cs.cluster_cycles(), 35);
        assert_eq!(cs.macs(), 3);
        assert!((cs.imbalance() - 30.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cluster_is_degenerate_but_defined() {
        let cs = ClusterStats::default();
        assert_eq!(cs.cluster_cycles(), 0);
        assert_eq!(cs.imbalance(), 1.0);
    }
}
