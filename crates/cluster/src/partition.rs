//! Workload partitioning across multiple Eyeriss arrays.
//!
//! A [`Partition`] splits one CONV/FC layer into per-array
//! [`SubProblem`]s, each a list of [`Tile`]s that are themselves complete
//! `LayerShape` problems a single [`eyeriss_sim::Accelerator`] can run.
//! The four schemes follow the partitioning taxonomy of TETRIS/nn-dataflow
//! (batch, output-channel, fmap-tile and hybrid partitioning), adapted to
//! this workspace's square-plane layer shapes:
//!
//! * **Batch** — each array processes a contiguous slice of the images.
//!   No data is shared between arrays except filters (each array fetches
//!   the full filter bank).
//! * **Ofmap channel** — each array produces a contiguous slice of the
//!   `M` ofmap channels. The ifmap batch is replicated to every array;
//!   filters are divided.
//! * **Fmap tile** — the ofmap plane is cut into a `k x k` grid of
//!   spatial tiles distributed round-robin over the arrays. Each tile
//!   pulls exactly the ifmap halo it needs. Non-square edge tiles are
//!   padded up to the enclosing square sub-problem and cropped on
//!   reassembly, preserving bit-exactness.
//! * **Hybrid** — a `batch_ways x channel_ways` grid combining the first
//!   two schemes, for layers where neither dimension alone has enough
//!   parallelism (the TETRIS observation that hybrid schemes win on
//!   mid-network layers).
//!
//! Every scheme is *output-disjoint*: each ofmap value is produced by
//! exactly one tile from exactly the same inputs the single-array run
//! uses, so reassembled psums are bit-exact by construction (`i32`
//! accumulation is order-independent across disjoint outputs).

use crate::error::ClusterError;
use eyeriss_nn::{LayerKind, LayerShape};
use std::fmt;
use std::ops::Range;

/// A strategy for splitting one layer over `M` arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Partition {
    /// Split the image batch `N`.
    Batch,
    /// Split the ofmap channels `M`.
    OfmapChannel,
    /// Tile the ofmap plane spatially.
    FmapTile,
    /// Split batch and ofmap channels jointly on a
    /// `batch_ways x channel_ways` array grid.
    Hybrid {
        /// Ways the batch is split.
        batch_ways: usize,
        /// Ways the ofmap channels are split.
        channel_ways: usize,
    },
}

impl Partition {
    /// The three elementary strategies (the hybrid family is enumerated
    /// per array count by [`enumerate`]).
    pub const ELEMENTARY: [Partition; 3] = [
        Partition::Batch,
        Partition::OfmapChannel,
        Partition::FmapTile,
    ];

    /// Short display label ("batch", "ofmap-ch", "fmap-tile", "hybrid2x2").
    pub fn label(&self) -> String {
        match self {
            Partition::Batch => "batch".to_string(),
            Partition::OfmapChannel => "ofmap-ch".to_string(),
            Partition::FmapTile => "fmap-tile".to_string(),
            Partition::Hybrid {
                batch_ways,
                channel_ways,
            } => format!("hybrid{batch_ways}x{channel_ways}"),
        }
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// One unit of work for one array: a complete layer problem that is a
/// slice of the original layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tile {
    /// The sub-layer shape this tile executes (same `R`/`U` as the
    /// original; possibly reduced `M`, `H`/`E`).
    pub shape: LayerShape,
    /// Images in this tile.
    pub n: usize,
    /// First image index in the original batch.
    pub img0: usize,
    /// First ofmap-channel index in the original layer.
    pub m0: usize,
    /// First ofmap row this tile produces.
    pub y0: usize,
    /// First ofmap column this tile produces.
    pub x0: usize,
    /// Ofmap rows kept on reassembly (`<= shape.e`; smaller for padded
    /// edge tiles).
    pub keep_y: usize,
    /// Ofmap columns kept on reassembly.
    pub keep_x: usize,
}

impl Tile {
    /// A tile covering the whole plane of `shape` for images
    /// `img0..img0+n` and channels `m0..m0+shape.m`.
    fn full_plane(shape: LayerShape, n: usize, img0: usize, m0: usize) -> Self {
        Tile {
            shape,
            n,
            img0,
            m0,
            y0: 0,
            x0: 0,
            keep_y: shape.e,
            keep_x: shape.e,
        }
    }

    /// MAC operations this tile executes.
    pub fn macs(&self) -> u64 {
        self.shape.macs(self.n)
    }
}

/// The tiles assigned to one array. May be empty (an idle array) when a
/// layer has less parallelism than the cluster has arrays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubProblem {
    /// Which array runs these tiles.
    pub array_id: usize,
    /// Tiles executed sequentially on that array.
    pub tiles: Vec<Tile>,
}

/// Splits `0..total` into `parts` contiguous chunks whose sizes differ by
/// at most one (larger chunks first).
pub(crate) fn chunk_ranges(total: usize, parts: usize) -> Vec<Range<usize>> {
    debug_assert!(parts >= 1 && total >= parts);
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Builds the `m0..` channel-slice sub-shape of `shape`.
fn channel_slice_shape(shape: &LayerShape, m_len: usize) -> Result<LayerShape, ClusterError> {
    let sub = match shape.kind {
        LayerKind::Conv => LayerShape::conv(m_len, shape.c, shape.h, shape.r, shape.u),
        LayerKind::FullyConnected => LayerShape::fully_connected(m_len, shape.c, shape.h),
        LayerKind::Pool => {
            return Err(ClusterError::infeasible(
                "POOL layers are not channel-partitionable (M = 1)",
            ))
        }
    };
    sub.map_err(|e| ClusterError::infeasible(format!("channel slice: {e}")))
}

/// Splits `shape` (batch `n`) over `arrays` arrays under `partition`.
///
/// Returns one [`SubProblem`] per array, in array order. Arrays beyond
/// the layer's available parallelism receive empty tile lists (fmap
/// tiling only); the elementary batch/channel splits instead report
/// [`ClusterError::Infeasible`] when the split dimension is too small,
/// so the partition search can discard them.
///
/// # Example
///
/// ```
/// use eyeriss_cluster::partition::{split, Partition};
/// use eyeriss_nn::LayerShape;
///
/// let conv1 = LayerShape::conv(96, 3, 227, 11, 4)?; // AlexNet CONV1
/// let subs = split(Partition::OfmapChannel, &conv1, 4, 4)?;
/// assert_eq!(subs.len(), 4);
/// assert_eq!(subs.iter().map(|s| s.tiles[0].shape.m).sum::<usize>(), 96);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn split(
    partition: Partition,
    shape: &LayerShape,
    n: usize,
    arrays: usize,
) -> Result<Vec<SubProblem>, ClusterError> {
    if arrays == 0 {
        return Err(ClusterError::infeasible("cluster has zero arrays"));
    }
    if n == 0 {
        return Err(ClusterError::infeasible("batch size is zero"));
    }
    if shape.kind == LayerKind::Pool {
        return Err(ClusterError::infeasible(
            "POOL layers are executed per-array, not cluster-partitioned",
        ));
    }
    if arrays == 1 {
        return Ok(vec![SubProblem {
            array_id: 0,
            tiles: vec![Tile::full_plane(*shape, n, 0, 0)],
        }]);
    }
    // Grouped layers: only batch splitting keeps each array's filter
    // slice aligned with its channel groups. Channel/fmap slicing would
    // break the per-group filter-to-channel correspondence, so those
    // partitions are infeasible rather than silently wrong.
    if shape.groups > 1 && partition != Partition::Batch {
        return Err(ClusterError::infeasible(format!(
            "{partition:?} cannot split a {}-group layer (use Batch)",
            shape.groups
        )));
    }
    match partition {
        Partition::Batch => {
            if n < arrays {
                return Err(ClusterError::infeasible(format!(
                    "batch {n} smaller than {arrays} arrays"
                )));
            }
            Ok(chunk_ranges(n, arrays)
                .into_iter()
                .enumerate()
                .map(|(a, imgs)| SubProblem {
                    array_id: a,
                    tiles: vec![Tile::full_plane(*shape, imgs.len(), imgs.start, 0)],
                })
                .collect())
        }
        Partition::OfmapChannel => {
            if shape.m < arrays {
                return Err(ClusterError::infeasible(format!(
                    "{} ofmap channels smaller than {arrays} arrays",
                    shape.m
                )));
            }
            chunk_ranges(shape.m, arrays)
                .into_iter()
                .enumerate()
                .map(|(a, ms)| {
                    let sub = channel_slice_shape(shape, ms.len())?;
                    Ok(SubProblem {
                        array_id: a,
                        tiles: vec![Tile::full_plane(sub, n, 0, ms.start)],
                    })
                })
                .collect()
        }
        Partition::FmapTile => fmap_tiles(shape, n, arrays),
        Partition::Hybrid {
            batch_ways,
            channel_ways,
        } => {
            if batch_ways * channel_ways != arrays {
                return Err(ClusterError::infeasible(format!(
                    "hybrid {batch_ways}x{channel_ways} does not cover {arrays} arrays"
                )));
            }
            if n < batch_ways {
                return Err(ClusterError::infeasible(format!(
                    "batch {n} smaller than {batch_ways} batch ways"
                )));
            }
            if shape.m < channel_ways {
                return Err(ClusterError::infeasible(format!(
                    "{} ofmap channels smaller than {channel_ways} channel ways",
                    shape.m
                )));
            }
            let img_chunks = chunk_ranges(n, batch_ways);
            let m_chunks = chunk_ranges(shape.m, channel_ways);
            let mut out = Vec::with_capacity(arrays);
            for (bi, imgs) in img_chunks.iter().enumerate() {
                for (ci, ms) in m_chunks.iter().enumerate() {
                    let sub = channel_slice_shape(shape, ms.len())?;
                    out.push(SubProblem {
                        array_id: bi * channel_ways + ci,
                        tiles: vec![Tile {
                            shape: sub,
                            n: imgs.len(),
                            img0: imgs.start,
                            m0: ms.start,
                            y0: 0,
                            x0: 0,
                            keep_y: sub.e,
                            keep_x: sub.e,
                        }],
                    });
                }
            }
            Ok(out)
        }
    }
}

/// Spatial ofmap tiling: a `k x k` grid with `k = ceil(sqrt(arrays))`
/// (clamped to `E`), tiles dealt round-robin.
fn fmap_tiles(
    shape: &LayerShape,
    n: usize,
    arrays: usize,
) -> Result<Vec<SubProblem>, ClusterError> {
    if shape.kind != LayerKind::Conv {
        return Err(ClusterError::infeasible(
            "fmap tiling needs a spatial ofmap plane (CONV layers only)",
        ));
    }
    if shape.e < 2 {
        return Err(ClusterError::infeasible(format!(
            "ofmap plane {0}x{0} too small to tile",
            shape.e
        )));
    }
    let mut k = 1usize;
    while k * k < arrays {
        k += 1;
    }
    let k = k.min(shape.e);
    let rows = chunk_ranges(shape.e, k);
    let cols = rows.clone();
    let mut subs: Vec<SubProblem> = (0..arrays)
        .map(|a| SubProblem {
            array_id: a,
            tiles: Vec::new(),
        })
        .collect();
    for (ti, ys) in rows.iter().enumerate() {
        for (tj, xs) in cols.iter().enumerate() {
            // Pad the tile up to its enclosing square sub-problem; the
            // extra rows/columns are cropped on reassembly.
            let side = ys.len().max(xs.len());
            let sub_h = (side - 1) * shape.u + shape.r;
            let sub = LayerShape::conv(shape.m, shape.c, sub_h, shape.r, shape.u)
                .map_err(|e| ClusterError::infeasible(format!("fmap tile: {e}")))?;
            debug_assert_eq!(sub.e, side);
            let tile_idx = ti * k + tj;
            subs[tile_idx % arrays].tiles.push(Tile {
                shape: sub,
                n,
                img0: 0,
                m0: 0,
                y0: ys.start,
                x0: xs.start,
                keep_y: ys.len(),
                keep_x: xs.len(),
            });
        }
    }
    Ok(subs)
}

/// Enumerates every partition of `shape` (batch `n`) that [`split`]
/// accepts for `arrays` arrays: the three elementary schemes plus all
/// `batch_ways x channel_ways` hybrid factorizations of the array count.
pub fn enumerate(shape: &LayerShape, n: usize, arrays: usize) -> Vec<Partition> {
    let mut out = Vec::new();
    for p in Partition::ELEMENTARY {
        if split(p, shape, n, arrays).is_ok() {
            out.push(p);
        }
    }
    let mut bw = 2usize;
    while bw * 2 <= arrays {
        if arrays.is_multiple_of(bw) {
            let p = Partition::Hybrid {
                batch_ways: bw,
                channel_ways: arrays / bw,
            };
            if split(p, shape, n, arrays).is_ok() {
                out.push(p);
            }
        }
        bw += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv1() -> LayerShape {
        LayerShape::conv(96, 3, 227, 11, 4).unwrap()
    }

    #[test]
    fn chunks_cover_and_balance() {
        let chunks = chunk_ranges(10, 3);
        assert_eq!(chunks, vec![0..4, 4..7, 7..10]);
        let chunks = chunk_ranges(8, 8);
        assert!(chunks.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn batch_split_slices_images() {
        let subs = split(Partition::Batch, &conv1(), 6, 4).unwrap();
        assert_eq!(subs.len(), 4);
        let total: usize = subs.iter().map(|s| s.tiles[0].n).sum();
        assert_eq!(total, 6);
        assert_eq!(subs[0].tiles[0].n, 2); // larger chunks first
        assert_eq!(subs[3].tiles[0].img0, 5);
    }

    #[test]
    fn batch_split_needs_enough_images() {
        assert!(split(Partition::Batch, &conv1(), 3, 4).is_err());
    }

    #[test]
    fn channel_split_preserves_m() {
        let subs = split(Partition::OfmapChannel, &conv1(), 1, 8).unwrap();
        let total: usize = subs.iter().map(|s| s.tiles[0].shape.m).sum();
        assert_eq!(total, 96);
        assert_eq!(subs[1].tiles[0].m0, 12);
    }

    #[test]
    fn fmap_tiles_cover_the_plane() {
        let shape = LayerShape::conv(4, 3, 15, 3, 1).unwrap(); // E = 13
        let subs = split(Partition::FmapTile, &shape, 2, 4).unwrap();
        let mut covered = vec![vec![false; 13]; 13];
        for sub in &subs {
            for t in &sub.tiles {
                for y in 0..t.keep_y {
                    for x in 0..t.keep_x {
                        assert!(!covered[t.y0 + y][t.x0 + x], "tile overlap");
                        covered[t.y0 + y][t.x0 + x] = true;
                    }
                }
            }
        }
        assert!(covered.iter().flatten().all(|&c| c), "uncovered ofmap");
    }

    #[test]
    fn fmap_edge_tiles_pad_to_square() {
        let shape = LayerShape::conv(2, 2, 8, 2, 2).unwrap(); // E = 4
        let subs = split(Partition::FmapTile, &shape, 1, 4).unwrap();
        for sub in &subs {
            for t in &sub.tiles {
                assert!(t.keep_y <= t.shape.e && t.keep_x <= t.shape.e);
                assert_eq!(t.shape.e, t.keep_y.max(t.keep_x));
            }
        }
    }

    #[test]
    fn fmap_tiling_rejects_fc() {
        let fc = LayerShape::fully_connected(16, 8, 4).unwrap();
        assert!(split(Partition::FmapTile, &fc, 4, 2).is_err());
    }

    #[test]
    fn hybrid_grid_covers_arrays() {
        let p = Partition::Hybrid {
            batch_ways: 2,
            channel_ways: 2,
        };
        let subs = split(p, &conv1(), 4, 4).unwrap();
        assert_eq!(subs.len(), 4);
        let macs: u64 = subs.iter().flat_map(|s| &s.tiles).map(Tile::macs).sum();
        assert_eq!(macs, conv1().macs(4));
    }

    #[test]
    fn single_array_is_the_identity_split() {
        for p in Partition::ELEMENTARY {
            let subs = split(p, &conv1(), 2, 1).unwrap();
            assert_eq!(subs.len(), 1);
            assert_eq!(subs[0].tiles[0].shape, conv1());
        }
    }

    #[test]
    fn enumerate_includes_hybrids_when_divisible() {
        let parts = enumerate(&conv1(), 8, 4);
        assert!(parts.contains(&Partition::Batch));
        assert!(parts.contains(&Partition::OfmapChannel));
        assert!(parts.contains(&Partition::FmapTile));
        assert!(parts.contains(&Partition::Hybrid {
            batch_ways: 2,
            channel_ways: 2
        }));
        // Batch too small for hybrids with batch_ways > n.
        let parts = enumerate(&conv1(), 1, 4);
        assert!(!parts.contains(&Partition::Batch));
        assert!(parts.iter().all(|p| !matches!(p, Partition::Hybrid { .. })));
    }

    #[test]
    fn every_split_conserves_macs() {
        let shape = LayerShape::conv(12, 5, 19, 3, 2).unwrap();
        for arrays in [2usize, 3, 4, 8] {
            for p in enumerate(&shape, 6, arrays) {
                let subs = split(p, &shape, 6, arrays).unwrap();
                assert_eq!(subs.len(), arrays, "{p}");
                let covered: u64 = subs
                    .iter()
                    .flat_map(|s| &s.tiles)
                    .map(|t| {
                        (t.n * t.shape.m * t.keep_y * t.keep_x) as u64
                            * t.shape.accumulations_per_ofmap()
                    })
                    .sum();
                // Kept outputs (not padded ones) must account for every MAC
                // of the original layer exactly once.
                assert_eq!(covered, shape.macs(6), "{p}");
            }
        }
    }
}
