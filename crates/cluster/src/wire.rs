//! Wire codecs for cluster plans.
//!
//! A [`ClusterPlan`] is the unit the serving plan cache persists: one
//! partition, every tile, and every tile's winning mapping with its
//! exact access profile. The codec is versioned and bit-exact — a plan
//! decoded from disk compares equal (`==`) to the plan that was saved,
//! re-executes to identical psums, and reports identical access counts.

use crate::partition::{Partition, Tile};
use crate::plan::{ArrayPlan, ClusterPlan, TilePlan};
use eyeriss_arch::wire as arch_wire;
use eyeriss_arch::CostModelRegistry;
use eyeriss_dataflow::wire as df_wire;
use eyeriss_dataflow::DataflowRegistry;
use eyeriss_nn::wire as nn_wire;
use eyeriss_wire::{Value, WireError};

/// Schema version of one encoded cluster plan. Version 2 added the
/// cost-model descriptor (which model priced the plan — see
/// [`arch_wire::COST_DESCRIPTOR_VERSION`]); version-1 plans predate open
/// cost models and are rejected with a typed error.
pub const PLAN_VERSION: u64 = 2;

/// Encodes a partition scheme.
pub fn encode_partition(p: &Partition) -> Value {
    match *p {
        Partition::Batch => Value::obj([("scheme", Value::str("batch"))]),
        Partition::OfmapChannel => Value::obj([("scheme", Value::str("ofmap-ch"))]),
        Partition::FmapTile => Value::obj([("scheme", Value::str("fmap-tile"))]),
        Partition::Hybrid {
            batch_ways,
            channel_ways,
        } => Value::obj([
            ("scheme", Value::str("hybrid")),
            ("batch_ways", Value::usize(batch_ways)),
            ("channel_ways", Value::usize(channel_ways)),
        ]),
    }
}

/// Decodes a partition scheme.
///
/// # Errors
///
/// [`WireError::Invalid`] on an unknown scheme tag.
pub fn decode_partition(v: &Value) -> Result<Partition, WireError> {
    match v.get("scheme")?.as_str()? {
        "batch" => Ok(Partition::Batch),
        "ofmap-ch" => Ok(Partition::OfmapChannel),
        "fmap-tile" => Ok(Partition::FmapTile),
        "hybrid" => Ok(Partition::Hybrid {
            batch_ways: v.get("batch_ways")?.as_usize()?,
            channel_ways: v.get("channel_ways")?.as_usize()?,
        }),
        other => Err(WireError::Invalid(format!(
            "unknown partition scheme {other:?}"
        ))),
    }
}

fn encode_tile(t: &Tile) -> Value {
    Value::obj([
        ("shape", nn_wire::encode_shape(&t.shape)),
        ("n", Value::usize(t.n)),
        ("img0", Value::usize(t.img0)),
        ("m0", Value::usize(t.m0)),
        ("y0", Value::usize(t.y0)),
        ("x0", Value::usize(t.x0)),
        ("keep_y", Value::usize(t.keep_y)),
        ("keep_x", Value::usize(t.keep_x)),
    ])
}

fn decode_tile(v: &Value) -> Result<Tile, WireError> {
    Ok(Tile {
        shape: nn_wire::decode_shape(v.get("shape")?)?,
        n: v.get("n")?.as_usize()?,
        img0: v.get("img0")?.as_usize()?,
        m0: v.get("m0")?.as_usize()?,
        y0: v.get("y0")?.as_usize()?,
        x0: v.get("x0")?.as_usize()?,
        keep_y: v.get("keep_y")?.as_usize()?,
        keep_x: v.get("keep_x")?.as_usize()?,
    })
}

/// Encodes one cluster plan (versioned).
pub fn encode_plan(p: &ClusterPlan) -> Value {
    Value::obj([
        ("v", Value::u64(PLAN_VERSION)),
        ("partition", encode_partition(&p.partition)),
        ("arrays", Value::usize(p.arrays)),
        (
            "per_array",
            Value::arr(p.per_array.iter().map(|a| {
                Value::obj([
                    ("array_id", Value::usize(a.array_id)),
                    (
                        "tiles",
                        Value::arr(a.tiles.iter().map(|t| {
                            Value::obj([
                                ("tile", encode_tile(&t.tile)),
                                ("mapping", df_wire::encode_candidate(&t.mapping)),
                            ])
                        })),
                    ),
                ])
            })),
        ),
        ("cost", arch_wire::encode_cost_descriptor(&p.cost)),
        ("energy", Value::f64_bits(p.energy)),
        ("delay", Value::f64_bits(p.delay)),
        ("dram_delay", Value::f64_bits(p.dram_delay)),
    ])
}

/// Decodes one cluster plan; custom dataflow labels in tile mappings
/// resolve through `reg`, and the pricing cost model's label through
/// `costs`.
///
/// # Errors
///
/// [`WireError`] on structural problems or unknown versions/labels —
/// including plans priced by a cost model not registered in `costs`.
pub fn decode_plan(
    v: &Value,
    reg: &DataflowRegistry,
    costs: &CostModelRegistry,
) -> Result<ClusterPlan, WireError> {
    let version = v.get("v")?.as_u64()?;
    if version != PLAN_VERSION {
        return Err(WireError::UnsupportedVersion {
            supported: PLAN_VERSION,
            found: version,
        });
    }
    let mut per_array = Vec::new();
    for a in v.get("per_array")?.as_arr()? {
        let mut tiles = Vec::new();
        for t in a.get("tiles")?.as_arr()? {
            tiles.push(TilePlan {
                tile: decode_tile(t.get("tile")?)?,
                mapping: df_wire::decode_candidate(t.get("mapping")?, reg)?,
            });
        }
        per_array.push(ArrayPlan {
            array_id: a.get("array_id")?.as_usize()?,
            tiles,
        });
    }
    Ok(ClusterPlan {
        partition: decode_partition(v.get("partition")?)?,
        arrays: v.get("arrays")?.as_usize()?,
        cost: arch_wire::decode_cost_descriptor(v.get("cost")?, costs)?,
        per_array,
        energy: v.get("energy")?.as_f64_bits()?,
        delay: v.get("delay")?.as_f64_bits()?,
        dram_delay: v.get("dram_delay")?.as_f64_bits()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contention::SharedDram;
    use crate::plan::plan_layer;
    use eyeriss_arch::{AcceleratorConfig, TableIv};
    use eyeriss_dataflow::registry::builtin;
    use eyeriss_dataflow::search::Objective;
    use eyeriss_dataflow::DataflowKind;
    use eyeriss_nn::{LayerProblem, LayerShape};

    fn a_plan() -> ClusterPlan {
        plan_layer(
            builtin(DataflowKind::RowStationary),
            &LayerProblem::new(LayerShape::conv(8, 3, 13, 3, 2).unwrap(), 4),
            2,
            &AcceleratorConfig::eyeriss_chip(),
            &TableIv,
            &SharedDram::scaled(2),
            Objective::EnergyDelayProduct,
        )
        .unwrap()
    }

    #[test]
    fn partitions_roundtrip() {
        for p in [
            Partition::Batch,
            Partition::OfmapChannel,
            Partition::FmapTile,
            Partition::Hybrid {
                batch_ways: 2,
                channel_ways: 3,
            },
        ] {
            assert_eq!(decode_partition(&encode_partition(&p)).unwrap(), p);
        }
        let bad = Value::obj([("scheme", Value::str("ring"))]);
        assert!(matches!(decode_partition(&bad), Err(WireError::Invalid(_))));
    }

    #[test]
    fn plans_roundtrip_through_text() {
        let reg = DataflowRegistry::builtin();
        let costs = CostModelRegistry::builtin();
        let plan = a_plan();
        assert_eq!(plan.cost.id.label(), "table-iv");
        let text = encode_plan(&plan).render();
        let back = decode_plan(&Value::parse(&text).unwrap(), &reg, &costs).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.energy.to_bits(), plan.energy.to_bits());
        assert_eq!(back.delay.to_bits(), plan.delay.to_bits());
        assert_eq!(
            back.subproblems().collect::<Vec<_>>(),
            plan.subproblems().collect::<Vec<_>>()
        );
        assert_eq!(
            back.total_profile(),
            plan.total_profile(),
            "access counts must survive the round trip"
        );
    }

    #[test]
    fn future_plan_versions_are_rejected() {
        let reg = DataflowRegistry::builtin();
        let costs = CostModelRegistry::builtin();
        let mut v = encode_plan(&a_plan());
        if let Value::Obj(pairs) = &mut v {
            for (k, val) in pairs.iter_mut() {
                if k == "v" {
                    *val = Value::u64(PLAN_VERSION + 1);
                }
            }
        }
        assert!(matches!(
            decode_plan(&v, &reg, &costs),
            Err(WireError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn plans_priced_by_unregistered_models_are_rejected() {
        use eyeriss_arch::cost::{CostModel, StaticCostModel};
        use eyeriss_arch::EnergyModel;
        let custom =
            StaticCostModel::new("flat", EnergyModel::new(200.0, 2.0, 2.0, 1.0, 1.0).unwrap());
        let plan = plan_layer(
            builtin(DataflowKind::RowStationary),
            &LayerProblem::new(LayerShape::conv(8, 3, 13, 3, 2).unwrap(), 4),
            2,
            &AcceleratorConfig::eyeriss_chip(),
            &custom,
            &SharedDram::scaled(2),
            Objective::EnergyDelayProduct,
        )
        .unwrap();
        let v = encode_plan(&plan);
        let reg = DataflowRegistry::builtin();
        assert!(matches!(
            decode_plan(&v, &reg, &CostModelRegistry::builtin()),
            Err(WireError::Invalid(_))
        ));
        let mut costs = CostModelRegistry::builtin();
        costs.register(std::sync::Arc::new(custom)).unwrap();
        let back = decode_plan(&v, &reg, &costs).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.cost.fingerprint, custom.fingerprint());
    }
}
