//! Exact, versioned wire format for persisting compiled plans.
//!
//! The workspace builds offline against an inert `serde` stand-in (see
//! `vendor/serde`), so actual on-disk persistence — the plan-cache
//! save/load path — is implemented here as a small, self-contained JSON
//! subset. Two properties matter more than generality:
//!
//! * **Exactness.** Reloaded plans must re-execute *bit-exactly*, so
//!   every `f64` (energy, delay, access counts) travels as its IEEE-754
//!   bit pattern (a `u64`), never as a decimal rendering. Integers are
//!   `u64` and parsed without rounding through floating point.
//! * **Versioned schemas.** Every persisted document starts with a
//!   `schema` name and a `v` number; readers reject unknown versions
//!   with a typed [`WireError`] instead of misinterpreting bytes.
//!
//! The encoding is a strict subset of JSON (objects, arrays, strings,
//! unsigned integers, booleans, `null`), so saved caches remain
//! inspectable with ordinary tooling even though this parser only
//! accepts what the workspace writes.
//!
//! # Example
//!
//! ```
//! use eyeriss_wire::Value;
//!
//! let doc = Value::obj([
//!     ("schema", Value::str("eyeriss-demo")),
//!     ("v", Value::u64(1)),
//!     ("energy", Value::f64_bits(1234.5_f64)),
//! ]);
//! let text = doc.render();
//! let back = Value::parse(&text)?;
//! back.expect_schema("eyeriss-demo", 1)?;
//! assert_eq!(back.get("energy")?.as_f64_bits()?, 1234.5);
//! # Ok::<(), eyeriss_wire::WireError>(())
//! ```

use std::fmt;

/// Why a document failed to parse or decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The raw text is not well-formed (position, description).
    Syntax(usize, String),
    /// A required object key is absent.
    MissingKey(String),
    /// A value has the wrong type (key or context, expected type).
    WrongType(String, &'static str),
    /// The document's `schema` field names a different schema.
    WrongSchema {
        /// Schema name the reader expected.
        expected: String,
        /// Schema name the document carries.
        found: String,
    },
    /// The document's `v` field is a version this reader cannot decode.
    UnsupportedVersion {
        /// Version the reader supports.
        supported: u64,
        /// Version the document carries.
        found: u64,
    },
    /// A field's value is structurally valid but semantically impossible
    /// (e.g. an unknown enum tag or an unregistered dataflow label).
    Invalid(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Syntax(pos, what) => write!(f, "syntax error at byte {pos}: {what}"),
            WireError::MissingKey(k) => write!(f, "missing key {k:?}"),
            WireError::WrongType(ctx, want) => write!(f, "{ctx}: expected {want}"),
            WireError::WrongSchema { expected, found } => {
                write!(f, "schema mismatch: expected {expected:?}, found {found:?}")
            }
            WireError::UnsupportedVersion { supported, found } => {
                write!(
                    f,
                    "unsupported schema version {found} (reader supports {supported})"
                )
            }
            WireError::Invalid(what) => write!(f, "invalid value: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// One node of a wire document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Explicit absence.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer (also carries `f64` bit patterns).
    U64(u64),
    /// UTF-8 string.
    Str(String),
    /// Ordered list.
    Arr(Vec<Value>),
    /// Ordered key/value map (keys unique by construction on encode).
    Obj(Vec<(String, Value)>),
}

impl Value {
    // ----- constructors ----------------------------------------------------

    /// A string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// An unsigned integer value.
    pub fn u64(v: u64) -> Value {
        Value::U64(v)
    }

    /// A `usize` value (stored as `u64`).
    pub fn usize(v: usize) -> Value {
        Value::U64(v as u64)
    }

    /// An `f64` stored exactly, as its IEEE-754 bit pattern.
    pub fn f64_bits(v: f64) -> Value {
        Value::U64(v.to_bits())
    }

    /// An object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values.
    pub fn arr(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Arr(items.into_iter().collect())
    }

    // ----- accessors -------------------------------------------------------

    /// The value under `key`.
    ///
    /// # Errors
    ///
    /// [`WireError::WrongType`] if `self` is not an object,
    /// [`WireError::MissingKey`] if the key is absent.
    pub fn get(&self, key: &str) -> Result<&Value, WireError> {
        let Value::Obj(pairs) = self else {
            return Err(WireError::WrongType(key.to_string(), "object"));
        };
        pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| WireError::MissingKey(key.to_string()))
    }

    /// The value under `key`, or `None` when the key is absent.
    ///
    /// Readers use this for fields added after a schema shipped, where
    /// absence means the field's historical default.
    ///
    /// # Errors
    ///
    /// [`WireError::WrongType`] if `self` is not an object.
    pub fn get_opt(&self, key: &str) -> Result<Option<&Value>, WireError> {
        let Value::Obj(pairs) = self else {
            return Err(WireError::WrongType(key.to_string(), "object"));
        };
        Ok(pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// This value as a `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError::WrongType`] for any other variant.
    pub fn as_u64(&self) -> Result<u64, WireError> {
        match self {
            Value::U64(v) => Ok(*v),
            _ => Err(WireError::WrongType(self.kind_label().into(), "u64")),
        }
    }

    /// This value as a `usize`.
    ///
    /// # Errors
    ///
    /// [`WireError::WrongType`] for non-integers.
    pub fn as_usize(&self) -> Result<usize, WireError> {
        Ok(self.as_u64()? as usize)
    }

    /// This value decoded as an exact `f64` bit pattern.
    ///
    /// # Errors
    ///
    /// [`WireError::WrongType`] for non-integers.
    pub fn as_f64_bits(&self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.as_u64()?))
    }

    /// This value as a string slice.
    ///
    /// # Errors
    ///
    /// [`WireError::WrongType`] for non-strings.
    pub fn as_str(&self) -> Result<&str, WireError> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err(WireError::WrongType(self.kind_label().into(), "string")),
        }
    }

    /// This value as a boolean.
    ///
    /// # Errors
    ///
    /// [`WireError::WrongType`] for non-booleans.
    pub fn as_bool(&self) -> Result<bool, WireError> {
        match self {
            Value::Bool(b) => Ok(*b),
            _ => Err(WireError::WrongType(self.kind_label().into(), "bool")),
        }
    }

    /// This value as an array slice.
    ///
    /// # Errors
    ///
    /// [`WireError::WrongType`] for non-arrays.
    pub fn as_arr(&self) -> Result<&[Value], WireError> {
        match self {
            Value::Arr(items) => Ok(items),
            _ => Err(WireError::WrongType(self.kind_label().into(), "array")),
        }
    }

    fn kind_label(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) => "u64",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    // ----- schema helpers --------------------------------------------------

    /// Checks this document's `schema`/`v` header.
    ///
    /// # Errors
    ///
    /// [`WireError::WrongSchema`] or [`WireError::UnsupportedVersion`] on
    /// mismatch; key/type errors if the header is absent.
    pub fn expect_schema(&self, schema: &str, version: u64) -> Result<(), WireError> {
        let found = self.get("schema")?.as_str()?;
        if found != schema {
            return Err(WireError::WrongSchema {
                expected: schema.to_string(),
                found: found.to_string(),
            });
        }
        let v = self.get("v")?.as_u64()?;
        if v != version {
            return Err(WireError::UnsupportedVersion {
                supported: version,
                found: v,
            });
        }
        Ok(())
    }

    // ----- rendering -------------------------------------------------------

    /// Renders the document as compact JSON-subset text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::Str(s) => render_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    // ----- parsing ---------------------------------------------------------

    /// Parses a document previously produced by [`Value::render`].
    ///
    /// # Errors
    ///
    /// [`WireError::Syntax`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Value, WireError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(WireError::Syntax(p.pos, "trailing data".into()));
        }
        Ok(v)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the parser accepts. Real plan documents
/// nest a handful of levels; the bound turns pathological or corrupted
/// input into a typed error instead of a stack overflow.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn enter(&mut self) -> Result<(), WireError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(WireError::Syntax(
                self.pos,
                format!("nesting deeper than {MAX_DEPTH} levels"),
            ));
        }
        Ok(())
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), WireError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(WireError::Syntax(
                self.pos,
                format!("expected {:?}", b as char),
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, WireError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(WireError::Syntax(self.pos, format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, WireError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(WireError::Syntax(self.pos, "unexpected character".into())),
            None => Err(WireError::Syntax(
                self.pos,
                "unexpected end of input".into(),
            )),
        }
    }

    fn number(&mut self) -> Result<Value, WireError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        // Reject the general-JSON forms this subset deliberately omits
        // (floats travel as bit patterns, negatives never occur).
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(WireError::Syntax(
                self.pos,
                "floating-point literals are not part of this subset".into(),
            ));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| WireError::Syntax(start, "invalid utf-8 in number".into()))?;
        text.parse::<u64>()
            .map(Value::U64)
            .map_err(|_| WireError::Syntax(start, "integer out of u64 range".into()))
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(WireError::Syntax(self.pos, "unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| {
                                    WireError::Syntax(start, "truncated \\u escape".into())
                                })?;
                            // `from_str_radix` accepts a leading '+';
                            // JSON does not.
                            if !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
                                return Err(WireError::Syntax(start, "invalid \\u escape".into()));
                            }
                            let code = u32::from_str_radix(hex, 16).map_err(|_| {
                                WireError::Syntax(start, "invalid \\u escape".into())
                            })?;
                            let ch = char::from_u32(code).ok_or_else(|| {
                                WireError::Syntax(start, "non-scalar \\u escape".into())
                            })?;
                            out.push(ch);
                            self.pos += 3; // the final byte advances below
                        }
                        _ => return Err(WireError::Syntax(start, "bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| WireError::Syntax(self.pos, "invalid utf-8".into()))?;
                    let ch = rest.chars().next().expect("non-empty by peek");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, WireError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(WireError::Syntax(self.pos, "expected ',' or ']'".into())),
            }
        }
    }

    fn object(&mut self) -> Result<Value, WireError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(WireError::Syntax(self.pos, "expected ',' or '}'".into())),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        Value::parse(&v.render()).expect("rendered documents parse")
    }

    #[test]
    fn pathological_nesting_is_a_typed_error_not_a_stack_overflow() {
        let deep = "[".repeat(100_000);
        assert!(matches!(Value::parse(&deep), Err(WireError::Syntax(_, _))));
        let deep_obj = "{\"k\":".repeat(100_000);
        assert!(matches!(
            Value::parse(&deep_obj),
            Err(WireError::Syntax(_, _))
        ));
        // Realistic nesting stays well inside the bound.
        let mut v = Value::u64(1);
        for _ in 0..64 {
            v = Value::arr([v]);
        }
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::u64(0),
            Value::u64(u64::MAX),
            Value::str(""),
            Value::str("hello \"world\"\n\t\\"),
            Value::str("unicode: αβγ 🚀"),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn f64_bits_are_exact() {
        for f in [
            0.0,
            -0.0,
            1.0 / 3.0,
            f64::MAX,
            f64::MIN_POSITIVE,
            -123.456e-78,
            f64::INFINITY,
        ] {
            let v = Value::f64_bits(f);
            let back = roundtrip(&v).as_f64_bits().unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} lost bits");
        }
        // NaN round-trips by bit pattern even though NaN != NaN.
        let v = Value::f64_bits(f64::NAN);
        assert_eq!(
            roundtrip(&v).as_f64_bits().unwrap().to_bits(),
            f64::NAN.to_bits()
        );
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = Value::obj([
            (
                "a",
                Value::arr([Value::u64(1), Value::Null, Value::str("x")]),
            ),
            ("b", Value::obj([("inner", Value::Bool(true))])),
            ("empty_arr", Value::arr([])),
            ("empty_obj", Value::obj::<String>([])),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn schema_header_is_checked() {
        let doc = Value::obj([("schema", Value::str("x")), ("v", Value::u64(2))]);
        assert!(doc.expect_schema("x", 2).is_ok());
        assert!(matches!(
            doc.expect_schema("y", 2),
            Err(WireError::WrongSchema { .. })
        ));
        assert!(matches!(
            doc.expect_schema("x", 1),
            Err(WireError::UnsupportedVersion {
                supported: 1,
                found: 2
            })
        ));
    }

    #[test]
    fn optional_keys_decode_as_none() {
        let doc = Value::obj([("k", Value::u64(1))]);
        assert_eq!(doc.get_opt("k").unwrap(), Some(&Value::u64(1)));
        assert_eq!(doc.get_opt("missing").unwrap(), None);
        assert!(matches!(
            Value::u64(1).get_opt("k"),
            Err(WireError::WrongType(_, "object"))
        ));
    }

    #[test]
    fn accessor_errors_are_typed() {
        let doc = Value::obj([("k", Value::u64(1))]);
        assert!(matches!(doc.get("missing"), Err(WireError::MissingKey(_))));
        assert!(matches!(
            doc.get("k").unwrap().as_str(),
            Err(WireError::WrongType(_, "string"))
        ));
        assert!(matches!(
            Value::u64(1).get("k"),
            Err(WireError::WrongType(_, "object"))
        ));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"unterminated",
            "1.5",
            "1e3",
            "-1",
            "18446744073709551616", // u64::MAX + 1
            "{\"a\" 1}",
            "[1 2]",
            "nulL",
            "true false",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn parser_accepts_whitespace() {
        let v = Value::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap(), &Value::Null);
    }

    #[test]
    fn unicode_escape_roundtrips() {
        let v = Value::parse("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "Aé");
        // Control characters render as \u escapes and parse back.
        let s = Value::str("\u{1}\u{1f}");
        assert_eq!(roundtrip(&s), s);
        // Only 4 hex digits are an escape; `+041` is not, even though
        // integer parsing would accept the sign.
        assert!(Value::parse("\"\\u+041\"").is_err());
        assert!(Value::parse("\"\\u00 1\"").is_err());
    }
}
