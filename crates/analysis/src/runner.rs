//! Maps layer lists onto the fixed-area comparison hardware of
//! Section VI-B and optimizes each layer's mapping (Section VI-C).

use crate::metrics::{DataflowRun, LayerRun};
use eyeriss_arch::cost::{table_iv_shared, CostModel};
use eyeriss_dataflow::registry::builtin;
use eyeriss_dataflow::search::{optimize_all, Objective};
use eyeriss_dataflow::DataflowKind;
use eyeriss_nn::alexnet;
use eyeriss_nn::shape::NamedLayer;
use eyeriss_nn::LayerProblem;
use std::sync::Arc;

/// Optimizes `kind` over `layers` at batch `batch` on a `num_pes` array.
///
/// Returns `None` if *any* layer is infeasible — the dataflow "cannot
/// operate" at this point, like WS at batch 64 on 256 PEs (Fig. 11a).
pub fn run_layers(
    kind: DataflowKind,
    layers: &[NamedLayer],
    batch: usize,
    num_pes: usize,
) -> Option<DataflowRun> {
    let hw = builtin(kind).comparison_hardware(num_pes);
    run_layers_on(kind, layers, batch, &hw)
}

/// [`run_layers`] with an explicit accelerator configuration (used by the
/// Fig. 15 resource-allocation sweep, which departs from the Eq. (2)
/// baseline split).
pub fn run_layers_on(
    kind: DataflowKind,
    layers: &[NamedLayer],
    batch: usize,
    hw: &eyeriss_arch::AcceleratorConfig,
) -> Option<DataflowRun> {
    run_layers_priced(kind, layers, batch, hw, table_iv_shared())
}

/// [`run_layers_on`] priced under an explicit [`CostModel`] — the entry
/// point sensitivity studies use with models from a
/// [`CostModelRegistry`](eyeriss_arch::CostModelRegistry) instead of
/// hand-built structs.
pub fn run_layers_priced(
    kind: DataflowKind,
    layers: &[NamedLayer],
    batch: usize,
    hw: &eyeriss_arch::AcceleratorConfig,
    cost: Arc<dyn CostModel>,
) -> Option<DataflowRun> {
    // Repeated shapes (all of VGG's stacked 3x3 stages, say) share one
    // search through the deduplicating batch entry point.
    let problems: Vec<LayerProblem> = layers
        .iter()
        .map(|l| LayerProblem::new(l.shape, batch))
        .collect();
    let mappings = optimize_all(
        builtin(kind),
        &problems,
        hw,
        cost.as_ref(),
        Objective::Energy,
    );
    let mut out = Vec::with_capacity(layers.len());
    for (layer, best) in layers.iter().zip(mappings) {
        let best = best?;
        out.push(LayerRun {
            name: layer.name.clone(),
            macs: layer.shape.macs(batch) as f64,
            profile: best.profile,
            active_pes: best.active_pes,
            params: best.params,
        });
    }
    Some(DataflowRun {
        kind,
        num_pes: hw.num_pes(),
        batch,
        layers: out,
        cost,
    })
}

/// [`run_layers`] over the five AlexNet CONV layers (Section VII-B).
pub fn run_conv_layers(kind: DataflowKind, batch: usize, num_pes: usize) -> Option<DataflowRun> {
    run_layers(kind, &alexnet::conv_layers(), batch, num_pes)
}

/// [`run_layers`] over the three AlexNet FC layers (Section VII-C).
pub fn run_fc_layers(kind: DataflowKind, batch: usize, num_pes: usize) -> Option<DataflowRun> {
    run_layers(kind, &alexnet::fc_layers(), batch, num_pes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rs_conv_run_has_five_layers() {
        let run = run_conv_layers(DataflowKind::RowStationary, 16, 256).unwrap();
        assert_eq!(run.layers.len(), 5);
        assert_eq!(run.layers[0].name, "CONV1");
    }

    #[test]
    fn ws_conv_infeasible_at_batch_64_on_256() {
        assert!(run_conv_layers(DataflowKind::WeightStationary, 64, 256).is_none());
        assert!(run_conv_layers(DataflowKind::WeightStationary, 64, 1024).is_some());
    }

    #[test]
    fn dram_writes_identical_across_dataflows() {
        // Section VII-B: "DRAM writes are the same across all dataflows".
        let runs: Vec<_> = DataflowKind::ALL
            .iter()
            .filter_map(|&k| run_conv_layers(k, 16, 256))
            .collect();
        assert!(runs.len() >= 5);
        let w0 = runs[0].dram_writes_per_op();
        for r in &runs {
            assert!(
                (r.dram_writes_per_op() - w0).abs() / w0 < 1e-9,
                "{} writes differ",
                r.kind
            );
        }
    }
}
