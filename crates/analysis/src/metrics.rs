//! Result containers and derived metrics for dataflow comparisons.
//!
//! Mapping parameters are interrogated through the typed
//! [`LayerRun::params_of`] accessor — a [`ParamsMismatch`] error, never
//! a `panic!`, when a run carries another dataflow's knobs.

use eyeriss_arch::access::{DataType, LayerAccessProfile};
use eyeriss_arch::cost::{CostModel, CostReport};
use eyeriss_arch::energy::Level;
use eyeriss_dataflow::candidate::MappingParams;
use eyeriss_dataflow::{DataflowKind, ParamsMismatch};
use std::sync::Arc;

/// The optimized mapping of one layer.
#[derive(Debug, Clone)]
pub struct LayerRun {
    /// Layer name ("CONV1", ..., "FC3").
    pub name: String,
    /// MAC operations at the evaluated batch size.
    pub macs: f64,
    /// Exact aggregate access profile under the optimal mapping.
    pub profile: LayerAccessProfile,
    /// PEs doing useful work under that mapping.
    pub active_pes: usize,
    /// The winning mapping parameters.
    pub params: MappingParams,
}

impl LayerRun {
    /// Normalized energy of this layer (MAC units), including ALU.
    pub fn energy(&self, cost: &dyn CostModel) -> f64 {
        cost.energy_of(&self.profile)
    }

    /// Prices this layer into the unified [`CostReport`] vocabulary.
    pub fn report(&self, cost: &dyn CostModel) -> CostReport {
        cost.report(&self.profile, self.active_pes)
    }

    /// Delay proxy of this layer: MACs / active PEs (Section VII-B).
    pub fn delay(&self) -> f64 {
        self.macs / self.active_pes as f64
    }

    /// The winning params interrogated as `kind`'s variant — the typed
    /// replacement for destructuring one variant with a `panic!`/
    /// `unreachable!` fallback.
    ///
    /// # Errors
    ///
    /// [`ParamsMismatch`] when this run was optimized under a different
    /// dataflow.
    pub fn params_of(&self, kind: DataflowKind) -> Result<&MappingParams, ParamsMismatch> {
        self.params.expect_kind(kind)
    }
}

/// One dataflow mapped over a set of layers (e.g. all CONV layers of
/// AlexNet) at one (PE count, batch size) operating point.
#[derive(Clone)]
pub struct DataflowRun {
    /// Which dataflow.
    pub kind: DataflowKind,
    /// PE count of the comparison setup.
    pub num_pes: usize,
    /// Batch size.
    pub batch: usize,
    /// Per-layer optimized results, in network order.
    pub layers: Vec<LayerRun>,
    /// The cost model the mappings were optimized (and are priced) under.
    pub cost: Arc<dyn CostModel>,
}

impl std::fmt::Debug for DataflowRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataflowRun")
            .field("kind", &self.kind)
            .field("num_pes", &self.num_pes)
            .field("batch", &self.batch)
            .field("layers", &self.layers)
            .field("cost", &self.cost.id())
            .finish()
    }
}

impl DataflowRun {
    /// Prices the whole run into one accumulated [`CostReport`].
    pub fn report(&self) -> CostReport {
        let mut total = CostReport::zero(self.cost.descriptor());
        for l in &self.layers {
            total.accumulate(&l.report(self.cost.as_ref()));
        }
        total
    }

    /// Total MACs across layers.
    pub fn total_ops(&self) -> f64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Total normalized energy across layers (including ALU).
    pub fn total_energy(&self) -> f64 {
        self.layers
            .iter()
            .map(|l| l.energy(self.cost.as_ref()))
            .sum()
    }

    /// Normalized energy per operation (the y-axis of Fig. 12/14b).
    pub fn energy_per_op(&self) -> f64 {
        self.total_energy() / self.total_ops()
    }

    /// Average DRAM accesses per operation (the y-axis of Fig. 11/14a).
    pub fn dram_accesses_per_op(&self) -> f64 {
        let acc: f64 = self.layers.iter().map(|l| l.profile.dram_accesses()).sum();
        acc / self.total_ops()
    }

    /// DRAM reads per operation.
    pub fn dram_reads_per_op(&self) -> f64 {
        let acc: f64 = self.layers.iter().map(|l| l.profile.dram_reads()).sum();
        acc / self.total_ops()
    }

    /// DRAM writes per operation (identical across dataflows: only final
    /// ofmaps are written back — Section VII-B).
    pub fn dram_writes_per_op(&self) -> f64 {
        let acc: f64 = self.layers.iter().map(|l| l.profile.dram_writes()).sum();
        acc / self.total_ops()
    }

    /// Total delay proxy across layers.
    pub fn total_delay(&self) -> f64 {
        self.layers.iter().map(|l| l.delay()).sum()
    }

    /// Delay per operation: the reciprocal of the op-weighted active PE
    /// count.
    pub fn delay_per_op(&self) -> f64 {
        self.total_delay() / self.total_ops()
    }

    /// Energy-delay product per op² — ratios of this quantity reproduce the
    /// normalized EDP bars of Fig. 13/14d.
    pub fn edp_per_op(&self) -> f64 {
        self.energy_per_op() * self.delay_per_op()
    }

    /// Energy per op contributed by one hierarchy level (Fig. 12 stacks).
    pub fn energy_per_op_at(&self, level: Level) -> f64 {
        let e: f64 = self
            .layers
            .iter()
            .map(|l| self.cost.energy_at_level(&l.profile, level))
            .sum();
        e / self.total_ops()
    }

    /// Energy per op contributed by one data type (Fig. 12d/14c stacks).
    pub fn energy_per_op_of(&self, ty: DataType) -> f64 {
        let e: f64 = self
            .layers
            .iter()
            .map(|l| self.cost.energy_of_type(&l.profile, ty))
            .sum();
        e / self.total_ops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeriss_arch::access::AccessCounts;
    use eyeriss_arch::cost::table_iv_shared;

    fn dummy_run() -> DataflowRun {
        let mut p1 = LayerAccessProfile::new();
        p1.alu_ops = 100.0;
        p1.ifmap = AccessCounts {
            dram_reads: 10.0,
            rf_reads: 100.0,
            ..AccessCounts::default()
        };
        let mut p2 = LayerAccessProfile::new();
        p2.alu_ops = 300.0;
        p2.psum.dram_writes = 30.0;
        DataflowRun {
            kind: DataflowKind::RowStationary,
            num_pes: 256,
            batch: 1,
            cost: table_iv_shared(),
            layers: vec![
                LayerRun {
                    name: "L1".into(),
                    macs: 100.0,
                    profile: p1,
                    active_pes: 100,
                    params: MappingParams::OutputStationaryC { o_m: 1, n_par: 1 },
                },
                LayerRun {
                    name: "L2".into(),
                    macs: 300.0,
                    profile: p2,
                    active_pes: 50,
                    params: MappingParams::OutputStationaryC { o_m: 1, n_par: 1 },
                },
            ],
        }
    }

    #[test]
    fn totals_aggregate_layers() {
        let r = dummy_run();
        assert_eq!(r.total_ops(), 400.0);
        // L1: 100 ALU + 10*200 + 100*1 = 2200; L2: 300 + 30*200 = 6300.
        assert_eq!(r.total_energy(), 2200.0 + 6300.0);
        assert_eq!(r.dram_accesses_per_op(), 40.0 / 400.0);
        assert_eq!(r.dram_writes_per_op(), 30.0 / 400.0);
    }

    #[test]
    fn delay_weights_by_layer() {
        let r = dummy_run();
        assert_eq!(r.total_delay(), 1.0 + 6.0);
        assert_eq!(r.delay_per_op(), 7.0 / 400.0);
        assert!((r.edp_per_op() - r.energy_per_op() * r.delay_per_op()).abs() < 1e-12);
    }

    #[test]
    fn params_accessor_is_typed() {
        let r = dummy_run();
        assert!(r.layers[0]
            .params_of(DataflowKind::OutputStationaryC)
            .is_ok());
        let err = r.layers[0]
            .params_of(DataflowKind::RowStationary)
            .unwrap_err();
        assert_eq!(err.actual, DataflowKind::OutputStationaryC.id());
    }

    #[test]
    fn level_breakdown_sums_to_total() {
        let r = dummy_run();
        let sum: f64 = Level::ALL
            .iter()
            .map(|&l| r.energy_per_op_at(l))
            .sum::<f64>()
            * r.total_ops();
        assert!((sum - r.total_energy()).abs() < 1e-9);
    }
}
