//! Minimal plain-text table rendering for experiment reports.

/// A simple left-aligned text table with a header row.
///
/// # Example
///
/// ```
/// use eyeriss_analysis::table::TextTable;
///
/// let mut t = TextTable::new(vec!["layer".into(), "energy".into()]);
/// t.row(vec!["CONV1".into(), "1.23".into()]);
/// let s = t.render();
/// assert!(s.contains("CONV1") && s.contains("energy"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header.
    ///
    /// # Panics
    ///
    /// Panics if the header is empty.
    pub fn new(header: Vec<String>) -> Self {
        assert!(!header.is_empty(), "header must not be empty");
        TextTable {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} does not match header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and a separator line.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 4 significant-ish decimals for report cells.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 || v.abs() < 0.001 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a".into(), "bb".into()]);
        t.row(vec!["xxx".into(), "y".into()]);
        let s = t.render();
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("xxx"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a".into()]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn fmt_covers_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert!(fmt(0.5).starts_with("0.5"));
        assert!(fmt(1e-6).contains('e'));
        assert!(fmt(12345.0).contains('e'));
    }
}
