//! CSV export of experiment series, for plotting outside the crate.
//!
//! The renderers in [`crate::experiments`] produce human-readable tables;
//! this module produces machine-readable CSV with proper quoting, without
//! pulling in a serialization dependency.

use crate::metrics::DataflowRun;
use eyeriss_arch::access::DataType;
use eyeriss_arch::energy::Level;

/// Escapes one CSV cell (RFC 4180 quoting).
pub fn escape(cell: &str) -> String {
    if cell.contains([',', '"', '\n']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Builds a CSV document from a header and rows.
///
/// # Panics
///
/// Panics if any row's width differs from the header's.
pub fn to_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(
        &header
            .iter()
            .map(|c| escape(c))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        assert_eq!(row.len(), header.len(), "ragged CSV row");
        out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Flattens a set of dataflow runs into the canonical comparison CSV:
/// one row per (run, layer) with energy by level and type plus DRAM/op.
pub fn runs_to_csv(runs: &[DataflowRun]) -> String {
    let header = [
        "dataflow",
        "num_pes",
        "batch",
        "layer",
        "macs",
        "active_pes",
        "energy",
        "dram_reads",
        "dram_writes",
        "e_dram",
        "e_buffer",
        "e_array",
        "e_rf",
        "e_alu",
        "e_ifmap",
        "e_filter",
        "e_psum",
    ];
    let mut rows = Vec::new();
    for run in runs {
        let em = run.cost.as_ref();
        for layer in &run.layers {
            let p = &layer.profile;
            let report = layer.report(em);
            rows.push(vec![
                run.kind.label().to_string(),
                run.num_pes.to_string(),
                run.batch.to_string(),
                layer.name.clone(),
                format!("{}", layer.macs),
                layer.active_pes.to_string(),
                format!("{}", layer.energy(em)),
                format!("{}", p.dram_reads()),
                format!("{}", p.dram_writes()),
                format!("{}", report.energy_at(Level::Dram)),
                format!("{}", report.energy_at(Level::Buffer)),
                format!("{}", report.energy_at(Level::Array)),
                format!("{}", report.energy_at(Level::Rf)),
                format!("{}", report.energy_at(Level::Alu)),
                format!("{}", report.energy_of(DataType::Ifmap)),
                format!("{}", report.energy_of(DataType::Filter)),
                format!("{}", report.energy_of(DataType::Psum)),
            ]);
        }
    }
    to_csv(&header, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner;
    use eyeriss_dataflow::DataflowKind;

    #[test]
    fn escape_quotes_commas_and_quotes() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = to_csv(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn runs_export_one_row_per_layer() {
        let run = runner::run_conv_layers(DataflowKind::RowStationary, 1, 256).unwrap();
        let csv = runs_to_csv(&[run]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 5, "header + 5 CONV layers");
        assert!(lines[0].starts_with("dataflow,num_pes"));
        assert!(lines[1].starts_with("RS,256,1,CONV1"));
        // Every row parses to the header's width.
        let width = lines[0].split(',').count();
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), width);
        }
    }

    #[test]
    fn energy_columns_are_consistent() {
        let run = runner::run_conv_layers(DataflowKind::NoLocalReuse, 1, 256).unwrap();
        let csv = runs_to_csv(std::slice::from_ref(&run));
        // Sum of per-level energies equals the energy column per row.
        for line in csv.lines().skip(1) {
            let cells: Vec<f64> = line
                .split(',')
                .skip(6)
                .map(|c| c.parse::<f64>().unwrap_or(f64::NAN))
                .collect();
            let energy = cells[0];
            let by_level: f64 = cells[3..8].iter().sum();
            assert!((energy - by_level).abs() / energy < 1e-9);
        }
    }
}
