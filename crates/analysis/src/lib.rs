//! The energy-efficiency analysis framework of the Eyeriss paper
//! (Section VI-C) and the experiment runners for every evaluation figure.
//!
//! * [`metrics`] — per-layer and aggregated results: normalized energy per
//!   operation, DRAM accesses per operation, delay and energy-delay
//!   product, with breakdowns by hierarchy level and by data type.
//! * [`runner`] — maps a list of layers for one dataflow under the
//!   fixed-area comparison setup of Section VI-B.
//! * [`experiments`] — one module per paper figure (7, 10-15), each
//!   producing structured series plus a plain-text rendering of the same
//!   rows the paper plots.
//! * [`table`] — minimal text-table rendering used by the reports.
//!
//! # Example
//!
//! ```
//! use eyeriss_analysis::runner;
//! use eyeriss_dataflow::DataflowKind;
//!
//! // RS on AlexNet CONV layers: 256 PEs, batch 16 (the Fig. 10 setup).
//! let run = runner::run_conv_layers(DataflowKind::RowStationary, 16, 256).unwrap();
//! assert!(run.energy_per_op() > 1.0); // at least the MAC itself
//! ```

pub mod experiments;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod table;

pub use metrics::{DataflowRun, LayerRun};
pub use runner::{run_conv_layers, run_fc_layers, run_layers, run_layers_on};
