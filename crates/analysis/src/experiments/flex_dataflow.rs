//! Flexible row stationary on MobileNet: array utilization and energy
//! per inference of `flex-rs` against the best of the six dense
//! dataflows, layer by layer.
//!
//! MobileNet's depthwise layers have one input channel per filter, so a
//! dense row-stationary mapping fills at most `R` PE rows of one array
//! pass — the 12x14 chip idles. `flex-rs` decomposes the array into
//! cluster gangs that process several groups at once (the Eyeriss v2
//! argument), recovering utilization without changing the search, cost
//! or persistence machinery: this experiment drives it through the same
//! [`search::optimize`] entry point as the built-in six.

use crate::table::TextTable;
use eyeriss_arch::cost::{CostModel, TableIv};
use eyeriss_arch::AcceleratorConfig;
use eyeriss_dataflow::candidate::MappingParams;
use eyeriss_dataflow::flex::FlexRsModel;
use eyeriss_dataflow::registry::builtin;
use eyeriss_dataflow::search::{self, Objective};
use eyeriss_dataflow::DataflowKind;
use eyeriss_nn::mobilenet;
use eyeriss_nn::shape::NamedLayer;
use eyeriss_nn::LayerProblem;

/// One optimized mapping condensed to the comparison's two axes.
#[derive(Debug, Clone, Copy)]
pub struct MappingPoint {
    /// Normalized energy of the layer under the winning mapping.
    pub energy: f64,
    /// PEs doing useful work under that mapping.
    pub active_pes: usize,
}

/// One layer's dense-vs-flex verdict.
#[derive(Debug, Clone)]
pub struct LayerVerdict {
    /// Layer name (`"DW3"`, `"PW7"`, ...).
    pub name: String,
    /// Convolution groups (`> 1` marks the depthwise layers).
    pub groups: usize,
    /// MACs at the evaluated batch.
    pub macs: f64,
    /// The energy-winning dense dataflow's label, or `None` if all six
    /// were infeasible.
    pub dense_label: Option<&'static str>,
    /// Its mapping point.
    pub dense: Option<MappingPoint>,
    /// The `flex-rs` mapping point.
    pub flex: Option<MappingPoint>,
    /// The winning flex knobs `[cluster_rows, cluster_cols, replication,
    /// candidate]`.
    pub flex_knobs: Option<[usize; 4]>,
}

impl LayerVerdict {
    /// Utilization of a point on `num_pes` PEs.
    fn util(point: &Option<MappingPoint>, num_pes: usize) -> Option<f64> {
        point.map(|p| p.active_pes as f64 / num_pes as f64)
    }
}

/// The whole comparison at one operating point.
#[derive(Debug, Clone)]
pub struct FlexComparison {
    /// Batch size.
    pub batch: usize,
    /// PE count of the array (the physical 12x14 chip).
    pub num_pes: usize,
    /// Per-layer verdicts in network order.
    pub layers: Vec<LayerVerdict>,
}

impl FlexComparison {
    /// Total energy per inference under the per-layer best dense
    /// dataflow (skipping layers with no feasible mapping).
    pub fn dense_energy(&self) -> f64 {
        self.layers
            .iter()
            .filter_map(|l| l.dense.map(|d| d.energy))
            .sum()
    }

    /// Total energy per inference under `flex-rs`.
    pub fn flex_energy(&self) -> f64 {
        self.layers
            .iter()
            .filter_map(|l| l.flex.map(|f| f.energy))
            .sum()
    }

    /// Mean utilization over the depthwise layers, `(dense, flex)`.
    pub fn depthwise_utilization(&self) -> (f64, f64) {
        let dw: Vec<&LayerVerdict> = self.layers.iter().filter(|l| l.groups > 1).collect();
        if dw.is_empty() {
            return (0.0, 0.0);
        }
        let mean = |f: &dyn Fn(&LayerVerdict) -> f64| {
            dw.iter().map(|l| f(l)).sum::<f64>() / dw.len() as f64
        };
        (
            mean(&|l| LayerVerdict::util(&l.dense, self.num_pes).unwrap_or(0.0)),
            mean(&|l| LayerVerdict::util(&l.flex, self.num_pes).unwrap_or(0.0)),
        )
    }
}

/// Optimizes `layers` at `batch` on the physical chip under every dense
/// dataflow and under `flex-rs`, keeping each layer's energy winner.
pub fn run_layers(layers: &[NamedLayer], batch: usize) -> FlexComparison {
    let hw = AcceleratorConfig::eyeriss_chip();
    let flex = FlexRsModel;
    let verdicts = layers
        .iter()
        .map(|layer| {
            let problem = LayerProblem::new(layer.shape, batch);
            let mut dense: Option<(&'static str, MappingPoint)> = None;
            for kind in DataflowKind::ALL {
                let Some(cand) =
                    search::optimize(builtin(kind), &problem, &hw, &TableIv, Objective::Energy)
                else {
                    continue;
                };
                let point = MappingPoint {
                    energy: TableIv.energy_of(&cand.profile),
                    active_pes: cand.active_pes,
                };
                if dense.is_none_or(|(_, best)| point.energy < best.energy) {
                    dense = Some((kind.label(), point));
                }
            }
            let flex_cand = search::optimize(&flex, &problem, &hw, &TableIv, Objective::Energy);
            let flex_knobs = flex_cand.as_ref().and_then(|c| match c.params {
                MappingParams::Custom { knobs, .. } => Some(knobs),
                _ => None,
            });
            LayerVerdict {
                name: layer.name.clone(),
                groups: layer.shape.groups,
                macs: layer.shape.macs(batch) as f64,
                dense_label: dense.map(|(l, _)| l),
                dense: dense.map(|(_, p)| p),
                flex: flex_cand.map(|c| MappingPoint {
                    energy: TableIv.energy_of(&c.profile),
                    active_pes: c.active_pes,
                }),
                flex_knobs,
            }
        })
        .collect();
    FlexComparison {
        batch,
        num_pes: hw.num_pes(),
        layers: verdicts,
    }
}

/// The headline experiment: full MobileNet v1 at batch 1 on the
/// 168-PE chip.
pub fn run() -> FlexComparison {
    run_layers(&mobilenet::mobilenet_v1(), 1)
}

/// Renders the comparison table plus the energy/inference summary.
pub fn render(cmp: &FlexComparison) -> String {
    let mut t = TextTable::new(vec![
        "layer".into(),
        "G".into(),
        "best dense".into(),
        "dense util".into(),
        "flex util".into(),
        "dense E".into(),
        "flex E".into(),
        "flex knobs".into(),
    ]);
    let pct = |u: Option<f64>| match u {
        Some(u) => format!("{:.1}%", u * 100.0),
        None => "—".into(),
    };
    let nrg = |p: &Option<MappingPoint>| match p {
        Some(p) => format!("{:.3e}", p.energy),
        None => "—".into(),
    };
    for l in &cmp.layers {
        t.row(vec![
            l.name.clone(),
            l.groups.to_string(),
            l.dense_label.unwrap_or("—").into(),
            pct(LayerVerdict::util(&l.dense, cmp.num_pes)),
            pct(LayerVerdict::util(&l.flex, cmp.num_pes)),
            nrg(&l.dense),
            nrg(&l.flex),
            match l.flex_knobs {
                Some([cr, cc, rep, _]) => format!("{cr}x{cc} x{rep}"),
                None => "—".into(),
            },
        ]);
    }
    let (dw_dense, dw_flex) = cmp.depthwise_utilization();
    format!(
        "flex-rs vs best dense dataflow — MobileNet, batch {}, {} PEs\n{}\n\
         depthwise mean utilization: dense {:.1}% -> flex {:.1}%\n\
         energy/inference: dense {:.4e}, flex {:.4e} ({:.3}x)",
        cmp.batch,
        cmp.num_pes,
        t.render(),
        dw_dense * 100.0,
        dw_flex * 100.0,
        cmp.dense_energy(),
        cmp.flex_energy(),
        cmp.dense_energy() / cmp.flex_energy()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flex_beats_every_dense_dataflow_on_depthwise_utilization() {
        // The acceptance claim: on every MobileNet depthwise layer the
        // flex-rs winner activates strictly more PEs than the
        // energy-winning dense dataflow's.
        let cmp = run_layers(&mobilenet::depthwise_layers(), 1);
        assert_eq!(cmp.layers.len(), 13);
        for l in &cmp.layers {
            let (dense, flex) = (l.dense.unwrap(), l.flex.unwrap());
            assert!(
                flex.active_pes > dense.active_pes,
                "{}: flex {} <= dense {} ({})",
                l.name,
                flex.active_pes,
                dense.active_pes,
                l.dense_label.unwrap()
            );
            // The winner is a real cluster decomposition, not the
            // identity full-array mapping (which would just be RS): it
            // either reshapes the array (early layers, large ofmap
            // planes) or replicates groups (late layers, tiny planes).
            let [cr, cc, rep, _] = l.flex_knobs.unwrap();
            assert!(
                (cr, cc) != (12, 14) || rep > 1,
                "{} won with the identity decomposition",
                l.name
            );
        }
        let (dw_dense, dw_flex) = cmp.depthwise_utilization();
        assert!(dw_flex > dw_dense);
    }

    #[test]
    fn flex_matches_dense_rs_on_a_pointwise_layer() {
        // PW layers are ordinary (G = 1) convolutions: flex-rs contains
        // the full RS space, so it can never lose to RS there.
        let pw = mobilenet::mobilenet_v1()
            .into_iter()
            .find(|l| l.name == "PW1")
            .unwrap();
        let cmp = run_layers(&[pw], 1);
        let l = &cmp.layers[0];
        let (dense, flex) = (l.dense.unwrap(), l.flex.unwrap());
        assert!(flex.energy <= dense.energy * 1.0000001 || l.dense_label != Some("RS"));
        assert!(flex.active_pes >= 1);
    }

    #[test]
    fn render_summarizes_the_uplift() {
        let cmp = run_layers(&mobilenet::depthwise_layers()[..2], 1);
        let s = render(&cmp);
        assert!(s.contains("depthwise mean utilization"));
        assert!(s.contains("energy/inference"));
        assert!(s.contains("DW1"));
    }
}
