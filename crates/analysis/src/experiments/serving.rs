//! Serving (beyond the paper): plan compilation on real networks and an
//! offered-load sweep on the `eyeriss-serve` runtime.
//!
//! Two views, mirroring [`super::cluster_scaling`]'s analytic/measured
//! split:
//!
//! * [`compile_alexnet`] / [`compile_vgg`] — the **plan-compilation
//!   report**: every CONV layer of the network is compiled through the
//!   content-keyed plan cache, showing which layers share plans (VGG's
//!   stacked 3×3 stages) and the per-layer `(partition, mapping)` each
//!   plan chose.
//! * [`sweep_synthetic`] — the **measured offered-load sweep**: an
//!   open-loop client drives a live [`eyeriss_serve::Server`] at
//!   multiples of its calibrated capacity and records achieved
//!   throughput plus p50/p99 latency at each point — the canonical
//!   latency/throughput serving curve.
//! * [`overload_comparison`] — **admission control vs the legacy
//!   FIFO** at the same ≥2× overload: the sched server sheds what
//!   cannot make its deadline and keeps completed-request p99 bounded,
//!   while the FIFO's p99 grows with the queue.
//! * [`fairness_drr`] — **DRR fairness**: two backlogged tenants with
//!   3:1 weights; completed-throughput shares converge to the weight
//!   ratio.

use crate::table::TextTable;
use eyeriss_arch::AcceleratorConfig;
use eyeriss_nn::network::{Network, NetworkBuilder};
use eyeriss_nn::shape::NamedLayer;
use eyeriss_nn::{alexnet, synth, vgg};
use eyeriss_serve::{
    percentile, AdmissionError, BatchPolicy, CacheStats, PlanCompiler, RecoveryPolicy, SchedConfig,
    ServeConfig, ServeError, Server, ServerSnapshot, ServerStats, SubmitOptions, TenantId,
    TenantSpec,
};
use std::time::{Duration, Instant};

/// One compiled layer of a [`CompileReport`].
#[derive(Debug, Clone)]
pub struct LayerPlanRow {
    /// Layer name.
    pub name: String,
    /// Chosen partition label.
    pub partition: String,
    /// Analytic cluster delay (MAC-time units).
    pub delay: f64,
    /// Analytic energy (normalized units).
    pub energy: f64,
    /// Whether the shared DRAM channel bounds this layer.
    pub bandwidth_bound: bool,
}

/// Plan compilation of one network's CONV layers through the plan cache.
#[derive(Debug, Clone)]
pub struct CompileReport {
    /// Network name.
    pub network: String,
    /// Cluster width compiled for.
    pub arrays: usize,
    /// Batch size compiled for.
    pub batch: usize,
    /// One row per layer, in network order.
    pub layers: Vec<LayerPlanRow>,
    /// Cache counters after compiling the whole network.
    pub cache: CacheStats,
    /// Wall-clock compile time.
    pub compile_time: Duration,
}

impl CompileReport {
    /// Summed analytic delay — the capacity model's per-inference cost.
    pub fn analytic_delay(&self) -> f64 {
        self.layers.iter().map(|l| l.delay).sum()
    }
}

fn compile_layers(
    network: &str,
    layers: &[NamedLayer],
    arrays: usize,
    batch: usize,
) -> CompileReport {
    let compiler = PlanCompiler::new(arrays, AcceleratorConfig::eyeriss_chip());
    let start = Instant::now();
    let plans = compiler
        .compile_layers(layers, batch)
        .expect("paper networks plan on small clusters");
    let compile_time = start.elapsed();
    CompileReport {
        network: network.to_string(),
        arrays,
        batch,
        layers: plans
            .into_iter()
            .map(|(name, plan)| LayerPlanRow {
                name,
                partition: plan.partition.label(),
                delay: plan.delay,
                energy: plan.energy,
                bandwidth_bound: plan.bandwidth_bound(),
            })
            .collect(),
        cache: compiler.cache().stats(),
        compile_time,
    }
}

/// Compiles AlexNet's five CONV layers (batch 4, four arrays).
pub fn compile_alexnet() -> CompileReport {
    compile_layers("AlexNet", &alexnet::conv_layers(), 4, 4)
}

/// Compiles VGG-16's thirteen CONV layers (batch 1, two arrays): the
/// repeated-shape showcase — only nine distinct plans are searched.
pub fn compile_vgg() -> CompileReport {
    compile_layers("VGG-16", &vgg::conv_layers(), 2, 1)
}

/// Renders a compile report as a text table.
pub fn render_compile(report: &CompileReport) -> String {
    let mut t = TextTable::new(vec![
        "layer".into(),
        "partition".into(),
        "delay".into(),
        "energy".into(),
        "BW-bound".into(),
    ]);
    for l in &report.layers {
        t.row(vec![
            l.name.clone(),
            l.partition.clone(),
            format!("{:.3e}", l.delay),
            format!("{:.3e}", l.energy),
            if l.bandwidth_bound { "yes" } else { "" }.into(),
        ]);
    }
    format!(
        "Plan compilation — {} CONV layers, batch {}, {} arrays\n\
         {} searches, {} cache hits (hit rate {:.0}%), compiled in {:.0} ms\n{}",
        report.network,
        report.batch,
        report.arrays,
        report.cache.misses,
        report.cache.hits,
        report.cache.hit_rate() * 100.0,
        report.compile_time.as_secs_f64() * 1e3,
        t.render()
    )
}

/// One operating point of the offered-load sweep.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Offered arrival rate, requests/second.
    pub offered_rps: f64,
    /// Requests completed (all of them — the client blocks, it does not
    /// shed).
    pub completed: usize,
    /// Achieved throughput: completions / (first submit → last
    /// completion).
    pub achieved_rps: f64,
    /// Median end-to-end latency.
    pub p50: Duration,
    /// 99th-percentile end-to-end latency.
    pub p99: Duration,
    /// Mean time spent queued.
    pub mean_queue: Duration,
    /// Mean executed batch size at this load.
    pub mean_batch: f64,
    /// Streaming p99 estimate from the live [`ServerSnapshot`] taken
    /// just before shutdown — includes warmup requests, and is checked
    /// against the exact percentile to within the histogram error bound
    /// during the sweep.
    pub live_p99: Duration,
}

/// The measured latency/throughput curve of one server configuration.
#[derive(Debug, Clone)]
pub struct ServingSweep {
    /// Network name.
    pub network: String,
    /// Calibrated single-server capacity estimate, requests/second.
    pub capacity_rps: f64,
    /// One point per offered load, in increasing-load order.
    pub points: Vec<LoadPoint>,
}

impl ServingSweep {
    /// True when achieved throughput is non-decreasing (within
    /// `tolerance`, e.g. `0.15`) across the increasing-load points —
    /// i.e. the server scales up to saturation and then holds its
    /// saturated throughput instead of collapsing.
    pub fn throughput_is_monotone(&self, tolerance: f64) -> bool {
        self.points
            .windows(2)
            .all(|w| w[1].achieved_rps >= w[0].achieved_rps * (1.0 - tolerance))
    }
}

/// The small synthetic network the measured sweep serves: big enough
/// that one inference costs measurable simulation time, small enough to
/// sweep in seconds.
pub fn synthetic_net() -> Network {
    NetworkBuilder::new(3, 31)
        .conv("C1", 12, 3, 2)
        .expect("valid synthetic stage")
        .pool("P1", 3, 2)
        .expect("valid synthetic stage")
        .conv("C2", 16, 3, 1)
        .expect("valid synthetic stage")
        .fully_connected("FC", 10)
        .expect("valid synthetic stage")
        .build(17)
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        arrays: 2,
        workers: 2,
        policy: BatchPolicy {
            max_batch: 4,
            max_wait: Duration::from_millis(2),
        },
        queue_capacity: 64,
        hw: AcceleratorConfig::eyeriss_chip(),
        telemetry: None,
        slos: Vec::new(),
        flight_capacity: 256,
        sched: None,
        faults: None,
        abft: false,
        recovery: RecoveryPolicy::new(),
    }
}

/// Runs `requests` open-loop requests at `offered_rps` against a fresh
/// server for `net` (sharing `compiler`'s plan cache, so only the first
/// point of a sweep pays any searches), returning the completed-run
/// statistics and the client-observed makespan.
fn drive(
    net: &Network,
    cfg: &ServeConfig,
    compiler: &PlanCompiler,
    offered_rps: f64,
    requests: usize,
) -> (ServerStats, Duration, ServerSnapshot) {
    let shape = net.stages()[0].shape;
    let server = Server::start_with_compiler(net.clone(), cfg.clone(), compiler.clone());
    // Compile plans for every batch size the batcher can form, then warm
    // the execution path, so the sweep measures steady-state serving —
    // no mid-measurement plan search at any load point (and, from the
    // second drive on, no searches at all: the cache is shared).
    server.prewarm().expect("synthetic network plans");
    for warm in 0..2 {
        let input = synth::ifmap(&shape, 1, 1000 + warm);
        server
            .submit(input)
            .expect("warmup submit")
            .wait()
            .expect("warmup inference");
    }
    let interval = Duration::from_secs_f64(1.0 / offered_rps);
    let start = Instant::now();
    let mut handles = Vec::with_capacity(requests);
    for i in 0..requests {
        // Absolute pacing: sleep to the schedule, not between submits,
        // so submit latency does not skew the offered rate.
        let due = start + interval * i as u32;
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let input = synth::ifmap(&shape, 1, i as u64);
        handles.push(server.submit(input).expect("open-loop submit"));
    }
    // Sample the live telemetry view mid-run — after roughly half the
    // requests have completed, while later ones may still be queued or
    // executing — then again after the last completion.
    let mut mid = None;
    let half = requests.div_ceil(2);
    for (i, handle) in handles.into_iter().enumerate() {
        handle.wait().expect("open-loop inference");
        if i + 1 == half {
            mid = Some(server.snapshot());
        }
    }
    let makespan = start.elapsed();
    let fin = server.snapshot();
    let stats = server.shutdown();
    check_live_consistency(mid.as_ref().expect("sampled"), &fin, &stats, cfg);
    // Drop the warmup records so percentiles reflect the measured load.
    let mut stats = stats;
    stats.records.retain(|r| r.id >= 2);
    (stats, makespan, fin)
}

/// Asserts the live [`Server::snapshot`] views are monotone-consistent
/// with each other and with the exact end-of-run [`ServerStats`]:
/// histograms only grow, the queue-depth gauge stays within the
/// configured bounds and drains to zero, and the streaming percentiles
/// agree with the exact nearest-rank ones to within the documented
/// bucket error.
fn check_live_consistency(
    mid: &ServerSnapshot,
    fin: &ServerSnapshot,
    stats: &ServerStats,
    cfg: &ServeConfig,
) {
    assert!(
        fin.total_ns.dominates(&mid.total_ns),
        "latency histogram must only grow over a run"
    );
    assert!(mid.completed <= fin.completed);
    assert!(
        mid.queue_depth >= 0 && mid.queue_depth <= cfg.queue_capacity as i64,
        "mid-run queue depth {} outside [0, {}]",
        mid.queue_depth,
        cfg.queue_capacity
    );
    assert_eq!(fin.queue_depth, 0, "queue drains by the last completion");
    assert_eq!(fin.inflight_batches, 0);
    assert_eq!(fin.completed as usize, stats.completed());
    // Telemetry is live on these servers, so every completed request
    // carries an attribution and lands one `serve.delay_residual`
    // sample (the |measured − analytic| plan-prediction error).
    assert_eq!(
        fin.delay_residual.count(),
        fin.completed,
        "one residual sample per completed request"
    );
    let exact = stats.latency_summary();
    for (stream, exact) in [(fin.p50(), exact.p50), (fin.p99(), exact.p99)] {
        let bound = exact.as_nanos() as f64 * eyeriss_telemetry::RELATIVE_ERROR + 1.0;
        let delta = stream.as_nanos().abs_diff(exact.as_nanos()) as f64;
        assert!(
            delta <= bound,
            "streaming {stream:?} vs exact {exact:?} exceeds the error bound"
        );
    }
}

/// Calibrates a capacity estimate: the steady-state rate of one worker
/// pool fed as fast as it can drain (a burst of full batches).
fn calibrate(net: &Network, cfg: &ServeConfig, compiler: &PlanCompiler) -> f64 {
    let burst = (cfg.workers * cfg.policy.max_batch * 2).max(8);
    // An absurdly high offered rate degenerates into a burst.
    let (_, makespan, _) = drive(net, cfg, compiler, 1e6, burst);
    burst as f64 / makespan.as_secs_f64()
}

/// Sweeps offered load over `multiples` of the calibrated capacity with
/// `requests` open-loop requests per point. One plan cache is shared
/// across every point's server, so only calibration pays the searches.
pub fn sweep_network(
    net: &Network,
    name: &str,
    cfg: &ServeConfig,
    multiples: &[f64],
    requests: usize,
) -> ServingSweep {
    let compiler = PlanCompiler::new(cfg.arrays, cfg.hw);
    let capacity_rps = calibrate(net, cfg, &compiler);
    let points = multiples
        .iter()
        .map(|&mult| {
            let offered = (capacity_rps * mult).max(1.0);
            let (stats, makespan, live) = drive(net, cfg, &compiler, offered, requests);
            let summary = stats.latency_summary();
            LoadPoint {
                offered_rps: offered,
                completed: stats.completed(),
                achieved_rps: stats.completed() as f64 / makespan.as_secs_f64(),
                p50: summary.p50,
                p99: summary.p99,
                mean_queue: stats.mean_queue(),
                mean_batch: stats.mean_batch(),
                live_p99: live.p99(),
            }
        })
        .collect();
    ServingSweep {
        network: name.to_string(),
        capacity_rps,
        points,
    }
}

/// The default measured sweep: the synthetic network at 0.25/0.5/1/2/4×
/// calibrated capacity, 32 requests per point.
pub fn sweep_synthetic() -> ServingSweep {
    sweep_network(
        &synthetic_net(),
        "synthetic",
        &serve_config(),
        &[0.25, 0.5, 1.0, 2.0, 4.0],
        32,
    )
}

/// Renders a sweep as a text table.
pub fn render_sweep(sweep: &ServingSweep) -> String {
    let mut t = TextTable::new(vec![
        "offered rps".into(),
        "achieved rps".into(),
        "p50".into(),
        "p99".into(),
        "mean queue".into(),
        "mean batch".into(),
        "live p99".into(),
    ]);
    for p in &sweep.points {
        t.row(vec![
            format!("{:.0}", p.offered_rps),
            format!("{:.0}", p.achieved_rps),
            format!("{:.2} ms", p.p50.as_secs_f64() * 1e3),
            format!("{:.2} ms", p.p99.as_secs_f64() * 1e3),
            format!("{:.2} ms", p.mean_queue.as_secs_f64() * 1e3),
            format!("{:.2}", p.mean_batch),
            format!("{:.2} ms", p.live_p99.as_secs_f64() * 1e3),
        ]);
    }
    format!(
        "Offered-load sweep — {} network, capacity ≈ {:.0} rps\n{}",
        sweep.network,
        sweep.capacity_rps,
        t.render()
    )
}

// ---------------------------------------------------------------------------
// Overload: admission control vs the legacy FIFO at the same 2× load
// ---------------------------------------------------------------------------

/// Warmup requests per overload server — enough worker-fed samples to
/// calibrate the sched server's admission estimator before measuring.
const OVERLOAD_WARMUPS: usize = 4;

/// Per-request deadline, as a multiple of the calibrated no-backlog
/// completion estimate. Five estimates of queueing budget keeps the
/// bound `p99 ≤ 2 × deadline` safely clear of batch-formation and
/// dispatch-channel slack while still forcing heavy shedding at 2×
/// offered load.
const OVERLOAD_DEADLINE_MULT: f64 = 5.0;

/// One server's behaviour under the overload run.
#[derive(Debug, Clone)]
pub struct OverloadPoint {
    /// Open-loop submit attempts (after warmup).
    pub submitted: usize,
    /// Requests that completed.
    pub completed: usize,
    /// Requests rejected at admission (sched server only).
    pub rejected: usize,
    /// Requests admitted but shed at dispatch — their deadline expired
    /// while queued (sched server only).
    pub expired: usize,
    /// p99 end-to-end latency over completed requests.
    pub p99: Duration,
    /// p99 over completions from the first half of the submission order.
    pub first_half_p99: Duration,
    /// p99 over completions from the second half of the submission
    /// order — on the FIFO this keeps growing with the queue.
    pub second_half_p99: Duration,
}

/// Admission ON vs the legacy FIFO at the same ≥2× overload, from
/// [`overload_comparison`].
#[derive(Debug, Clone)]
pub struct OverloadReport {
    /// Network name.
    pub network: String,
    /// Calibrated capacity, requests/second.
    pub capacity_rps: f64,
    /// Offered arrival rate (2× capacity), requests/second.
    pub offered_rps: f64,
    /// The per-request deadline handed to the sched server, derived
    /// from the admission controller's calibrated no-backlog estimate
    /// (× `OVERLOAD_DEADLINE_MULT`).
    pub deadline: Duration,
    /// The sched server (admission ON).
    pub sched: OverloadPoint,
    /// The legacy FIFO server (admission OFF).
    pub fifo: OverloadPoint,
}

impl OverloadReport {
    /// The acceptance bound: admission keeps completed-request p99
    /// within 2× the per-request completion budget (itself a fixed
    /// multiple of the analytic completion estimate) — requests that
    /// would exceed it are rejected up front or shed at dispatch, so
    /// accepted-request latency cannot grow with the offered load.
    pub fn admission_bounds_p99(&self) -> bool {
        self.sched.p99 <= self.deadline * 2
    }

    /// True when the FIFO's second-half p99 exceeds its first-half p99
    /// by at least `factor` — the unbounded-queue growth signature.
    pub fn fifo_p99_grows(&self, factor: f64) -> bool {
        self.fifo.second_half_p99.as_secs_f64() >= self.fifo.first_half_p99.as_secs_f64() * factor
    }
}

/// Drives one overload server: prewarm + warmups (which calibrate the
/// sched estimator), then `requests` paced open-loop submits. With
/// `deadline_mult` each request carries a deadline derived from the
/// live completion estimate; `None` runs the plain FIFO path.
fn overload_run(
    net: &Network,
    cfg: &ServeConfig,
    compiler: &PlanCompiler,
    offered_rps: f64,
    requests: usize,
    deadline_mult: Option<f64>,
) -> (OverloadPoint, Option<Duration>) {
    let shape = net.stages()[0].shape;
    let server = Server::start_with_compiler(net.clone(), cfg.clone(), compiler.clone());
    server.prewarm().expect("synthetic network plans");
    for warm in 0..OVERLOAD_WARMUPS {
        server
            .submit(synth::ifmap(&shape, 1, 2000 + warm as u64))
            .expect("warmup submit")
            .wait()
            .expect("warmup inference");
    }
    let deadline = deadline_mult.map(|mult| {
        let est = server
            .estimated_completion()
            .expect("warmed sched server is calibrated");
        Duration::from_secs_f64(est.as_secs_f64() * mult)
    });
    let interval = Duration::from_secs_f64(1.0 / offered_rps);
    let start = Instant::now();
    let mut handles = Vec::with_capacity(requests);
    let mut rejected = 0usize;
    for i in 0..requests {
        let due = start + interval * i as u32;
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let input = synth::ifmap(&shape, 1, i as u64);
        let opts = deadline.map_or_else(SubmitOptions::default, |d| {
            SubmitOptions::default().deadline(d)
        });
        match server.submit_with(input, opts) {
            Ok(handle) => handles.push(handle),
            Err(ServeError::Admission(_)) => rejected += 1,
            Err(e) => panic!("overload submit failed: {e}"),
        }
    }
    let mut expired = 0usize;
    for handle in handles {
        match handle.wait() {
            Ok(_) => {}
            Err(ServeError::Admission(AdmissionError::DeadlinePassed)) => expired += 1,
            Err(e) => panic!("overload inference failed: {e}"),
        }
    }
    let stats = server.shutdown();
    // Ids are minted once per submit attempt (warmups first), so the
    // half split below follows submission order on both servers.
    let warm = OVERLOAD_WARMUPS as u64;
    let half = warm + requests as u64 / 2;
    let totals = |lo: u64, hi: u64| -> Vec<Duration> {
        stats
            .records
            .iter()
            .filter(|r| r.id >= lo && r.id < hi)
            .map(|r| r.latency.total())
            .collect()
    };
    let all = totals(warm, u64::MAX);
    let point = OverloadPoint {
        submitted: requests,
        completed: all.len(),
        rejected,
        expired,
        p99: percentile(&all, 0.99),
        first_half_p99: percentile(&totals(warm, half), 0.99),
        second_half_p99: percentile(&totals(half, u64::MAX), 0.99),
    };
    (point, deadline)
}

/// Runs the admission-vs-FIFO overload comparison: both servers face
/// the same open-loop load at 2× the calibrated capacity with a shared
/// plan cache; the FIFO's queue is sized to absorb every request (no
/// submit-side backpressure), so its latency growth is visible.
pub fn overload_comparison(requests: usize) -> OverloadReport {
    let net = synthetic_net();
    let mut cfg = serve_config();
    // Half-size batches keep one batch's service well inside the
    // deadline budget; the oversized queue lets the legacy path absorb
    // the whole overload instead of blocking the client.
    cfg.policy.max_batch = 2;
    cfg.queue_capacity = requests + 8;
    let compiler = PlanCompiler::new(cfg.arrays, cfg.hw);
    let capacity_rps = calibrate(&net, &cfg, &compiler);
    let offered_rps = capacity_rps * 2.0;
    let mut sched_cfg = cfg.clone();
    sched_cfg.sched = Some(SchedConfig::new());
    let (sched, deadline) = overload_run(
        &net,
        &sched_cfg,
        &compiler,
        offered_rps,
        requests,
        Some(OVERLOAD_DEADLINE_MULT),
    );
    let (fifo, _) = overload_run(&net, &cfg, &compiler, offered_rps, requests, None);
    OverloadReport {
        network: "synthetic".to_string(),
        capacity_rps,
        offered_rps,
        deadline: deadline.expect("sched run derives a deadline"),
        sched,
        fifo,
    }
}

/// Renders the overload comparison as a text table.
pub fn render_overload(report: &OverloadReport) -> String {
    let ms = |d: Duration| format!("{:.2} ms", d.as_secs_f64() * 1e3);
    let mut t = TextTable::new(vec![
        "server".into(),
        "submitted".into(),
        "completed".into(),
        "rejected".into(),
        "expired".into(),
        "p99".into(),
        "1st-half p99".into(),
        "2nd-half p99".into(),
    ]);
    for (name, p) in [("admission", &report.sched), ("fifo", &report.fifo)] {
        t.row(vec![
            name.into(),
            p.submitted.to_string(),
            p.completed.to_string(),
            p.rejected.to_string(),
            p.expired.to_string(),
            ms(p.p99),
            ms(p.first_half_p99),
            ms(p.second_half_p99),
        ]);
    }
    format!(
        "Overload — {} network, offered {:.0} rps (2× capacity {:.0}), deadline {}\n{}",
        report.network,
        report.offered_rps,
        report.capacity_rps,
        ms(report.deadline),
        t.render()
    )
}

// ---------------------------------------------------------------------------
// Fairness: DRR completed-throughput shares under a two-tenant flood
// ---------------------------------------------------------------------------

/// Per-tenant completed counts at the sampling instant of a
/// [`fairness_drr`] run.
#[derive(Debug, Clone)]
pub struct FairnessReport {
    /// The two tenants' configured DRR weights, `[hog, guest]`.
    pub weights: [f64; 2],
    /// Completed requests per tenant when the threshold was crossed
    /// (both tenants still backlogged).
    pub completed: [u64; 2],
    /// Observed completed-throughput ratio `hog / guest`.
    pub observed_ratio: f64,
    /// The configured weight ratio.
    pub target_ratio: f64,
}

impl FairnessReport {
    /// True when the observed ratio is within `tolerance` (relative,
    /// e.g. `0.15`) of the weight ratio.
    pub fn within(&self, tolerance: f64) -> bool {
        (self.observed_ratio - self.target_ratio).abs() <= self.target_ratio * tolerance
    }
}

/// Floods one single-worker, unbatched sched server with `per_tenant`
/// requests from each of two tenants weighted 3:1, then samples the
/// per-tenant completed counters the moment `threshold` total requests
/// have finished — while both lanes are still backlogged, so the DRR
/// arbiter (not queue exhaustion) sets the shares. `threshold × 3/4`
/// must stay below `per_tenant` for that to hold.
pub fn fairness_drr(per_tenant: usize, threshold: u64) -> FairnessReport {
    assert!(
        threshold as usize * 3 <= per_tenant * 4,
        "threshold would drain the heavy tenant's lane"
    );
    let net = synthetic_net();
    let shape = net.stages()[0].shape;
    let mut cfg = serve_config();
    // One worker and batch size 1: every dispatch is one DRR decision,
    // so the shares are free of batch-quantization noise.
    cfg.workers = 1;
    cfg.policy = BatchPolicy::unbatched();
    cfg.queue_capacity = 2 * per_tenant + 8;
    let mut sched = SchedConfig::new()
        .tenant(TenantSpec::new("hog").weight(3.0))
        .tenant(TenantSpec::new("guest").weight(1.0));
    // Both tenants sit at the same tier; disabling aging keeps the
    // shares free of tier-promotion transients at interval boundaries.
    sched.aging = Duration::ZERO;
    cfg.sched = Some(sched);
    let compiler = PlanCompiler::new(cfg.arrays, cfg.hw);
    let server = Server::start_with_compiler(net, cfg, compiler);
    server.prewarm().expect("synthetic network plans");
    let (hog, guest) = (TenantId(1), TenantId(2));
    let mut handles = Vec::with_capacity(2 * per_tenant);
    for i in 0..per_tenant {
        for tenant in [hog, guest] {
            handles.push(
                server
                    .submit_with(
                        synth::ifmap(&shape, 1, i as u64),
                        SubmitOptions::tenant(tenant),
                    )
                    .expect("burst submit"),
            );
        }
    }
    // Poll the live counters; the crossing sample is the measurement.
    let completed = loop {
        let tenants = server.tenants();
        let (h, g) = (
            tenants[hog.index()].completed,
            tenants[guest.index()].completed,
        );
        if h + g >= threshold {
            break [h, g];
        }
        std::thread::sleep(Duration::from_micros(200));
    };
    server.shutdown(); // drains the remaining backlog
    for handle in handles {
        handle.wait().expect("drained inference");
    }
    FairnessReport {
        weights: [3.0, 1.0],
        completed,
        observed_ratio: completed[0] as f64 / completed[1].max(1) as f64,
        target_ratio: 3.0,
    }
}

/// Renders the fairness run as a text table.
pub fn render_fairness(report: &FairnessReport) -> String {
    let mut t = TextTable::new(vec![
        "tenant".into(),
        "weight".into(),
        "completed".into(),
        "share".into(),
    ]);
    let total = (report.completed[0] + report.completed[1]).max(1) as f64;
    for (name, i) in [("hog", 0), ("guest", 1)] {
        t.row(vec![
            name.into(),
            format!("{:.0}", report.weights[i]),
            report.completed[i].to_string(),
            format!("{:.0}%", report.completed[i] as f64 / total * 100.0),
        ]);
    }
    format!(
        "DRR fairness — observed ratio {:.2} vs target {:.0} ({} within 15%)\n{}",
        report.observed_ratio,
        report.target_ratio,
        if report.within(0.15) { "is" } else { "NOT" },
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg_compile_report_hits_the_cache() {
        let report = compile_vgg();
        assert_eq!(report.layers.len(), 13);
        assert_eq!(report.cache.misses, 9, "9 distinct VGG CONV shapes");
        assert_eq!(report.cache.hits, 4);
        assert!(report.cache.hit_rate() > 0.0);
        assert!(report.analytic_delay() > 0.0);
        assert!(render_compile(&report).contains("cache hits"));
    }

    #[test]
    fn alexnet_compile_report_covers_every_layer() {
        let report = compile_alexnet();
        assert_eq!(report.layers.len(), 5);
        // AlexNet's five CONV shapes are all distinct: no hits expected.
        assert_eq!(report.cache.misses, 5);
        assert!(report.layers.iter().all(|l| l.delay > 0.0));
    }

    #[test]
    fn small_sweep_records_latency_and_throughput() {
        // A reduced sweep keeps the measured test quick; the full-size
        // monotonicity claim is exercised by the root serving test.
        let sweep = sweep_network(
            &synthetic_net(),
            "synthetic",
            &serve_config(),
            &[0.5, 4.0],
            8,
        );
        assert!(sweep.capacity_rps > 0.0);
        assert_eq!(sweep.points.len(), 2);
        for p in &sweep.points {
            assert_eq!(p.completed, 8);
            assert!(p.achieved_rps > 0.0);
            assert!(p.p99 >= p.p50);
            assert!(p.live_p99 > Duration::ZERO, "live snapshot was sampled");
        }
        assert!(render_sweep(&sweep).contains("achieved rps"));
    }

    #[test]
    fn overload_breach_dumps_exactly_once() {
        use eyeriss_serve::SloSpec;
        let net = synthetic_net();
        let shape = net.stages()[0].shape;
        let mut cfg = serve_config();
        // A 1 ns p99 bound no real inference can meet: every request
        // violates, so the monitor must breach — and latch, producing
        // exactly one flight dump no matter how many more requests
        // violate afterwards.
        cfg.slos = vec![SloSpec::p99_latency("p99-1ns", Duration::from_nanos(1)).min_events(4)];
        let compiler = PlanCompiler::new(cfg.arrays, cfg.hw);
        let server = Server::start_with_compiler(net, cfg.clone(), compiler);
        server.prewarm().expect("synthetic network plans");
        let handles: Vec<_> = (0..12)
            .map(|i| {
                server
                    .submit(synth::ifmap(&shape, 1, i))
                    .expect("breach submit")
            })
            .collect();
        for h in handles {
            h.wait().expect("breach inference");
        }
        let dumps = server.slo_monitor().dumps();
        assert_eq!(dumps.len(), 1, "latched breach dumps exactly once");
        let dump = &dumps[0];
        assert_eq!(dump.slo, "p99-1ns");
        assert!(dump.short_burn >= 1.0 && dump.long_burn >= 1.0);
        assert!(!dump.records.is_empty(), "flight ring covers the breach");
        assert!(
            dump.records.iter().all(|r| r.end_ns <= dump.at_ns),
            "flight records precede the breach instant"
        );
        assert!(dump.records.iter().all(|r| r.latency_ns > 1));
        server.shutdown();
    }

    #[test]
    fn admission_bounds_p99_at_2x_overload_while_fifo_grows() {
        let report = overload_comparison(32);
        assert!(report.offered_rps >= report.capacity_rps * 2.0);
        assert!(report.sched.completed > 0, "some requests must be accepted");
        assert!(
            report.sched.rejected + report.sched.expired > 0,
            "2× overload must shed work on the sched server"
        );
        // Admission ON: accepted-request p99 stays within the bounded
        // completion budget no matter the offered load.
        assert!(
            report.admission_bounds_p99(),
            "sched p99 {:?} exceeds 2× deadline {:?}",
            report.sched.p99,
            report.deadline
        );
        // Admission OFF: the FIFO completes everything, and its p99
        // keeps growing with the queue across the run.
        assert_eq!(report.fifo.completed, report.fifo.submitted);
        assert_eq!(report.fifo.rejected + report.fifo.expired, 0);
        assert!(
            report.fifo_p99_grows(1.3),
            "fifo halves {:?} → {:?} did not grow",
            report.fifo.first_half_p99,
            report.fifo.second_half_p99
        );
        let table = render_overload(&report);
        assert!(table.contains("admission") && table.contains("fifo"));
    }

    #[test]
    fn drr_shares_converge_to_weights() {
        let report = fairness_drr(60, 60);
        assert!(report.completed[0] + report.completed[1] >= 60);
        assert!(
            report.within(0.15),
            "observed ratio {:.2} outside 15% of {:.0} ({:?})",
            report.observed_ratio,
            report.target_ratio,
            report.completed
        );
        assert!(render_fairness(&report).contains("within 15%"));
    }
}
