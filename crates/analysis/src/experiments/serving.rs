//! Serving (beyond the paper): plan compilation on real networks and an
//! offered-load sweep on the `eyeriss-serve` runtime.
//!
//! Two views, mirroring [`super::cluster_scaling`]'s analytic/measured
//! split:
//!
//! * [`compile_alexnet`] / [`compile_vgg`] — the **plan-compilation
//!   report**: every CONV layer of the network is compiled through the
//!   content-keyed plan cache, showing which layers share plans (VGG's
//!   stacked 3×3 stages) and the per-layer `(partition, mapping)` each
//!   plan chose.
//! * [`sweep_synthetic`] — the **measured offered-load sweep**: an
//!   open-loop client drives a live [`eyeriss_serve::Server`] at
//!   multiples of its calibrated capacity and records achieved
//!   throughput plus p50/p99 latency at each point — the canonical
//!   latency/throughput serving curve.

use crate::table::TextTable;
use eyeriss_arch::AcceleratorConfig;
use eyeriss_nn::network::{Network, NetworkBuilder};
use eyeriss_nn::shape::NamedLayer;
use eyeriss_nn::{alexnet, synth, vgg};
use eyeriss_serve::{
    BatchPolicy, CacheStats, PlanCompiler, ServeConfig, Server, ServerSnapshot, ServerStats,
};
use std::time::{Duration, Instant};

/// One compiled layer of a [`CompileReport`].
#[derive(Debug, Clone)]
pub struct LayerPlanRow {
    /// Layer name.
    pub name: String,
    /// Chosen partition label.
    pub partition: String,
    /// Analytic cluster delay (MAC-time units).
    pub delay: f64,
    /// Analytic energy (normalized units).
    pub energy: f64,
    /// Whether the shared DRAM channel bounds this layer.
    pub bandwidth_bound: bool,
}

/// Plan compilation of one network's CONV layers through the plan cache.
#[derive(Debug, Clone)]
pub struct CompileReport {
    /// Network name.
    pub network: String,
    /// Cluster width compiled for.
    pub arrays: usize,
    /// Batch size compiled for.
    pub batch: usize,
    /// One row per layer, in network order.
    pub layers: Vec<LayerPlanRow>,
    /// Cache counters after compiling the whole network.
    pub cache: CacheStats,
    /// Wall-clock compile time.
    pub compile_time: Duration,
}

impl CompileReport {
    /// Summed analytic delay — the capacity model's per-inference cost.
    pub fn analytic_delay(&self) -> f64 {
        self.layers.iter().map(|l| l.delay).sum()
    }
}

fn compile_layers(
    network: &str,
    layers: &[NamedLayer],
    arrays: usize,
    batch: usize,
) -> CompileReport {
    let compiler = PlanCompiler::new(arrays, AcceleratorConfig::eyeriss_chip());
    let start = Instant::now();
    let plans = compiler
        .compile_layers(layers, batch)
        .expect("paper networks plan on small clusters");
    let compile_time = start.elapsed();
    CompileReport {
        network: network.to_string(),
        arrays,
        batch,
        layers: plans
            .into_iter()
            .map(|(name, plan)| LayerPlanRow {
                name,
                partition: plan.partition.label(),
                delay: plan.delay,
                energy: plan.energy,
                bandwidth_bound: plan.bandwidth_bound(),
            })
            .collect(),
        cache: compiler.cache().stats(),
        compile_time,
    }
}

/// Compiles AlexNet's five CONV layers (batch 4, four arrays).
pub fn compile_alexnet() -> CompileReport {
    compile_layers("AlexNet", &alexnet::conv_layers(), 4, 4)
}

/// Compiles VGG-16's thirteen CONV layers (batch 1, two arrays): the
/// repeated-shape showcase — only nine distinct plans are searched.
pub fn compile_vgg() -> CompileReport {
    compile_layers("VGG-16", &vgg::conv_layers(), 2, 1)
}

/// Renders a compile report as a text table.
pub fn render_compile(report: &CompileReport) -> String {
    let mut t = TextTable::new(vec![
        "layer".into(),
        "partition".into(),
        "delay".into(),
        "energy".into(),
        "BW-bound".into(),
    ]);
    for l in &report.layers {
        t.row(vec![
            l.name.clone(),
            l.partition.clone(),
            format!("{:.3e}", l.delay),
            format!("{:.3e}", l.energy),
            if l.bandwidth_bound { "yes" } else { "" }.into(),
        ]);
    }
    format!(
        "Plan compilation — {} CONV layers, batch {}, {} arrays\n\
         {} searches, {} cache hits (hit rate {:.0}%), compiled in {:.0} ms\n{}",
        report.network,
        report.batch,
        report.arrays,
        report.cache.misses,
        report.cache.hits,
        report.cache.hit_rate() * 100.0,
        report.compile_time.as_secs_f64() * 1e3,
        t.render()
    )
}

/// One operating point of the offered-load sweep.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Offered arrival rate, requests/second.
    pub offered_rps: f64,
    /// Requests completed (all of them — the client blocks, it does not
    /// shed).
    pub completed: usize,
    /// Achieved throughput: completions / (first submit → last
    /// completion).
    pub achieved_rps: f64,
    /// Median end-to-end latency.
    pub p50: Duration,
    /// 99th-percentile end-to-end latency.
    pub p99: Duration,
    /// Mean time spent queued.
    pub mean_queue: Duration,
    /// Mean executed batch size at this load.
    pub mean_batch: f64,
    /// Streaming p99 estimate from the live [`ServerSnapshot`] taken
    /// just before shutdown — includes warmup requests, and is checked
    /// against the exact percentile to within the histogram error bound
    /// during the sweep.
    pub live_p99: Duration,
}

/// The measured latency/throughput curve of one server configuration.
#[derive(Debug, Clone)]
pub struct ServingSweep {
    /// Network name.
    pub network: String,
    /// Calibrated single-server capacity estimate, requests/second.
    pub capacity_rps: f64,
    /// One point per offered load, in increasing-load order.
    pub points: Vec<LoadPoint>,
}

impl ServingSweep {
    /// True when achieved throughput is non-decreasing (within
    /// `tolerance`, e.g. `0.15`) across the increasing-load points —
    /// i.e. the server scales up to saturation and then holds its
    /// saturated throughput instead of collapsing.
    pub fn throughput_is_monotone(&self, tolerance: f64) -> bool {
        self.points
            .windows(2)
            .all(|w| w[1].achieved_rps >= w[0].achieved_rps * (1.0 - tolerance))
    }
}

/// The small synthetic network the measured sweep serves: big enough
/// that one inference costs measurable simulation time, small enough to
/// sweep in seconds.
pub fn synthetic_net() -> Network {
    NetworkBuilder::new(3, 31)
        .conv("C1", 12, 3, 2)
        .expect("valid synthetic stage")
        .pool("P1", 3, 2)
        .expect("valid synthetic stage")
        .conv("C2", 16, 3, 1)
        .expect("valid synthetic stage")
        .fully_connected("FC", 10)
        .expect("valid synthetic stage")
        .build(17)
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        arrays: 2,
        workers: 2,
        policy: BatchPolicy {
            max_batch: 4,
            max_wait: Duration::from_millis(2),
        },
        queue_capacity: 64,
        hw: AcceleratorConfig::eyeriss_chip(),
        telemetry: None,
        slos: Vec::new(),
        flight_capacity: 256,
    }
}

/// Runs `requests` open-loop requests at `offered_rps` against a fresh
/// server for `net` (sharing `compiler`'s plan cache, so only the first
/// point of a sweep pays any searches), returning the completed-run
/// statistics and the client-observed makespan.
fn drive(
    net: &Network,
    cfg: &ServeConfig,
    compiler: &PlanCompiler,
    offered_rps: f64,
    requests: usize,
) -> (ServerStats, Duration, ServerSnapshot) {
    let shape = net.stages()[0].shape;
    let server = Server::start_with_compiler(net.clone(), cfg.clone(), compiler.clone());
    // Compile plans for every batch size the batcher can form, then warm
    // the execution path, so the sweep measures steady-state serving —
    // no mid-measurement plan search at any load point (and, from the
    // second drive on, no searches at all: the cache is shared).
    server.prewarm().expect("synthetic network plans");
    for warm in 0..2 {
        let input = synth::ifmap(&shape, 1, 1000 + warm);
        server
            .submit(input)
            .expect("warmup submit")
            .wait()
            .expect("warmup inference");
    }
    let interval = Duration::from_secs_f64(1.0 / offered_rps);
    let start = Instant::now();
    let mut handles = Vec::with_capacity(requests);
    for i in 0..requests {
        // Absolute pacing: sleep to the schedule, not between submits,
        // so submit latency does not skew the offered rate.
        let due = start + interval * i as u32;
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let input = synth::ifmap(&shape, 1, i as u64);
        handles.push(server.submit(input).expect("open-loop submit"));
    }
    // Sample the live telemetry view mid-run — after roughly half the
    // requests have completed, while later ones may still be queued or
    // executing — then again after the last completion.
    let mut mid = None;
    let half = requests.div_ceil(2);
    for (i, handle) in handles.into_iter().enumerate() {
        handle.wait().expect("open-loop inference");
        if i + 1 == half {
            mid = Some(server.snapshot());
        }
    }
    let makespan = start.elapsed();
    let fin = server.snapshot();
    let stats = server.shutdown();
    check_live_consistency(mid.as_ref().expect("sampled"), &fin, &stats, cfg);
    // Drop the warmup records so percentiles reflect the measured load.
    let mut stats = stats;
    stats.records.retain(|r| r.id >= 2);
    (stats, makespan, fin)
}

/// Asserts the live [`Server::snapshot`] views are monotone-consistent
/// with each other and with the exact end-of-run [`ServerStats`]:
/// histograms only grow, the queue-depth gauge stays within the
/// configured bounds and drains to zero, and the streaming percentiles
/// agree with the exact nearest-rank ones to within the documented
/// bucket error.
fn check_live_consistency(
    mid: &ServerSnapshot,
    fin: &ServerSnapshot,
    stats: &ServerStats,
    cfg: &ServeConfig,
) {
    assert!(
        fin.total_ns.dominates(&mid.total_ns),
        "latency histogram must only grow over a run"
    );
    assert!(mid.completed <= fin.completed);
    assert!(
        mid.queue_depth >= 0 && mid.queue_depth <= cfg.queue_capacity as i64,
        "mid-run queue depth {} outside [0, {}]",
        mid.queue_depth,
        cfg.queue_capacity
    );
    assert_eq!(fin.queue_depth, 0, "queue drains by the last completion");
    assert_eq!(fin.inflight_batches, 0);
    assert_eq!(fin.completed as usize, stats.completed());
    // Telemetry is live on these servers, so every completed request
    // carries an attribution and lands one `serve.delay_residual`
    // sample (the |measured − analytic| plan-prediction error).
    assert_eq!(
        fin.delay_residual.count(),
        fin.completed,
        "one residual sample per completed request"
    );
    let exact = stats.latency_summary();
    for (stream, exact) in [(fin.p50(), exact.p50), (fin.p99(), exact.p99)] {
        let bound = exact.as_nanos() as f64 * eyeriss_telemetry::RELATIVE_ERROR + 1.0;
        let delta = stream.as_nanos().abs_diff(exact.as_nanos()) as f64;
        assert!(
            delta <= bound,
            "streaming {stream:?} vs exact {exact:?} exceeds the error bound"
        );
    }
}

/// Calibrates a capacity estimate: the steady-state rate of one worker
/// pool fed as fast as it can drain (a burst of full batches).
fn calibrate(net: &Network, cfg: &ServeConfig, compiler: &PlanCompiler) -> f64 {
    let burst = (cfg.workers * cfg.policy.max_batch * 2).max(8);
    // An absurdly high offered rate degenerates into a burst.
    let (_, makespan, _) = drive(net, cfg, compiler, 1e6, burst);
    burst as f64 / makespan.as_secs_f64()
}

/// Sweeps offered load over `multiples` of the calibrated capacity with
/// `requests` open-loop requests per point. One plan cache is shared
/// across every point's server, so only calibration pays the searches.
pub fn sweep_network(
    net: &Network,
    name: &str,
    cfg: &ServeConfig,
    multiples: &[f64],
    requests: usize,
) -> ServingSweep {
    let compiler = PlanCompiler::new(cfg.arrays, cfg.hw);
    let capacity_rps = calibrate(net, cfg, &compiler);
    let points = multiples
        .iter()
        .map(|&mult| {
            let offered = (capacity_rps * mult).max(1.0);
            let (stats, makespan, live) = drive(net, cfg, &compiler, offered, requests);
            let summary = stats.latency_summary();
            LoadPoint {
                offered_rps: offered,
                completed: stats.completed(),
                achieved_rps: stats.completed() as f64 / makespan.as_secs_f64(),
                p50: summary.p50,
                p99: summary.p99,
                mean_queue: stats.mean_queue(),
                mean_batch: stats.mean_batch(),
                live_p99: live.p99(),
            }
        })
        .collect();
    ServingSweep {
        network: name.to_string(),
        capacity_rps,
        points,
    }
}

/// The default measured sweep: the synthetic network at 0.25/0.5/1/2/4×
/// calibrated capacity, 32 requests per point.
pub fn sweep_synthetic() -> ServingSweep {
    sweep_network(
        &synthetic_net(),
        "synthetic",
        &serve_config(),
        &[0.25, 0.5, 1.0, 2.0, 4.0],
        32,
    )
}

/// Renders a sweep as a text table.
pub fn render_sweep(sweep: &ServingSweep) -> String {
    let mut t = TextTable::new(vec![
        "offered rps".into(),
        "achieved rps".into(),
        "p50".into(),
        "p99".into(),
        "mean queue".into(),
        "mean batch".into(),
        "live p99".into(),
    ]);
    for p in &sweep.points {
        t.row(vec![
            format!("{:.0}", p.offered_rps),
            format!("{:.0}", p.achieved_rps),
            format!("{:.2} ms", p.p50.as_secs_f64() * 1e3),
            format!("{:.2} ms", p.p99.as_secs_f64() * 1e3),
            format!("{:.2} ms", p.mean_queue.as_secs_f64() * 1e3),
            format!("{:.2}", p.mean_batch),
            format!("{:.2} ms", p.live_p99.as_secs_f64() * 1e3),
        ]);
    }
    format!(
        "Offered-load sweep — {} network, capacity ≈ {:.0} rps\n{}",
        sweep.network,
        sweep.capacity_rps,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg_compile_report_hits_the_cache() {
        let report = compile_vgg();
        assert_eq!(report.layers.len(), 13);
        assert_eq!(report.cache.misses, 9, "9 distinct VGG CONV shapes");
        assert_eq!(report.cache.hits, 4);
        assert!(report.cache.hit_rate() > 0.0);
        assert!(report.analytic_delay() > 0.0);
        assert!(render_compile(&report).contains("cache hits"));
    }

    #[test]
    fn alexnet_compile_report_covers_every_layer() {
        let report = compile_alexnet();
        assert_eq!(report.layers.len(), 5);
        // AlexNet's five CONV shapes are all distinct: no hits expected.
        assert_eq!(report.cache.misses, 5);
        assert!(report.layers.iter().all(|l| l.delay > 0.0));
    }

    #[test]
    fn small_sweep_records_latency_and_throughput() {
        // A reduced sweep keeps the measured test quick; the full-size
        // monotonicity claim is exercised by the root serving test.
        let sweep = sweep_network(
            &synthetic_net(),
            "synthetic",
            &serve_config(),
            &[0.5, 4.0],
            8,
        );
        assert!(sweep.capacity_rps > 0.0);
        assert_eq!(sweep.points.len(), 2);
        for p in &sweep.points {
            assert_eq!(p.completed, 8);
            assert!(p.achieved_rps > 0.0);
            assert!(p.p99 >= p.p50);
            assert!(p.live_p99 > Duration::ZERO, "live snapshot was sampled");
        }
        assert!(render_sweep(&sweep).contains("achieved rps"));
    }

    #[test]
    fn overload_breach_dumps_exactly_once() {
        use eyeriss_serve::SloSpec;
        let net = synthetic_net();
        let shape = net.stages()[0].shape;
        let mut cfg = serve_config();
        // A 1 ns p99 bound no real inference can meet: every request
        // violates, so the monitor must breach — and latch, producing
        // exactly one flight dump no matter how many more requests
        // violate afterwards.
        cfg.slos = vec![SloSpec::p99_latency("p99-1ns", Duration::from_nanos(1)).min_events(4)];
        let compiler = PlanCompiler::new(cfg.arrays, cfg.hw);
        let server = Server::start_with_compiler(net, cfg.clone(), compiler);
        server.prewarm().expect("synthetic network plans");
        let handles: Vec<_> = (0..12)
            .map(|i| {
                server
                    .submit(synth::ifmap(&shape, 1, i))
                    .expect("breach submit")
            })
            .collect();
        for h in handles {
            h.wait().expect("breach inference");
        }
        let dumps = server.slo_monitor().dumps();
        assert_eq!(dumps.len(), 1, "latched breach dumps exactly once");
        let dump = &dumps[0];
        assert_eq!(dump.slo, "p99-1ns");
        assert!(dump.short_burn >= 1.0 && dump.long_burn >= 1.0);
        assert!(!dump.records.is_empty(), "flight ring covers the breach");
        assert!(
            dump.records.iter().all(|r| r.end_ns <= dump.at_ns),
            "flight records precede the breach instant"
        );
        assert!(dump.records.iter().all(|r| r.latency_ns > 1));
        server.shutdown();
    }
}
