//! Experiment runners: one module per evaluation table/figure.
//!
//! Each module exposes a `run()` producing structured series and a
//! `render()` producing the plain-text equivalent of the paper's plot.
//! The DESIGN.md experiment index maps each figure to its module.
//!
//! | Figure | Module | Content |
//! |--------|--------|---------|
//! | Fig. 7  | [`fig7`]  | storage allocation per dataflow under fixed area |
//! | Fig. 10 | [`fig10`] | RS per-layer energy breakdown on AlexNet |
//! | Fig. 11 | [`fig11`] | DRAM accesses/op, 6 dataflows, CONV sweep |
//! | Fig. 12 | [`fig12`] | energy/op by level and by data type, CONV sweep |
//! | Fig. 13 | [`fig13`] | normalized EDP, CONV sweep |
//! | Fig. 14 | [`fig14`] | FC-layer comparison at 1024 PEs |
//! | Fig. 15 | [`fig15`] | processing-vs-storage area allocation for RS |
//! | ablation | [`rf_sweep`] | the Section VI-B "512 B RF is optimal" design choice |
//! | ablation | [`sensitivity`] | dataflow ranking under perturbed Table IV costs |
//! | extension | [`cluster_scaling`] | 1/2/4/8-array partitioned scaling (beyond the paper) |
//! | extension | [`serving`] | plan-cache compilation reports and the offered-load serving sweep |
//! | extension | [`flex_dataflow`] | flex-rs vs best dense dataflow on MobileNet (utilization + energy/inference) |
//! | extension | [`chaos`] | fault injection: ABFT detection, quarantine, and degraded-pool throughput |

pub mod chaos;
pub mod cluster_scaling;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig7;
pub mod flex_dataflow;
pub mod rf_sweep;
pub mod sensitivity;
pub mod serving;
pub mod sweep;
