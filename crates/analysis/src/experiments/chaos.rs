//! Chaos (beyond the paper): serving through injected faults.
//!
//! The experiment runs the same network twice under identical sizing —
//! a 4-worker pool, one array per worker, ABFT on:
//!
//! 1. **fault-free baseline** — a saturating burst measures the healthy
//!    pool's capacity;
//! 2. **chaos run** — a seeded [`FaultPlan`] flips one psum bit on each
//!    of three arrays (transient: detected by ABFT, retried to a
//!    bit-exact result) and crashes the fourth array *persistently*
//!    (two consecutive strikes quarantine it, its worker retires, the
//!    pool re-plans onto the 3 healthy arrays), then a second burst
//!    measures the degraded capacity.
//!
//! The claims the report carries: every accepted request completes
//! **bit-exactly** (retries included) — no client hangs, no wrong
//! numbers escape; ABFT detects **100 %** of the injected single-bit
//! psum corruptions; one array ends quarantined; and degraded
//! throughput stays proportional to the surviving pool (≈ 3/4 of the
//! baseline for 3 of 4 arrays).

use crate::table::TextTable;
use eyeriss_arch::AcceleratorConfig;
use eyeriss_nn::network::Network;
use eyeriss_nn::synth;
use eyeriss_serve::{
    BatchPolicy, FaultKind, FaultPlan, FaultSpec, RecoveryPolicy, ServeConfig, Server,
    ServerSnapshot,
};
use std::time::{Duration, Instant};

/// Transient single-bit psum corruptions the plan injects (one per
/// healthy array, on that array's first execution).
pub const PSUM_FLIPS: u64 = 3;

/// The chaos run's outcome: pool health after the injections plus the
/// healthy/degraded capacity measurements.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Requests driven through the chaos server (both phases).
    pub requests: usize,
    /// Requests that completed — every one checked bit-exact against
    /// the golden single-array reference.
    pub completed: usize,
    /// Responses that diverged from the reference (must be 0).
    pub mismatches: usize,
    /// Fault-free capacity, requests/second.
    pub healthy_rps: f64,
    /// Post-quarantine capacity, requests/second.
    pub degraded_rps: f64,
    /// Workers configured / still live after the chaos phase.
    pub workers: usize,
    /// Live workers after the persistent fault retired one.
    pub live_workers: i64,
    /// Arrays quarantined by consecutive strikes.
    pub quarantined_arrays: u64,
    /// Transient-fault batch retries.
    pub retries: u64,
    /// Total injections (psum flips + every crash firing).
    pub faults_injected: u64,
    /// ABFT checksum detections.
    pub faults_detected: u64,
    /// Requests that failed with a typed error (must be 0 here: the
    /// plan has no worker panics, so every fault path retries).
    pub failed: u64,
}

impl ChaosReport {
    /// Degraded capacity as a fraction of healthy capacity. With 3 of 4
    /// arrays surviving the proportional expectation is 0.75; wall
    /// clock on a shared runner is noisy, so acceptance checks a
    /// generous floor via [`ChaosReport::verify`].
    pub fn throughput_ratio(&self) -> f64 {
        self.degraded_rps / self.healthy_rps
    }

    /// Panics unless the run satisfies the fault-tolerance acceptance
    /// criteria: all requests completed bit-exact, ABFT caught every
    /// injected psum flip, exactly one array was quarantined (retiring
    /// its worker), and degraded throughput did not collapse.
    pub fn verify(&self) {
        assert_eq!(
            self.completed, self.requests,
            "every accepted request must complete (none may hang or fail)"
        );
        assert_eq!(self.mismatches, 0, "surviving outputs must be bit-exact");
        assert_eq!(self.failed, 0, "no request should exhaust its retries");
        assert_eq!(
            self.faults_detected, PSUM_FLIPS,
            "ABFT must detect 100% of injected single-bit psum corruptions"
        );
        assert!(
            self.retries >= PSUM_FLIPS,
            "each detected corruption retries its batch (saw {} retries)",
            self.retries
        );
        assert_eq!(self.quarantined_arrays, 1, "the crashed array quarantines");
        assert_eq!(
            self.live_workers,
            self.workers as i64 - 1,
            "the quarantined array's worker retires"
        );
        assert!(
            self.faults_injected > PSUM_FLIPS,
            "the persistent crash fires at least twice before quarantine"
        );
        // Proportional expectation is 3/4; assert a generous floor so
        // runner noise cannot flake the gate while a collapse (e.g. the
        // pool serializing on a poisoned lock) still fails loudly.
        assert!(
            self.throughput_ratio() >= 0.4,
            "degraded throughput collapsed: {:.0} of {:.0} rps ({:.0}%)",
            self.degraded_rps,
            self.healthy_rps,
            self.throughput_ratio() * 100.0
        );
    }
}

/// The small network the chaos run serves — reuses the serving sweep's
/// synthetic net so capacity numbers are comparable across experiments.
pub fn chaos_net() -> Network {
    super::serving::synthetic_net()
}

fn chaos_cfg() -> ServeConfig {
    ServeConfig {
        arrays: 1,
        workers: 4,
        // Unbatched: every request is its own batch, so per-batch
        // injections map 1:1 onto requests and the throughput phases
        // measure array capacity, not batching luck.
        policy: BatchPolicy::unbatched(),
        queue_capacity: 64,
        hw: AcceleratorConfig::eyeriss_chip(),
        telemetry: None,
        slos: Vec::new(),
        flight_capacity: 256,
        sched: None,
        faults: None,
        abft: true,
        recovery: RecoveryPolicy::new(),
    }
}

/// The seeded schedule: one transient psum flip on the first execution
/// of each of arrays 0–2, and a persistent crash on array 3 from its
/// first execution onward (strike, strike, quarantine).
pub fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .spec(FaultSpec::once(FaultKind::PsumBitFlip, 0).target(0))
        .spec(FaultSpec::once(FaultKind::PsumBitFlip, 0).target(1))
        .spec(FaultSpec::once(FaultKind::PsumBitFlip, 0).target(2))
        .spec(FaultSpec::from(FaultKind::Crash, 0).target(3))
}

/// Submits `n` requests as a saturating burst, waits for every
/// response, checks each against the golden reference, and returns
/// `(bit-exact mismatches, makespan)`.
fn burst(server: &Server, golden: &Network, n: usize, seed0: u64) -> (usize, Duration) {
    let shape = golden.stages()[0].shape;
    let start = Instant::now();
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let input = synth::ifmap(&shape, 1, seed0 + i as u64);
            server.submit(input).expect("chaos submit")
        })
        .collect();
    let mut mismatches = 0;
    for (i, handle) in handles.into_iter().enumerate() {
        // `wait` returning at all is the no-hung-client guarantee; a
        // lost request would surface as a typed error, not a block.
        let response = handle.wait().expect("chaos request failed");
        let input = synth::ifmap(&shape, 1, seed0 + i as u64);
        if response.output != golden.forward(1, &input) {
            mismatches += 1;
        }
    }
    (mismatches, start.elapsed())
}

/// Runs the chaos experiment under `seed` with `n` requests per phase
/// (`2 × n` total through the chaos server).
pub fn run_seeded(seed: u64, n: usize) -> ChaosReport {
    let net = chaos_net();
    let cfg = chaos_cfg();

    // Phase 0: fault-free capacity of the identical pool.
    let baseline = Server::start(net.clone(), cfg.clone());
    baseline.prewarm().expect("chaos network plans");
    let (base_mis, base_span) = burst(&baseline, &net, n, 10_000);
    assert_eq!(base_mis, 0, "the fault-free baseline must be bit-exact");
    baseline.shutdown();
    let healthy_rps = n as f64 / base_span.as_secs_f64();

    // Phase 1: the chaos run — flips fire on first executions, the
    // persistent crash strikes array 3 twice and quarantines it.
    let mut cfg = cfg;
    cfg.faults = Some(chaos_plan(seed));
    let server = Server::start(net.clone(), cfg);
    server.prewarm().expect("chaos network plans");
    let (chaos_mis, _) = burst(&server, &net, n, 20_000);
    let mid: ServerSnapshot = server.snapshot();

    // Phase 2: degraded capacity on the surviving 3 arrays (all
    // injections are spent, so this burst is clean).
    let (late_mis, late_span) = burst(&server, &net, n, 30_000);
    let degraded_rps = n as f64 / late_span.as_secs_f64();
    let snap = server.snapshot();
    server.shutdown();

    ChaosReport {
        requests: 2 * n,
        completed: snap.completed as usize,
        mismatches: chaos_mis + late_mis,
        healthy_rps,
        degraded_rps,
        workers: snap.workers,
        live_workers: snap.live_workers,
        quarantined_arrays: snap.quarantined_arrays,
        retries: snap.retries,
        faults_injected: snap.faults_injected,
        faults_detected: snap.faults_detected,
        failed: snap.failed,
    }
    .tap_check(&mid)
}

impl ChaosReport {
    /// Sanity-checks the mid-run snapshot ordering (the quarantine and
    /// every detection happened during the chaos phase, not the clean
    /// one), then passes `self` through.
    fn tap_check(self, mid: &ServerSnapshot) -> ChaosReport {
        assert_eq!(mid.quarantined_arrays, 1, "quarantine lands mid-sweep");
        assert_eq!(mid.faults_detected, self.faults_detected);
        self
    }
}

/// The default chaos run: seed 42, 24 requests per phase.
pub fn run() -> ChaosReport {
    run_seeded(42, 24)
}

/// Renders the report as a text table.
pub fn render(report: &ChaosReport) -> String {
    let mut t = TextTable::new(vec!["metric".into(), "value".into()]);
    t.row(vec!["requests".into(), report.requests.to_string()]);
    t.row(vec!["completed".into(), report.completed.to_string()]);
    t.row(vec![
        "bit-exact mismatches".into(),
        report.mismatches.to_string(),
    ]);
    t.row(vec!["failed".into(), report.failed.to_string()]);
    t.row(vec![
        "healthy capacity".into(),
        format!("{:.0} rps", report.healthy_rps),
    ]);
    t.row(vec![
        "degraded capacity".into(),
        format!(
            "{:.0} rps ({:.0}%)",
            report.degraded_rps,
            report.throughput_ratio() * 100.0
        ),
    ]);
    t.row(vec![
        "workers live".into(),
        format!("{}/{}", report.live_workers, report.workers),
    ]);
    t.row(vec![
        "arrays quarantined".into(),
        report.quarantined_arrays.to_string(),
    ]);
    t.row(vec!["batch retries".into(), report.retries.to_string()]);
    t.row(vec![
        "faults injected".into(),
        report.faults_injected.to_string(),
    ]);
    t.row(vec![
        "ABFT detections".into(),
        format!("{}/{}", report.faults_detected, PSUM_FLIPS),
    ]);
    format!(
        "Chaos — 4 workers x 1 array, ABFT on, seeded fault plan\n\
         (3 transient psum flips + 1 persistent array crash)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full acceptance run: bit-exact survival, 100% ABFT
    /// detection, one quarantine, proportional degraded throughput.
    #[test]
    fn chaos_run_survives_and_degrades_proportionally() {
        let report = run_seeded(42, 16);
        report.verify();
        let rendered = render(&report);
        assert!(rendered.contains("quarantined"));
        assert!(rendered.contains("ABFT"));
    }
}
