//! Fig. 12: normalized energy per operation of the six dataflows in the
//! CONV layers of AlexNet, with breakdowns by storage hierarchy level
//! (a–c) and by data type (d). Normalized to RS at 256 PEs, batch 1.

use crate::experiments::sweep::{self, SweepPoint};
use crate::table::TextTable;
use eyeriss_arch::access::DataType;
use eyeriss_arch::energy::Level;
use eyeriss_dataflow::DataflowKind;

/// One energy bar: per-op energy split by level and by data type,
/// normalized to the RS reference.
#[derive(Debug, Clone, Copy)]
pub struct EnergyBar {
    /// In `Level::ALL` order: DRAM, buffer, array, RF, ALU.
    pub by_level: [f64; 5],
    /// In `DataType::ALL` order: ifmaps, weights, psums (ALU excluded).
    pub by_type: [f64; 3],
}

impl EnergyBar {
    /// Total normalized energy/op.
    pub fn total(&self) -> f64 {
        self.by_level.iter().sum()
    }
}

/// One subplot of Fig. 12 (fixed PE count).
#[derive(Debug, Clone)]
pub struct Fig12Panel {
    /// PE array size.
    pub num_pes: usize,
    /// Batch sizes, one per bar group.
    pub batches: Vec<usize>,
    /// `bars[batch_idx][dataflow_idx]`.
    pub bars: Vec<Vec<Option<EnergyBar>>>,
}

/// Computes one subplot from sweep points, normalizing by `reference`
/// energy/op (RS at 256 PEs, batch 1).
pub fn panel_from(points: &[SweepPoint], reference_energy_per_op: f64) -> Fig12Panel {
    let num_pes = points.first().map(|p| p.num_pes).unwrap_or(0);
    let batches = points.iter().map(|p| p.batch).collect();
    let bars = points
        .iter()
        .map(|p| {
            p.runs
                .iter()
                .map(|r| {
                    r.as_ref().map(|run| {
                        let mut by_level = [0.0; 5];
                        for (i, &level) in Level::ALL.iter().enumerate() {
                            by_level[i] = run.energy_per_op_at(level) / reference_energy_per_op;
                        }
                        let mut by_type = [0.0; 3];
                        for (i, &ty) in DataType::ALL.iter().enumerate() {
                            by_type[i] = run.energy_per_op_of(ty) / reference_energy_per_op;
                        }
                        EnergyBar { by_level, by_type }
                    })
                })
                .collect()
        })
        .collect();
    Fig12Panel {
        num_pes,
        batches,
        bars,
    }
}

/// Runs one subplot at the given PE count.
pub fn run_at(num_pes: usize) -> Fig12Panel {
    let reference = sweep::rs_conv_reference().energy_per_op();
    panel_from(&sweep::conv_sweep_at(num_pes), reference)
}

/// Runs all three subplots (the (d) panel is the `by_type` view of (c)).
pub fn run() -> Vec<Fig12Panel> {
    sweep::CONV_PE_SIZES.iter().map(|&p| run_at(p)).collect()
}

/// Renders a subplot by hierarchy level (Fig. 12a–c).
pub fn render_by_level(panel: &Fig12Panel) -> String {
    let mut t = TextTable::new(vec![
        "dataflow".into(),
        "N".into(),
        "DRAM".into(),
        "Buffer".into(),
        "Array".into(),
        "RF".into(),
        "ALU".into(),
        "total".into(),
    ]);
    for (di, kind) in DataflowKind::ALL.iter().enumerate() {
        for (bi, &batch) in panel.batches.iter().enumerate() {
            match &panel.bars[bi][di] {
                Some(bar) => t.row(vec![
                    kind.label().into(),
                    batch.to_string(),
                    format!("{:.3}", bar.by_level[0]),
                    format!("{:.3}", bar.by_level[1]),
                    format!("{:.3}", bar.by_level[2]),
                    format!("{:.3}", bar.by_level[3]),
                    format!("{:.3}", bar.by_level[4]),
                    format!("{:.3}", bar.total()),
                ]),
                None => t.row(vec![
                    kind.label().into(),
                    batch.to_string(),
                    "—".into(),
                    "—".into(),
                    "—".into(),
                    "—".into(),
                    "—".into(),
                    "cannot operate".into(),
                ]),
            }
        }
    }
    format!(
        "Fig. 12 — normalized energy/op by level, CONV layers, {} PEs\n{}",
        panel.num_pes,
        t.render()
    )
}

/// Renders the by-data-type view (Fig. 12d).
pub fn render_by_type(panel: &Fig12Panel) -> String {
    let mut t = TextTable::new(vec![
        "dataflow".into(),
        "N".into(),
        "Ifmaps".into(),
        "Weights".into(),
        "Psums".into(),
    ]);
    for (di, kind) in DataflowKind::ALL.iter().enumerate() {
        for (bi, &batch) in panel.batches.iter().enumerate() {
            match &panel.bars[bi][di] {
                Some(bar) => t.row(vec![
                    kind.label().into(),
                    batch.to_string(),
                    format!("{:.3}", bar.by_type[0]),
                    format!("{:.3}", bar.by_type[1]),
                    format!("{:.3}", bar.by_type[2]),
                ]),
                None => t.row(vec![
                    kind.label().into(),
                    batch.to_string(),
                    "—".into(),
                    "—".into(),
                    "—".into(),
                ]),
            }
        }
    }
    format!(
        "Fig. 12d — normalized energy/op by data type, CONV layers, {} PEs\n{}",
        panel.num_pes,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rs_is_most_energy_efficient_everywhere() {
        // The headline: "RS is 1.4x to 2.5x more energy efficient than
        // other dataflows" across all array sizes and batches.
        for panel in [run_at(256), run_at(1024)] {
            for (bi, row) in panel.bars.iter().enumerate() {
                let rs = row[0].as_ref().unwrap().total();
                for (di, bar) in row.iter().enumerate().skip(1) {
                    if let Some(b) = bar {
                        assert!(
                            b.total() > rs,
                            "{} not worse than RS at pes={} batch idx {bi}",
                            DataflowKind::ALL[di],
                            panel.num_pes
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rs_advantage_in_paper_band() {
        // At the headline operating points the ratio must fall in roughly
        // the paper's 1.4x–2.5x band (we allow a modest margin since our
        // substrate is a reimplementation, not the authors' mapper).
        let panel = run_at(256);
        let n16 = &panel.bars[1];
        let rs = n16[0].as_ref().unwrap().total();
        for bar in n16.iter().skip(1).flatten() {
            let ratio = bar.total() / rs;
            assert!(
                (1.15..=4.0).contains(&ratio),
                "ratio {ratio:.2} outside plausible band"
            );
        }
    }

    #[test]
    fn nlr_energy_mostly_weights() {
        // Fig. 12d: NLR consumes most of its energy for weight accesses.
        let panel = run_at(1024);
        let nlr = panel.bars[1][5].as_ref().unwrap();
        assert!(nlr.by_type[1] > nlr.by_type[0]);
        assert!(nlr.by_type[1] > nlr.by_type[2]);
    }

    #[test]
    fn rs_reference_normalizes_to_one() {
        let reference = sweep::rs_conv_reference().energy_per_op();
        let panel = panel_from(&sweep::conv_sweep_at(256), reference);
        let rs_n1 = panel.bars[0][0].as_ref().unwrap();
        assert!((rs_n1.total() - 1.0).abs() < 1e-9);
    }
}
