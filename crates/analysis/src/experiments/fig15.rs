//! Fig. 15: trading processing area against storage area for the RS
//! dataflow under a fixed total area (Section VII-D).
//!
//! The fixed total area is anchored at the 256-PE setup with the Eq. (2)
//! baseline storage area, plus the PE logic itself. The paper's annotated
//! points imply the PE logic consumes ~54% of that total (264/288 PEs
//! leave 40% for storage; 32 PEs leave 93%), i.e. each PE's datapath costs
//! about 0.21% of the total. We sweep the PE count from 32 to 288,
//! reassign the freed logic area to storage, try several RF sizes, and
//! keep the RF/buffer split with the lowest CONV energy.

use crate::metrics::DataflowRun;
use crate::runner;
use eyeriss_arch::{area, AcceleratorConfig, GridDims};
use eyeriss_dataflow::DataflowKind;
use eyeriss_nn::alexnet;

/// Storage fraction of the total chip area at the 256-PE anchor, chosen to
/// match the paper's annotated operating points (~46%).
const STORAGE_FRACTION_AT_256: f64 = 0.46;

/// One swept operating point.
#[derive(Debug, Clone)]
pub struct Fig15Point {
    /// PE count of this allocation.
    pub num_pes: usize,
    /// The RF size per PE that minimized energy.
    pub rf_bytes: f64,
    /// The resulting global buffer size in bytes.
    pub buffer_bytes: f64,
    /// Fraction of total chip area spent on storage.
    pub storage_fraction: f64,
    /// Energy per op (normalized across the sweep by the caller).
    pub energy_per_op: f64,
    /// Delay per op (reciprocal of op-weighted active PEs).
    pub delay_per_op: f64,
    /// The full run behind the numbers.
    pub run: DataflowRun,
}

/// PE counts swept (the paper sweeps 32 to 288).
pub const PE_SWEEP: [usize; 9] = [32, 64, 96, 128, 160, 192, 224, 256, 288];

/// Candidate RF sizes per PE, in bytes (the paper's annotations show
/// 0.5 kB at large arrays up to 1.0 kB at 32 PEs).
pub const RF_CANDIDATES: [f64; 4] = [256.0, 512.0, 768.0, 1024.0];

/// Runs the Fig. 15 sweep on the AlexNet CONV layers at batch 16.
pub fn run() -> Vec<Fig15Point> {
    let storage_at_256 = area::baseline_storage_area(256);
    let total_area = storage_at_256 / STORAGE_FRACTION_AT_256;
    let pe_logic_area = (total_area - storage_at_256) / 256.0;
    let layers = alexnet::conv_layers();

    let mut out = Vec::new();
    for &pes in &PE_SWEEP {
        let storage_budget = total_area - pes as f64 * pe_logic_area;
        if storage_budget <= 0.0 {
            continue;
        }
        let mut best: Option<Fig15Point> = None;
        for &rf in &RF_CANDIDATES {
            let rf_area = pes as f64 * area::storage_area(rf);
            let buffer_bytes = area::buffer_bytes_for_area(storage_budget - rf_area);
            if buffer_bytes < 1024.0 {
                continue;
            }
            // 16 rows keeps CONV1's 11 filter rows mappable even on small
            // arrays (every swept PE count is a multiple of 16).
            let hw = AcceleratorConfig {
                grid: GridDims::new(16, pes / 16),
                rf_bytes_per_pe: rf,
                buffer_bytes,
            };
            let Some(run) = runner::run_layers_on(DataflowKind::RowStationary, &layers, 16, &hw)
            else {
                continue;
            };
            let point = Fig15Point {
                num_pes: pes,
                rf_bytes: rf,
                buffer_bytes,
                storage_fraction: storage_budget / total_area,
                energy_per_op: run.energy_per_op(),
                delay_per_op: run.delay_per_op(),
                run,
            };
            if best
                .as_ref()
                .map(|b| point.energy_per_op < b.energy_per_op)
                .unwrap_or(true)
            {
                best = Some(point);
            }
        }
        if let Some(b) = best {
            out.push(b);
        }
    }
    out
}

/// Renders the sweep as (delay, energy) pairs normalized to the minimum
/// of each axis, mirroring the Fig. 15 scatter.
pub fn render(points: &[Fig15Point]) -> String {
    use crate::table::TextTable;
    let e_min = points
        .iter()
        .map(|p| p.energy_per_op)
        .fold(f64::INFINITY, f64::min);
    let d_min = points
        .iter()
        .map(|p| p.delay_per_op)
        .fold(f64::INFINITY, f64::min);
    let mut t = TextTable::new(vec![
        "PEs".into(),
        "RF/PE (kB)".into(),
        "buffer (kB)".into(),
        "storage area %".into(),
        "norm. delay".into(),
        "norm. energy/op".into(),
    ]);
    for p in points {
        t.row(vec![
            p.num_pes.to_string(),
            format!("{:.2}", p.rf_bytes / 1024.0),
            format!("{:.0}", p.buffer_bytes / 1024.0),
            format!("{:.0}", p.storage_fraction * 100.0),
            format!("{:.2}", p.delay_per_op / d_min),
            format!("{:.4}", p.energy_per_op / e_min),
        ]);
    }
    format!(
        "Fig. 15 — RS energy vs delay under fixed total area (AlexNet CONV, N=16)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_points() {
        let pts = run();
        assert!(pts.len() >= 7, "only {} points", pts.len());
    }

    #[test]
    fn throughput_scales_much_faster_than_energy() {
        // Section VII-D: "although the throughput increases by more than
        // 10x ... the energy cost only increases by 13%".
        let pts = run();
        let first = pts.first().unwrap(); // 32 PEs
        let last = pts.last().unwrap(); // 288 PEs
        let speedup = first.delay_per_op / last.delay_per_op;
        let energy_ratio = last.energy_per_op / first.energy_per_op;
        assert!(speedup > 5.0, "speedup only {speedup:.1}x");
        assert!(
            energy_ratio < 1.35,
            "energy grew {energy_ratio:.2}x, paper says ~13%"
        );
    }

    #[test]
    fn small_arrays_get_bigger_buffers() {
        // The annotated points: 32 PEs -> ~643 kB buffer, 288 -> ~53 kB.
        let pts = run();
        let first = pts.first().unwrap();
        let last = pts.last().unwrap();
        assert!(first.buffer_bytes > 3.0 * last.buffer_bytes);
        assert!(first.storage_fraction > last.storage_fraction);
    }

    #[test]
    fn render_has_one_row_per_point() {
        let pts = run();
        let s = render(&pts);
        assert_eq!(s.lines().count(), pts.len() + 3);
    }
}
