//! Ablation: RS register-file size sweep.
//!
//! Section VI-B: "We fix the RF size in RS dataflow at 512B since it shows
//! the lowest energy consumption using the analysis described in
//! Section VI-C." This experiment reproduces that design choice: for each
//! candidate RF size, the buffer absorbs the remaining Eq. (2) baseline
//! area and the RS mapping is re-optimized on the AlexNet CONV layers.

use crate::metrics::DataflowRun;
use crate::runner;
use eyeriss_arch::AcceleratorConfig;
use eyeriss_dataflow::DataflowKind;
use eyeriss_nn::alexnet;

/// One swept RF size.
#[derive(Debug, Clone)]
pub struct RfPoint {
    /// RF bytes per PE.
    pub rf_bytes: f64,
    /// Resulting buffer bytes under the fixed-area budget.
    pub buffer_bytes: f64,
    /// Energy per operation on the AlexNet CONV layers.
    pub energy_per_op: f64,
    /// The underlying run.
    pub run: DataflowRun,
}

/// RF sizes swept, in bytes.
pub const RF_SIZES: [f64; 6] = [64.0, 128.0, 256.0, 512.0, 768.0, 1024.0];

/// Runs the sweep at `num_pes` PEs, batch 16.
pub fn run(num_pes: usize) -> Vec<RfPoint> {
    let layers = alexnet::conv_layers();
    RF_SIZES
        .iter()
        .filter_map(|&rf_bytes| {
            let hw = AcceleratorConfig::under_baseline_area(num_pes, rf_bytes);
            let run = runner::run_layers_on(DataflowKind::RowStationary, &layers, 16, &hw)?;
            Some(RfPoint {
                rf_bytes,
                buffer_bytes: hw.buffer_bytes,
                energy_per_op: run.energy_per_op(),
                run,
            })
        })
        .collect()
}

/// Renders the sweep.
pub fn render(points: &[RfPoint]) -> String {
    use crate::table::TextTable;
    let min = points
        .iter()
        .map(|p| p.energy_per_op)
        .fold(f64::INFINITY, f64::min);
    let mut t = TextTable::new(vec![
        "RF/PE (B)".into(),
        "buffer (kB)".into(),
        "energy/op".into(),
        "vs best".into(),
    ]);
    for p in points {
        t.row(vec![
            format!("{:.0}", p.rf_bytes),
            format!("{:.0}", p.buffer_bytes / 1024.0),
            format!("{:.3}", p.energy_per_op),
            format!("{:.3}x", p.energy_per_op / min),
        ]);
    }
    format!(
        "Ablation — RS RF size under fixed area (AlexNet CONV, 256 PEs, N=16)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_hundred_twelve_bytes_is_optimal_or_near() {
        // The paper's design choice: 512 B minimizes RS energy. Allow the
        // winner to be 512 B or its immediate neighbours, but 512 B must
        // be within 2% of the minimum.
        let pts = run(256);
        assert!(pts.len() >= 4);
        let min = pts
            .iter()
            .map(|p| p.energy_per_op)
            .fold(f64::INFINITY, f64::min);
        let at_512 = pts
            .iter()
            .find(|p| p.rf_bytes == 512.0)
            .expect("512B point present");
        assert!(
            at_512.energy_per_op <= min * 1.02,
            "512B is {:.3} vs best {:.3}",
            at_512.energy_per_op,
            min
        );
    }

    #[test]
    fn tiny_rf_is_clearly_worse() {
        let pts = run(256);
        let tiny = pts
            .iter()
            .find(|p| p.rf_bytes <= 128.0)
            .expect("small point");
        let at_512 = pts.iter().find(|p| p.rf_bytes == 512.0).unwrap();
        assert!(
            tiny.energy_per_op > at_512.energy_per_op * 1.02,
            "tiny {:.3} vs 512B {:.3}",
            tiny.energy_per_op,
            at_512.energy_per_op
        );
    }

    #[test]
    fn bigger_rf_means_smaller_buffer() {
        let pts = run(256);
        for w in pts.windows(2) {
            assert!(w[1].buffer_bytes < w[0].buffer_bytes);
        }
    }
}
