//! Cluster scaling (beyond the paper): a CNN partitioned across
//! 1/2/4/8 Eyeriss arrays under several partition strategies.
//!
//! Two complementary views:
//!
//! * [`run_alexnet`]/[`run_vgg`] — the analytic sweep: every CONV layer
//!   is `(partition, mapping)`-planned by `eyeriss_cluster::plan` on each
//!   cluster size, for each fixed elementary strategy plus the free
//!   per-layer search. Reports energy/op, delay/op and speedup.
//! * [`simulate`] — the measured view: a CONV1-geometry slice executed by
//!   the functional cluster executor, reporting *per-array* energy and
//!   cycle aggregates, imbalance and shared-DRAM contention stalls.

use crate::table::TextTable;
use eyeriss_arch::cost::{CostModel, TableIv};
use eyeriss_arch::AcceleratorConfig;
use eyeriss_cluster::partition::Partition;
use eyeriss_cluster::{plan_layer, plan_partition, Cluster, SharedDram};
use eyeriss_dataflow::registry::builtin;
use eyeriss_dataflow::search::Objective;
use eyeriss_dataflow::DataflowKind;
use eyeriss_nn::shape::NamedLayer;
use eyeriss_nn::{alexnet, synth, vgg, LayerProblem, LayerShape};

/// Cluster sizes swept.
pub const ARRAY_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Batch size of the analytic sweep (the paper's central operating point).
pub const BATCH: usize = 16;

/// One (strategy, array count) operating point of the analytic sweep.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Number of arrays.
    pub arrays: usize,
    /// Total normalized energy per MAC across all layers.
    pub energy_per_op: f64,
    /// Summed per-layer cluster delay per MAC.
    pub delay_per_op: f64,
    /// Layers whose delay is bound by the shared DRAM channel, not
    /// compute.
    pub bandwidth_bound_layers: usize,
}

impl ScalingPoint {
    /// Energy-delay product per op².
    pub fn edp_per_op(&self) -> f64 {
        self.energy_per_op * self.delay_per_op
    }
}

/// One partition strategy's scaling curve. `points[i]` corresponds to
/// [`ARRAY_COUNTS`]`[i]`; `None` marks an infeasible (strategy, size).
#[derive(Debug, Clone)]
pub struct StrategySeries {
    /// Strategy name ("batch", "ofmap-ch", "fmap-tile" or "best").
    pub strategy: String,
    /// One point per entry of [`ARRAY_COUNTS`].
    pub points: Vec<Option<ScalingPoint>>,
}

/// The analytic sweep over one network's CONV layers.
#[derive(Debug, Clone)]
pub struct ClusterSweep {
    /// Network name.
    pub network: String,
    /// Total MACs at [`BATCH`].
    pub total_macs: f64,
    /// One series per strategy (three fixed + free search).
    pub series: Vec<StrategySeries>,
}

impl ClusterSweep {
    /// Speedup of `strategy` at `arrays` relative to its own single-array
    /// point (delay ratio), if both points exist.
    pub fn speedup(&self, strategy: &str, arrays: usize) -> Option<f64> {
        let s = self.series.iter().find(|s| s.strategy == strategy)?;
        let base = s.points[0].as_ref()?.delay_per_op;
        let idx = ARRAY_COUNTS.iter().position(|&a| a == arrays)?;
        Some(base / s.points[idx].as_ref()?.delay_per_op)
    }
}

fn sweep_layers(network: &str, layers: &[NamedLayer]) -> ClusterSweep {
    let em = TableIv;
    let hw = AcceleratorConfig::eyeriss_chip();
    let total_macs: f64 = layers.iter().map(|l| l.shape.macs(BATCH) as f64).sum();
    let fixed = [
        Partition::Batch,
        Partition::OfmapChannel,
        Partition::FmapTile,
    ];
    let mut series = Vec::new();
    for p in fixed {
        series.push(StrategySeries {
            strategy: p.label(),
            points: ARRAY_COUNTS
                .iter()
                .map(|&arrays| point_for(layers, total_macs, arrays, Some(p), &hw, &em))
                .collect(),
        });
    }
    series.push(StrategySeries {
        strategy: "best".to_string(),
        points: ARRAY_COUNTS
            .iter()
            .map(|&arrays| point_for(layers, total_macs, arrays, None, &hw, &em))
            .collect(),
    });
    ClusterSweep {
        network: network.to_string(),
        total_macs,
        series,
    }
}

/// Plans every layer under one strategy (`None` = free per-layer search);
/// `None` overall if any layer is infeasible under a fixed strategy.
fn point_for(
    layers: &[NamedLayer],
    total_macs: f64,
    arrays: usize,
    strategy: Option<Partition>,
    hw: &AcceleratorConfig,
    em: &dyn CostModel,
) -> Option<ScalingPoint> {
    let shared = SharedDram::scaled(arrays);
    let mut energy = 0.0f64;
    let mut delay = 0.0f64;
    let mut bound = 0usize;
    for layer in layers {
        let rs = builtin(DataflowKind::RowStationary);
        let problem = LayerProblem::new(layer.shape, BATCH);
        let plan = match strategy {
            Some(p) => plan_partition(
                rs,
                p,
                &problem,
                arrays,
                hw,
                em,
                &shared,
                Objective::EnergyDelayProduct,
            )?,
            None => plan_layer(
                rs,
                &problem,
                arrays,
                hw,
                em,
                &shared,
                Objective::EnergyDelayProduct,
            )?,
        };
        energy += plan.energy;
        delay += plan.delay;
        bound += usize::from(plan.bandwidth_bound());
    }
    Some(ScalingPoint {
        arrays,
        energy_per_op: energy / total_macs,
        delay_per_op: delay / total_macs,
        bandwidth_bound_layers: bound,
    })
}

/// The analytic sweep over AlexNet's five CONV layers.
pub fn run_alexnet() -> ClusterSweep {
    sweep_layers("AlexNet", &alexnet::conv_layers())
}

/// The analytic sweep over VGG-16's CONV layers.
pub fn run_vgg() -> ClusterSweep {
    sweep_layers("VGG-16", &vgg::conv_layers())
}

/// Renders an analytic sweep as a text table.
pub fn render(sweep: &ClusterSweep) -> String {
    let mut t = TextTable::new(vec![
        "strategy".into(),
        "arrays".into(),
        "energy/op".into(),
        "delay/op".into(),
        "speedup".into(),
        "EDP/op²".into(),
        "BW-bound".into(),
    ]);
    for s in &sweep.series {
        for (i, point) in s.points.iter().enumerate() {
            let arrays = ARRAY_COUNTS[i];
            match point {
                Some(p) => t.row(vec![
                    s.strategy.clone(),
                    arrays.to_string(),
                    format!("{:.3}", p.energy_per_op),
                    format!("{:.4}", p.delay_per_op),
                    format!(
                        "{:.2}x",
                        sweep.speedup(&s.strategy, arrays).unwrap_or(f64::NAN)
                    ),
                    format!("{:.4}", p.edp_per_op()),
                    format!("{}", p.bandwidth_bound_layers),
                ]),
                None => t.row(vec![
                    s.strategy.clone(),
                    arrays.to_string(),
                    "—".into(),
                    "—".into(),
                    "—".into(),
                    "—".into(),
                    "infeasible".into(),
                ]),
            }
        }
    }
    format!(
        "Cluster scaling — {} CONV layers, batch {BATCH}, RS mapping per array\n{}",
        sweep.network,
        t.render()
    )
}

/// One measured (partition, array count) point from the functional
/// cluster executor.
#[derive(Debug, Clone)]
pub struct SimPoint {
    /// Number of arrays.
    pub arrays: usize,
    /// Partition strategy executed.
    pub partition: Partition,
    /// Per-array normalized energy (sum over that array's tiles).
    pub per_array_energy: Vec<f64>,
    /// Per-array total cycles (compute + per-array DRAM stalls).
    pub per_array_cycles: Vec<u64>,
    /// Cluster makespan including shared-DRAM contention stalls.
    pub cluster_cycles: u64,
    /// Shared-channel contention stalls.
    pub contention_stalls: u64,
    /// Critical-path / mean busy-array cycles.
    pub imbalance: f64,
}

/// Executes `shape` (batch `n`) on every cluster size in [`ARRAY_COUNTS`]
/// under each elementary partition, measuring per-array aggregates.
/// Infeasible (partition, size) combinations are skipped.
pub fn simulate_shape(shape: &LayerShape, n: usize) -> Vec<SimPoint> {
    let em = TableIv;
    let input = synth::ifmap(shape, n, 11);
    let weights = synth::filters(shape, 12);
    let bias = synth::biases(shape, 13);
    let mut out = Vec::new();
    for &arrays in &ARRAY_COUNTS {
        for p in Partition::ELEMENTARY {
            let cluster = Cluster::new(arrays, AcceleratorConfig::eyeriss_chip())
                .shared_dram(SharedDram::scaled(arrays));
            let problem = LayerProblem::new(*shape, n);
            let Ok(run) = cluster.execute_partition(p, &problem, &input, &weights, &bias) else {
                continue;
            };
            out.push(SimPoint {
                arrays,
                partition: p,
                per_array_energy: run.stats.per_array.iter().map(|s| s.energy(&em)).collect(),
                per_array_cycles: run
                    .stats
                    .per_array
                    .iter()
                    .map(|s| s.total_cycles())
                    .collect(),
                cluster_cycles: run.stats.cluster_cycles(),
                contention_stalls: run.stats.contention_stalls,
                imbalance: run.stats.imbalance(),
            });
        }
    }
    out
}

/// [`simulate_shape`] on an AlexNet-CONV1-geometry slice (same 11x11
/// stride-4 plane, reduced channels) at batch 8 — large enough that every
/// partition has work per array, small enough to simulate quickly.
pub fn simulate() -> Vec<SimPoint> {
    let conv1 = LayerShape::conv(8, 3, 227, 11, 4).expect("CONV1 geometry is valid");
    simulate_shape(&conv1, 8)
}

/// Renders measured points as a text table (one row per array).
pub fn render_sim(points: &[SimPoint]) -> String {
    let mut t = TextTable::new(vec![
        "partition".into(),
        "arrays".into(),
        "array".into(),
        "energy".into(),
        "cycles".into(),
        "cluster cycles".into(),
        "contention".into(),
        "imbalance".into(),
    ]);
    for p in points {
        for (a, (e, c)) in p
            .per_array_energy
            .iter()
            .zip(&p.per_array_cycles)
            .enumerate()
        {
            t.row(vec![
                p.partition.label(),
                p.arrays.to_string(),
                a.to_string(),
                format!("{e:.3e}"),
                c.to_string(),
                if a == 0 {
                    p.cluster_cycles.to_string()
                } else {
                    String::new()
                },
                if a == 0 {
                    p.contention_stalls.to_string()
                } else {
                    String::new()
                },
                if a == 0 {
                    format!("{:.2}", p.imbalance)
                } else {
                    String::new()
                },
            ]);
        }
    }
    format!(
        "Cluster execution — measured per-array aggregates\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_sweep_has_all_strategies_and_sizes() {
        let sweep = run_alexnet();
        assert_eq!(sweep.series.len(), 4);
        for s in &sweep.series {
            assert_eq!(s.points.len(), ARRAY_COUNTS.len());
            // Single array is always feasible (identity partition).
            assert!(
                s.points[0].is_some(),
                "{} infeasible at 1 array",
                s.strategy
            );
        }
        // The free search dominates or matches every fixed strategy.
        let best = sweep.series.last().unwrap();
        for (i, point) in best.points.iter().enumerate() {
            let b = point.as_ref().expect("best is always feasible");
            for s in &sweep.series[..3] {
                if let Some(p) = &s.points[i] {
                    assert!(
                        b.edp_per_op() <= p.edp_per_op() * (1.0 + 1e-9),
                        "best worse than {} at {} arrays",
                        s.strategy,
                        ARRAY_COUNTS[i]
                    );
                }
            }
        }
    }

    #[test]
    fn scaling_reduces_delay_not_energy() {
        let sweep = run_alexnet();
        let best = sweep.series.last().unwrap();
        let one = best.points[0].as_ref().unwrap();
        let eight = best.points[3].as_ref().unwrap();
        assert!(
            eight.delay_per_op < one.delay_per_op / 3.0,
            "8 arrays only {:.2}x faster",
            one.delay_per_op / eight.delay_per_op
        );
        // Energy stays in the same regime — parallelism is not free energy.
        assert!((0.5..2.0).contains(&(eight.energy_per_op / one.energy_per_op)));
    }

    #[test]
    fn render_mentions_every_strategy() {
        let s = render(&run_alexnet());
        for name in ["batch", "ofmap-ch", "fmap-tile", "best"] {
            assert!(s.contains(name), "missing {name}");
        }
    }

    #[test]
    fn simulated_points_cover_three_strategies() {
        // A small CONV keeps the functional simulation fast in tests.
        let shape = LayerShape::conv(8, 3, 19, 3, 2).unwrap();
        let points = simulate_shape(&shape, 8);
        for &arrays in &ARRAY_COUNTS {
            let strategies: Vec<_> = points
                .iter()
                .filter(|p| p.arrays == arrays)
                .map(|p| p.partition)
                .collect();
            assert!(
                strategies.len() >= 3,
                "only {} strategies at {} arrays",
                strategies.len(),
                arrays
            );
        }
        let four_batch = points
            .iter()
            .find(|p| p.arrays == 4 && p.partition == Partition::Batch)
            .unwrap();
        assert_eq!(four_batch.per_array_cycles.len(), 4);
        assert!(four_batch.per_array_energy.iter().all(|&e| e > 0.0));
        let one = points
            .iter()
            .find(|p| p.arrays == 1 && p.partition == Partition::Batch)
            .unwrap();
        assert!(four_batch.cluster_cycles < one.cluster_cycles);
        assert!(!render_sim(&points).is_empty());
    }
}
