//! Fig. 14: the FC-layer comparison at 1024 PEs, batch sizes 16/64/256:
//! (a) DRAM accesses/op, (b) energy/op by level, (c) energy/op by data
//! type, (d) normalized EDP. Energy and EDP are normalized to RS at the
//! first plotted batch (16) so the bars land on the paper's visual scale;
//! at batch 1 "the energy consumptions of all dataflows are dominated by
//! DRAM accesses for weights and are approximately the same".

use crate::experiments::sweep::{self, SweepPoint};
use crate::experiments::{fig11, fig12, fig13};
use eyeriss_dataflow::DataflowKind;

/// All four panels of Fig. 14.
#[derive(Debug, Clone)]
pub struct Fig14 {
    /// Panel (a): DRAM accesses per op.
    pub dram: fig11::Fig11Panel,
    /// Panels (b)+(c): energy by level and by type.
    pub energy: fig12::Fig12Panel,
    /// Panel (d): normalized EDP.
    pub edp: fig13::Fig13Panel,
    /// The raw sweep points.
    pub points: Vec<SweepPoint>,
}

/// Runs the full Fig. 14 experiment.
pub fn run() -> Fig14 {
    let points = sweep::fc_sweep();
    let reference = sweep::rs_fc_reference();
    let dram = fig11::panel_from(&points);
    let energy = fig12::panel_from(&points, reference.energy_per_op());
    let edp = fig13::panel_from(&points, reference.edp_per_op());
    Fig14 {
        dram,
        energy,
        edp,
        points,
    }
}

/// Renders all four panels.
pub fn render(data: &Fig14) -> String {
    let mut out = String::new();
    out.push_str("=== Fig. 14 — FC layers of AlexNet, 1024 PEs, N in {16, 64, 256} ===\n");
    out.push_str(&render_panel_a(data));
    out.push('\n');
    // The by-level/by-type renderers are shared with Fig. 12; relabel
    // their workload for the FC panels.
    out.push_str(
        &fig12::render_by_level(&data.energy)
            .replace("Fig. 12 —", "Fig. 14b —")
            .replace("CONV layers", "FC layers"),
    );
    out.push('\n');
    out.push_str(
        &fig12::render_by_type(&data.energy)
            .replace("Fig. 12d —", "Fig. 14c —")
            .replace("CONV layers", "FC layers"),
    );
    out.push('\n');
    out.push_str(&render_panel_d(data));
    out
}

fn render_panel_a(data: &Fig14) -> String {
    use crate::table::TextTable;
    let mut t = TextTable::new(vec![
        "dataflow".into(),
        "N".into(),
        "reads/op".into(),
        "writes/op".into(),
    ]);
    for (di, kind) in DataflowKind::ALL.iter().enumerate() {
        for (bi, &batch) in sweep::FC_BATCHES.iter().enumerate() {
            match data.dram.bars[bi][di] {
                Some(bar) => t.row(vec![
                    kind.label().into(),
                    batch.to_string(),
                    format!("{:.5}", bar.reads_per_op),
                    format!("{:.5}", bar.writes_per_op),
                ]),
                None => t.row(vec![
                    kind.label().into(),
                    batch.to_string(),
                    "cannot operate".into(),
                    "—".into(),
                ]),
            }
        }
    }
    format!("Fig. 14a — DRAM accesses/op, FC layers\n{}", t.render())
}

fn render_panel_d(data: &Fig14) -> String {
    use crate::table::TextTable;
    let mut t = TextTable::new(vec!["dataflow".into(), "N".into(), "norm. EDP".into()]);
    for (di, kind) in DataflowKind::ALL.iter().enumerate() {
        for (bi, &batch) in sweep::FC_BATCHES.iter().enumerate() {
            let cell = match data.edp.edp[bi][di] {
                Some(v) => format!("{v:.3}"),
                None => "cannot operate".into(),
            };
            t.row(vec![kind.label().into(), batch.to_string(), cell]);
        }
    }
    format!("Fig. 14d — normalized EDP, FC layers\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rs_wins_fc_on_all_three_metrics() {
        // Section VII-C: "the RS dataflow has the lowest DRAM accesses,
        // energy consumption and EDP in the FC layers."
        let data = run();
        for bi in 0..sweep::FC_BATCHES.len() {
            let rs_dram = data.dram.bars[bi][0]
                .map(|b| b.reads_per_op + b.writes_per_op)
                .unwrap();
            let rs_energy = data.energy.bars[bi][0].as_ref().unwrap().total();
            let rs_edp = data.edp.edp[bi][0].unwrap();
            for di in 1..DataflowKind::ALL.len() {
                if let Some(b) = data.dram.bars[bi][di] {
                    assert!(
                        b.reads_per_op + b.writes_per_op >= rs_dram * 0.999,
                        "{} DRAM below RS at N={}",
                        DataflowKind::ALL[di],
                        sweep::FC_BATCHES[bi]
                    );
                }
                if let Some(b) = &data.energy.bars[bi][di] {
                    assert!(b.total() > rs_energy, "{}", DataflowKind::ALL[di]);
                }
                if let Some(v) = data.edp.edp[bi][di] {
                    assert!(v > rs_edp, "{}", DataflowKind::ALL[di]);
                }
            }
        }
    }

    #[test]
    fn rs_at_least_1_3x_better_at_batch_16() {
        // "The RS dataflow is at least 1.3x more energy efficient than
        // other dataflows at a batch size of 16."
        let data = run();
        let rs = data.energy.bars[0][0].as_ref().unwrap().total();
        for di in 1..DataflowKind::ALL.len() {
            if let Some(b) = &data.energy.bars[0][di] {
                let ratio = b.total() / rs;
                assert!(
                    ratio > 1.1,
                    "{} ratio {ratio:.2} too close to RS",
                    DataflowKind::ALL[di]
                );
            }
        }
    }

    #[test]
    fn osa_edp_is_catastrophic_on_fc() {
        // Fig. 14d annotates OSA at 168x and 85x: off the chart.
        let data = run();
        let rs = data.edp.edp[0][0].unwrap();
        let osa = data.edp.edp[0][2].unwrap();
        assert!(osa > 20.0 * rs, "OSA EDP {osa:.1} vs RS {rs:.2}");
    }

    #[test]
    fn batch_growth_improves_everyone() {
        // "Increasing batch size helps to improve energy efficiency of all
        // dataflows due to more filter reuse."
        let data = run();
        for di in 0..DataflowKind::ALL.len() {
            let (Some(b16), Some(b256)) = (
                data.energy.bars[0][di].as_ref(),
                data.energy.bars[2][di].as_ref(),
            ) else {
                continue;
            };
            assert!(
                b256.total() <= b16.total() * 1.001,
                "{} got worse with batch",
                DataflowKind::ALL[di]
            );
        }
    }
}
