//! Fig. 11: average DRAM accesses per operation of the six dataflows in
//! the CONV layers of AlexNet, for PE array sizes 256/512/1024 and batch
//! sizes 1/16/64.

use crate::experiments::sweep::{self, SweepPoint};
use crate::table::TextTable;
use eyeriss_dataflow::DataflowKind;

/// One bar of Fig. 11: reads and writes per op, or `None` if the dataflow
/// cannot operate.
#[derive(Debug, Clone, Copy)]
pub struct DramBar {
    /// DRAM reads per operation.
    pub reads_per_op: f64,
    /// DRAM writes per operation.
    pub writes_per_op: f64,
}

/// The data of one subplot (fixed PE count).
#[derive(Debug, Clone)]
pub struct Fig11Panel {
    /// PE array size (256, 512 or 1024).
    pub num_pes: usize,
    /// Batch sizes, one per bar group.
    pub batches: Vec<usize>,
    /// `bars[batch_idx][dataflow_idx]` in sweep/`DataflowKind::ALL` order.
    pub bars: Vec<Vec<Option<DramBar>>>,
}

/// Computes one Fig. 11 subplot from a sweep slice.
pub fn panel_from(points: &[SweepPoint]) -> Fig11Panel {
    let num_pes = points.first().map(|p| p.num_pes).unwrap_or(0);
    let batches = points.iter().map(|p| p.batch).collect();
    let bars = points
        .iter()
        .map(|p| {
            p.runs
                .iter()
                .map(|r| {
                    r.as_ref().map(|run| DramBar {
                        reads_per_op: run.dram_reads_per_op(),
                        writes_per_op: run.dram_writes_per_op(),
                    })
                })
                .collect()
        })
        .collect();
    Fig11Panel {
        num_pes,
        batches,
        bars,
    }
}

/// Runs one subplot (a, b or c) at the given PE count.
pub fn run_at(num_pes: usize) -> Fig11Panel {
    panel_from(&sweep::conv_sweep_at(num_pes))
}

/// Runs all three subplots.
pub fn run() -> Vec<Fig11Panel> {
    sweep::CONV_PE_SIZES.iter().map(|&p| run_at(p)).collect()
}

/// Renders a subplot as the paper's grouped bars.
pub fn render(panel: &Fig11Panel) -> String {
    let mut t = TextTable::new(vec![
        "dataflow".into(),
        "N".into(),
        "reads/op".into(),
        "writes/op".into(),
        "total/op".into(),
    ]);
    for (di, kind) in DataflowKind::ALL.iter().enumerate() {
        for (bi, &batch) in panel.batches.iter().enumerate() {
            match panel.bars[bi][di] {
                Some(bar) => t.row(vec![
                    kind.label().into(),
                    batch.to_string(),
                    format!("{:.5}", bar.reads_per_op),
                    format!("{:.5}", bar.writes_per_op),
                    format!("{:.5}", bar.reads_per_op + bar.writes_per_op),
                ]),
                None => t.row(vec![
                    kind.label().into(),
                    batch.to_string(),
                    "—".into(),
                    "—".into(),
                    "cannot operate".into(),
                ]),
            }
        }
    }
    format!(
        "Fig. 11 — DRAM accesses/op, CONV layers, {} PEs\n{}",
        panel.num_pes,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ws_and_osc_have_highest_dram_traffic() {
        // Section VII-B: "RS, OSA, OSB and NLR have significantly lower
        // DRAM accesses than WS and OSC".
        let panel = run_at(256);
        let n16 = &panel.bars[1];
        let total = |i: usize| n16[i].map(|b| b.reads_per_op + b.writes_per_op).unwrap();
        let low = [0usize, 2, 3, 5]; // RS, OSA, OSB, NLR
        let high = [1usize, 4]; // WS, OSC
        for &h in &high {
            for &l in &low {
                assert!(
                    total(h) > total(l),
                    "{} ({:.4}) not above {} ({:.4})",
                    DataflowKind::ALL[h],
                    total(h),
                    DataflowKind::ALL[l],
                    total(l)
                );
            }
        }
    }

    #[test]
    fn batch_16_reduces_dram_vs_batch_1() {
        // "Increasing N from 1 to 16 reduces DRAM accesses for all
        // dataflows since it gives more filter reuse."
        let panel = run_at(256);
        for (di, kind) in DataflowKind::ALL.iter().enumerate() {
            let (Some(b1), Some(b16)) = (panel.bars[0][di], panel.bars[1][di]) else {
                continue;
            };
            assert!(
                b16.reads_per_op + b16.writes_per_op
                    <= (b1.reads_per_op + b1.writes_per_op) * 1.0001,
                "{kind} got worse from N=1 to N=16"
            );
        }
    }

    #[test]
    fn larger_arrays_help_ws_most() {
        // "The benefit is most significant on WS and OSC."
        let p256 = run_at(256);
        let p1024 = run_at(1024);
        let ws = 1usize;
        let n16 = 1usize;
        let small = p256.bars[n16][ws].unwrap().reads_per_op;
        let large = p1024.bars[n16][ws].unwrap().reads_per_op;
        assert!(large < small, "WS DRAM did not drop with array size");
    }

    #[test]
    fn render_marks_infeasible_ws() {
        let s = render(&run_at(256));
        assert!(s.contains("cannot operate"));
    }
}
