//! The shared (PE count x batch size x dataflow) sweep behind
//! Figs. 11, 12, 13 (CONV layers) and Fig. 14 (FC layers).

use crate::metrics::DataflowRun;
use crate::runner;
use eyeriss_dataflow::DataflowKind;

/// PE array sizes of the CONV comparison (Figs. 11–13).
pub const CONV_PE_SIZES: [usize; 3] = [256, 512, 1024];
/// Batch sizes of the CONV comparison.
pub const CONV_BATCHES: [usize; 3] = [1, 16, 64];
/// PE array size of the FC comparison (Fig. 14).
pub const FC_PE_SIZE: usize = 1024;
/// Batch sizes of the FC comparison ("batch size now starts from 16").
pub const FC_BATCHES: [usize; 3] = [16, 64, 256];

/// One (PE count, batch) operating point with all six dataflows mapped.
/// `runs[i]` corresponds to `DataflowKind::ALL[i]`; `None` marks a
/// dataflow that cannot operate at this point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// PE array size.
    pub num_pes: usize,
    /// Batch size.
    pub batch: usize,
    /// Optimized run per dataflow, in [`DataflowKind::ALL`] order.
    pub runs: Vec<Option<DataflowRun>>,
}

impl SweepPoint {
    /// The run for one dataflow, if feasible.
    pub fn run_of(&self, kind: DataflowKind) -> Option<&DataflowRun> {
        let idx = DataflowKind::ALL.iter().position(|&k| k == kind)?;
        self.runs[idx].as_ref()
    }
}

/// Runs the full CONV-layer sweep (3 array sizes x 3 batch sizes x
/// 6 dataflows over the 5 AlexNet CONV layers).
pub fn conv_sweep() -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for &pes in &CONV_PE_SIZES {
        for &batch in &CONV_BATCHES {
            out.push(SweepPoint {
                num_pes: pes,
                batch,
                runs: DataflowKind::ALL
                    .iter()
                    .map(|&k| runner::run_conv_layers(k, batch, pes))
                    .collect(),
            });
        }
    }
    out
}

/// Runs the CONV sweep for a single PE array size (one subplot of
/// Figs. 11–13).
pub fn conv_sweep_at(num_pes: usize) -> Vec<SweepPoint> {
    CONV_BATCHES
        .iter()
        .map(|&batch| SweepPoint {
            num_pes,
            batch,
            runs: DataflowKind::ALL
                .iter()
                .map(|&k| runner::run_conv_layers(k, batch, num_pes))
                .collect(),
        })
        .collect()
}

/// Runs the FC-layer sweep of Fig. 14 (1024 PEs, batches 16/64/256).
pub fn fc_sweep() -> Vec<SweepPoint> {
    FC_BATCHES
        .iter()
        .map(|&batch| SweepPoint {
            num_pes: FC_PE_SIZE,
            batch,
            runs: DataflowKind::ALL
                .iter()
                .map(|&k| runner::run_fc_layers(k, batch, FC_PE_SIZE))
                .collect(),
        })
        .collect()
}

/// The Fig. 12/13 normalization reference: RS at 256 PEs, batch 1.
pub fn rs_conv_reference() -> DataflowRun {
    runner::run_conv_layers(DataflowKind::RowStationary, 1, 256)
        .expect("RS is feasible at the reference point")
}

/// The Fig. 14 normalization reference: RS FC at batch 16 on 1024 PEs
/// (the first plotted batch — at batch 1 every dataflow is pinned to the
/// weight-fetch DRAM floor and the normalization would dwarf all bars).
pub fn rs_fc_reference() -> DataflowRun {
    runner::run_fc_layers(DataflowKind::RowStationary, 16, FC_PE_SIZE)
        .expect("RS is feasible at the FC reference point")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_sweep_at_256_marks_ws_infeasible_only_at_64() {
        let points = conv_sweep_at(256);
        assert_eq!(points.len(), 3);
        let ws = DataflowKind::WeightStationary;
        assert!(points[0].run_of(ws).is_some(), "N=1");
        assert!(points[1].run_of(ws).is_some(), "N=16");
        assert!(points[2].run_of(ws).is_none(), "N=64 must be infeasible");
        for p in &points {
            for kind in DataflowKind::ALL {
                if kind != ws {
                    assert!(p.run_of(kind).is_some(), "{kind} at N={}", p.batch);
                }
            }
        }
    }

    #[test]
    fn fc_sweep_covers_batches() {
        let points = fc_sweep();
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.run_of(DataflowKind::RowStationary).is_some());
        }
    }
}
