//! Fig. 7b: on-chip storage allocation per dataflow under the fixed
//! Eq. (2) area budget (256 PEs).

use crate::table::TextTable;
use eyeriss_arch::AcceleratorConfig;
use eyeriss_dataflow::DataflowKind;

/// Storage allocation of one dataflow.
#[derive(Debug, Clone, Copy)]
pub struct Allocation {
    /// The dataflow.
    pub kind: DataflowKind,
    /// Total RF bytes across all PEs.
    pub rf_total_bytes: f64,
    /// Global buffer bytes.
    pub buffer_bytes: f64,
}

impl Allocation {
    /// Total on-chip storage.
    pub fn total_bytes(&self) -> f64 {
        self.rf_total_bytes + self.buffer_bytes
    }
}

/// Computes the Fig. 7b allocations for `num_pes` PEs.
pub fn run(num_pes: usize) -> Vec<Allocation> {
    DataflowKind::ALL
        .iter()
        .map(|&kind| {
            let hw = AcceleratorConfig::under_baseline_area(num_pes, kind.rf_bytes());
            Allocation {
                kind,
                rf_total_bytes: num_pes as f64 * hw.rf_bytes_per_pe,
                buffer_bytes: hw.buffer_bytes,
            }
        })
        .collect()
}

/// Renders the allocations as the Fig. 7b bar data (kB).
pub fn render(allocations: &[Allocation]) -> String {
    let mut t = TextTable::new(vec![
        "dataflow".into(),
        "buffer (kB)".into(),
        "total RF (kB)".into(),
        "total (kB)".into(),
    ]);
    for a in allocations {
        t.row(vec![
            a.kind.label().into(),
            format!("{:.1}", a.buffer_bytes / 1024.0),
            format!("{:.1}", a.rf_total_bytes / 1024.0),
            format!("{:.1}", a.total_bytes() / 1024.0),
        ]);
    }
    format!(
        "Fig. 7b — storage allocation under fixed area\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rs_gets_the_baseline_split() {
        let a = run(256);
        let rs = &a[0];
        assert_eq!(rs.kind, DataflowKind::RowStationary);
        assert!((rs.buffer_bytes - 128.0 * 1024.0).abs() < 200.0);
        assert_eq!(rs.rf_total_bytes, 256.0 * 512.0);
    }

    #[test]
    fn buffer_ratio_spans_paper_range() {
        // "For the global buffer alone, the size difference is up to 2.6x."
        let a = run(256);
        let min = a
            .iter()
            .map(|x| x.buffer_bytes)
            .fold(f64::INFINITY, f64::min);
        let max = a.iter().map(|x| x.buffer_bytes).fold(0.0, f64::max);
        let ratio = max / min;
        assert!((2.2..=3.0).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn render_lists_all_dataflows() {
        let s = render(&run(256));
        for k in DataflowKind::ALL {
            assert!(s.contains(k.label()));
        }
    }
}
