//! Fig. 13: normalized energy-delay product (EDP) of the six dataflows in
//! the CONV layers, normalized to RS at 256 PEs and batch 1.
//!
//! "EDP is used to verify that a dataflow does not achieve high energy
//! efficiency by sacrificing processing parallelism"; the delay is the
//! reciprocal of the number of active PEs.

use crate::experiments::sweep::{self, SweepPoint};
use crate::table::TextTable;
use eyeriss_dataflow::DataflowKind;

/// One subplot of Fig. 13 (fixed PE count).
#[derive(Debug, Clone)]
pub struct Fig13Panel {
    /// PE array size.
    pub num_pes: usize,
    /// Batch sizes, one per bar group.
    pub batches: Vec<usize>,
    /// `edp[batch_idx][dataflow_idx]`, normalized; `None` = cannot operate.
    pub edp: Vec<Vec<Option<f64>>>,
}

/// Computes one subplot from sweep points with an explicit EDP reference.
pub fn panel_from(points: &[SweepPoint], reference_edp: f64) -> Fig13Panel {
    let num_pes = points.first().map(|p| p.num_pes).unwrap_or(0);
    let batches = points.iter().map(|p| p.batch).collect();
    let edp = points
        .iter()
        .map(|p| {
            p.runs
                .iter()
                .map(|r| r.as_ref().map(|run| run.edp_per_op() / reference_edp))
                .collect()
        })
        .collect();
    Fig13Panel {
        num_pes,
        batches,
        edp,
    }
}

/// Runs one subplot at the given PE count.
pub fn run_at(num_pes: usize) -> Fig13Panel {
    let reference = sweep::rs_conv_reference().edp_per_op();
    panel_from(&sweep::conv_sweep_at(num_pes), reference)
}

/// Runs all three subplots.
pub fn run() -> Vec<Fig13Panel> {
    sweep::CONV_PE_SIZES.iter().map(|&p| run_at(p)).collect()
}

/// Renders one subplot.
pub fn render(panel: &Fig13Panel) -> String {
    let mut t = TextTable::new(vec!["dataflow".into(), "N".into(), "norm. EDP".into()]);
    for (di, kind) in DataflowKind::ALL.iter().enumerate() {
        for (bi, &batch) in panel.batches.iter().enumerate() {
            let cell = match panel.edp[bi][di] {
                Some(v) => format!("{v:.3}"),
                None => "cannot operate".into(),
            };
            t.row(vec![kind.label().into(), batch.to_string(), cell]);
        }
    }
    format!(
        "Fig. 13 — normalized EDP, CONV layers, {} PEs\n{}",
        panel.num_pes,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rs_has_lowest_edp() {
        // "Compared with the other dataflows, RS has the lowest EDP."
        for panel in [run_at(256), run_at(1024)] {
            for row in &panel.edp {
                let rs = row[0].unwrap();
                for (di, v) in row.iter().enumerate().skip(1) {
                    if let Some(v) = v {
                        assert!(
                            *v > rs,
                            "{} EDP {v:.2} not above RS {rs:.2} at {} PEs",
                            DataflowKind::ALL[di],
                            panel.num_pes
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn osa_and_osc_blow_up_at_batch_1_on_large_arrays() {
        // "OSA and OSC show high EDP at batch size of 1 due to low PE
        // utilization, especially at larger array sizes."
        let p1024 = run_at(1024);
        let n1 = &p1024.edp[0];
        let rs = n1[0].unwrap();
        let osa = n1[2].unwrap();
        let osc = n1[4].unwrap();
        assert!(osa > 3.0 * rs, "OSA {osa:.2} vs RS {rs:.2}");
        assert!(osc > 3.0 * rs, "OSC {osc:.2} vs RS {rs:.2}");
    }

    #[test]
    fn reference_point_is_one() {
        let panel = run_at(256);
        assert!((panel.edp[0][0].unwrap() - 1.0).abs() < 1e-9);
    }
}
