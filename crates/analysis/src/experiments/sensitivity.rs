//! Ablation: sensitivity of the dataflow ranking to the Table IV energy
//! costs.
//!
//! Section VI-D concedes that the per-level costs are approximations
//! ("the real cost varies due to the actual implementation required by
//! each dataflow") and argues the results are conservative for RS. This
//! experiment re-runs the CONV comparison under perturbed cost models —
//! halving/doubling the DRAM and buffer costs — and checks whether RS
//! keeps winning, quantifying how much headroom the conclusion has.

use crate::metrics::DataflowRun;
use eyeriss_arch::energy::EnergyModel;
use eyeriss_arch::AcceleratorConfig;
use eyeriss_dataflow::registry::builtin;
use eyeriss_dataflow::search::{optimize, Objective};
use eyeriss_dataflow::DataflowKind;
use eyeriss_nn::alexnet;
use eyeriss_nn::shape::NamedLayer;
use eyeriss_nn::LayerProblem;

/// One perturbed cost model and the resulting per-dataflow energies.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario label (e.g. `"DRAM x2"`).
    pub label: String,
    /// The perturbed model.
    pub model: EnergyModel,
    /// Energy/op per dataflow, in [`DataflowKind::ALL`] order (`None` =
    /// cannot operate).
    pub energy_per_op: Vec<Option<f64>>,
}

impl Scenario {
    /// RS's advantage over the best competitor (>1 means RS wins).
    pub fn rs_margin(&self) -> f64 {
        let rs = self.energy_per_op[0].expect("RS always operates");
        let best_other = self.energy_per_op[1..]
            .iter()
            .flatten()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        best_other / rs
    }
}

/// The perturbed models: Table IV plus DRAM and buffer scalings.
pub fn scenarios() -> Vec<(String, EnergyModel)> {
    vec![
        ("Table IV".into(), EnergyModel::table_iv()),
        (
            "DRAM x0.5".into(),
            EnergyModel::new(100.0, 6.0, 2.0, 1.0, 1.0),
        ),
        (
            "DRAM x2".into(),
            EnergyModel::new(400.0, 6.0, 2.0, 1.0, 1.0),
        ),
        (
            "Buffer x0.5".into(),
            EnergyModel::new(200.0, 3.0, 2.0, 1.0, 1.0),
        ),
        (
            "Buffer x2".into(),
            EnergyModel::new(200.0, 12.0, 4.0, 1.0, 1.0),
        ),
        (
            "Flat on-chip".into(),
            EnergyModel::new(200.0, 2.0, 2.0, 1.0, 1.0),
        ),
    ]
}

fn run_with_model(
    kind: DataflowKind,
    layers: &[NamedLayer],
    batch: usize,
    num_pes: usize,
    em: &EnergyModel,
) -> Option<DataflowRun> {
    let hw = AcceleratorConfig::under_baseline_area(num_pes, kind.rf_bytes());
    let mut out = Vec::with_capacity(layers.len());
    for layer in layers {
        let best = optimize(
            builtin(kind),
            &LayerProblem::new(layer.shape, batch),
            &hw,
            em,
            Objective::Energy,
        )?;
        out.push(crate::metrics::LayerRun {
            name: layer.name.clone(),
            macs: layer.shape.macs(batch) as f64,
            profile: best.profile,
            active_pes: best.active_pes,
            params: best.params,
        });
    }
    Some(DataflowRun {
        kind,
        num_pes,
        batch,
        layers: out,
        energy_model: *em,
    })
}

/// Runs the sensitivity study on the AlexNet CONV layers (256 PEs, N=16).
pub fn run() -> Vec<Scenario> {
    let layers = alexnet::conv_layers();
    scenarios()
        .into_iter()
        .map(|(label, model)| {
            let energy_per_op = DataflowKind::ALL
                .iter()
                .map(|&k| run_with_model(k, &layers, 16, 256, &model).map(|r| r.energy_per_op()))
                .collect();
            Scenario {
                label,
                model,
                energy_per_op,
            }
        })
        .collect()
}

/// Renders the study.
pub fn render(scenarios: &[Scenario]) -> String {
    use crate::table::TextTable;
    let mut header: Vec<String> = vec!["scenario".into()];
    header.extend(DataflowKind::ALL.iter().map(|k| k.label().to_string()));
    header.push("RS margin".into());
    let mut t = TextTable::new(header);
    for s in scenarios {
        let mut row = vec![s.label.clone()];
        for e in &s.energy_per_op {
            row.push(match e {
                Some(v) => format!("{v:.2}"),
                None => "—".into(),
            });
        }
        row.push(format!("{:.2}x", s.rs_margin()));
        t.row(row);
    }
    format!(
        "Ablation — energy-cost sensitivity (AlexNet CONV, 256 PEs, N=16; energy/op)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rs_wins_under_every_perturbation() {
        // Section VI-D: "we find our results to be conservative for RS".
        for s in run() {
            assert!(
                s.rs_margin() > 1.0,
                "{}: RS margin {:.2}",
                s.label,
                s.rs_margin()
            );
        }
    }

    #[test]
    fn dram_cost_drives_ws_penalty() {
        // WS is DRAM-heavy: doubling DRAM cost must widen its gap to RS.
        let all = run();
        let base = &all[0];
        let dram2 = all.iter().find(|s| s.label == "DRAM x2").unwrap();
        let gap = |s: &Scenario| s.energy_per_op[1].unwrap() / s.energy_per_op[0].unwrap();
        assert!(gap(dram2) > gap(base));
    }

    #[test]
    fn scenario_table_lists_all() {
        let s = run();
        let text = render(&s);
        for (label, _) in scenarios() {
            assert!(text.contains(&label), "{label} missing");
        }
    }
}
