//! Ablation: sensitivity of the dataflow ranking to the Table IV energy
//! costs.
//!
//! Section VI-D concedes that the per-level costs are approximations
//! ("the real cost varies due to the actual implementation required by
//! each dataflow") and argues the results are conservative for RS. This
//! experiment re-runs the CONV comparison under perturbed cost models —
//! halving/doubling the DRAM and buffer costs — and checks whether RS
//! keeps winning, quantifying how much headroom the conclusion has.
//!
//! The perturbed models are ordinary registered [`CostModel`]s in a
//! [`CostModelRegistry`] (not hand-built structs): the same objects could
//! equally be handed to `Engine::builder().cost_model(..)` to search,
//! plan and serve under a scenario end to end.

use crate::metrics::DataflowRun;
use crate::runner::run_layers_priced;
use eyeriss_arch::cost::{CostModel, CostModelRegistry, StaticCostModel, TableIv};
use eyeriss_arch::energy::EnergyModel;
use eyeriss_dataflow::DataflowKind;
use eyeriss_nn::alexnet;
use eyeriss_nn::shape::NamedLayer;
use std::sync::Arc;

/// One perturbed cost model and the resulting per-dataflow energies.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario label (the cost model's registry id).
    pub label: String,
    /// The perturbed model, as registered.
    pub model: Arc<dyn CostModel>,
    /// Energy/op per dataflow, in [`DataflowKind::ALL`] order (`None` =
    /// cannot operate).
    pub energy_per_op: Vec<Option<f64>>,
}

impl Scenario {
    /// RS's advantage over the best competitor (>1 means RS wins).
    pub fn rs_margin(&self) -> f64 {
        let rs = self.energy_per_op[0].expect("RS always operates");
        let best_other = self.energy_per_op[1..]
            .iter()
            .flatten()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        best_other / rs
    }
}

fn perturbed(label: &'static str, dram: f64, buffer: f64, array: f64) -> Arc<dyn CostModel> {
    Arc::new(StaticCostModel::new(
        label,
        EnergyModel::new(dram, buffer, array, 1.0, 1.0).expect("scenario costs are ordered"),
    ))
}

/// The perturbed models — Table IV plus DRAM and buffer scalings — as a
/// [`CostModelRegistry`], in scenario order.
pub fn scenario_registry() -> CostModelRegistry {
    let mut reg = CostModelRegistry::empty();
    reg.register(Arc::new(TableIv)).expect("empty registry");
    for model in [
        perturbed("DRAM x0.5", 100.0, 6.0, 2.0),
        perturbed("DRAM x2", 400.0, 6.0, 2.0),
        perturbed("Buffer x0.5", 200.0, 3.0, 2.0),
        perturbed("Buffer x2", 200.0, 12.0, 4.0),
        perturbed("Flat on-chip", 200.0, 2.0, 2.0),
    ] {
        reg.register(model).expect("scenario ids are unique");
    }
    reg
}

fn run_with_model(
    kind: DataflowKind,
    layers: &[NamedLayer],
    batch: usize,
    num_pes: usize,
    cost: Arc<dyn CostModel>,
) -> Option<DataflowRun> {
    let hw = eyeriss_arch::AcceleratorConfig::under_baseline_area(num_pes, kind.rf_bytes());
    run_layers_priced(kind, layers, batch, &hw, cost)
}

/// Runs the sensitivity study on the AlexNet CONV layers (256 PEs, N=16).
pub fn run() -> Vec<Scenario> {
    let layers = alexnet::conv_layers();
    scenario_registry()
        .iter()
        .map(|model| {
            let energy_per_op = DataflowKind::ALL
                .iter()
                .map(|&k| {
                    run_with_model(k, &layers, 16, 256, Arc::clone(model))
                        .map(|r| r.energy_per_op())
                })
                .collect();
            Scenario {
                label: model.id().label().to_string(),
                model: Arc::clone(model),
                energy_per_op,
            }
        })
        .collect()
}

/// Renders the study.
pub fn render(scenarios: &[Scenario]) -> String {
    use crate::table::TextTable;
    let mut header: Vec<String> = vec!["scenario".into()];
    header.extend(DataflowKind::ALL.iter().map(|k| k.label().to_string()));
    header.push("RS margin".into());
    let mut t = TextTable::new(header);
    for s in scenarios {
        let mut row = vec![s.label.clone()];
        for e in &s.energy_per_op {
            row.push(match e {
                Some(v) => format!("{v:.2}"),
                None => "—".into(),
            });
        }
        row.push(format!("{:.2}x", s.rs_margin()));
        t.row(row);
    }
    format!(
        "Ablation — energy-cost sensitivity (AlexNet CONV, 256 PEs, N=16; energy/op)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rs_wins_under_every_perturbation() {
        // Section VI-D: "we find our results to be conservative for RS".
        for s in run() {
            assert!(
                s.rs_margin() > 1.0,
                "{}: RS margin {:.2}",
                s.label,
                s.rs_margin()
            );
        }
    }

    #[test]
    fn dram_cost_drives_ws_penalty() {
        // WS is DRAM-heavy: doubling DRAM cost must widen its gap to RS.
        let all = run();
        let base = &all[0];
        let dram2 = all.iter().find(|s| s.label == "DRAM x2").unwrap();
        let gap = |s: &Scenario| s.energy_per_op[1].unwrap() / s.energy_per_op[0].unwrap();
        assert!(gap(dram2) > gap(base));
    }

    #[test]
    fn scenario_table_lists_all() {
        let s = run();
        let text = render(&s);
        for model in scenario_registry().iter() {
            assert!(
                text.contains(model.id().label()),
                "{} missing",
                model.id().label()
            );
        }
    }

    #[test]
    fn scenarios_are_registered_models() {
        let reg = scenario_registry();
        assert_eq!(reg.len(), 6);
        assert!(reg.get(TableIv::ID).is_some());
        // The first scenario is the canonical model itself.
        let s = run();
        assert_eq!(s[0].label, "table-iv");
        assert_eq!(s[0].model.fingerprint(), TableIv.fingerprint());
    }
}
