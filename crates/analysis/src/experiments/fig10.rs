//! Fig. 10: energy breakdown of the RS dataflow across the storage
//! hierarchy for all 8 AlexNet CONV/FC layers.
//!
//! Setup (Section VII-A): 256 PEs, 512 B RF per PE, 128 kB buffer,
//! batch size 16; energy normalized to one MAC.

use crate::metrics::DataflowRun;
use crate::runner;
use crate::table::TextTable;
use eyeriss_arch::energy::Level;
use eyeriss_dataflow::DataflowKind;
use eyeriss_nn::alexnet;

/// Per-layer energy stack (absolute, MAC units, whole batch).
#[derive(Debug, Clone)]
pub struct LayerBreakdown {
    /// Layer name.
    pub name: String,
    /// Energy per level in `Level::ALL` order (DRAM, buffer, array, RF, ALU).
    pub by_level: [f64; 5],
}

impl LayerBreakdown {
    /// Total layer energy.
    pub fn total(&self) -> f64 {
        self.by_level.iter().sum()
    }
}

/// The Fig. 10 data: one breakdown per AlexNet layer.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// Breakdown per layer in network order (CONV1..FC3).
    pub layers: Vec<LayerBreakdown>,
    /// The underlying run (exposes mappings and raw counts).
    pub run: DataflowRun,
}

/// Runs the Fig. 10 experiment.
pub fn run() -> Fig10 {
    let run = runner::run_layers(DataflowKind::RowStationary, &alexnet::all_layers(), 16, 256)
        .expect("RS is feasible on all AlexNet layers");
    let layers = run
        .layers
        .iter()
        .map(|l| {
            let report = l.report(run.cost.as_ref());
            let mut by_level = [0.0; 5];
            for (i, &level) in Level::ALL.iter().enumerate() {
                by_level[i] = report.energy_at(level);
            }
            // Reorder to the figure's legend: ALU, DRAM, Buffer, Array, RF.
            LayerBreakdown {
                name: l.name.clone(),
                by_level,
            }
        })
        .collect();
    Fig10 { layers, run }
}

/// Renders the Fig. 10 stacks (energy in units of 1e9 MACs, like the
/// paper's 1e10 axis at batch 16).
pub fn render(data: &Fig10) -> String {
    let mut t = TextTable::new(vec![
        "layer".into(),
        "ALU".into(),
        "DRAM".into(),
        "Buffer".into(),
        "Array".into(),
        "RF".into(),
        "total".into(),
    ]);
    for l in &data.layers {
        // by_level is in Level::ALL order: DRAM, Buffer, Array, RF, ALU.
        let giga = |v: f64| format!("{:.3}", v / 1e9);
        t.row(vec![
            l.name.clone(),
            giga(l.by_level[4]),
            giga(l.by_level[0]),
            giga(l.by_level[1]),
            giga(l.by_level[2]),
            giga(l.by_level[3]),
            giga(l.total()),
        ]);
    }
    format!(
        "Fig. 10 — RS energy breakdown on AlexNet (256 PEs, N=16; units of 1e9 MAC-energy)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_layers_dominated_by_rf() {
        let data = run();
        for l in &data.layers[..5] {
            let rf = l.by_level[3];
            let dram = l.by_level[0];
            assert!(rf > dram, "{}: RF {rf:.2e} <= DRAM {dram:.2e}", l.name);
        }
    }

    #[test]
    fn fc_layers_dominated_by_dram() {
        let data = run();
        for l in &data.layers[5..] {
            let rf = l.by_level[3];
            let dram = l.by_level[0];
            assert!(dram > rf, "{}: DRAM {dram:.2e} <= RF {rf:.2e}", l.name);
        }
    }

    #[test]
    fn conv_consumes_about_80_percent_of_total() {
        // Section VII-A: "CONV layers still consume approximately 80% of
        // total energy in AlexNet".
        let data = run();
        let conv: f64 = data.layers[..5].iter().map(|l| l.total()).sum();
        let all: f64 = data.layers.iter().map(|l| l.total()).sum();
        let frac = conv / all;
        assert!((0.6..0.95).contains(&frac), "CONV fraction {frac:.2}");
    }

    #[test]
    fn render_contains_all_layers() {
        let data = run();
        let s = render(&data);
        for name in ["CONV1", "CONV5", "FC1", "FC3"] {
            assert!(s.contains(name));
        }
    }
}
