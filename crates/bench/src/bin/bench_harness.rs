//! The perf-regression harness CLI.
//!
//! ```text
//! bench-harness [--quick] [--out PATH]
//! ```
//!
//! Runs the tier-1 performance scenarios (see `eyeriss_bench`) and
//! writes the versioned JSON baseline — `BENCH_5.json` by default, the
//! committed baseline of this PR. `--quick` trims iteration counts for
//! CI smoke jobs.

use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_5.json".to_string());
    let mode = if quick { "quick" } else { "full" };

    eprintln!("running perf-regression harness ({mode} mode)...");
    let measurements = eyeriss_bench::run_harness(quick);

    println!(
        "{:<22} {:>9} {:>12} {:>16}",
        "scenario", "iters", "mean", "throughput"
    );
    for m in &measurements {
        println!(
            "{:<22} {:>9} {:>9.3} ms {:>12} {}/s",
            m.name,
            m.iters,
            m.mean.as_secs_f64() * 1e3,
            m.units_per_sec(),
            m.unit,
        );
    }

    let doc = eyeriss_bench::to_json(mode, &measurements);
    let mut file = std::fs::File::create(&out_path).expect("create baseline file");
    file.write_all(doc.render().as_bytes())
        .expect("write baseline");
    file.write_all(b"\n").expect("write baseline");
    eprintln!("wrote {out_path}");
}
