//! The perf-regression harness CLI.
//!
//! ```text
//! bench-harness [--quick] [--out PATH] [--check BASELINE.json]
//!               [--telemetry PATH] [--trace PATH] [--flight PATH]
//! ```
//!
//! Runs the tier-1 performance scenarios (see `eyeriss_bench`) and
//! writes the versioned JSON baseline — `BENCH_7.json` by default, the
//! committed baseline of this PR. `--quick` trims iteration counts for
//! CI smoke jobs.
//!
//! `--check BASELINE.json` turns the harness into a regression gate: the
//! fresh measurements are compared scenario-by-scenario against the
//! committed baseline and the process exits nonzero if any scenario's
//! best (minimum) wall time regressed by more than 15%
//! (`eyeriss_bench::REGRESSION_TOLERANCE`).
//!
//! `--telemetry PATH` / `--trace PATH` additionally run one *observed*
//! (telemetry-enabled, untimed) serving burst and write the
//! schema-versioned snapshot JSON and the Chrome `chrome://tracing`
//! trace-event JSON.
//!
//! `--flight PATH` runs one observed burst against a deliberately
//! breached SLO and writes the latched flight-recorder dump (wire JSON)
//! plus its trace-filtered Chrome view to `PATH.trace.json` — the
//! post-mortem artifact CI uploads.

use eyeriss_wire::Value;
use std::io::Write;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn write_file(path: &str, contents: &str) {
    let mut file = std::fs::File::create(path).unwrap_or_else(|e| panic!("create {path}: {e}"));
    file.write_all(contents.as_bytes())
        .and_then(|()| file.write_all(b"\n"))
        .unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_7.json".to_string());
    let check_path = flag_value(&args, "--check");
    let telemetry_path = flag_value(&args, "--telemetry");
    let trace_path = flag_value(&args, "--trace");
    let flight_path = flag_value(&args, "--flight");
    let mode = if quick { "quick" } else { "full" };

    eprintln!("running perf-regression harness ({mode} mode)...");
    let measurements = eyeriss_bench::run_harness(quick);

    println!(
        "{:<22} {:>9} {:>12} {:>16}",
        "scenario", "iters", "mean", "throughput"
    );
    for m in &measurements {
        println!(
            "{:<22} {:>9} {:>9.3} ms {:>12} {}/s",
            m.name,
            m.iters,
            m.mean.as_secs_f64() * 1e3,
            m.units_per_sec(),
            m.unit,
        );
    }

    let doc = eyeriss_bench::to_json(mode, &measurements);
    write_file(&out_path, &doc.render());

    if telemetry_path.is_some() || trace_path.is_some() {
        let snap = eyeriss_bench::observed_serving_snapshot();
        if let Some(path) = telemetry_path {
            write_file(&path, &snap.to_wire().render());
        }
        if let Some(path) = trace_path {
            write_file(&path, &snap.chrome_trace());
        }
    }

    if let Some(path) = flight_path {
        let (dump, snap) = eyeriss_bench::observed_flight_dump();
        eprintln!(
            "flight recorder: SLO '{}' breached, {} record(s) in the dump",
            dump.slo,
            dump.records.len()
        );
        write_file(&path, &dump.to_wire().render());
        write_file(&format!("{path}.trace.json"), &dump.chrome_trace(&snap));
    }

    if let Some(path) = check_path {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        let baseline = Value::parse(text.trim()).expect("parse baseline JSON");
        let comparisons = eyeriss_bench::compare_to_baseline(
            &baseline,
            &measurements,
            eyeriss_bench::REGRESSION_TOLERANCE,
        )
        .expect("baseline schema");
        // The per-scenario delta table prints on pass as well — CI logs
        // carry the drift trajectory, not only the failures. The gate
        // stays on min (noise-resistant); the mean delta is context.
        println!(
            "\n{:<22} {:>12} {:>12} {:>9} {:>9}  vs {path}",
            "scenario", "base min", "cur min", "min Δ", "mean Δ"
        );
        let mut regressed = false;
        for c in &comparisons {
            println!(
                "{:<22} {:>9.3} ms {:>9.3} ms {:>+8.1}% {:>+8.1}%{}",
                c.name,
                c.baseline_ns as f64 / 1e6,
                c.current_ns as f64 / 1e6,
                c.min_delta_pct(),
                c.mean_delta_pct(),
                if c.regressed { "  REGRESSED" } else { "" },
            );
            regressed |= c.regressed;
        }
        if regressed {
            eprintln!(
                "FAIL: wall-time regression beyond {:.0}% against {path}",
                eyeriss_bench::REGRESSION_TOLERANCE * 100.0
            );
            std::process::exit(1);
        }
        eprintln!(
            "ok: {} scenarios within {:.0}% of {path}",
            comparisons.len(),
            eyeriss_bench::REGRESSION_TOLERANCE * 100.0
        );
    }
}
