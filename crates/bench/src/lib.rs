//! Criterion benchmark harness (benches implemented last).
