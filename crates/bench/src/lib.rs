//! Criterion benchmark harness plus the perf-regression harness.
//!
//! The `benches/` directory carries the paper-figure microbenchmarks
//! (criterion-style). This library implements the **regression harness**
//! behind the `bench-harness` binary: it runs the tier-1 performance
//! scenarios — single-array simulation (cold and steady-state),
//! AlexNet/VGG-style layer sweeps, 4-array cluster execution (searched
//! and planned), an end-to-end serving sweep, and a two-tenant burst
//! through the `serve::sched` layer — and emits a versioned
//! `BENCH_<n>.json` baseline so every PR gets a measured trajectory on
//! the same scenarios.
//!
//! Schema (`eyeriss-bench` v1): all times are integer nanoseconds,
//! throughput is units/second rounded to u64 (`unit` names what is
//! counted — MACs for simulation scenarios, requests for serving).

use eyeriss::cluster::{plan_layer, Cluster, Partition, SharedDram};
use eyeriss::prelude::*;
use eyeriss::serve::{SchedConfig, ServeConfig, Server, SubmitOptions, TenantSpec};
use eyeriss::telemetry::{Telemetry, TelemetrySnapshot};
use eyeriss_wire::{Value, WireError};
use std::time::{Duration, Instant};

/// One measured scenario.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Scenario name (stable across PRs — the regression key).
    pub name: String,
    /// Timed iterations (after one untimed warm-up).
    pub iters: u32,
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
    /// Fastest iteration.
    pub min: Duration,
    /// Slowest iteration.
    pub max: Duration,
    /// What one throughput unit is (e.g. `"mac"`, `"request"`).
    pub unit: &'static str,
    /// Units processed per iteration.
    pub units_per_iter: u64,
}

impl Measurement {
    /// Units per second at the mean iteration time.
    pub fn units_per_sec(&self) -> u64 {
        let s = self.mean.as_secs_f64();
        if s > 0.0 {
            (self.units_per_iter as f64 / s).round() as u64
        } else {
            0
        }
    }
}

/// Times `routine` for `iters` iterations after one warm-up call.
fn measure(
    name: &str,
    iters: u32,
    unit: &'static str,
    units_per_iter: u64,
    mut routine: impl FnMut(),
) -> Measurement {
    routine(); // warm-up, untimed
    let mut samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t0 = Instant::now();
        routine();
        samples.push(t0.elapsed());
    }
    let total: Duration = samples.iter().sum();
    Measurement {
        name: name.to_string(),
        iters,
        mean: total / iters.max(1),
        min: samples.iter().copied().min().unwrap_or_default(),
        max: samples.iter().copied().max().unwrap_or_default(),
        unit,
        units_per_iter,
    }
}

/// Shape-preserving shrink of every AlexNet CONV layer that still maps
/// on the fabricated chip's grid (the tier-1 `alexnet_layer_mappings`
/// discipline), with its batch.
fn alexnet_slice() -> Vec<(LayerShape, usize)> {
    alexnet::conv_layers()
        .iter()
        .filter_map(|l| {
            let s = &l.shape;
            LayerShape::conv(4, s.c.min(4), s.h.min(31 + s.r - 1), s.r, s.u)
                .ok()
                .map(|shape| (shape, 1))
        })
        .collect()
}

/// A VGG-style stack of stride-1 3x3 stages at reduced width/depth.
fn vgg_stack() -> eyeriss_nn::network::Network {
    eyeriss_nn::network::NetworkBuilder::new(3, 33)
        .conv("C1_1", 8, 3, 1)
        .expect("valid stage")
        .conv("C1_2", 8, 3, 1)
        .expect("valid stage")
        .pool("P1", 3, 2)
        .expect("valid stage")
        .conv("C2_1", 12, 3, 1)
        .expect("valid stage")
        .build(29)
}

/// Runs every harness scenario; `quick` trims the iteration counts for
/// CI smoke jobs (same scenarios, noisier numbers).
pub fn run_harness(quick: bool) -> Vec<Measurement> {
    let iters: u32 = if quick { 8 } else { 15 };
    let serve_iters: u32 = if quick { 5 } else { 10 };
    let mut out = Vec::new();

    // --- single-array simulation: the sim_chip scenario ----------------
    let shape = LayerShape::conv(32, 16, 15, 3, 1).unwrap();
    let input = synth::ifmap(&shape, 1, 1);
    let weights = synth::filters(&shape, 2);
    let bias = synth::biases(&shape, 3);
    let macs = shape.macs(1);
    out.push(measure("sim_conv3_cold", iters, "mac", macs, || {
        let mut chip = Accelerator::new(AcceleratorConfig::eyeriss_chip());
        std::hint::black_box(chip.run_conv(&shape, 1, &input, &weights, &bias).unwrap());
    }));
    let mut chip = Accelerator::new(AcceleratorConfig::eyeriss_chip());
    out.push(measure("sim_conv3_steady", iters, "mac", macs, || {
        std::hint::black_box(chip.run_conv(&shape, 1, &input, &weights, &bias).unwrap());
    }));

    // --- AlexNet slice: every CONV geometry on one reused chip ---------
    let layers = alexnet_slice();
    let data: Vec<_> = layers
        .iter()
        .map(|(s, n)| {
            (
                synth::ifmap(s, *n, 4),
                synth::filters(s, 5),
                synth::biases(s, 6),
            )
        })
        .collect();
    let alex_macs: u64 = layers.iter().map(|(s, n)| s.macs(*n)).sum();
    let mut chip = Accelerator::new(AcceleratorConfig::eyeriss_chip());
    out.push(measure(
        "sim_alexnet_slice",
        iters,
        "mac",
        alex_macs,
        || {
            for ((s, n), (i, w, b)) in layers.iter().zip(&data) {
                std::hint::black_box(chip.run_conv(s, *n, i, w, b).unwrap());
            }
        },
    ));

    // --- VGG-style network through the network runner ------------------
    let net = vgg_stack();
    let vin = synth::ifmap(&net.stages()[0].shape, 2, 11);
    let vgg_macs: u64 = net.stages().iter().map(|s| s.shape.macs(2)).sum();
    let mut chip = Accelerator::new(AcceleratorConfig::eyeriss_chip());
    out.push(measure("sim_vgg_stack", iters, "mac", vgg_macs, || {
        std::hint::black_box(eyeriss_sim::runner::run_network(&mut chip, &net, 2, &vin).unwrap());
    }));

    // --- MobileNet-tiny: depthwise/pointwise blocks on one chip --------
    // Cold runs pay the per-shape mapping search (including the grouped
    // lowering); the steady chip reuses memoized mappings and scratch.
    // Gated since BENCH_6.json (compare_to_baseline iterates the
    // committed baseline's scenario list).
    let mnet = eyeriss_nn::mobilenet::mobilenet_tiny(17);
    let min = synth::ifmap(&mnet.stages()[0].shape, 1, 21);
    let mnet_macs: u64 = mnet.stages().iter().map(|s| s.shape.macs(1)).sum();
    out.push(measure(
        "mobilenet_flex_cold",
        iters,
        "mac",
        mnet_macs,
        || {
            let mut chip = Accelerator::new(AcceleratorConfig::eyeriss_chip());
            std::hint::black_box(
                eyeriss_sim::runner::run_network(&mut chip, &mnet, 1, &min).unwrap(),
            );
        },
    ));
    let mut chip = Accelerator::new(AcceleratorConfig::eyeriss_chip());
    out.push(measure(
        "mobilenet_flex_steady",
        iters,
        "mac",
        mnet_macs,
        || {
            std::hint::black_box(
                eyeriss_sim::runner::run_network(&mut chip, &mnet, 1, &min).unwrap(),
            );
        },
    ));

    // --- 4-array cluster: searched and planned paths -------------------
    let cshape = LayerShape::conv(16, 8, 31, 5, 2).unwrap();
    let n = 4usize;
    let problem = LayerProblem::new(cshape, n);
    let cin = synth::ifmap(&cshape, n, 1);
    let cw = synth::filters(&cshape, 2);
    let cb = synth::biases(&cshape, 3);
    let cmacs = cshape.macs(n);
    let cluster =
        Cluster::new(4, AcceleratorConfig::eyeriss_chip()).shared_dram(SharedDram::scaled(4));
    out.push(measure("cluster_4x_batch", iters, "mac", cmacs, || {
        std::hint::black_box(
            cluster
                .execute_partition(Partition::Batch, &problem, &cin, &cw, &cb)
                .unwrap(),
        );
    }));
    let plan = plan_layer(
        eyeriss::dataflow::registry::builtin(DataflowKind::RowStationary),
        &problem,
        4,
        &AcceleratorConfig::eyeriss_chip(),
        &TableIv,
        &SharedDram::scaled(4),
        Objective::EnergyDelayProduct,
    )
    .expect("cluster plan");
    out.push(measure("cluster_4x_planned", iters, "mac", cmacs, || {
        std::hint::black_box(cluster.execute(&plan, &problem, &cin, &cw, &cb).unwrap());
    }));

    // --- serving sweep: end-to-end request latency at batch 1 and 4 ----
    let net = eyeriss::analysis::experiments::serving::synthetic_net();
    let in_shape = net.stages()[0].shape;
    for max_batch in [1usize, 4] {
        let mut cfg = ServeConfig::new();
        cfg.policy = BatchPolicy {
            max_batch,
            max_wait: Duration::from_millis(1),
        };
        // The timed scenarios measure the telemetry-disabled path (one
        // relaxed atomic load per site); `observed_serving_snapshot`
        // exercises the enabled path separately.
        cfg.telemetry = Some(Telemetry::new());
        let server = Server::start(net.clone(), cfg);
        server.prewarm().expect("synthetic net plans");
        // Inputs are synthesized outside the timed routine — the
        // scenario measures serving latency (submit-side copy included),
        // not tensor generation.
        let requests: Vec<_> = (0..max_batch)
            .map(|i| synth::ifmap(&in_shape, 1, i as u64))
            .collect();
        let name = format!("serve_e2e_batch{max_batch}");
        out.push(measure(
            &name,
            serve_iters,
            "request",
            max_batch as u64,
            || {
                let handles: Vec<_> = requests
                    .iter()
                    .map(|input| server.submit(input.clone()).unwrap())
                    .collect();
                for handle in handles {
                    std::hint::black_box(handle.wait().unwrap());
                }
            },
        ));
        server.shutdown();
    }

    // --- sched path: a two-tenant burst through the ready queue --------
    // Same end-to-end shape as serve_e2e_batch4 but submitted through
    // the multi-tenant scheduling layer (admission check, DRR-arbitrated
    // EDF queue) by two weighted tenants at twice the batch size, so the
    // queue is briefly overloaded every iteration. Best-effort (no
    // deadlines): every request completes and the scenario prices the
    // scheduler's overhead, not sheds.
    {
        let mut cfg = ServeConfig::new();
        cfg.policy = BatchPolicy {
            max_batch: 4,
            max_wait: Duration::from_millis(1),
        };
        cfg.telemetry = Some(Telemetry::new());
        cfg.sched = Some(
            SchedConfig::new()
                .tenant(TenantSpec::new("hog").weight(3.0))
                .tenant(TenantSpec::new("guest").weight(1.0)),
        );
        let server = Server::start(net.clone(), cfg);
        server.prewarm().expect("synthetic net plans");
        let tenants = server.tenants();
        let id_of = |name: &str| {
            tenants
                .iter()
                .find(|t| t.name == name)
                .expect("registered at startup")
                .id
        };
        let ids = [id_of("hog"), id_of("guest")];
        let burst: Vec<_> = (0..8u64)
            .map(|i| (ids[(i % 2) as usize], synth::ifmap(&in_shape, 1, 100 + i)))
            .collect();
        out.push(measure(
            "serve_sched_overload",
            serve_iters,
            "request",
            8,
            || {
                let handles: Vec<_> = burst
                    .iter()
                    .map(|(tenant, input)| {
                        server
                            .submit_with(input.clone(), SubmitOptions::tenant(*tenant))
                            .unwrap()
                    })
                    .collect();
                for handle in handles {
                    std::hint::black_box(handle.wait().unwrap());
                }
            },
        ));
        server.shutdown();
    }

    // --- fault-free overhead: the fault-tolerance machinery, disabled --
    // Every serve scenario already pays the supervised-worker path
    // (catch_unwind, retry bookkeeping, health tracking); this scenario
    // pins the *explicitly disabled* injection + ABFT configuration so
    // the zero-cost-when-off claim is gated on its own name. Unbatched,
    // so per-request overhead is not amortized across a batch. Gated
    // since BENCH_7.json.
    {
        let mut cfg = ServeConfig::new();
        cfg.policy = BatchPolicy::unbatched();
        cfg.telemetry = Some(Telemetry::new());
        cfg.faults = None; // no injector is built
        cfg.abft = false; // no checksum is computed
        let server = Server::start(net.clone(), cfg);
        server.prewarm().expect("synthetic net plans");
        let requests: Vec<_> = (0..4u64)
            .map(|i| synth::ifmap(&in_shape, 1, 200 + i))
            .collect();
        out.push(measure(
            "fault_free_overhead",
            serve_iters,
            "request",
            4,
            || {
                let handles: Vec<_> = requests
                    .iter()
                    .map(|input| server.submit(input.clone()).unwrap())
                    .collect();
                for handle in handles {
                    std::hint::black_box(handle.wait().unwrap());
                }
            },
        ));
        let snap = server.snapshot();
        assert_eq!(
            (snap.faults_injected, snap.faults_detected, snap.retries),
            (0, 0, 0),
            "the disabled path must never touch the fault machinery"
        );
        server.shutdown();
    }

    out
}

/// Runs one short serving burst with telemetry **enabled** and returns
/// the resulting snapshot: the server's live queue/latency metrics plus
/// the workers' cluster and simulator spans — the input to both the
/// wire exporter
/// ([`TelemetrySnapshot::to_wire`]) and the Chrome trace exporter
/// ([`TelemetrySnapshot::chrome_trace`]). This run is *observed*, not
/// timed; the timed scenarios above keep telemetry disabled.
pub fn observed_serving_snapshot() -> TelemetrySnapshot {
    let net = eyeriss::analysis::experiments::serving::synthetic_net();
    let shape = net.stages()[0].shape;
    let mut cfg = ServeConfig::new();
    cfg.policy = BatchPolicy {
        max_batch: 4,
        max_wait: Duration::from_millis(1),
    };
    let server = Server::start(net, cfg); // default config: live telemetry
    server.prewarm().expect("synthetic net plans");
    let handles: Vec<_> = (0..8)
        .map(|i| {
            server
                .submit(synth::ifmap(&shape, 1, i))
                .expect("observed submit")
        })
        .collect();
    for handle in handles {
        handle.wait().expect("observed inference");
    }
    let snap = server.telemetry().snapshot();
    server.shutdown();
    snap
}

/// Runs one short serving burst against a **deliberately breached** SLO
/// (a 1 ns p99 bound no inference meets) and returns the single latched
/// [`FlightDump`](eyeriss::telemetry::FlightDump) plus the telemetry
/// snapshot it was cut from — the post-mortem artifact CI uploads: the
/// dump's wire JSON and its trace-filtered Chrome view
/// ([`FlightDump::chrome_trace`](eyeriss::telemetry::FlightDump::chrome_trace)).
/// Observed, not timed, like [`observed_serving_snapshot`].
pub fn observed_flight_dump() -> (eyeriss::telemetry::FlightDump, TelemetrySnapshot) {
    use eyeriss::serve::SloSpec;
    let net = eyeriss::analysis::experiments::serving::synthetic_net();
    let shape = net.stages()[0].shape;
    let mut cfg = ServeConfig::new();
    cfg.policy = BatchPolicy {
        max_batch: 4,
        max_wait: Duration::from_millis(1),
    };
    cfg.slos = vec![SloSpec::p99_latency("bench-p99", Duration::from_nanos(1)).min_events(1)];
    let server = Server::start(net, cfg); // default config: live telemetry
    server.prewarm().expect("synthetic net plans");
    let handles: Vec<_> = (0..6)
        .map(|i| {
            server
                .submit(synth::ifmap(&shape, 1, i))
                .expect("flight submit")
        })
        .collect();
    for handle in handles {
        handle.wait().expect("flight inference");
    }
    let dump = server
        .slo_monitor()
        .take_dumps()
        .into_iter()
        .next()
        .expect("an unreachable SLO must breach");
    let snap = server.telemetry().snapshot();
    server.shutdown();
    (dump, snap)
}

/// Default wall-time regression tolerance: a scenario regresses when its
/// best (minimum) iteration exceeds the baseline's by more than 15%.
pub const REGRESSION_TOLERANCE: f64 = 0.15;

/// One scenario's baseline-vs-current wall-time comparison.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Scenario name (present in both runs).
    pub name: String,
    /// Baseline minimum, nanoseconds.
    pub baseline_ns: u64,
    /// Current minimum, nanoseconds.
    pub current_ns: u64,
    /// Baseline mean, nanoseconds (informational — the gate is on min).
    pub baseline_mean_ns: u64,
    /// Current mean, nanoseconds (informational — the gate is on min).
    pub current_mean_ns: u64,
    /// `current / baseline` on the minimum (> 1 means slower).
    pub ratio: f64,
    /// True when `ratio > 1 + tolerance`.
    pub regressed: bool,
}

impl Comparison {
    /// Signed percentage delta of the gated minimum (`+` = slower).
    pub fn min_delta_pct(&self) -> f64 {
        (self.ratio - 1.0) * 100.0
    }

    /// Signed percentage delta of the informational mean (`+` = slower).
    pub fn mean_delta_pct(&self) -> f64 {
        (self.current_mean_ns as f64 / self.baseline_mean_ns.max(1) as f64 - 1.0) * 100.0
    }
}

/// Compares `current` measurements against a parsed `eyeriss-bench`
/// baseline document, scenario by scenario (baseline scenarios missing
/// from `current` are skipped — quick mode runs the same set, so in
/// practice every committed scenario is gated). The compared statistic
/// is each scenario's **minimum** iteration time: the minimum is the
/// run's best case and is far less sensitive to scheduler and
/// frequency noise than the mean, which matters on shared CI machines.
///
/// # Errors
///
/// Wire errors for a malformed or wrong-schema baseline document.
pub fn compare_to_baseline(
    baseline: &Value,
    current: &[Measurement],
    tolerance: f64,
) -> Result<Vec<Comparison>, WireError> {
    baseline.expect_schema("eyeriss-bench", 1)?;
    let mut out = Vec::new();
    for s in baseline.get("scenarios")?.as_arr()? {
        let name = s.get("name")?.as_str()?;
        let baseline_ns = s.get("min_ns")?.as_u64()?;
        let baseline_mean_ns = s.get("mean_ns")?.as_u64()?;
        let Some(m) = current.iter().find(|m| m.name == name) else {
            continue;
        };
        let current_ns = m.min.as_nanos() as u64;
        let ratio = current_ns as f64 / baseline_ns.max(1) as f64;
        out.push(Comparison {
            name: name.to_string(),
            baseline_ns,
            current_ns,
            baseline_mean_ns,
            current_mean_ns: m.mean.as_nanos() as u64,
            ratio,
            regressed: ratio > 1.0 + tolerance,
        });
    }
    Ok(out)
}

/// Renders measurements as the versioned `eyeriss-bench` JSON document.
pub fn to_json(mode: &str, measurements: &[Measurement]) -> Value {
    Value::obj([
        ("schema", Value::str("eyeriss-bench")),
        ("v", Value::u64(1)),
        ("mode", Value::str(mode)),
        (
            "scenarios",
            Value::arr(measurements.iter().map(|m| {
                Value::obj([
                    ("name", Value::str(m.name.clone())),
                    ("iters", Value::u64(m.iters as u64)),
                    ("mean_ns", Value::u64(m.mean.as_nanos() as u64)),
                    ("min_ns", Value::u64(m.min.as_nanos() as u64)),
                    ("max_ns", Value::u64(m.max.as_nanos() as u64)),
                    ("unit", Value::str(m.unit)),
                    ("units_per_iter", Value::u64(m.units_per_iter)),
                    ("units_per_sec", Value::u64(m.units_per_sec())),
                ])
            })),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_reports_throughput() {
        let m = measure("probe", 3, "mac", 1_000, || {
            std::hint::black_box((0..1000u64).sum::<u64>());
        });
        assert_eq!(m.iters, 3);
        assert!(m.min <= m.mean && m.mean <= m.max);
        assert!(m.units_per_sec() > 0);
    }

    #[test]
    fn json_schema_roundtrips() {
        let m = Measurement {
            name: "x".into(),
            iters: 2,
            mean: Duration::from_micros(5),
            min: Duration::from_micros(4),
            max: Duration::from_micros(6),
            unit: "mac",
            units_per_iter: 10,
        };
        let doc = to_json("quick", &[m]);
        let back = Value::parse(&doc.render()).unwrap();
        back.expect_schema("eyeriss-bench", 1).unwrap();
        let scenarios = back.get("scenarios").unwrap().as_arr().unwrap();
        assert_eq!(scenarios.len(), 1);
        assert_eq!(
            scenarios[0].get("mean_ns").unwrap().as_u64().unwrap(),
            5_000
        );
        assert_eq!(
            scenarios[0].get("units_per_sec").unwrap().as_u64().unwrap(),
            2_000_000
        );
    }

    #[test]
    fn harness_scenario_inputs_are_well_formed() {
        assert!(!alexnet_slice().is_empty());
        let net = vgg_stack();
        assert!(net.stages().len() >= 4);
    }

    #[test]
    fn baseline_comparison_flags_regressions() {
        let mk = |name: &str, us: u64| Measurement {
            name: name.into(),
            iters: 1,
            mean: Duration::from_micros(us),
            min: Duration::from_micros(us),
            max: Duration::from_micros(us),
            unit: "mac",
            units_per_iter: 1,
        };
        let baseline = to_json("full", &[mk("a", 100), mk("b", 100), mk("gone", 1)]);
        let current = [mk("a", 110), mk("b", 130), mk("new", 5)];
        let cmp = compare_to_baseline(&baseline, &current, REGRESSION_TOLERANCE).unwrap();
        assert_eq!(cmp.len(), 2, "scenarios missing from current are skipped");
        assert!(!cmp[0].regressed, "+10% is within the 15% tolerance");
        assert!(cmp[1].regressed, "+30% regresses");
        assert!((cmp[0].min_delta_pct() - 10.0).abs() < 1e-9);
        assert!((cmp[1].mean_delta_pct() - 30.0).abs() < 1e-9);
        assert_eq!(cmp[0].baseline_mean_ns, cmp[0].baseline_ns);
        let bad = Value::obj([("schema", Value::str("nope")), ("v", Value::u64(1))]);
        assert!(compare_to_baseline(&bad, &current, 0.15).is_err());
    }

    #[test]
    fn observed_snapshot_captures_every_layer() {
        let snap = observed_serving_snapshot();
        assert!(snap.counter("serve.completed").unwrap_or(0) >= 8);
        assert!(snap
            .histogram("serve.total_ns")
            .is_some_and(|h| h.count() >= 8));
        assert!(snap.spans.iter().any(|s| s.name == "serve.batch"));
        assert!(snap.spans.iter().any(|s| s.name == "cluster.array"));
        let trace = snap.chrome_trace();
        assert!(trace.contains("\"name\":\"cluster.array\""));
        // The wire export round-trips.
        let parsed = Value::parse(&snap.to_wire().render()).unwrap();
        TelemetrySnapshot::from_wire(&parsed).unwrap();
    }

    #[test]
    fn observed_flight_dump_covers_the_breach() {
        let (dump, snap) = observed_flight_dump();
        assert_eq!(dump.slo, "bench-p99");
        assert!(!dump.records.is_empty());
        // The dump's wire form parses, and its Chrome view keeps the
        // breached requests' server-side spans.
        let parsed = Value::parse(&dump.to_wire().render()).unwrap();
        eyeriss::telemetry::FlightDump::from_wire(&parsed).unwrap();
        assert!(dump.chrome_trace(&snap).contains("serve.batch"));
    }
}
