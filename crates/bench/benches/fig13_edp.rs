//! Fig. 13: normalized energy-delay product of the six dataflows in the
//! CONV layers.

use criterion::{criterion_group, criterion_main, Criterion};
use eyeriss::analysis::experiments::fig13;
use eyeriss::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    for panel in fig13::run() {
        println!("{}", fig13::render(&panel));
    }
    c.bench_function("fig13_rs_conv_sweep_point", |b| {
        b.iter(|| black_box(run_conv_layers(DataflowKind::RowStationary, 16, 256)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
