//! Fig. 15: RS energy vs delay when trading PE count against storage
//! under a fixed total area.

use criterion::{criterion_group, criterion_main, Criterion};
use eyeriss::analysis::experiments::fig15;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", fig15::render(&fig15::run()));
    c.bench_function("fig15_single_point", |b| {
        b.iter(|| {
            // One allocation point: RS CONV mapping on a 160-PE config.
            use eyeriss::prelude::*;
            let hw = AcceleratorConfig {
                grid: GridDims::new(16, 10),
                rf_bytes_per_pe: 768.0,
                buffer_bytes: 311.0 * 1024.0,
            };
            let layers = alexnet::conv_layers();
            black_box(eyeriss::analysis::run_layers_on(
                DataflowKind::RowStationary,
                &layers,
                16,
                &hw,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
