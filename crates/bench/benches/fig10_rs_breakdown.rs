//! Fig. 10: RS energy breakdown across the storage hierarchy for all
//! AlexNet layers (256 PEs, 512 B RF, 128 kB buffer, batch 16).

use criterion::{criterion_group, criterion_main, Criterion};
use eyeriss::analysis::experiments::fig10;
use eyeriss::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", fig10::render(&fig10::run()));
    // Kernel: the per-layer mapping optimization behind one bar.
    let rs = registry::builtin(DataflowKind::RowStationary);
    let conv2 = LayerProblem::new(alexnet::conv_layers()[1].shape, 16);
    let hw = rs.comparison_hardware(256);
    let em = TableIv;
    c.bench_function("fig10_rs_map_conv2", |b| {
        b.iter(|| black_box(optimize(rs, black_box(&conv2), &hw, &em, Objective::Energy)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
