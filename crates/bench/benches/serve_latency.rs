//! Serving latency: plan-cache hit vs miss compile cost, and end-to-end
//! request latency through the server at batch sizes 1 and 4.
//!
//! The cache-miss case runs the full `(partition, mapping)` search; the
//! hit case is a hash lookup — the gap is the configuration cost the
//! serving runtime amortizes across requests.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eyeriss::prelude::*;
use eyeriss::serve::ServeConfig;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let shape = LayerShape::conv(16, 8, 31, 5, 2).unwrap();
    let hw = AcceleratorConfig::eyeriss_chip();

    let mut group = c.benchmark_group("serve");

    group.bench_function("plan_compile_miss", |b| {
        b.iter(|| {
            // Fresh compiler: every compile is a full search.
            let compiler = PlanCompiler::new(2, hw);
            std::hint::black_box(compiler.compile_layer(&shape, 4).unwrap())
        })
    });

    let warm = PlanCompiler::new(2, hw);
    warm.compile_layer(&shape, 4).unwrap();
    group.bench_function("plan_compile_hit", |b| {
        b.iter(|| std::hint::black_box(warm.compile_layer(&shape, 4).unwrap()))
    });

    // End-to-end: submit -> batch -> planned cluster execution -> response.
    let net = eyeriss::analysis::experiments::serving::synthetic_net();
    let in_shape = net.stages()[0].shape;
    for max_batch in [1usize, 4] {
        let mut cfg = ServeConfig::new();
        cfg.policy = BatchPolicy {
            max_batch,
            max_wait: Duration::from_millis(1),
        };
        let server = Server::start(net.clone(), cfg);
        // Warm the plan cache out of band.
        server
            .submit(synth::ifmap(&in_shape, 1, 0))
            .unwrap()
            .wait()
            .unwrap();
        group.throughput(Throughput::Elements(max_batch as u64));
        group.bench_function(&format!("e2e_batch{max_batch}"), |b| {
            b.iter(|| {
                let handles: Vec<_> = (0..max_batch)
                    .map(|i| server.submit(synth::ifmap(&in_shape, 1, i as u64)).unwrap())
                    .collect();
                for handle in handles {
                    std::hint::black_box(handle.wait().unwrap());
                }
            })
        });
        server.shutdown();
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
