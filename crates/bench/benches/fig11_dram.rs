//! Fig. 11: average DRAM accesses/op of the six dataflows in the CONV
//! layers, for 256/512/1024 PEs and batches 1/16/64.

use criterion::{criterion_group, criterion_main, Criterion};
use eyeriss::analysis::experiments::fig11;
use eyeriss::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    for panel in fig11::run() {
        println!("{}", fig11::render(&panel));
    }
    c.bench_function("fig11_ws_conv_sweep_point", |b| {
        b.iter(|| black_box(run_conv_layers(DataflowKind::WeightStationary, 16, 256)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
