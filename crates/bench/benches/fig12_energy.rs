//! Fig. 12: normalized energy/op of the six dataflows in the CONV layers,
//! broken down by hierarchy level (a-c) and by data type (d).

use criterion::{criterion_group, criterion_main, Criterion};
use eyeriss::analysis::experiments::fig12;
use eyeriss::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    for panel in fig12::run() {
        println!("{}", fig12::render_by_level(&panel));
        if panel.num_pes == 1024 {
            println!("{}", fig12::render_by_type(&panel));
        }
    }
    c.bench_function("fig12_nlr_conv_sweep_point", |b| {
        b.iter(|| black_box(run_conv_layers(DataflowKind::NoLocalReuse, 16, 256)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
