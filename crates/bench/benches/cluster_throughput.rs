//! Cluster throughput: the same layer executed on 1/2/4 arrays, per
//! elementary partition, on the functional simulator. Wall-clock gains
//! come from `eyeriss-par` running one thread per array; simulated
//! cluster cycles drop with the partition's parallelism.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eyeriss::cluster::{Cluster, Partition, SharedDram};
use eyeriss::prelude::*;

fn bench(c: &mut Criterion) {
    let shape = LayerShape::conv(16, 8, 31, 5, 2).unwrap();
    let n = 4usize;
    let problem = LayerProblem::new(shape, n);
    let input = synth::ifmap(&shape, n, 1);
    let weights = synth::filters(&shape, 2);
    let bias = synth::biases(&shape, 3);

    // Sanity: the partitioned run is bit-exact before we time it.
    let golden = reference::conv_accumulate(&shape, n, &input, &weights, &bias);
    let probe = Cluster::new(4, AcceleratorConfig::eyeriss_chip())
        .execute_partition(Partition::Batch, &problem, &input, &weights, &bias)
        .unwrap();
    assert_eq!(probe.psums, golden);

    let mut group = c.benchmark_group("cluster");
    group.throughput(Throughput::Elements(shape.macs(n)));
    for arrays in [1usize, 2, 4] {
        for partition in [
            Partition::Batch,
            Partition::OfmapChannel,
            Partition::FmapTile,
        ] {
            let name = format!("{partition}_{arrays}x");
            group.bench_function(&name, |b| {
                b.iter(|| {
                    let cluster = Cluster::new(arrays, AcceleratorConfig::eyeriss_chip())
                        .shared_dram(SharedDram::scaled(arrays));
                    std::hint::black_box(
                        cluster
                            .execute_partition(partition, &problem, &input, &weights, &bias)
                            .unwrap(),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
