//! Ablation studies beyond the paper's figures: the Section VI-B RF-size
//! design choice and the Section VI-D energy-cost sensitivity discussion.

use criterion::{criterion_group, criterion_main, Criterion};
use eyeriss::analysis::experiments::{rf_sweep, sensitivity};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", rf_sweep::render(&rf_sweep::run(256)));
    println!("{}", sensitivity::render(&sensitivity::run()));
    c.bench_function("ablation_rf_sweep_256pe", |b| {
        b.iter(|| black_box(rf_sweep::run(black_box(256))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
