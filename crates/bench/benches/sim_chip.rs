//! The chip-verification path (Section VII-A): simulate row-stationary
//! execution with real data, confirm bit-exactness and the measured
//! RF-dominance, and benchmark simulated throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eyeriss::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let em = TableIv;
    let shape = LayerShape::conv(32, 16, 15, 3, 1).unwrap();
    let input = synth::ifmap(&shape, 1, 1);
    let weights = synth::filters(&shape, 2);
    let bias = synth::biases(&shape, 3);

    let mut chip = Accelerator::new(AcceleratorConfig::eyeriss_chip());
    let run = chip.run_conv(&shape, 1, &input, &weights, &bias).unwrap();
    let golden = reference::conv_accumulate(&shape, 1, &input, &weights, &bias);
    assert_eq!(run.psums, golden);
    println!(
        "chip verification: {} MACs bit-exact; RF:(buffer+array) energy = {:.2} \
         (chip measured ~4:1); utilization {:.1}%",
        run.stats.macs,
        run.stats.rf_to_onchip_rest_ratio(&em),
        100.0 * run.stats.utilization(168)
    );

    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(shape.macs(1)));
    group.bench_function("rs_conv3_geometry_168pe", |b| {
        b.iter(|| {
            let mut chip = Accelerator::new(AcceleratorConfig::eyeriss_chip());
            black_box(chip.run_conv(&shape, 1, &input, &weights, &bias).unwrap())
        })
    });
    group.bench_function("rs_conv3_geometry_gated_sparse", |b| {
        let sparse = synth::sparse_ifmap(&shape, 1, 9, 0.7);
        b.iter(|| {
            let mut chip = Accelerator::new(AcceleratorConfig::eyeriss_chip())
                .zero_gating(true)
                .rlc(true);
            black_box(chip.run_conv(&shape, 1, &sparse, &weights, &bias).unwrap())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
