//! Fig. 14: the FC-layer comparison at 1024 PEs (DRAM/op, energy by
//! level and type, EDP) for batches 16/64/256.

use criterion::{criterion_group, criterion_main, Criterion};
use eyeriss::analysis::experiments::fig14;
use eyeriss::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", fig14::render(&fig14::run()));
    c.bench_function("fig14_rs_fc_sweep_point", |b| {
        b.iter(|| black_box(run_fc_layers(DataflowKind::RowStationary, 16, 1024)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
