//! Table II: the AlexNet CONV/FC shape configurations, plus a benchmark
//! of the golden direct convolution those shapes are evaluated with.

use criterion::{criterion_group, criterion_main, Criterion};
use eyeriss::prelude::*;
use std::hint::black_box;

fn print_table2() {
    println!("Table II — CONV/FC layer shape configurations in AlexNet");
    println!(
        "{:<6} {:>5} {:>4} {:>5} {:>5} {:>4} {:>12}",
        "Layer", "H", "R", "E", "C", "M/U", "MACs (N=1)"
    );
    for layer in alexnet::all_layers() {
        let s = &layer.shape;
        println!(
            "{:<6} {:>5} {:>4} {:>5} {:>5} {:>4} {:>12}",
            layer.name,
            s.h,
            s.r,
            s.e,
            s.c,
            format!("{}/{}", s.m, s.u),
            s.macs(1)
        );
    }
}

fn bench(c: &mut Criterion) {
    print_table2();
    // Golden convolution on a CONV3-geometry layer (scaled for bench time).
    let shape = LayerShape::conv(32, 16, 15, 3, 1).unwrap();
    let input = synth::ifmap(&shape, 1, 1);
    let weights = synth::filters(&shape, 2);
    let bias = synth::biases(&shape, 3);
    c.bench_function("golden_conv_conv3_geometry", |b| {
        b.iter(|| {
            black_box(reference::conv_accumulate(
                &shape,
                1,
                black_box(&input),
                black_box(&weights),
                &bias,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
