//! Fig. 7: the area/byte trade-off and the per-dataflow storage
//! allocation under the fixed Eq. (2) area budget.

use criterion::{criterion_group, criterion_main, Criterion};
use eyeriss::analysis::experiments::fig7;
use eyeriss::arch::area;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", fig7::render(&fig7::run(256)));
    c.bench_function("fig7_allocation_256pe", |b| {
        b.iter(|| black_box(fig7::run(black_box(256))))
    });
    c.bench_function("fig7_area_solver", |b| {
        b.iter(|| black_box(area::buffer_bytes_for_area(black_box(1.0e6))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
