//! Wire codecs for mapping candidates.
//!
//! A [`MappingCandidate`] round-trips through [`encode_candidate`] /
//! [`decode_candidate`] *bit-exactly*: the access profile travels as
//! IEEE-754 bit patterns and the params as tagged integers, so a plan
//! reloaded from disk scores, ties and re-executes identically to the
//! one that was saved. Parameters are tagged with the owning dataflow's
//! label; labels outside the builtin six resolve through the
//! [`DataflowRegistry`], so persisted plans of registered extensions
//! reload too.

use crate::candidate::{MappingCandidate, MappingParams};
use crate::kind::DataflowKind;
use crate::registry::DataflowRegistry;
use eyeriss_arch::wire as arch_wire;
use eyeriss_wire::{Value, WireError};

/// Schema version of one encoded candidate.
pub const CANDIDATE_VERSION: u64 = 1;

/// Encodes one candidate (versioned).
pub fn encode_candidate(c: &MappingCandidate) -> Value {
    Value::obj([
        ("v", Value::u64(CANDIDATE_VERSION)),
        ("profile", arch_wire::encode_profile(&c.profile)),
        ("active_pes", Value::usize(c.active_pes)),
        ("params", encode_params(&c.params)),
    ])
}

/// Decodes one candidate; custom dataflow labels resolve through `reg`.
///
/// # Errors
///
/// [`WireError`] on structural problems, unknown versions, or labels
/// absent from both the builtin taxonomy and `reg`.
pub fn decode_candidate(v: &Value, reg: &DataflowRegistry) -> Result<MappingCandidate, WireError> {
    let version = v.get("v")?.as_u64()?;
    if version != CANDIDATE_VERSION {
        return Err(WireError::UnsupportedVersion {
            supported: CANDIDATE_VERSION,
            found: version,
        });
    }
    let candidate = MappingCandidate {
        profile: arch_wire::decode_profile(v.get("profile")?)?,
        active_pes: v.get("active_pes")?.as_usize()?,
        params: decode_params(v.get("params")?, reg)?,
    };
    // Structural screening of untrusted documents: a tampered file must
    // not smuggle in divide-by-zero delays or NaN energies.
    if candidate.active_pes == 0 {
        return Err(WireError::Invalid("candidate has zero active PEs".into()));
    }
    if !candidate.profile.is_valid() {
        return Err(WireError::Invalid(
            "candidate access counts are non-finite or negative".into(),
        ));
    }
    Ok(candidate)
}

/// Encodes mapping params, tagged by the owning dataflow's label.
pub fn encode_params(p: &MappingParams) -> Value {
    let mut pairs = vec![("df".to_string(), Value::str(p.dataflow().label()))];
    let mut knob = |k: &str, v: usize| pairs.push((k.to_string(), Value::usize(v)));
    match *p {
        MappingParams::RowStationary {
            n,
            p,
            q,
            e,
            r,
            t,
            filter_resident,
        } => {
            knob("n", n);
            knob("p", p);
            knob("q", q);
            knob("e", e);
            knob("r", r);
            knob("t", t);
            pairs.push(("filter_resident".into(), Value::Bool(filter_resident)));
        }
        MappingParams::WeightStationary { g_m, g_c } => {
            knob("g_m", g_m);
            knob("g_c", g_c);
        }
        MappingParams::OutputStationaryA { e_x, e_y, n_par } => {
            knob("e_x", e_x);
            knob("e_y", e_y);
            knob("n_par", n_par);
        }
        MappingParams::OutputStationaryB { o_m, o_p } => {
            knob("o_m", o_m);
            knob("o_p", o_p);
        }
        MappingParams::OutputStationaryC { o_m, n_par } => {
            knob("o_m", o_m);
            knob("n_par", n_par);
        }
        MappingParams::NoLocalReuse {
            g_c,
            g_w,
            ifmap_resident,
        } => {
            knob("g_c", g_c);
            knob("g_w", g_w);
            pairs.push(("ifmap_resident".into(), Value::Bool(ifmap_resident)));
        }
        MappingParams::Custom { knobs, .. } => {
            pairs.push((
                "knobs".into(),
                Value::arr(knobs.iter().map(|&k| Value::usize(k))),
            ));
        }
    }
    Value::Obj(pairs)
}

/// Decodes mapping params; non-builtin labels resolve through `reg` into
/// [`MappingParams::Custom`].
///
/// # Errors
///
/// [`WireError::Invalid`] for labels neither builtin nor registered.
pub fn decode_params(v: &Value, reg: &DataflowRegistry) -> Result<MappingParams, WireError> {
    let label = v.get("df")?.as_str()?;
    let knob = |k: &str| -> Result<usize, WireError> { v.get(k)?.as_usize() };
    match DataflowKind::from_label(label) {
        Some(DataflowKind::RowStationary) => Ok(MappingParams::RowStationary {
            n: knob("n")?,
            p: knob("p")?,
            q: knob("q")?,
            e: knob("e")?,
            r: knob("r")?,
            t: knob("t")?,
            filter_resident: v.get("filter_resident")?.as_bool()?,
        }),
        Some(DataflowKind::WeightStationary) => Ok(MappingParams::WeightStationary {
            g_m: knob("g_m")?,
            g_c: knob("g_c")?,
        }),
        Some(DataflowKind::OutputStationaryA) => Ok(MappingParams::OutputStationaryA {
            e_x: knob("e_x")?,
            e_y: knob("e_y")?,
            n_par: knob("n_par")?,
        }),
        Some(DataflowKind::OutputStationaryB) => Ok(MappingParams::OutputStationaryB {
            o_m: knob("o_m")?,
            o_p: knob("o_p")?,
        }),
        Some(DataflowKind::OutputStationaryC) => Ok(MappingParams::OutputStationaryC {
            o_m: knob("o_m")?,
            n_par: knob("n_par")?,
        }),
        Some(DataflowKind::NoLocalReuse) => Ok(MappingParams::NoLocalReuse {
            g_c: knob("g_c")?,
            g_w: knob("g_w")?,
            ifmap_resident: v.get("ifmap_resident")?.as_bool()?,
        }),
        None => {
            let df = reg
                .by_label(label)
                .ok_or_else(|| WireError::Invalid(format!("unregistered dataflow {label:?}")))?;
            let raw = v.get("knobs")?.as_arr()?;
            if raw.len() != 4 {
                return Err(WireError::Invalid(format!(
                    "custom params carry {} knobs, expected 4",
                    raw.len()
                )));
            }
            let mut knobs = [0usize; 4];
            for (slot, item) in knobs.iter_mut().zip(raw) {
                *slot = item.as_usize()?;
            }
            Ok(MappingParams::Custom { id: df.id(), knobs })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::Dataflow;
    use crate::id::DataflowId;
    use crate::search::{self, Objective};
    use eyeriss_arch::config::AcceleratorConfig;
    use eyeriss_arch::cost::TableIv;
    use eyeriss_arch::energy::EnergyModel;
    use eyeriss_nn::{LayerProblem, LayerShape};
    use std::sync::Arc;

    #[test]
    fn searched_candidates_roundtrip_bit_exactly() {
        let em = EnergyModel::table_iv();
        let reg = DataflowRegistry::builtin();
        let p = LayerProblem::new(LayerShape::conv(8, 4, 13, 3, 2).unwrap(), 2);
        for df in reg.iter() {
            let hw = df.comparison_hardware(256);
            let Some(best) = search::optimize(df.as_ref(), &p, &hw, &TableIv, Objective::Energy)
            else {
                continue;
            };
            let back = decode_candidate(&encode_candidate(&best), &reg).unwrap();
            assert_eq!(back, best, "{} candidate diverged", df.id());
            assert_eq!(
                back.profile.total_energy(&em).to_bits(),
                best.profile.total_energy(&em).to_bits(),
                "{} energy lost bits",
                df.id()
            );
        }
    }

    #[test]
    fn custom_params_need_a_registry_entry() {
        struct Toy;
        impl Dataflow for Toy {
            fn id(&self) -> DataflowId {
                DataflowId::new("TOY")
            }
            fn rf_bytes(&self) -> f64 {
                8.0
            }
            fn enumerate(&self, _: &LayerProblem, _: &AcceleratorConfig) -> Vec<MappingCandidate> {
                Vec::new()
            }
        }
        let params = MappingParams::Custom {
            id: DataflowId::new("TOY"),
            knobs: [9, 8, 7, 6],
        };
        let encoded = encode_params(&params);
        // Without the registration the label is untrusted.
        assert!(matches!(
            decode_params(&encoded, &DataflowRegistry::builtin()),
            Err(WireError::Invalid(_))
        ));
        let mut reg = DataflowRegistry::builtin();
        reg.register(Arc::new(Toy)).unwrap();
        assert_eq!(decode_params(&encoded, &reg).unwrap(), params);
    }

    proptest::proptest! {
        #[test]
        fn prop_flex_custom_knobs_roundtrip(
            knobs in proptest::array::uniform4(0usize..100_000),
        ) {
            // flex-rs knob quadruples of any magnitude survive the wire
            // format bit-exactly once the dataflow is registered — the
            // persistence contract behind `PlanCache` reloads of flex
            // plans.
            let mut reg = DataflowRegistry::builtin();
            reg.register(Arc::new(crate::flex::FlexRsModel)).unwrap();
            let params = MappingParams::Custom {
                id: crate::flex::FLEX_RS,
                knobs,
            };
            let back = decode_params(&encode_params(&params), &reg).unwrap();
            proptest::prop_assert_eq!(back, params);
            // Without the registration the same bytes are refused, never
            // misattributed to a builtin space.
            proptest::prop_assert!(matches!(
                decode_params(&encode_params(&params), &DataflowRegistry::builtin()),
                Err(WireError::Invalid(_))
            ));
        }
    }

    #[test]
    fn unknown_candidate_version_is_rejected() {
        let reg = DataflowRegistry::builtin();
        let v = Value::obj([("v", Value::u64(99))]);
        assert!(matches!(
            decode_candidate(&v, &reg),
            Err(WireError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn tampered_candidates_are_screened() {
        let reg = DataflowRegistry::builtin();
        let rs = crate::registry::builtin(crate::kind::DataflowKind::RowStationary);
        let p = LayerProblem::new(LayerShape::conv(8, 4, 13, 3, 2).unwrap(), 2);
        let hw = rs.comparison_hardware(256);
        let best = search::optimize(rs, &p, &hw, &TableIv, Objective::Energy).unwrap();

        let mut zero_pes = best.clone();
        zero_pes.active_pes = 0;
        assert!(matches!(
            decode_candidate(&encode_candidate(&zero_pes), &reg),
            Err(WireError::Invalid(_))
        ));

        let mut nan_profile = best;
        nan_profile.profile.alu_ops = f64::NAN;
        assert!(matches!(
            decode_candidate(&encode_candidate(&nan_profile), &reg),
            Err(WireError::Invalid(_))
        ));
    }
}
