//! The no-local-reuse (NLR) dataflow (Section IV-C).
//!
//! # Mapping model
//!
//! NLR PEs are bare ALU datapaths with **no RF**; the freed area buys a
//! much larger global buffer (Fig. 7b). The array is divided into `g_c`
//! groups of `g_w` PEs: PEs within a group read the *same* broadcast ifmap
//! value with *different* filter weights (ifmap reuse in the array), and
//! psums accumulate spatially across the `g_c` groups, folding through the
//! buffer for the remaining `R²·ceil(C/g_c)` rounds. This is the
//! DianNao \[22\] style.
//!
//! Consequences the model must reproduce (Section VII-B): DRAM traffic is
//! low (the big buffer keeps planes resident) but "most of its data
//! accesses come from the global buffer directly, which results in high
//! energy consumption", dominated by weight reads (Fig. 12d) since weights
//! see no array reuse at all.

use crate::candidate::{MappingCandidate, MappingParams};
use crate::dataflow::Dataflow;
use crate::id::DataflowId;
use crate::kind::DataflowKind;
use crate::model::{ceil_div, factor_candidates};
use eyeriss_arch::access::LayerAccessProfile;
use eyeriss_arch::config::AcceleratorConfig;
use eyeriss_nn::{LayerProblem, LayerShape};

/// The no-local-reuse mapping space.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoLocalReuseModel;

impl Dataflow for NoLocalReuseModel {
    fn id(&self) -> DataflowId {
        DataflowKind::NoLocalReuse.id()
    }

    fn rf_bytes(&self) -> f64 {
        DataflowKind::NoLocalReuse.rf_bytes()
    }

    fn enumerate(&self, problem: &LayerProblem, hw: &AcceleratorConfig) -> Vec<MappingCandidate> {
        crate::grouped::lower(problem, |shape, n| self.mappings(shape, n, hw))
    }
}

impl NoLocalReuseModel {
    /// Enumerates feasible mappings of `shape` at batch `n_batch` on `hw`
    /// (the explicit-arguments form of [`Dataflow::enumerate`]).
    pub fn mappings(
        &self,
        shape: &LayerShape,
        n_batch: usize,
        hw: &AcceleratorConfig,
    ) -> Vec<MappingCandidate> {
        let pes = hw.num_pes();
        let buf_words = hw.buffer_words();
        let mut out = Vec::new();
        for &g_c in &factor_candidates(shape.c, pes) {
            for &g_w in &factor_candidates(shape.m, pes / g_c) {
                for ifmap_resident in [true, false] {
                    if let Some(c) = evaluate(shape, n_batch, g_c, g_w, ifmap_resident, buf_words) {
                        out.push(c);
                    }
                }
            }
        }
        out
    }
}

fn evaluate(
    shape: &LayerShape,
    n_batch: usize,
    g_c: usize,
    g_w: usize,
    ifmap_resident: bool,
    buf_words: usize,
) -> Option<MappingCandidate> {
    let (m_dim, c_dim, h, r_filt, e_dim) = (shape.m, shape.c, shape.h, shape.r, shape.e);

    // Buffer residency: the current filter group's full weight stack, the
    // live psum plane slice, and optionally a slab of resident ifmaps.
    let filter_tile = g_w * c_dim * r_filt * r_filt;
    let psum_tile = g_w * e_dim * e_dim;
    let image_words = c_dim * h * h;
    let m_groups = ceil_div(m_dim, g_w);
    // Images the leftover buffer space can keep resident at once.
    let slab_images = buf_words
        .saturating_sub(filter_tile + psum_tile)
        .checked_div(image_words)
        .unwrap_or(0)
        .min(n_batch);
    if ifmap_resident {
        if slab_images == 0 {
            return None;
        }
    } else if filter_tile + psum_tile + g_c * h > buf_words {
        return None;
    }

    let macs = shape.macs(n_batch) as f64;
    let filter_words = shape.filter_words() as f64;
    let ofmap_words = shape.ofmap_words(n_batch) as f64;

    let mut profile = LayerAccessProfile::new();
    profile.alu_ops = macs;

    // ---- filters and ifmaps: one of them pays the loop-order price --------
    // Every weight use is a buffer read (no reuse in the array).
    profile.filter.buffer_reads = macs;
    profile.ifmap.buffer_reads = macs / g_w as f64;
    profile.ifmap.array_hops = macs;
    if ifmap_resident {
        // Batch slabs stay resident; the filter groups cycle through per
        // slab (unless a single group covers all filters and never moves).
        profile.ifmap.dram_reads = shape.ifmap_words(n_batch) as f64;
        let slab_rounds = ceil_div(n_batch, slab_images) as f64;
        profile.filter.dram_reads = if m_groups == 1 {
            filter_words
        } else {
            filter_words * slab_rounds
        };
    } else {
        // Filter groups stay resident; the ifmaps re-stream per group.
        profile.filter.dram_reads = filter_words;
        profile.ifmap.dram_reads = shape.ifmap_words(n_batch) as f64 * m_groups as f64;
    }

    // ---- psums: spatial across groups, buffer for everything else ----------
    let rounds = (ceil_div(c_dim, g_c) * r_filt * r_filt) as f64;
    profile.psum = crate::split::psum_counts_exact(
        ofmap_words,
        shape.accumulations_per_ofmap() as f64,
        rounds,
        g_c as f64,
    );

    debug_assert!(profile.is_valid());
    Some(MappingCandidate {
        profile,
        active_pes: g_c * g_w,
        params: MappingParams::NoLocalReuse {
            g_c,
            g_w,
            ifmap_resident,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeriss_arch::energy::{EnergyModel, Level};
    use eyeriss_nn::alexnet;

    fn hw(pes: usize) -> AcceleratorConfig {
        AcceleratorConfig::under_baseline_area(pes, DataflowKind::NoLocalReuse.rf_bytes())
    }

    fn best(shape: &LayerShape, n: usize, pes: usize) -> MappingCandidate {
        let em = EnergyModel::table_iv();
        NoLocalReuseModel
            .mappings(shape, n, &hw(pes))
            .into_iter()
            .min_by(|a, b| {
                a.profile
                    .total_energy(&em)
                    .partial_cmp(&b.profile.total_energy(&em))
                    .unwrap()
            })
            .expect("NLR feasible")
    }

    #[test]
    fn no_rf_traffic_at_all() {
        let conv3 = &alexnet::conv_layers()[2].shape;
        let b = best(conv3, 16, 256);
        for c in [&b.profile.ifmap, &b.profile.filter, &b.profile.psum] {
            assert_eq!(c.rf_reads + c.rf_writes, 0.0);
        }
    }

    #[test]
    fn buffer_energy_dominates_on_chip() {
        // "Most of its data accesses come from the global buffer directly."
        let em = EnergyModel::table_iv();
        let conv2 = &alexnet::conv_layers()[1].shape;
        let b = best(conv2, 16, 256);
        let buf = b.profile.energy_at_level(&em, Level::Buffer);
        let arr = b.profile.energy_at_level(&em, Level::Array);
        assert!(buf > arr);
    }

    #[test]
    fn weights_dominate_data_energy() {
        // Fig. 12d: NLR "consumes most of its energy for weight accesses".
        use eyeriss_arch::access::DataType;
        let em = EnergyModel::table_iv();
        let conv3 = &alexnet::conv_layers()[2].shape;
        let b = best(conv3, 16, 256);
        let w = b.profile.energy_of_type(&em, DataType::Filter);
        let i = b.profile.energy_of_type(&em, DataType::Ifmap);
        let p = b.profile.energy_of_type(&em, DataType::Psum);
        assert!(w > i && w > p, "w={w:.2e} i={i:.2e} p={p:.2e}");
    }

    #[test]
    fn dram_traffic_is_low() {
        // Fig. 11: NLR sits among the low-DRAM dataflows thanks to its
        // enlarged buffer.
        let conv2 = &alexnet::conv_layers()[1].shape;
        let b = best(conv2, 16, 256);
        let per_op = b.profile.dram_accesses() / conv2.macs(16) as f64;
        assert!(per_op < 0.01, "NLR DRAM/op {per_op:.5}");
    }

    #[test]
    fn feasible_on_all_alexnet_layers() {
        for layer in alexnet::all_layers() {
            for n in [1usize, 16] {
                let b = best(&layer.shape, n, 256);
                assert!(b.active_pes > 0, "{} N={n}", layer.name);
            }
        }
    }
}
