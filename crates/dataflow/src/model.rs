//! Shared enumeration helpers.
//!
//! The old closed `DataflowModel` trait collapsed into the open
//! [`Dataflow`](crate::dataflow::Dataflow) trait (see [`crate::dataflow`]);
//! this module keeps the enumeration arithmetic the six builtin spaces
//! share. (The deprecated `model_for` shim was removed after one release;
//! use [`crate::registry::builtin`].)

/// Ceiling division for mapping-fold counts.
pub(crate) fn ceil_div(a: usize, b: usize) -> usize {
    debug_assert!(b > 0);
    a.div_ceil(b)
}

/// Candidate tiling factors for a dimension of extent `dim` under `cap`.
///
/// Uses divisors of `dim` (perfect tilings), powers of two (common
/// hardware folds) and the clamps `{1, min(dim, cap)}`, deduplicated and
/// sorted. Keeps search spaces small without losing the optima the paper's
/// framework would find.
pub(crate) fn factor_candidates(dim: usize, cap: usize) -> Vec<usize> {
    assert!(dim > 0, "dimension must be non-zero");
    let cap = cap.max(1);
    let bound = dim.min(cap);
    let mut out = Vec::new();
    // Divisors of dim up to bound.
    let mut k = 1usize;
    while k * k <= dim {
        if dim.is_multiple_of(k) {
            if k <= bound {
                out.push(k);
            }
            let other = dim / k;
            if other <= bound {
                out.push(other);
            }
        }
        k += 1;
    }
    // Powers of two up to bound.
    let mut p = 1usize;
    while p <= bound {
        out.push(p);
        p *= 2;
    }
    out.push(bound);
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_candidates_cover_divisors_and_pow2() {
        let c = factor_candidates(55, 16);
        assert!(c.contains(&1) && c.contains(&5) && c.contains(&11));
        assert!(c.contains(&8) && c.contains(&16));
        assert!(!c.contains(&55), "55 exceeds the cap");
        assert!(c.windows(2).all(|w| w[0] < w[1]), "sorted and deduped");
    }

    #[test]
    fn factor_candidates_clamped() {
        assert_eq!(factor_candidates(1, 100), vec![1]);
        let c = factor_candidates(100, 1);
        assert_eq!(c, vec![1]);
    }

    #[test]
    fn ceil_div_rounds_up() {
        assert_eq!(ceil_div(10, 3), 4);
        assert_eq!(ceil_div(9, 3), 3);
        assert_eq!(ceil_div(1, 4), 1);
    }
}
