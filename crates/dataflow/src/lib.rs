//! CNN dataflow taxonomy and mapping spaces for the Eyeriss reproduction.
//!
//! Implements Section IV (the taxonomy of existing dataflows), Section V
//! (the row-stationary dataflow) and the per-dataflow simulation models of
//! Section VI-A. Each dataflow is a parameterized *mapping space*: given a
//! layer shape, a batch size and an accelerator configuration it enumerates
//! candidate mappings, each with exact aggregate access counts per data
//! type across the four-level hierarchy. The optimizer of Section VI-C
//! (in [`search`]) picks the most energy-efficient candidate.
//!
//! | Dataflow | Data handling (Table III) | Module |
//! |----------|---------------------------|--------|
//! | RS   | all reuse types at RF; conv reuse + psum accumulation in array | [`rs`] |
//! | WS   | weights stationary in RF; psums to array/buffer | [`ws`] |
//! | OSA  | SOC-MOP: psum stationary; conv reuse in array | [`os_a`] |
//! | OSB  | MOC-MOP: psum stationary; conv + ifmap reuse in array | [`os_b`] |
//! | OSC  | MOC-SOP: psum stationary; ifmap reuse in array | [`os_c`] |
//! | NLR  | no RF; ifmap reuse + psum accumulation in array | [`nlr`] |
//!
//! # Example
//!
//! ```
//! use eyeriss_dataflow::{DataflowKind, search};
//! use eyeriss_arch::{AcceleratorConfig, EnergyModel};
//! use eyeriss_nn::LayerShape;
//!
//! let shape = LayerShape::conv(96, 3, 227, 11, 4)?; // AlexNet CONV1
//! let hw = AcceleratorConfig::under_baseline_area(256, DataflowKind::RowStationary.rf_bytes());
//! let best = search::best_mapping(DataflowKind::RowStationary, &shape, 16, &hw,
//!                                 &EnergyModel::table_iv()).unwrap();
//! assert!(best.active_pes > 0 && best.active_pes <= 256);
//! # Ok::<(), eyeriss_nn::ShapeError>(())
//! ```

pub mod candidate;
pub mod kind;
pub mod model;
pub mod nlr;
pub mod os_a;
pub mod os_b;
pub mod os_c;
pub mod rs;
pub mod search;
pub mod split;
pub mod ws;

pub use candidate::{MappingCandidate, MappingParams, ParamsMismatch};
pub use kind::DataflowKind;
pub use model::DataflowModel;
pub use split::ReuseSplit;
