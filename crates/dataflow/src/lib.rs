//! CNN dataflow taxonomy and mapping spaces for the Eyeriss reproduction.
//!
//! Implements Section IV (the taxonomy of existing dataflows), Section V
//! (the row-stationary dataflow) and the per-dataflow simulation models of
//! Section VI-A. Each dataflow is a parameterized *mapping space*: given a
//! layer shape, a batch size and an accelerator configuration it enumerates
//! candidate mappings, each with exact aggregate access counts per data
//! type across the four-level hierarchy. The optimizer of Section VI-C
//! (in [`search`]) picks the most energy-efficient candidate.
//!
//! | Dataflow | Data handling (Table III) | Module |
//! |----------|---------------------------|--------|
//! | RS   | all reuse types at RF; conv reuse + psum accumulation in array | [`rs`] |
//! | WS   | weights stationary in RF; psums to array/buffer | [`ws`] |
//! | OSA  | SOC-MOP: psum stationary; conv reuse in array | [`os_a`] |
//! | OSB  | MOC-MOP: psum stationary; conv + ifmap reuse in array | [`os_b`] |
//! | OSC  | MOC-SOP: psum stationary; ifmap reuse in array | [`os_c`] |
//! | NLR  | no RF; ifmap reuse + psum accumulation in array | [`nlr`] |
//!
//! Each mapping space implements the open [`Dataflow`] trait and is
//! looked up through the [`DataflowRegistry`]; the optimizer in
//! [`search`] is generic over `&dyn Dataflow`, so spaces registered
//! beyond the paper's six are searched without any optimizer changes.
//!
//! # Example
//!
//! ```
//! use eyeriss_dataflow::{registry, search, DataflowKind};
//! use eyeriss_dataflow::search::Objective;
//! use eyeriss_arch::TableIv;
//! use eyeriss_nn::{LayerProblem, LayerShape};
//!
//! let rs = registry::builtin(DataflowKind::RowStationary);
//! let problem = LayerProblem::new(LayerShape::conv(96, 3, 227, 11, 4)?, 16); // CONV1
//! let best = search::optimize(rs, &problem, &rs.comparison_hardware(256),
//!                             &TableIv, Objective::Energy).unwrap();
//! assert!(best.active_pes > 0 && best.active_pes <= 256);
//! # Ok::<(), eyeriss_nn::ShapeError>(())
//! ```
//!
//! The optimizer prices candidates through the open
//! [`CostModel`](eyeriss_arch::CostModel) trait the same way it maps
//! through `&dyn Dataflow`: pass any model from a
//! [`CostModelRegistry`](eyeriss_arch::CostModelRegistry) in place of
//! [`TableIv`](eyeriss_arch::TableIv) above.

pub mod candidate;
pub mod dataflow;
pub mod error;
pub mod flex;
mod grouped;
pub mod id;
pub mod kind;
pub mod model;
pub mod nlr;
pub mod os_a;
pub mod os_b;
pub mod os_c;
pub mod registry;
pub mod rs;
pub mod search;
pub mod split;
pub mod wire;
pub mod ws;

pub use candidate::{MappingCandidate, MappingParams, ParamsMismatch};
pub use dataflow::Dataflow;
pub use error::DataflowError;
pub use id::DataflowId;
pub use kind::DataflowKind;
pub use registry::DataflowRegistry;
pub use split::ReuseSplit;
