//! The dataflow taxonomy of Section IV and Table III.

use crate::id::DataflowId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the six CNN dataflows compared in the paper.
///
/// The three output-stationary variants follow the paper's renaming in
/// Section VII: SOC-MOP -> OSA, MOC-MOP -> OSB, MOC-SOP -> OSC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataflowKind {
    /// Row stationary (Section V) — the paper's contribution.
    RowStationary,
    /// Weight stationary (Section IV-A): weights pinned in PE RFs.
    WeightStationary,
    /// Output stationary, single ofmap channel / multiple ofmap pixels.
    OutputStationaryA,
    /// Output stationary, multiple ofmap channels / multiple ofmap pixels.
    OutputStationaryB,
    /// Output stationary, multiple ofmap channels / single ofmap pixel.
    OutputStationaryC,
    /// No local reuse (Section IV-C): ALU-only PEs, everything in the buffer.
    NoLocalReuse,
}

impl DataflowKind {
    /// All six dataflows in the order the paper's figures list them.
    pub const ALL: [DataflowKind; 6] = [
        DataflowKind::RowStationary,
        DataflowKind::WeightStationary,
        DataflowKind::OutputStationaryA,
        DataflowKind::OutputStationaryB,
        DataflowKind::OutputStationaryC,
        DataflowKind::NoLocalReuse,
    ];

    /// The open-world identity of this builtin dataflow — what the
    /// optimizer, memo and plan caches key on. Extensions registered
    /// through [`crate::DataflowRegistry`] coin their own ids.
    pub fn id(self) -> DataflowId {
        DataflowId::new(self.label())
    }

    /// The builtin kind carrying `label`, if any (the inverse of
    /// [`DataflowKind::label`], used when decoding persisted plans).
    pub fn from_label(label: &str) -> Option<DataflowKind> {
        DataflowKind::ALL.into_iter().find(|k| k.label() == label)
    }

    /// The figure label ("RS", "WS", "OSA", "OSB", "OSC", "NLR").
    pub fn label(self) -> &'static str {
        match self {
            DataflowKind::RowStationary => "RS",
            DataflowKind::WeightStationary => "WS",
            DataflowKind::OutputStationaryA => "OSA",
            DataflowKind::OutputStationaryB => "OSB",
            DataflowKind::OutputStationaryC => "OSC",
            DataflowKind::NoLocalReuse => "NLR",
        }
    }

    /// Per-PE register file requirement in bytes (Section VI-B).
    ///
    /// These drive the Fig. 7b storage split: RS keeps the full 512 B RF
    /// ("we fix the RF size in RS dataflow at 512B since it shows the lowest
    /// energy consumption"); WS holds a single 16-bit weight; the OS
    /// variants hold a psum accumulator plus (for A/B) a small ifmap shift
    /// window; NLR has no RF at all.
    pub fn rf_bytes(self) -> f64 {
        match self {
            DataflowKind::RowStationary => 512.0,
            DataflowKind::WeightStationary => 4.0,
            DataflowKind::OutputStationaryA => 32.0,
            DataflowKind::OutputStationaryB => 32.0,
            DataflowKind::OutputStationaryC => 4.0,
            DataflowKind::NoLocalReuse => 0.0,
        }
    }

    /// One-line data-handling summary (Table III).
    pub fn data_handling(self) -> &'static str {
        match self {
            DataflowKind::RowStationary => {
                "all reuse types and psum accumulation at RF, array and buffer"
            }
            DataflowKind::WeightStationary => {
                "maximize convolutional and filter reuse of weights in the RF"
            }
            DataflowKind::OutputStationaryA => {
                "maximize psum accumulation in RF; convolutional reuse in array"
            }
            DataflowKind::OutputStationaryB => {
                "maximize psum accumulation in RF; convolutional and ifmap reuse in array"
            }
            DataflowKind::OutputStationaryC => {
                "maximize psum accumulation in RF; ifmap reuse in array"
            }
            DataflowKind::NoLocalReuse => "psum accumulation and ifmap reuse in array",
        }
    }
}

impl fmt::Display for DataflowKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_order() {
        let labels: Vec<_> = DataflowKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels, ["RS", "WS", "OSA", "OSB", "OSC", "NLR"]);
    }

    #[test]
    fn rs_has_largest_rf_nlr_none() {
        for k in DataflowKind::ALL {
            assert!(k.rf_bytes() <= DataflowKind::RowStationary.rf_bytes());
        }
        assert_eq!(DataflowKind::NoLocalReuse.rf_bytes(), 0.0);
    }

    #[test]
    fn display_equals_label() {
        assert_eq!(DataflowKind::OutputStationaryB.to_string(), "OSB");
    }

    #[test]
    fn id_and_label_are_inverses() {
        for k in DataflowKind::ALL {
            assert_eq!(k.id().label(), k.label());
            assert_eq!(DataflowKind::from_label(k.label()), Some(k));
        }
        assert_eq!(DataflowKind::from_label("TOY"), None);
    }
}
