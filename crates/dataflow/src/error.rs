//! Typed errors of the dataflow layer.
//!
//! Everything that used to be a `panic!("wrong params variant")` or an
//! `unreachable!` on a [`crate::MappingParams`] mismatch is one of these
//! variants instead, so callers holding cached or deserialized plans can
//! report *which* dataflow disagreed rather than aborting the process.

use crate::candidate::ParamsMismatch;
use crate::id::DataflowId;
use std::fmt;

/// Why a dataflow operation could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataflowError {
    /// No dataflow with this label is registered.
    Unknown(String),
    /// A dataflow with this id is already registered.
    Duplicate(DataflowId),
    /// Mapping parameters belong to a different dataflow than the one
    /// interrogating them.
    Mismatch(ParamsMismatch),
    /// The given parameters are not in this dataflow's mapping space for
    /// the given problem.
    NoSuchMapping {
        /// The dataflow that was asked.
        dataflow: DataflowId,
        /// What was looked for.
        detail: String,
    },
    /// A candidate fails this dataflow's feasibility checks.
    InvalidCandidate {
        /// The dataflow that rejected it.
        dataflow: DataflowId,
        /// Why.
        detail: String,
    },
    /// No feasible mapping exists for a problem (the dataflow "cannot
    /// operate" at this operating point, like WS at batch 64 on 256 PEs).
    NoMapping {
        /// The dataflow that was searched.
        dataflow: DataflowId,
        /// The problem, rendered for the message.
        detail: String,
    },
}

impl fmt::Display for DataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataflowError::Unknown(label) => {
                write!(f, "no dataflow registered under {label:?}")
            }
            DataflowError::Duplicate(id) => {
                write!(f, "dataflow {id} is already registered")
            }
            DataflowError::Mismatch(m) => m.fmt(f),
            DataflowError::NoSuchMapping { dataflow, detail } => {
                write!(f, "{dataflow} has no such mapping: {detail}")
            }
            DataflowError::InvalidCandidate { dataflow, detail } => {
                write!(f, "{dataflow} rejected the candidate: {detail}")
            }
            DataflowError::NoMapping { dataflow, detail } => {
                write!(f, "{dataflow} has no feasible mapping for {detail}")
            }
        }
    }
}

impl std::error::Error for DataflowError {}

impl From<ParamsMismatch> for DataflowError {
    fn from(m: ParamsMismatch) -> Self {
        DataflowError::Mismatch(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_every_variant() {
        let id = DataflowId::new("RS");
        assert!(DataflowError::Unknown("X".into()).to_string().contains("X"));
        assert!(DataflowError::Duplicate(id).to_string().contains("RS"));
        assert!(DataflowError::NoSuchMapping {
            dataflow: id,
            detail: "p=9".into()
        }
        .to_string()
        .contains("p=9"));
        assert!(DataflowError::InvalidCandidate {
            dataflow: id,
            detail: "zero PEs".into()
        }
        .to_string()
        .contains("zero PEs"));
        assert!(DataflowError::NoMapping {
            dataflow: id,
            detail: "conv1".into()
        }
        .to_string()
        .contains("feasible"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<DataflowError>();
    }
}
