//! Reuse splits across the hierarchy and the Eq. (3)/(4) access counting.
//!
//! Section VI-C: a datum whose total reuse is `a x b x c x d` is read `a`
//! times from DRAM, `a·b` times from the buffer, `a·b·c` times across the
//! array and `a·b·c·d` times from the RF. Input data energy follows
//! Eq. (3); psum accumulation follows Eq. (4) with reads *and* writes at
//! DRAM/buffer/RF (the factor of 2) and single transfers at the array.
//!
//! Footnote 1's bypass optimization is applied structurally: a trailing run
//! of factor-1 levels (starting from the RF) is skipped, since the datum is
//! delivered directly from the deepest level that still provides reuse.

use eyeriss_arch::access::AccessCounts;

/// A reuse split `(a, b, c, d)` across DRAM, buffer, array and RF.
///
/// # Example
///
/// ```
/// use eyeriss_dataflow::ReuseSplit;
///
/// // Fig. 8's example: total reuse 24 split as 1 x 2 x 3 x 4.
/// let s = ReuseSplit::new(1.0, 2.0, 3.0, 4.0);
/// assert_eq!(s.total(), 24.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReuseSplit {
    /// DRAM-level reuse (times fetched from DRAM).
    pub a: f64,
    /// Buffer-level reuse (buffer reads per DRAM fetch).
    pub b: f64,
    /// Array-level reuse (array deliveries per buffer read; multicast width).
    pub c: f64,
    /// RF-level reuse (ALU reads per array delivery).
    pub d: f64,
}

impl ReuseSplit {
    /// Creates a split.
    ///
    /// # Panics
    ///
    /// Panics if any factor is not finite or is below 1 (every level passes
    /// a datum through at least once while it is live).
    pub fn new(a: f64, b: f64, c: f64, d: f64) -> Self {
        for (name, v) in [("a", a), ("b", b), ("c", c), ("d", d)] {
            assert!(
                v.is_finite() && v >= 1.0,
                "reuse factor {name} = {v} must be >= 1"
            );
        }
        ReuseSplit { a, b, c, d }
    }

    /// Total reuse `a·b·c·d`.
    pub fn total(&self) -> f64 {
        self.a * self.b * self.c * self.d
    }

    /// Access counts for `unique` input data values under Eq. (3).
    ///
    /// Charges, per datum: `a` DRAM reads, `a·b` buffer reads, `a·b·c`
    /// array hops and `a·b·c·d` RF reads — suppressing a trailing run of
    /// factor-1 levels (bypass). The DRAM term is always charged: every
    /// datum enters the chip at least `a` times.
    pub fn input_counts(&self, unique: f64) -> AccessCounts {
        assert!(unique >= 0.0 && unique.is_finite(), "invalid unique count");
        let mut out = AccessCounts::new();
        out.dram_reads = unique * self.a;
        // Deepest level (towards RF) with factor > 1 stays on the delivery
        // path; everything past it is bypassed.
        let use_rf = self.d > 1.0;
        let use_array = use_rf || self.c > 1.0;
        let use_buffer = use_array || self.b > 1.0;
        if use_buffer {
            out.buffer_reads = unique * self.a * self.b;
        }
        if use_array {
            out.array_hops = unique * self.a * self.b * self.c;
        }
        if use_rf {
            out.rf_reads = unique * self.a * self.b * self.c * self.d;
        }
        out
    }

    /// Access counts for `unique` output values whose accumulation chain is
    /// split as this reuse split, under Eq. (4).
    ///
    /// Charges, per ofmap value: `2a - 1` DRAM accesses (the paper's
    /// experiments pin `a = 1`: one final write), `2a(b-1)` buffer accesses,
    /// `ab(c-1)` array hops and `2abc(d-1)` RF accesses. Reads and writes
    /// are split evenly where the factor of 2 applies.
    pub fn psum_counts(&self, unique: f64) -> AccessCounts {
        assert!(unique >= 0.0 && unique.is_finite(), "invalid unique count");
        let mut out = AccessCounts::new();
        // 2a - 1: a writes and a - 1 read-backs; with a = 1 this is the
        // single final ofmap write.
        out.dram_writes = unique * self.a;
        out.dram_reads = unique * (self.a - 1.0);
        let buf = unique * self.a * (self.b - 1.0);
        out.buffer_writes = buf;
        out.buffer_reads = buf;
        out.array_hops = unique * self.a * self.b * (self.c - 1.0);
        let rf = unique * self.a * self.b * self.c * (self.d - 1.0);
        out.rf_writes = rf;
        out.rf_reads = rf;
        out
    }
}

/// Exact psum accounting for mappings whose fold counts have ceiling
/// slack (`b·c·d >= total` but not equal).
///
/// `total` is the exact accumulation chain length per output value
/// (`C·R²`), `b` the buffer-level folds (channel-group rounds) and `c` the
/// spatial chain length per round. Each output sees `min(b·c, total)` PE
/// residencies; every residency after the first in a round is one array
/// transfer, the remaining `total - residencies` accumulations are RF
/// read-modify-writes, and `b - 1` rounds spill through the buffer.
/// Degenerates to Eq. (4) with `a = 1` when `b·c·d = total` exactly.
pub fn psum_counts_exact(unique: f64, total: f64, b: f64, c: f64) -> AccessCounts {
    assert!(unique >= 0.0 && unique.is_finite(), "invalid unique count");
    assert!(total >= 1.0 && b >= 1.0 && c >= 1.0, "invalid psum split");
    let residencies = (b * c).min(total);
    let mut out = AccessCounts::new();
    out.dram_writes = unique;
    let buf = unique * (b - 1.0);
    out.buffer_writes = buf;
    out.buffer_reads = buf;
    out.array_hops = unique * (residencies - b).max(0.0);
    let rf = unique * (total - residencies).max(0.0);
    out.rf_reads = rf;
    out.rf_writes = rf;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeriss_arch::energy::EnergyModel;
    use proptest::prelude::*;

    #[test]
    fn fig8_example_input_energy() {
        // Fig. 8: reuse 24 = 1 x 2 x 3 x 4. Eq. (3):
        // 1*200 + 2*6 + 6*2 + 24*1 = 248 per datum.
        let s = ReuseSplit::new(1.0, 2.0, 3.0, 4.0);
        let e = s.input_counts(1.0).energy(&EnergyModel::table_iv());
        assert_eq!(e, 200.0 + 12.0 + 12.0 + 24.0);
    }

    #[test]
    fn fig9_example_psum_energy() {
        // Fig. 9: accumulation 36 = 2 x 3 x 3 x 2. Eq. (4):
        // (2*2-1)*200 + 2*2*(3-1)*6 + 2*3*(3-1)*2 + 2*2*3*3*(2-1)*1
        // = 600 + 48 + 24 + 36 = 708.
        let s = ReuseSplit::new(2.0, 3.0, 3.0, 2.0);
        let e = s.psum_counts(1.0).energy(&EnergyModel::table_iv());
        assert_eq!(e, 708.0);
    }

    #[test]
    fn bypass_drops_trailing_levels() {
        // d = 1: data goes straight from the array to the ALU (footnote 1).
        let s = ReuseSplit::new(1.0, 2.0, 3.0, 1.0);
        let c = s.input_counts(10.0);
        assert_eq!(c.rf_reads, 0.0);
        assert_eq!(c.array_hops, 60.0);

        // c = d = 1: straight from the buffer.
        let s = ReuseSplit::new(1.0, 2.0, 1.0, 1.0);
        let c = s.input_counts(10.0);
        assert_eq!(c.array_hops, 0.0);
        assert_eq!(c.buffer_reads, 20.0);

        // b = c = d = 1: DRAM only.
        let s = ReuseSplit::new(3.0, 1.0, 1.0, 1.0);
        let c = s.input_counts(10.0);
        assert_eq!(c.buffer_reads, 0.0);
        assert_eq!(c.dram_reads, 30.0);
    }

    #[test]
    fn inner_ones_are_not_bypassed() {
        // b = 1 but d > 1: buffer and array are still on the delivery path.
        let s = ReuseSplit::new(1.0, 1.0, 1.0, 5.0);
        let c = s.input_counts(2.0);
        assert_eq!(c.buffer_reads, 2.0);
        assert_eq!(c.array_hops, 2.0);
        assert_eq!(c.rf_reads, 10.0);
    }

    #[test]
    fn psum_with_all_ones_is_single_write() {
        let s = ReuseSplit::new(1.0, 1.0, 1.0, 1.0);
        let c = s.psum_counts(7.0);
        assert_eq!(c.dram_writes, 7.0);
        assert_eq!(c.dram_reads, 0.0);
        assert_eq!(c.buffer_reads + c.buffer_writes, 0.0);
        assert_eq!(c.array_hops, 0.0);
        assert_eq!(c.rf_reads + c.rf_writes, 0.0);
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn rejects_sub_one_factor() {
        let _ = ReuseSplit::new(1.0, 0.5, 1.0, 1.0);
    }

    #[test]
    fn exact_psum_matches_eq4_without_slack() {
        // b*c*d = total exactly -> identical to ReuseSplit::psum_counts.
        let (b, c, d) = (3.0, 11.0, 11.0);
        let total = b * c * d;
        let via_eq4 = ReuseSplit::new(1.0, b, c, d).psum_counts(5.0);
        let exact = psum_counts_exact(5.0, total, b, c);
        assert_eq!(via_eq4, exact);
    }

    #[test]
    fn exact_psum_caps_phantom_accumulations() {
        // Ceil slack: b*c = 44 residencies but only 363 real accumulations.
        let exact = psum_counts_exact(1.0, 363.0, 2.0, 22.0);
        assert_eq!(exact.rf_reads, 363.0 - 44.0);
        assert_eq!(exact.array_hops, 42.0);
        // Degenerate: more residencies than accumulations never goes
        // negative.
        let degenerate = psum_counts_exact(1.0, 10.0, 4.0, 100.0);
        assert_eq!(degenerate.rf_reads, 0.0);
        assert!(degenerate.is_valid());
    }

    proptest! {
        #[test]
        fn prop_exact_psum_valid(total in 1.0f64..5000.0, b in 1.0f64..60.0,
                                 c in 1.0f64..400.0, u in 0.0f64..1e6) {
            prop_assert!(psum_counts_exact(u, total, b, c).is_valid());
        }

        #[test]
        fn prop_input_counts_valid(a in 1.0f64..10.0, b in 1.0f64..10.0,
                                   c in 1.0f64..10.0, d in 1.0f64..10.0,
                                   u in 0.0f64..1e6) {
            let s = ReuseSplit::new(a, b, c, d);
            prop_assert!(s.input_counts(u).is_valid());
            prop_assert!(s.psum_counts(u).is_valid());
        }

        #[test]
        fn prop_more_rf_reuse_less_energy(d1 in 2.0f64..50.0, d2 in 2.0f64..50.0) {
            // Holding total reuse fixed, moving reuse from the buffer level
            // into the RF level can never increase energy (once the RF is
            // on the delivery path at all, i.e. d > 1; right at the bypass
            // boundary adding the RF/array hop costs more than it saves).
            prop_assume!(d1 < d2);
            let total = 100.0;
            let m = EnergyModel::table_iv();
            let hi = ReuseSplit::new(1.0, total / d1, 1.0, d1).input_counts(1.0).energy(&m);
            let lo = ReuseSplit::new(1.0, total / d2, 1.0, d2).input_counts(1.0).energy(&m);
            prop_assert!(lo <= hi + 1e-9);
        }
    }
}
