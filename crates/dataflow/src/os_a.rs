//! The SOC-MOP output-stationary dataflow (OSA, Section IV-B).
//!
//! # Mapping model
//!
//! OSA dedicates the array to a single ofmap plane at a time (Fig. 3a):
//! an `e_x x e_y` tile of ofmap pixels, each pinned to one PE whose RF
//! accumulates the full `C·R²` chain in place. Ifmap pixels are shifted
//! between neighbouring PEs for convolutional reuse (the ShiDianNao \[23\]
//! style); the current weight is broadcast to every PE. `n_par` images may
//! be processed by disjoint tile regions in parallel when the plane is
//! smaller than the array — which is also OSA's weakness: at batch 1 the
//! active PE count is capped at `E²`, and FC layers (`E = 1`) degenerate
//! entirely ("OSA runs FC layers very poorly because its mapping requires
//! ifmap pixels from the same spatial plane").

use crate::candidate::{MappingCandidate, MappingParams};
use crate::dataflow::Dataflow;
use crate::id::DataflowId;
use crate::kind::DataflowKind;
use crate::model::{ceil_div, factor_candidates};
use crate::split::ReuseSplit;
use eyeriss_arch::access::LayerAccessProfile;
use eyeriss_arch::config::AcceleratorConfig;
use eyeriss_nn::{LayerProblem, LayerShape};

/// The SOC-MOP mapping space.
#[derive(Debug, Clone, Copy, Default)]
pub struct OutputStationaryAModel;

impl Dataflow for OutputStationaryAModel {
    fn id(&self) -> DataflowId {
        DataflowKind::OutputStationaryA.id()
    }

    fn rf_bytes(&self) -> f64 {
        DataflowKind::OutputStationaryA.rf_bytes()
    }

    fn enumerate(&self, problem: &LayerProblem, hw: &AcceleratorConfig) -> Vec<MappingCandidate> {
        crate::grouped::lower(problem, |shape, n| self.mappings(shape, n, hw))
    }
}

impl OutputStationaryAModel {
    /// Enumerates feasible mappings of `shape` at batch `n_batch` on `hw`
    /// (the explicit-arguments form of [`Dataflow::enumerate`]).
    pub fn mappings(
        &self,
        shape: &LayerShape,
        n_batch: usize,
        hw: &AcceleratorConfig,
    ) -> Vec<MappingCandidate> {
        let (ah, aw) = (hw.grid.rows, hw.grid.cols);
        let buf_words = hw.buffer_words();
        let pes = hw.num_pes();
        let mut out = Vec::new();
        for &e_x in &factor_candidates(shape.e, ah) {
            for &e_y in &factor_candidates(shape.e, aw) {
                let tile = e_x * e_y;
                for &n_par in &factor_candidates(n_batch, pes / tile) {
                    for residency in [
                        IfmapResidency::Plane,
                        IfmapResidency::Band,
                        IfmapResidency::Tile,
                    ] {
                        if let Some(c) =
                            evaluate(shape, n_batch, e_x, e_y, n_par, residency, buf_words)
                        {
                            out.push(c);
                        }
                    }
                }
            }
        }
        out
    }
}

/// How much of the ifmap stays buffer-resident between tile visits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IfmapResidency {
    /// Whole image planes stay resident: each ifmap word enters once.
    Plane,
    /// A horizontal band covering one tile row stays resident: vertical
    /// halo rows are refetched per band.
    Band,
    /// Only the current tile's receptive region is staged: every window
    /// overlap is refetched (the fallback when the buffer is small).
    Tile,
}

fn evaluate(
    shape: &LayerShape,
    n_batch: usize,
    e_x: usize,
    e_y: usize,
    n_par: usize,
    residency: IfmapResidency,
    buf_words: usize,
) -> Option<MappingCandidate> {
    let (c_dim, h, r_filt, e_dim, u) = (shape.c, shape.h, shape.r, shape.e, shape.u);
    let tiles = ceil_div(e_dim, e_x) * ceil_div(e_dim, e_y);
    let band_rows = (e_x.min(e_dim) - 1) * u + r_filt;
    let region = band_rows * ((e_y - 1) * u + r_filt);

    // One filter's plane stack (C·R² words) always sits in the buffer.
    let filter_tile = c_dim * r_filt * r_filt;
    let ifmap_tile = match residency {
        IfmapResidency::Plane => n_par * c_dim * h * h,
        IfmapResidency::Band => n_par * c_dim * band_rows * h,
        IfmapResidency::Tile => n_par * c_dim * region,
    };
    if filter_tile + ifmap_tile > buf_words {
        return None;
    }

    let macs = shape.macs(n_batch) as f64;
    let filter_words = shape.filter_words() as f64;
    let ofmap_words = shape.ofmap_words(n_batch) as f64;
    let batch_groups = ceil_div(n_batch, n_par) as f64;

    let mut profile = LayerAccessProfile::new();
    profile.alu_ops = macs;

    // ---- psums: fully stationary in the RF --------------------------------
    let psplit = ReuseSplit::new(1.0, 1.0, 1.0, shape.accumulations_per_ofmap() as f64);
    profile.psum = psplit.psum_counts(ofmap_words);

    // ---- filters: buffer-resident per filter, broadcast to the tile -------
    // Loop order: batch group -> filter -> tile, so each filter's plane is
    // refetched once per batch group — unless the whole filter bank fits
    // next to the resident ifmaps.
    let whole_bank_resident = shape.filter_words() as usize + ifmap_tile <= buf_words;
    profile.filter.dram_reads = if whole_bank_resident {
        filter_words
    } else {
        filter_words * batch_groups
    };
    profile.filter.buffer_reads = filter_words * batch_groups * tiles as f64;
    profile.filter.array_hops = macs; // one broadcast delivery per use

    // ---- ifmaps: tile regions from the buffer, shifted between PEs --------
    let visits = shape.m as f64 * batch_groups * n_par as f64 * tiles as f64;
    profile.ifmap.buffer_reads = visits * (c_dim * region) as f64;
    profile.ifmap.array_hops = macs; // neighbour shifts deliver each operand
    profile.ifmap.dram_reads = match residency {
        // Plane loaded once per image, reused across all M filters.
        IfmapResidency::Plane => shape.ifmap_words(n_batch) as f64,
        // Bands loaded once per image with vertical halo overlap, reused
        // across all M filters and all tiles in the band.
        IfmapResidency::Band => {
            shape.ifmap_words(n_batch) as f64 * shape.strip_refetch_factor(e_x.min(e_dim))
        }
        IfmapResidency::Tile => profile.ifmap.buffer_reads,
    };

    debug_assert!(profile.is_valid());
    Some(MappingCandidate {
        profile,
        active_pes: e_x * e_y * n_par,
        params: MappingParams::OutputStationaryA { e_x, e_y, n_par },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeriss_arch::energy::EnergyModel;
    use eyeriss_nn::alexnet;

    fn hw(pes: usize) -> AcceleratorConfig {
        AcceleratorConfig::under_baseline_area(pes, DataflowKind::OutputStationaryA.rf_bytes())
    }

    fn best(shape: &LayerShape, n: usize, pes: usize) -> MappingCandidate {
        let em = EnergyModel::table_iv();
        OutputStationaryAModel
            .mappings(shape, n, &hw(pes))
            .into_iter()
            .min_by(|a, b| {
                a.profile
                    .total_energy(&em)
                    .partial_cmp(&b.profile.total_energy(&em))
                    .unwrap()
            })
            .expect("OSA feasible")
    }

    #[test]
    fn psums_never_leave_the_rf() {
        let conv3 = &alexnet::conv_layers()[2].shape;
        let b = best(conv3, 16, 256);
        assert_eq!(b.profile.psum.buffer_reads, 0.0);
        assert_eq!(b.profile.psum.array_hops, 0.0);
        assert_eq!(b.profile.psum.dram_writes, conv3.ofmap_words(16) as f64);
        // RF psum traffic ~ 2 accesses per MAC.
        let macs = conv3.macs(16) as f64;
        let rf = b.profile.psum.rf_reads + b.profile.psum.rf_writes;
        assert!(rf > 1.9 * macs * (1.0 - 1e-3) && rf <= 2.0 * macs);
    }

    #[test]
    fn active_pes_capped_by_plane_at_batch_1() {
        // CONV5: E=13, so at batch 1 at most 169 PEs can be active even on
        // a 1024-PE array — the root of OSA's high EDP in Fig. 13c.
        let conv5 = &alexnet::conv_layers()[4].shape;
        for c in OutputStationaryAModel.mappings(conv5, 1, &hw(1024)) {
            assert!(c.active_pes <= 13 * 13);
        }
    }

    #[test]
    fn fc_layers_degenerate() {
        // E = 1: a single pixel per image; utilization is n_par at best.
        let fc2 = &alexnet::fc_layers()[1].shape;
        for c in OutputStationaryAModel.mappings(fc2, 16, &hw(1024)) {
            assert!(c.active_pes <= 16);
        }
    }

    #[test]
    fn batch_parallelism_raises_utilization() {
        let conv5 = &alexnet::conv_layers()[4].shape;
        let b = best(conv5, 16, 1024);
        let b1 = best(conv5, 1, 1024);
        assert!(b.active_pes >= b1.active_pes);
    }

    #[test]
    fn plane_residency_cuts_dram() {
        let conv2 = &alexnet::conv_layers()[1].shape;
        let cands = OutputStationaryAModel.mappings(conv2, 16, &hw(256));
        let resident_min = cands
            .iter()
            .map(|c| c.profile.ifmap.dram_reads)
            .fold(f64::INFINITY, f64::min);
        // The resident option reads each ifmap word exactly once.
        assert_eq!(resident_min, conv2.ifmap_words(16) as f64);
    }
}
