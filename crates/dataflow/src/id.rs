//! Open-world dataflow identity.
//!
//! [`crate::DataflowKind`] is the paper's *closed* taxonomy — exactly the
//! six dataflows of Table III, used wherever figures are reproduced.
//! [`DataflowId`] is the *open* identity the optimizer, the cluster
//! planner and the serving plan cache key on: any type implementing
//! [`crate::Dataflow`] names itself with one, so new dataflows (a
//! v2-style flexible RS, a serial-accumulation variant) participate in
//! every search and cache without the core crates learning their names.

use std::fmt;
use std::hash::{Hash, Hasher};

/// Stable identity of a dataflow mapping space.
///
/// Compares and hashes by label *content*, so two ids built from equal
/// strings are interchangeable as cache keys.
///
/// # Example
///
/// ```
/// use eyeriss_dataflow::{DataflowId, DataflowKind};
///
/// const TOY: DataflowId = DataflowId::new("TOY");
/// assert_eq!(TOY.label(), "TOY");
/// assert_ne!(TOY, DataflowKind::RowStationary.id());
/// assert_eq!(DataflowKind::RowStationary.id(), DataflowId::new("RS"));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DataflowId(&'static str);

impl DataflowId {
    /// Creates an id from a static label.
    ///
    /// Labels are the serialization format of the id (plan caches store
    /// them on disk), so pick short, stable, unique names.
    pub const fn new(label: &'static str) -> Self {
        DataflowId(label)
    }

    /// The id's label.
    pub fn label(&self) -> &'static str {
        self.0
    }
}

impl PartialEq for DataflowId {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl Eq for DataflowId {}

impl Hash for DataflowId {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl fmt::Display for DataflowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn equality_is_by_content() {
        // Two ids from different string constants with equal content.
        let a = DataflowId::new("RS");
        let b = DataflowId::new(stringify!(RS));
        assert_eq!(a, b);
        let mut map = HashMap::new();
        map.insert(a, 1);
        assert_eq!(map.get(&b), Some(&1));
    }

    #[test]
    fn display_is_the_label() {
        assert_eq!(DataflowId::new("OSB").to_string(), "OSB");
    }
}
