//! Candidate mappings produced by the dataflow models.

use crate::id::DataflowId;
use crate::kind::DataflowKind;
use eyeriss_arch::access::LayerAccessProfile;
use std::fmt;

/// A [`MappingParams`] value was interrogated as the wrong dataflow's
/// variant. Carrying both sides lets callers (e.g. a serving worker
/// validating a cached plan) report the mismatch instead of aborting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamsMismatch {
    /// The dataflow the caller asked for.
    pub expected: DataflowId,
    /// The dataflow the candidate actually carries.
    pub actual: DataflowId,
}

impl fmt::Display for ParamsMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mapping params are {} but {} was requested",
            self.actual, self.expected
        )
    }
}

impl std::error::Error for ParamsMismatch {}

/// The mapping parameters of a candidate, for display and debugging.
///
/// Each variant carries the dataflow-specific knobs described in the module
/// docs of [`crate::rs`], [`crate::ws`], etc.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingParams {
    /// Row stationary: images `n`, filters/PE `p`, channels/PE `q`,
    /// strip width `e`, vertical sets `r`, horizontal sets `t`, and whether
    /// filters (rather than ifmaps) are the buffer-resident data type.
    RowStationary {
        /// Images interleaved per pass.
        n: usize,
        /// Filters interleaved per PE.
        p: usize,
        /// Channels interleaved per PE.
        q: usize,
        /// Ofmap rows per logical-set strip.
        e: usize,
        /// Logical sets stacked vertically (channel groups).
        r: usize,
        /// Logical sets stacked horizontally (filter groups).
        t: usize,
        /// Buffer residency: `true` keeps the pass's filter group resident
        /// across batch/strip loops, `false` keeps the ifmap strip resident
        /// across filter groups.
        filter_resident: bool,
    },
    /// Weight stationary: parallel filter planes `g_m` and channel planes
    /// `g_c` (each occupying an RxR PE block).
    WeightStationary {
        /// Filter planes mapped in parallel.
        g_m: usize,
        /// Channel planes mapped in parallel.
        g_c: usize,
    },
    /// OSA (SOC-MOP): ofmap tile `e_x x e_y` and images in parallel.
    OutputStationaryA {
        /// Ofmap tile height.
        e_x: usize,
        /// Ofmap tile width.
        e_y: usize,
        /// Images processed in parallel.
        n_par: usize,
    },
    /// OSB (MOC-MOP): parallel ofmap channels and 1-D pixel strip length.
    OutputStationaryB {
        /// Ofmap channels in parallel.
        o_m: usize,
        /// Ofmap pixels per 1-D strip.
        o_p: usize,
    },
    /// OSC (MOC-SOP): parallel ofmap channels and images.
    OutputStationaryC {
        /// Ofmap channels in parallel.
        o_m: usize,
        /// Images processed in parallel.
        n_par: usize,
    },
    /// NLR: channel groups `g_c`, filters per group `g_w`, and whether the
    /// ifmap plane is buffer-resident.
    NoLocalReuse {
        /// PE groups reading different input channels.
        g_c: usize,
        /// PEs per group (different filters, shared ifmap broadcast).
        g_w: usize,
        /// Whether a full ifmap plane stays resident in the buffer.
        ifmap_resident: bool,
    },
    /// Knobs of a dataflow registered *outside* the paper's taxonomy
    /// (a [`crate::Dataflow`] implementation beyond the builtin six).
    /// Up to four generic knobs, interpreted by the owning dataflow.
    Custom {
        /// The owning dataflow's identity.
        id: DataflowId,
        /// Dataflow-specific knob values.
        knobs: [usize; 4],
    },
}

impl MappingParams {
    /// The identity of the dataflow whose knobs this value carries.
    pub fn dataflow(&self) -> DataflowId {
        match self {
            MappingParams::Custom { id, .. } => *id,
            other => other
                .kind()
                .expect("every non-custom variant maps to a builtin kind")
                .id(),
        }
    }

    /// The builtin [`DataflowKind`] of this variant, or `None` for
    /// [`MappingParams::Custom`] params of a registered extension.
    pub fn kind(&self) -> Option<DataflowKind> {
        match self {
            MappingParams::RowStationary { .. } => Some(DataflowKind::RowStationary),
            MappingParams::WeightStationary { .. } => Some(DataflowKind::WeightStationary),
            MappingParams::OutputStationaryA { .. } => Some(DataflowKind::OutputStationaryA),
            MappingParams::OutputStationaryB { .. } => Some(DataflowKind::OutputStationaryB),
            MappingParams::OutputStationaryC { .. } => Some(DataflowKind::OutputStationaryC),
            MappingParams::NoLocalReuse { .. } => Some(DataflowKind::NoLocalReuse),
            MappingParams::Custom { .. } => None,
        }
    }

    /// Checks that the params belong to `expected`, returning the typed
    /// [`ParamsMismatch`] otherwise — the non-panicking alternative to
    /// destructuring a single variant with a `panic!` fallback.
    pub fn expect_dataflow(&self, expected: DataflowId) -> Result<&MappingParams, ParamsMismatch> {
        let actual = self.dataflow();
        if actual == expected {
            Ok(self)
        } else {
            Err(ParamsMismatch { expected, actual })
        }
    }

    /// [`MappingParams::expect_dataflow`] keyed by the closed taxonomy.
    pub fn expect_kind(&self, expected: DataflowKind) -> Result<&MappingParams, ParamsMismatch> {
        self.expect_dataflow(expected.id())
    }
}

impl fmt::Display for MappingParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MappingParams::RowStationary {
                n,
                p,
                q,
                e,
                r,
                t,
                filter_resident,
            } => write!(
                f,
                "RS(n={n}, p={p}, q={q}, e={e}, r={r}, t={t}, resident={})",
                if filter_resident { "filter" } else { "ifmap" }
            ),
            MappingParams::WeightStationary { g_m, g_c } => {
                write!(f, "WS(g_m={g_m}, g_c={g_c})")
            }
            MappingParams::OutputStationaryA { e_x, e_y, n_par } => {
                write!(f, "OSA(e_x={e_x}, e_y={e_y}, n_par={n_par})")
            }
            MappingParams::OutputStationaryB { o_m, o_p } => {
                write!(f, "OSB(o_m={o_m}, o_p={o_p})")
            }
            MappingParams::OutputStationaryC { o_m, n_par } => {
                write!(f, "OSC(o_m={o_m}, n_par={n_par})")
            }
            MappingParams::NoLocalReuse {
                g_c,
                g_w,
                ifmap_resident,
            } => write!(
                f,
                "NLR(g_c={g_c}, g_w={g_w}, ifmap_resident={ifmap_resident})"
            ),
            MappingParams::Custom { id, knobs } => {
                write!(
                    f,
                    "{id}(k0={}, k1={}, k2={}, k3={})",
                    knobs[0], knobs[1], knobs[2], knobs[3]
                )
            }
        }
    }
}

/// One feasible mapping of a layer onto the accelerator: its exact access
/// profile, how many PEs it keeps busy, and the parameters that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingCandidate {
    /// Exact aggregate access counts for the whole layer.
    pub profile: LayerAccessProfile,
    /// PEs doing useful work (drives the EDP delay term, Section VII-B).
    pub active_pes: usize,
    /// The mapping parameters.
    pub params: MappingParams,
}

impl MappingCandidate {
    /// Delay proxy: total MACs divided by active PEs ("the delay is
    /// calculated as the reciprocal of number of active PEs" at fixed work).
    pub fn delay(&self) -> f64 {
        self.profile.alu_ops / self.active_pes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_every_knob() {
        let p = MappingParams::RowStationary {
            n: 1,
            p: 2,
            q: 3,
            e: 4,
            r: 5,
            t: 6,
            filter_resident: true,
        };
        let s = p.to_string();
        for needle in ["n=1", "p=2", "q=3", "e=4", "r=5", "t=6", "filter"] {
            assert!(s.contains(needle), "{s} missing {needle}");
        }
    }

    #[test]
    fn kind_matches_variant() {
        let p = MappingParams::OutputStationaryC { o_m: 4, n_par: 2 };
        assert_eq!(p.kind(), Some(DataflowKind::OutputStationaryC));
        assert_eq!(p.dataflow(), DataflowKind::OutputStationaryC.id());
        assert!(p.expect_kind(DataflowKind::OutputStationaryC).is_ok());
    }

    #[test]
    fn expect_kind_mismatch_is_a_typed_error() {
        let p = MappingParams::WeightStationary { g_m: 2, g_c: 3 };
        let err = p.expect_kind(DataflowKind::RowStationary).unwrap_err();
        assert_eq!(err.expected, DataflowKind::RowStationary.id());
        assert_eq!(err.actual, DataflowKind::WeightStationary.id());
        assert!(err.to_string().contains("WS"));
    }

    #[test]
    fn custom_params_carry_an_open_identity() {
        let toy = DataflowId::new("TOY");
        let p = MappingParams::Custom {
            id: toy,
            knobs: [1, 2, 3, 4],
        };
        assert_eq!(p.kind(), None);
        assert_eq!(p.dataflow(), toy);
        assert!(p.expect_dataflow(toy).is_ok());
        let err = p
            .expect_dataflow(DataflowKind::RowStationary.id())
            .unwrap_err();
        assert_eq!(err.actual, toy);
        let s = p.to_string();
        assert!(s.contains("TOY") && s.contains("k2=3"), "{s}");
    }

    #[test]
    fn delay_scales_inverse_active_pes() {
        let mut profile = LayerAccessProfile::new();
        profile.alu_ops = 1000.0;
        let c1 = MappingCandidate {
            profile,
            active_pes: 10,
            params: MappingParams::OutputStationaryC { o_m: 10, n_par: 1 },
        };
        let c2 = MappingCandidate {
            active_pes: 100,
            ..c1.clone()
        };
        assert_eq!(c1.delay(), 100.0);
        assert_eq!(c2.delay(), 10.0);
    }
}
