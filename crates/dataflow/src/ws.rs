//! The weight-stationary (WS) dataflow (Section IV-A).
//!
//! # Mapping model
//!
//! `R x R` weights of one filter/channel plane are pinned to an `R x R`
//! block of PEs; `g_m` filter planes and `g_c` channel planes are mapped
//! across the available blocks. Ifmap pixels are broadcast to every block
//! sequentially and the psums accumulate spatially across the `R²·g_c` PEs
//! that share an ofmap pixel, then fold through the buffer for the
//! remaining `ceil(C/g_c)` channel rounds.
//!
//! By definition, "once a weight is fetched from DRAM to the RF of a PE,
//! the PE runs through all `N·E²` operations that use the same filter
//! weight" — so the whole batch's psums (`N·g_m·E²` values) must stay live
//! in the global buffer across channel rounds. When even `g_m = 1` does
//! not fit, WS **cannot operate** (the missing batch-64 bar of Fig. 11a).

use crate::candidate::{MappingCandidate, MappingParams};
use crate::dataflow::Dataflow;
use crate::id::DataflowId;
use crate::kind::DataflowKind;
use crate::model::{ceil_div, factor_candidates};
use eyeriss_arch::access::LayerAccessProfile;
use eyeriss_arch::config::AcceleratorConfig;
use eyeriss_nn::{LayerProblem, LayerShape};

/// The weight-stationary mapping space.
#[derive(Debug, Clone, Copy, Default)]
pub struct WeightStationaryModel;

impl Dataflow for WeightStationaryModel {
    fn id(&self) -> DataflowId {
        DataflowKind::WeightStationary.id()
    }

    fn rf_bytes(&self) -> f64 {
        DataflowKind::WeightStationary.rf_bytes()
    }

    fn enumerate(&self, problem: &LayerProblem, hw: &AcceleratorConfig) -> Vec<MappingCandidate> {
        crate::grouped::lower(problem, |shape, n| self.mappings(shape, n, hw))
    }
}

impl WeightStationaryModel {
    /// Enumerates feasible mappings of `shape` at batch `n_batch` on `hw`
    /// (the explicit-arguments form of [`Dataflow::enumerate`]).
    pub fn mappings(
        &self,
        shape: &LayerShape,
        n_batch: usize,
        hw: &AcceleratorConfig,
    ) -> Vec<MappingCandidate> {
        // R x R weight blocks pack geometrically into the grid; leftover
        // strips narrower than R are unusable.
        let blocks = (hw.grid.rows / shape.r) * (hw.grid.cols / shape.r);
        if blocks == 0 {
            return Vec::new();
        }
        let buf_words = hw.buffer_words();
        let mut out = Vec::new();
        for &g_m in &factor_candidates(shape.m, blocks) {
            for &g_c in &factor_candidates(shape.c, blocks / g_m) {
                if let Some(cand) = evaluate(shape, n_batch, g_m, g_c, buf_words) {
                    out.push(cand);
                }
            }
        }
        out
    }
}

fn evaluate(
    shape: &LayerShape,
    n_batch: usize,
    g_m: usize,
    g_c: usize,
    buf_words: usize,
) -> Option<MappingCandidate> {
    let (m_dim, c_dim, h, r_filt, e_dim) = (shape.m, shape.c, shape.h, shape.r, shape.e);
    let rounds = ceil_div(c_dim, g_c);

    // Feasibility: across channel rounds every in-flight psum of the whole
    // batch must live in the buffer, alongside one streaming ifmap row per
    // active channel.
    if rounds > 1 {
        let psum_tile = n_batch * g_m * e_dim * e_dim;
        let stream_tile = g_c * h;
        if psum_tile + stream_tile > buf_words {
            return None;
        }
    }

    let macs = shape.macs(n_batch) as f64;
    let filter_words = shape.filter_words() as f64;
    let ofmap_words = shape.ofmap_words(n_batch) as f64;
    let m_groups = ceil_div(m_dim, g_m) as f64;

    let mut profile = LayerAccessProfile::new();
    profile.alu_ops = macs;

    // ---- filters: DRAM -> RF once, then N·E² stationary uses -------------
    profile.filter.dram_reads = filter_words;
    profile.filter.array_hops = filter_words; // one delivery to its PE
    profile.filter.rf_reads = macs;
    profile.filter.rf_writes = filter_words;

    // ---- ifmaps: streamed and broadcast, no RF reuse ----------------------
    // Each weight-set swap re-streams the ifmap channels it needs; over all
    // channel rounds that is one full pass per filter group.
    let stream_words = m_groups * shape.ifmap_words(n_batch) as f64;
    profile.ifmap.dram_reads = stream_words;
    profile.ifmap.buffer_reads = stream_words;
    // Every MAC receives its ifmap operand over the array broadcast.
    profile.ifmap.array_hops = macs;

    // ---- psums: spatial chains of R²·g_c, buffer-folded over rounds ------
    // No RF accumulation (Table III): every accumulation is either an
    // array transfer along the chain or a buffer round trip.
    profile.psum = crate::split::psum_counts_exact(
        ofmap_words,
        shape.accumulations_per_ofmap() as f64,
        rounds as f64,
        (r_filt * r_filt * g_c) as f64,
    );

    debug_assert!(profile.is_valid());
    Some(MappingCandidate {
        profile,
        active_pes: g_m * g_c * r_filt * r_filt,
        params: MappingParams::WeightStationary { g_m, g_c },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeriss_nn::alexnet;

    fn hw(pes: usize) -> AcceleratorConfig {
        AcceleratorConfig::under_baseline_area(pes, DataflowKind::WeightStationary.rf_bytes())
    }

    #[test]
    fn infeasible_on_conv1_at_batch_64_with_256_pes() {
        // Fig. 11a: "WS cannot even operate due to the global buffer being
        // too small for a batch size of 64". CONV1 psums: 64 x 55^2 words
        // exceed even WS's enlarged buffer.
        let conv1 = &alexnet::conv_layers()[0].shape;
        assert!(
            WeightStationaryModel
                .mappings(conv1, 64, &hw(256))
                .is_empty(),
            "CONV1 must be infeasible at N=64 on 256 PEs"
        );
    }

    #[test]
    fn feasible_on_conv1_at_batch_16_with_256_pes() {
        let conv1 = &alexnet::conv_layers()[0].shape;
        assert!(!WeightStationaryModel
            .mappings(conv1, 16, &hw(256))
            .is_empty());
    }

    #[test]
    fn feasible_on_conv1_at_batch_64_with_1024_pes() {
        // Figs. 11b/c show WS operating at batch 64 on larger arrays,
        // whose baseline area buys a bigger buffer.
        let conv1 = &alexnet::conv_layers()[0].shape;
        assert!(!WeightStationaryModel
            .mappings(conv1, 64, &hw(1024))
            .is_empty());
    }

    #[test]
    fn weight_rf_reads_equal_macs() {
        let conv2 = &alexnet::conv_layers()[1].shape;
        let cands = WeightStationaryModel.mappings(conv2, 16, &hw(256));
        for c in &cands {
            assert_eq!(c.profile.filter.rf_reads, conv2.macs(16) as f64);
            // WS never uses the RF for psums (Table III).
            assert_eq!(c.profile.psum.rf_reads, 0.0);
            assert_eq!(c.profile.ifmap.rf_reads, 0.0);
        }
    }

    #[test]
    fn dram_filter_reads_are_minimal() {
        // Each weight enters the chip exactly once.
        let conv3 = &alexnet::conv_layers()[2].shape;
        for c in WeightStationaryModel.mappings(conv3, 16, &hw(256)) {
            assert_eq!(c.profile.filter.dram_reads, conv3.filter_words() as f64);
        }
    }

    #[test]
    fn ifmap_dram_reads_scale_with_filter_groups() {
        // Smaller g_m -> more weight-set swaps -> more ifmap re-streams.
        let conv2 = &alexnet::conv_layers()[1].shape;
        let cands = WeightStationaryModel.mappings(conv2, 16, &hw(256));
        let small = cands
            .iter()
            .find(|c| matches!(c.params, MappingParams::WeightStationary { g_m: 1, .. }))
            .unwrap();
        let big = cands
            .iter()
            .max_by_key(|c| match c.params {
                MappingParams::WeightStationary { g_m, .. } => g_m,
                _ => 0,
            })
            .unwrap();
        assert!(small.profile.ifmap.dram_reads > big.profile.ifmap.dram_reads);
    }

    #[test]
    fn active_pes_bounded_by_blocks() {
        // R=11 -> 11x11 blocks; only one packs into a 16x16 grid.
        let conv1 = &alexnet::conv_layers()[0].shape;
        for c in WeightStationaryModel.mappings(conv1, 16, &hw(256)) {
            assert!(c.active_pes <= 121, "one 11x11 block fits a 16x16 grid");
        }
    }

    #[test]
    fn infeasible_when_block_exceeds_array() {
        let shape = LayerShape::conv(4, 4, 40, 20, 1).unwrap(); // 400-PE block
        assert!(WeightStationaryModel
            .mappings(&shape, 1, &hw(256))
            .is_empty());
    }
}
