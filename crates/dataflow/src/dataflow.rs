//! The open `Dataflow` trait: one interface over every mapping space.
//!
//! The paper frames each dataflow as "a set of parameters ... that
//! describes the optimal mapping in terms of energy efficiency", all
//! searched by one optimizer (Section VI-C). This trait is that framing
//! made literal: a dataflow *is* anything that can enumerate candidate
//! mappings, re-derive the model for given parameters, and validate a
//! candidate against hardware. The optimizer ([`crate::search`]), the
//! cluster planner and the serving plan compiler are generic over
//! `&dyn Dataflow`, so new spaces (Eyeriss v2's flexible RS, a
//! serial-accumulation OS variant) plug in through the
//! [`crate::DataflowRegistry`] without touching any of them.

use crate::candidate::MappingCandidate;
use crate::error::DataflowError;
use crate::id::DataflowId;
use eyeriss_arch::config::AcceleratorConfig;
use eyeriss_nn::LayerProblem;

/// A parameterized dataflow mapping space (Section VI-A, opened up).
///
/// The three required operations mirror the optimizer's contract:
///
/// * [`enumerate`](Dataflow::enumerate) — the candidate mappings of a
///   problem on given hardware (empty when the dataflow cannot operate);
/// * [`model`](Dataflow::model) — re-derive the full candidate (access
///   profile, active PEs) for *known* parameters, used to check
///   deserialized plans against the live model;
/// * [`validate`](Dataflow::validate) — feasibility screening of one
///   candidate, the typed replacement for `panic!` on params mismatch.
pub trait Dataflow: Send + Sync {
    /// Stable identity; the registry, memo and plan caches key on this.
    fn id(&self) -> DataflowId;

    /// Per-PE register file requirement in bytes (drives the Fig. 7b
    /// fixed-area storage split).
    fn rf_bytes(&self) -> f64;

    /// Enumerates every feasible mapping of `problem` on `hw`, each with
    /// exact aggregate access counts. An empty vector means the dataflow
    /// cannot operate at this point (WS at batch 64 on 256 PEs, Fig. 11a).
    fn enumerate(&self, problem: &LayerProblem, hw: &AcceleratorConfig) -> Vec<MappingCandidate>;

    /// Re-derives the candidate for known `params`.
    ///
    /// The default scans [`enumerate`](Dataflow::enumerate) for an exact
    /// parameter match; spaces with a closed-form model can override.
    ///
    /// # Errors
    ///
    /// [`DataflowError::Mismatch`] when `params` belong to another
    /// dataflow, [`DataflowError::NoSuchMapping`] when they are not in
    /// this space for `problem`.
    fn model(
        &self,
        params: &crate::candidate::MappingParams,
        problem: &LayerProblem,
        hw: &AcceleratorConfig,
    ) -> Result<MappingCandidate, DataflowError> {
        params.expect_dataflow(self.id())?;
        self.enumerate(problem, hw)
            .into_iter()
            .find(|c| c.params == *params)
            .ok_or_else(|| DataflowError::NoSuchMapping {
                dataflow: self.id(),
                detail: format!(
                    "{params} for {}x{}x{} (batch {})",
                    problem.shape.m, problem.shape.c, problem.shape.h, problem.batch
                ),
            })
    }

    /// Screens one candidate for feasibility on `hw`.
    ///
    /// # Errors
    ///
    /// [`DataflowError::Mismatch`] for foreign parameters,
    /// [`DataflowError::InvalidCandidate`] for degenerate PE counts or
    /// non-finite access counts.
    fn validate(
        &self,
        candidate: &MappingCandidate,
        hw: &AcceleratorConfig,
    ) -> Result<(), DataflowError> {
        candidate.params.expect_dataflow(self.id())?;
        if candidate.active_pes == 0 || candidate.active_pes > hw.num_pes() {
            return Err(DataflowError::InvalidCandidate {
                dataflow: self.id(),
                detail: format!(
                    "{} active PEs outside 1..={}",
                    candidate.active_pes,
                    hw.num_pes()
                ),
            });
        }
        if !candidate.profile.is_valid() {
            return Err(DataflowError::InvalidCandidate {
                dataflow: self.id(),
                detail: "non-finite or negative access counts".into(),
            });
        }
        Ok(())
    }

    /// The hardware this dataflow gets under the fixed-area comparison of
    /// Section VI-B: its own RF requirement, the rest of the Eq. (2)
    /// baseline storage area as buffer.
    fn comparison_hardware(&self, num_pes: usize) -> AcceleratorConfig {
        AcceleratorConfig::under_baseline_area(num_pes, self.rf_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::MappingParams;
    use crate::kind::DataflowKind;
    use crate::registry;
    use eyeriss_nn::LayerShape;

    fn problem() -> LayerProblem {
        LayerProblem::new(LayerShape::conv(8, 4, 13, 3, 2).unwrap(), 2)
    }

    #[test]
    fn model_rederives_enumerated_candidates() {
        let df = registry::builtin(DataflowKind::RowStationary);
        let hw = df.comparison_hardware(256);
        let p = problem();
        let cands = df.enumerate(&p, &hw);
        assert!(!cands.is_empty());
        for c in cands.iter().take(4) {
            let again = df.model(&c.params, &p, &hw).unwrap();
            assert_eq!(&again, c, "model() must reproduce enumerate()'s candidate");
        }
    }

    #[test]
    fn model_rejects_foreign_params() {
        let rs = registry::builtin(DataflowKind::RowStationary);
        let hw = rs.comparison_hardware(256);
        let ws_params = MappingParams::WeightStationary { g_m: 1, g_c: 1 };
        let err = rs.model(&ws_params, &problem(), &hw).unwrap_err();
        assert!(matches!(err, DataflowError::Mismatch(_)));
    }

    #[test]
    fn model_rejects_out_of_space_params() {
        let rs = registry::builtin(DataflowKind::RowStationary);
        let hw = rs.comparison_hardware(256);
        // Absurd knobs no enumeration would produce.
        let params = MappingParams::RowStationary {
            n: 999,
            p: 999,
            q: 999,
            e: 999,
            r: 999,
            t: 999,
            filter_resident: true,
        };
        let err = rs.model(&params, &problem(), &hw).unwrap_err();
        assert!(matches!(err, DataflowError::NoSuchMapping { .. }));
    }

    #[test]
    fn validate_screens_pe_counts_and_profiles() {
        let rs = registry::builtin(DataflowKind::RowStationary);
        let hw = rs.comparison_hardware(256);
        let p = problem();
        let good = rs.enumerate(&p, &hw).into_iter().next().unwrap();
        assert!(rs.validate(&good, &hw).is_ok());

        let mut too_many = good.clone();
        too_many.active_pes = hw.num_pes() + 1;
        assert!(matches!(
            rs.validate(&too_many, &hw),
            Err(DataflowError::InvalidCandidate { .. })
        ));

        let mut bad_profile = good.clone();
        bad_profile.profile.alu_ops = f64::NAN;
        assert!(matches!(
            rs.validate(&bad_profile, &hw),
            Err(DataflowError::InvalidCandidate { .. })
        ));

        let mut foreign = good;
        foreign.params = MappingParams::WeightStationary { g_m: 1, g_c: 1 };
        assert!(matches!(
            rs.validate(&foreign, &hw),
            Err(DataflowError::Mismatch(_))
        ));
    }

    #[test]
    fn comparison_hardware_matches_fixed_area_split() {
        for kind in DataflowKind::ALL {
            let df = registry::builtin(kind);
            let hw = df.comparison_hardware(256);
            let direct = AcceleratorConfig::under_baseline_area(256, kind.rf_bytes());
            assert_eq!(hw, direct, "{kind}");
        }
    }
}
