//! The MOC-MOP output-stationary dataflow (OSB, Section IV-B).
//!
//! # Mapping model
//!
//! OSB covers `o_m` ofmap channels times a 1-D strip of `o_p` ofmap pixels
//! (Fig. 3b). Each PE pins one (channel, pixel) psum in its RF for the full
//! `C·R²` accumulation. Following Section VI-A, the model captures both
//! 1-D convolutional reuse along the strip (an ifmap pixel shifts across
//! the `o_p` PEs of a row) and ifmap reuse across the `o_m` channel rows
//! (broadcast) — more reuse than the plain matrix-multiplication variant
//! of \[20\].

use crate::candidate::{MappingCandidate, MappingParams};
use crate::dataflow::Dataflow;
use crate::id::DataflowId;
use crate::kind::DataflowKind;
use crate::model::{ceil_div, factor_candidates};
use crate::split::ReuseSplit;
use eyeriss_arch::access::LayerAccessProfile;
use eyeriss_arch::config::AcceleratorConfig;
use eyeriss_nn::{LayerProblem, LayerShape};

/// The MOC-MOP mapping space.
#[derive(Debug, Clone, Copy, Default)]
pub struct OutputStationaryBModel;

impl Dataflow for OutputStationaryBModel {
    fn id(&self) -> DataflowId {
        DataflowKind::OutputStationaryB.id()
    }

    fn rf_bytes(&self) -> f64 {
        DataflowKind::OutputStationaryB.rf_bytes()
    }

    fn enumerate(&self, problem: &LayerProblem, hw: &AcceleratorConfig) -> Vec<MappingCandidate> {
        crate::grouped::lower(problem, |shape, n| self.mappings(shape, n, hw))
    }
}

impl OutputStationaryBModel {
    /// Enumerates feasible mappings of `shape` at batch `n_batch` on `hw`
    /// (the explicit-arguments form of [`Dataflow::enumerate`]).
    pub fn mappings(
        &self,
        shape: &LayerShape,
        n_batch: usize,
        hw: &AcceleratorConfig,
    ) -> Vec<MappingCandidate> {
        let pes = hw.num_pes();
        let buf_words = hw.buffer_words();
        let mut out = Vec::new();
        // For FC layers (E = 1) the "multiple ofmap pixels" of MOC-MOP come
        // from different images of the batch instead of one plane.
        let pixel_dim = if shape.is_fc_shaped() {
            n_batch
        } else {
            shape.e
        };
        for &o_m in &factor_candidates(shape.m, pes) {
            for &o_p in &factor_candidates(pixel_dim, pes / o_m) {
                if shape.is_fc_shaped() {
                    if let Some(c) = evaluate_fc(shape, n_batch, o_m, o_p, buf_words) {
                        out.push(c);
                    }
                    continue;
                }
                for plane_resident in [true, false] {
                    if let Some(c) = evaluate(shape, n_batch, o_m, o_p, plane_resident, buf_words) {
                        out.push(c);
                    }
                }
            }
        }
        out
    }
}

fn evaluate(
    shape: &LayerShape,
    n_batch: usize,
    o_m: usize,
    o_p: usize,
    plane_resident: bool,
    buf_words: usize,
) -> Option<MappingCandidate> {
    let (m_dim, c_dim, h, r_filt, e_dim, u) =
        (shape.m, shape.c, shape.h, shape.r, shape.e, shape.u);
    let strips = ceil_div(e_dim, o_p);
    // Receptive band of one strip: R ifmap rows by the strip's halo width.
    let band = r_filt * ((o_p - 1) * u + r_filt);

    // The o_m filters' weights sit in the buffer for the whole layer pass.
    let filter_tile = o_m * c_dim * r_filt * r_filt;
    let ifmap_tile = if plane_resident {
        c_dim * h * h
    } else {
        c_dim * band
    };
    if filter_tile + ifmap_tile > buf_words {
        return None;
    }

    let macs = shape.macs(n_batch) as f64;
    let filter_words = shape.filter_words() as f64;
    let ofmap_words = shape.ofmap_words(n_batch) as f64;
    let m_groups = ceil_div(m_dim, o_m) as f64;

    let mut profile = LayerAccessProfile::new();
    profile.alu_ops = macs;

    // ---- psums: fully stationary in the RF --------------------------------
    let psplit = ReuseSplit::new(1.0, 1.0, 1.0, shape.accumulations_per_ofmap() as f64);
    profile.psum = psplit.psum_counts(ofmap_words);

    // ---- filters: buffer-resident, multicast along the strip --------------
    // With plane residency the image loop is outermost, so filter groups
    // cycle through once per image unless the whole bank stays on chip.
    let bank_words = shape.filter_words() as usize;
    profile.filter.dram_reads =
        if plane_resident && m_groups > 1.0 && bank_words + ifmap_tile > buf_words {
            filter_words * n_batch as f64
        } else {
            filter_words
        };
    profile.filter.buffer_reads = macs / o_p as f64;
    profile.filter.array_hops = macs;

    // ---- ifmaps: strip bands from the buffer, broadcast across channels ---
    // Each band word is read once per (image, ofmap row, strip, channel)
    // visit and serves all o_m channel rows plus the 1-D shifts.
    let visits = n_batch as f64 * (e_dim * strips) as f64 * m_groups;
    profile.ifmap.buffer_reads = visits * (c_dim * band) as f64 / 1.0;
    profile.ifmap.array_hops = macs;
    profile.ifmap.dram_reads = if plane_resident {
        // Plane fetched once per image, reused across every filter group.
        shape.ifmap_words(n_batch) as f64
    } else {
        profile.ifmap.buffer_reads
    };

    debug_assert!(profile.is_valid());
    Some(MappingCandidate {
        profile,
        active_pes: o_m * o_p,
        params: MappingParams::OutputStationaryB { o_m, o_p },
    })
}

/// FC-shaped layers: `o_p` spans images of the batch; each weight is
/// multicast across the `o_p` image columns (filter reuse), each image's
/// input vector is broadcast across the `o_m` channel rows (ifmap reuse).
fn evaluate_fc(
    shape: &LayerShape,
    n_batch: usize,
    o_m: usize,
    o_p: usize,
    buf_words: usize,
) -> Option<MappingCandidate> {
    let (m_dim, c_dim, r_filt) = (shape.m, shape.c, shape.r);
    let window = c_dim * r_filt * r_filt; // one image's full input vector

    let filter_tile = o_m * window;
    let ifmap_tile = o_p * window;
    if filter_tile + ifmap_tile > buf_words {
        return None;
    }
    // The filter-group loop is outermost (outputs stay stationary while a
    // weight group streams), so ifmaps are revisited once per filter
    // group. They stay on chip only if the whole batch slab fits next to a
    // double-buffered weight group; otherwise each revisit refetches from
    // DRAM — the ifmap-dominated FC energy of Fig. 14c.
    let batch_slab = n_batch * window;
    let ifmap_batch_resident = batch_slab + 2 * filter_tile <= buf_words;

    let macs = shape.macs(n_batch) as f64;
    let filter_words = shape.filter_words() as f64;
    let ofmap_words = shape.ofmap_words(n_batch) as f64;
    let m_groups = ceil_div(m_dim, o_m) as f64;
    let batch_groups = ceil_div(n_batch, o_p) as f64;

    let mut profile = LayerAccessProfile::new();
    profile.alu_ops = macs;

    let psplit = ReuseSplit::new(1.0, 1.0, 1.0, shape.accumulations_per_ofmap() as f64);
    profile.psum = psplit.psum_counts(ofmap_words);

    profile.filter.dram_reads = filter_words;
    profile.filter.buffer_reads = filter_words * batch_groups;
    profile.filter.array_hops = macs;

    profile.ifmap.dram_reads = if ifmap_batch_resident {
        shape.ifmap_words(n_batch) as f64
    } else {
        shape.ifmap_words(n_batch) as f64 * m_groups
    };
    profile.ifmap.buffer_reads = shape.ifmap_words(n_batch) as f64 * m_groups;
    profile.ifmap.array_hops = macs;

    debug_assert!(profile.is_valid());
    Some(MappingCandidate {
        profile,
        active_pes: o_m * o_p,
        params: MappingParams::OutputStationaryB { o_m, o_p },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeriss_arch::energy::EnergyModel;
    use eyeriss_nn::alexnet;

    fn hw(pes: usize) -> AcceleratorConfig {
        AcceleratorConfig::under_baseline_area(pes, DataflowKind::OutputStationaryB.rf_bytes())
    }

    fn best(shape: &LayerShape, n: usize, pes: usize) -> MappingCandidate {
        let em = EnergyModel::table_iv();
        OutputStationaryBModel
            .mappings(shape, n, &hw(pes))
            .into_iter()
            .min_by(|a, b| {
                a.profile
                    .total_energy(&em)
                    .partial_cmp(&b.profile.total_energy(&em))
                    .unwrap()
            })
            .expect("OSB feasible")
    }

    #[test]
    fn feasible_on_all_alexnet_layers() {
        for layer in alexnet::all_layers() {
            let b = best(&layer.shape, 16, 256);
            assert!(b.active_pes > 0, "{}", layer.name);
        }
    }

    #[test]
    fn psums_stay_local() {
        let conv4 = &alexnet::conv_layers()[3].shape;
        let b = best(conv4, 16, 256);
        assert_eq!(b.profile.psum.buffer_reads, 0.0);
        assert_eq!(b.profile.psum.array_hops, 0.0);
    }

    #[test]
    fn strip_multicast_cuts_filter_buffer_reads() {
        // Larger o_p -> fewer buffer reads per weight use.
        let conv3 = &alexnet::conv_layers()[2].shape;
        let cands = OutputStationaryBModel.mappings(conv3, 1, &hw(256));
        let narrow = cands
            .iter()
            .find(|c| matches!(c.params, MappingParams::OutputStationaryB { o_p: 1, .. }))
            .unwrap();
        let wide = cands
            .iter()
            .find(|c| matches!(c.params, MappingParams::OutputStationaryB { o_p, .. } if o_p > 4))
            .unwrap();
        assert!(wide.profile.filter.buffer_reads < narrow.profile.filter.buffer_reads);
    }

    #[test]
    fn fc_uses_channel_parallelism() {
        // E = 1 forces o_p = 1 but o_m can still fill the array.
        let fc1 = &alexnet::fc_layers()[0].shape;
        let b = best(fc1, 16, 1024);
        assert!(b.active_pes >= 256, "active={}", b.active_pes);
    }

    #[test]
    fn more_channels_less_ifmap_refetch() {
        let conv2 = &alexnet::conv_layers()[1].shape;
        let cands = OutputStationaryBModel.mappings(conv2, 1, &hw(1024));
        let dram_of = |om_want: usize| {
            cands
                .iter()
                .filter(|c| {
                    matches!(c.params,
                        MappingParams::OutputStationaryB { o_m, .. } if o_m == om_want)
                })
                .map(|c| c.profile.ifmap.dram_reads)
                .fold(f64::INFINITY, f64::min)
        };
        assert!(dram_of(256) <= dram_of(1));
    }
}
