//! The MOC-SOP output-stationary dataflow (OSC, Section IV-B).
//!
//! # Mapping model
//!
//! OSC processes `o_m` ofmap channels of a *single* ofmap pixel position at
//! a time (Fig. 3c), optionally replicated over `n_par` images. Each PE
//! pins one psum in its RF; each fetched ifmap value is broadcast to the
//! `o_m` channel PEs (ifmap reuse in the array — Table III) but, with only
//! one pixel position live, there is **no convolutional reuse on-chip**:
//! every window overlap is refetched from DRAM, which is why OSC's DRAM
//! traffic is among the worst in Fig. 11. Weights enjoy no RF/array reuse
//! at batch 1 — replicating over `n_par` images shares each weight
//! broadcast, which is why "the energy consumption of OSC improves
//! significantly with batch sizes larger than 1" (Section VII-B).

use crate::candidate::{MappingCandidate, MappingParams};
use crate::dataflow::Dataflow;
use crate::id::DataflowId;
use crate::kind::DataflowKind;
use crate::model::{ceil_div, factor_candidates};
use crate::split::ReuseSplit;
use eyeriss_arch::access::LayerAccessProfile;
use eyeriss_arch::config::AcceleratorConfig;
use eyeriss_nn::{LayerProblem, LayerShape};

/// The MOC-SOP mapping space.
#[derive(Debug, Clone, Copy, Default)]
pub struct OutputStationaryCModel;

impl Dataflow for OutputStationaryCModel {
    fn id(&self) -> DataflowId {
        DataflowKind::OutputStationaryC.id()
    }

    fn rf_bytes(&self) -> f64 {
        DataflowKind::OutputStationaryC.rf_bytes()
    }

    fn enumerate(&self, problem: &LayerProblem, hw: &AcceleratorConfig) -> Vec<MappingCandidate> {
        crate::grouped::lower(problem, |shape, n| self.mappings(shape, n, hw))
    }
}

impl OutputStationaryCModel {
    /// Enumerates feasible mappings of `shape` at batch `n_batch` on `hw`
    /// (the explicit-arguments form of [`Dataflow::enumerate`]).
    pub fn mappings(
        &self,
        shape: &LayerShape,
        n_batch: usize,
        hw: &AcceleratorConfig,
    ) -> Vec<MappingCandidate> {
        let pes = hw.num_pes();
        let buf_words = hw.buffer_words();
        let mut out = Vec::new();
        for &o_m in &factor_candidates(shape.m, pes) {
            for &n_par in &factor_candidates(n_batch, pes / o_m) {
                for weights_resident in [true, false] {
                    if let Some(c) =
                        evaluate(shape, n_batch, o_m, n_par, weights_resident, buf_words)
                    {
                        out.push(c);
                    }
                }
            }
        }
        out
    }
}

fn evaluate(
    shape: &LayerShape,
    n_batch: usize,
    o_m: usize,
    n_par: usize,
    weights_resident: bool,
    buf_words: usize,
) -> Option<MappingCandidate> {
    let (m_dim, c_dim, r_filt, e_dim) = (shape.m, shape.c, shape.r, shape.e);
    let window = c_dim * r_filt * r_filt;

    // The active filter group's weights plus the receptive windows of the
    // current position must be staged on chip.
    let filter_tile = if weights_resident {
        o_m * window
    } else {
        2 * window
    };
    let ifmap_tile = n_par * window;
    if filter_tile + ifmap_tile > buf_words {
        return None;
    }

    let macs = shape.macs(n_batch) as f64;
    let filter_words = shape.filter_words() as f64;
    let ofmap_words = shape.ofmap_words(n_batch) as f64;
    let m_groups = ceil_div(m_dim, o_m) as f64;
    let positions = n_batch as f64 * (e_dim * e_dim) as f64;

    let mut profile = LayerAccessProfile::new();
    profile.alu_ops = macs;

    // ---- psums: fully stationary in the RF --------------------------------
    let psplit = ReuseSplit::new(1.0, 1.0, 1.0, shape.accumulations_per_ofmap() as f64);
    profile.psum = psplit.psum_counts(ofmap_words);

    // ---- ifmaps: receptive window per position, broadcast across o_m ------
    // No convolutional reuse: overlapping windows are refetched in full.
    profile.ifmap.dram_reads = positions * m_groups * window as f64;
    profile.ifmap.buffer_reads = profile.ifmap.dram_reads;
    profile.ifmap.array_hops = macs;

    // ---- filters: reuse only across the n_par image replicas --------------
    if weights_resident {
        profile.filter.dram_reads = filter_words;
        profile.filter.buffer_reads = macs / n_par as f64;
    } else {
        profile.filter.dram_reads = macs / n_par as f64;
    }
    profile.filter.array_hops = macs;

    debug_assert!(profile.is_valid());
    Some(MappingCandidate {
        profile,
        active_pes: o_m * n_par,
        params: MappingParams::OutputStationaryC { o_m, n_par },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeriss_arch::energy::EnergyModel;
    use eyeriss_nn::alexnet;

    fn hw(pes: usize) -> AcceleratorConfig {
        AcceleratorConfig::under_baseline_area(pes, DataflowKind::OutputStationaryC.rf_bytes())
    }

    fn best(shape: &LayerShape, n: usize, pes: usize) -> MappingCandidate {
        let em = EnergyModel::table_iv();
        OutputStationaryCModel
            .mappings(shape, n, &hw(pes))
            .into_iter()
            .min_by(|a, b| {
                a.profile
                    .total_energy(&em)
                    .partial_cmp(&b.profile.total_energy(&em))
                    .unwrap()
            })
            .expect("OSC feasible")
    }

    #[test]
    fn conv_dram_traffic_is_high() {
        // Fig. 11: OSC's missing convolutional reuse shows up as DRAM
        // traffic an order of magnitude above RS.
        let conv2 = &alexnet::conv_layers()[1].shape;
        let b = best(conv2, 16, 256);
        let per_op = b.profile.dram_accesses() / conv2.macs(16) as f64;
        assert!(
            per_op > 0.003,
            "OSC CONV DRAM/op {per_op:.5} suspiciously low"
        );
    }

    #[test]
    fn batch_replication_helps_weights() {
        // Section VII-B: OSC improves significantly with batch > 1.
        let conv3 = &alexnet::conv_layers()[2].shape;
        let em = EnergyModel::table_iv();
        let e1 = best(conv3, 1, 1024).profile.total_energy(&em) / conv3.macs(1) as f64;
        let e16 = best(conv3, 16, 1024).profile.total_energy(&em) / conv3.macs(16) as f64;
        assert!(e16 < 0.8 * e1, "N=16 {e16:.2} vs N=1 {e1:.2}");
    }

    #[test]
    fn active_pes_capped_by_channels_at_batch_1() {
        // Fig. 13: at batch 1 the maximum active PEs is M.
        let conv1 = &alexnet::conv_layers()[0].shape; // M = 96
        for c in OutputStationaryCModel.mappings(conv1, 1, &hw(1024)) {
            assert!(c.active_pes <= 96);
        }
    }

    #[test]
    fn fc_ifmap_reads_have_no_conv_penalty() -> Result<(), crate::candidate::ParamsMismatch> {
        // FC layers have R = H: each position reads the whole input once,
        // so OSC's window refetch penalty vanishes (it suits FC).
        let fc2 = &alexnet::fc_layers()[1].shape;
        let b = best(fc2, 16, 1024);
        // A non-OSC candidate propagates as the typed mismatch instead of
        // aborting; after `?` the variant is guaranteed.
        let &MappingParams::OutputStationaryC { o_m, .. } =
            b.params.expect_kind(DataflowKind::OutputStationaryC)?
        else {
            unreachable!("expect_kind verified the variant")
        };
        let groups = (fc2.m as f64 / o_m as f64).ceil();
        assert_eq!(
            b.profile.ifmap.dram_reads,
            fc2.ifmap_words(16) as f64 * groups
        );
        Ok(())
    }

    #[test]
    fn psums_stay_in_rf() {
        let conv5 = &alexnet::conv_layers()[4].shape;
        let b = best(conv5, 16, 256);
        assert_eq!(b.profile.psum.buffer_reads, 0.0);
        assert_eq!(b.profile.psum.array_hops, 0.0);
    }
}
