//! The mapping optimizer of Section VI-C, generic over [`Dataflow`].
//!
//! "For each dataflow, there exists a set of parameters ... that describes
//! the optimal mapping in terms of energy efficiency under a given CNN
//! layer shape. It is obtained through an optimization process with
//! objective functions defined in Eq. (3) and (4), constrained by the
//! hardware resources." Here the optimization is an exhaustive scan of the
//! (divisor-pruned) candidate space each [`Dataflow`] enumerates — the
//! optimizer never learns *which* dataflow it is searching, so spaces
//! registered through [`crate::DataflowRegistry`] beyond the paper's six
//! are searched identically.

use crate::candidate::MappingCandidate;
use crate::dataflow::Dataflow;
use crate::id::DataflowId;
use eyeriss_arch::access::DataType;
use eyeriss_arch::config::AcceleratorConfig;
use eyeriss_arch::cost::{CostModel, CostReport};
use eyeriss_arch::energy::Level;
use eyeriss_nn::LayerProblem;
use eyeriss_telemetry::{Counter, Histogram, Telemetry};
use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::Instant;

/// Handles into [`Telemetry::global`] resolved once per process.
///
/// [`optimize`] keeps its signature (it is called from every layer of
/// the workspace), so its instrumentation reports to the *global*
/// instance only: enable it via `Telemetry::global().set_enabled(true)`
/// or `Engine::builder().telemetry_enabled(true)`. While the global
/// instance is disabled the cost per search is two relaxed loads.
struct SearchTele {
    searches: Counter,
    candidates: Counter,
    wall_ns: Histogram,
    memo_hits: Counter,
    memo_misses: Counter,
}

fn search_tele() -> &'static SearchTele {
    static TELE: OnceLock<SearchTele> = OnceLock::new();
    TELE.get_or_init(|| {
        let t = Telemetry::global();
        SearchTele {
            searches: t.counter("search.searches"),
            candidates: t.counter("search.candidates_scored"),
            wall_ns: t.histogram("search.wall_ns"),
            memo_hits: t.counter("search.memo_hits"),
            memo_misses: t.counter("search.memo_misses"),
        }
    })
}

/// The optimization objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Minimize total normalized energy (the paper's default).
    Energy,
    /// Minimize energy x delay (used for the EDP discussion).
    EnergyDelayProduct,
}

impl Objective {
    /// Stable wire label ("energy" / "edp").
    pub fn label(self) -> &'static str {
        match self {
            Objective::Energy => "energy",
            Objective::EnergyDelayProduct => "edp",
        }
    }

    /// The objective carrying `label`, if any (inverse of
    /// [`Objective::label`]).
    pub fn from_label(label: &str) -> Option<Objective> {
        match label {
            "energy" => Some(Objective::Energy),
            "edp" => Some(Objective::EnergyDelayProduct),
            _ => None,
        }
    }

    /// Folds an `(energy, delay)` pair into this objective's scalar score
    /// (lower is better). The single place the objective taxonomy is
    /// matched — search, cluster planning and serving all score through
    /// here, generic over whatever [`CostModel`] produced the inputs.
    pub fn score(self, energy: f64, delay: f64) -> f64 {
        match self {
            Objective::Energy => energy,
            Objective::EnergyDelayProduct => energy * delay,
        }
    }

    /// [`Objective::score`] over a priced [`CostReport`].
    pub fn score_report(self, report: &CostReport) -> f64 {
        self.score(report.total_energy, report.delay)
    }
}

/// Finds the best mapping of `problem` in `df`'s space on `hw` under
/// `objective`, priced by `cost` — any registered [`CostModel`], searched
/// exactly like the canonical Table IV model.
/// Returns `None` when the dataflow cannot operate (e.g. WS
/// at batch 64 on 256 PEs, Fig. 11a).
///
/// # Example
///
/// ```
/// use eyeriss_dataflow::{registry, search, DataflowKind};
/// use eyeriss_dataflow::search::Objective;
/// use eyeriss_arch::TableIv;
/// use eyeriss_nn::{LayerProblem, LayerShape};
///
/// let nlr = registry::builtin(DataflowKind::NoLocalReuse);
/// let problem = LayerProblem::new(LayerShape::conv(384, 256, 15, 3, 1)?, 16); // CONV3
/// let best = search::optimize(nlr, &problem, &nlr.comparison_hardware(256),
///                             &TableIv, Objective::Energy);
/// assert!(best.is_some());
/// # Ok::<(), eyeriss_nn::ShapeError>(())
/// ```
pub fn optimize(
    df: &dyn Dataflow,
    problem: &LayerProblem,
    hw: &AcceleratorConfig,
    cost: &dyn CostModel,
    objective: Objective,
) -> Option<MappingCandidate> {
    let tele = search_tele();
    let start = Telemetry::global().enabled().then(Instant::now);
    let found = optimize_impl(df, problem, hw, cost, objective, tele);
    if let Some(t0) = start {
        tele.searches.inc();
        tele.wall_ns.record_duration(t0.elapsed());
    }
    found
}

fn optimize_impl(
    df: &dyn Dataflow,
    problem: &LayerProblem,
    hw: &AcceleratorConfig,
    cost: &dyn CostModel,
    objective: Objective,
    tele: &SearchTele,
) -> Option<MappingCandidate> {
    // The exhaustive scan is hot: snapshot the model's ten numbers once
    // so scoring a candidate never re-enters the trait object. The local
    // arithmetic replicates `CostModel::energy_of`/`delay_of` operation
    // for operation, so scores stay bit-identical to the provided
    // methods.
    let costs: Vec<f64> = Level::ALL.iter().map(|&l| cost.energy_cost(l)).collect();
    let bandwidths: Vec<f64> = Level::ALL.iter().map(|&l| cost.bandwidth(l)).collect();
    let alu_cost = costs[Level::ALL.len() - 1];
    let needs_delay = objective == Objective::EnergyDelayProduct;
    let score = |c: &MappingCandidate| -> f64 {
        let data: f64 = DataType::ALL
            .iter()
            .map(|&t| {
                Level::ALL
                    .iter()
                    .zip(&costs)
                    .map(|(&l, &ec)| c.profile.of(t).at_level(l) * ec)
                    .sum::<f64>()
            })
            .sum();
        let energy = data + c.profile.alu_ops * alu_cost;
        let delay = if needs_delay {
            let mut d = c.profile.alu_ops / c.active_pes as f64;
            for (&l, &bw) in Level::ALL.iter().zip(&bandwidths) {
                if l == Level::Alu {
                    continue;
                }
                let words: f64 = DataType::ALL
                    .iter()
                    .map(|&t| c.profile.of(t).at_level(l))
                    .sum();
                d = d.max(words / bw);
            }
            d
        } else {
            0.0
        };
        objective.score(energy, delay)
    };
    // The exhaustive scan is the hot path of every sweep experiment:
    // validate and score candidates in place across all cores — the
    // borrowing map returns one `f64` per candidate (`NAN` marks an
    // invalid profile), so no candidate is ever moved or cloned during
    // the scan. Selection stays sequential (a cheap index fold); only
    // the single winner leaves the enumeration buffer. Small spaces stay
    // sequential — thread spawn would dominate.
    let screen = |c: &MappingCandidate| -> f64 {
        if !c.profile.is_valid() {
            return f64::NAN;
        }
        score(c)
    };
    let mut cands = df.enumerate(problem, hw);
    tele.candidates.add(cands.len() as u64);
    let scores: Vec<f64> = if cands.len() >= PAR_SCAN_THRESHOLD {
        eyeriss_par::par_map_slice(&cands, screen)
    } else {
        cands.iter().map(screen).collect()
    };
    let best = scores.iter().copied().fold(f64::INFINITY, f64::min);
    if !best.is_finite() {
        return None;
    }
    // Near-ties in the objective are broken toward PE utilization: the
    // paper notes RS's "mapping of 1D convolution primitives efficiently
    // utilizes available PEs", and its Fig. 13 delays presume mappings
    // that fill the array when doing so costs (almost) nothing. Among
    // equally utilized near-ties the later candidate wins (the `max_by`
    // convention this fold replaces).
    let mut winner: Option<usize> = None;
    let cut = best * UTILIZATION_TIE_BAND;
    for (i, &s) in scores.iter().enumerate() {
        // `partial_cmp` excludes the NaN invalid-candidate markers.
        if !matches!(
            s.partial_cmp(&cut),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        ) {
            continue;
        }
        winner = match winner {
            None => Some(i),
            Some(w) => {
                let ord = cands[i]
                    .active_pes
                    .cmp(&cands[w].active_pes)
                    .then_with(|| scores[w].partial_cmp(&s).expect("finite scores"));
                if ord == std::cmp::Ordering::Less {
                    Some(w)
                } else {
                    Some(i)
                }
            }
        };
    }
    winner.map(|w| cands.swap_remove(w))
}

/// Optimizes a whole list of problems in `df`'s space, deduplicating
/// identical entries so each distinct problem is searched exactly once.
/// Result `i` corresponds to `problems[i]`.
pub fn optimize_all(
    df: &dyn Dataflow,
    problems: &[LayerProblem],
    hw: &AcceleratorConfig,
    cost: &dyn CostModel,
    objective: Objective,
) -> Vec<Option<MappingCandidate>> {
    let mut memo = MappingMemo::new(hw, cost, objective);
    problems.iter().map(|p| memo.best(df, p)).collect()
}

/// A memoizing front-end over [`optimize`] for workloads that search many
/// layers against one fixed `(hardware, cost model, objective)` operating
/// point — the in-crate counterpart of a serving plan cache.
///
/// Networks repeat layer shapes heavily (VGG-16's thirteen CONV layers
/// collapse to nine distinct shapes; cluster partitions produce at most
/// two distinct tile sizes per dimension), so keying on
/// `(dataflow id, problem)` lets every repeat share one exhaustive scan.
///
/// # Example
///
/// ```
/// use eyeriss_dataflow::{registry, DataflowKind};
/// use eyeriss_dataflow::search::{MappingMemo, Objective};
/// use eyeriss_arch::{AcceleratorConfig, TableIv};
/// use eyeriss_nn::{LayerProblem, LayerShape};
///
/// let rs = registry::builtin(DataflowKind::RowStationary);
/// let hw = AcceleratorConfig::eyeriss_chip();
/// let mut memo = MappingMemo::new(&hw, &TableIv, Objective::Energy);
/// let p = LayerProblem::new(LayerShape::conv(64, 32, 16, 3, 1)?, 4);
/// let a = memo.best(rs, &p);
/// let b = memo.best(rs, &p); // cached
/// assert_eq!(a, b);
/// assert_eq!((memo.searches(), memo.hits()), (1, 1));
/// # Ok::<(), eyeriss_nn::ShapeError>(())
/// ```
pub struct MappingMemo<'a> {
    hw: &'a AcceleratorConfig,
    cost: &'a dyn CostModel,
    objective: Objective,
    cache: HashMap<(DataflowId, LayerProblem), Option<MappingCandidate>>,
    hits: usize,
}

impl std::fmt::Debug for MappingMemo<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappingMemo")
            .field("hw", &self.hw)
            .field("cost", &self.cost.id())
            .field("objective", &self.objective)
            .field("searches", &self.cache.len())
            .field("hits", &self.hits)
            .finish()
    }
}

impl<'a> MappingMemo<'a> {
    /// Creates an empty memo pinned to one operating point.
    pub fn new(hw: &'a AcceleratorConfig, cost: &'a dyn CostModel, objective: Objective) -> Self {
        MappingMemo {
            hw,
            cost,
            objective,
            cache: HashMap::new(),
            hits: 0,
        }
    }

    /// The best mapping of `problem` in `df`'s space, searching at most
    /// once per distinct `(dataflow, problem)` key.
    pub fn best(&mut self, df: &dyn Dataflow, problem: &LayerProblem) -> Option<MappingCandidate> {
        let key = (df.id(), *problem);
        if let Some(cached) = self.cache.get(&key) {
            self.hits += 1;
            search_tele().memo_hits.inc();
            return cached.clone();
        }
        search_tele().memo_misses.inc();
        let found = optimize(df, problem, self.hw, self.cost, self.objective);
        self.cache.insert(key, found.clone());
        found
    }

    /// Distinct searches actually performed.
    pub fn searches(&self) -> usize {
        self.cache.len()
    }

    /// Lookups answered from the memo without a search.
    pub fn hits(&self) -> usize {
        self.hits
    }
}

/// Candidate spaces at least this large are screened in parallel.
const PAR_SCAN_THRESHOLD: usize = 192;

/// Candidates within this factor of the optimal objective are considered
/// tied and resolved by active-PE count.
const UTILIZATION_TIE_BAND: f64 = 1.10;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::DataflowKind;
    use crate::registry::builtin;
    use eyeriss_arch::cost::{StaticCostModel, TableIv};
    use eyeriss_arch::energy::{EnergyModel, Level};
    use eyeriss_nn::{alexnet, LayerShape};

    fn problem(shape: &LayerShape, n: usize) -> LayerProblem {
        LayerProblem::new(*shape, n)
    }

    #[test]
    fn rs_beats_others_on_conv_aggregate() {
        // The headline claim, at one operating point: RS total CONV energy
        // at 256 PEs / batch 16 is lower than every other dataflow's.
        let em = EnergyModel::table_iv();
        let conv = alexnet::conv_layers();
        let total = |kind: DataflowKind| -> Option<f64> {
            let df = builtin(kind);
            let hw = df.comparison_hardware(256);
            let mut sum = 0.0;
            for layer in &conv {
                sum += optimize(
                    df,
                    &problem(&layer.shape, 16),
                    &hw,
                    &TableIv,
                    Objective::Energy,
                )?
                .profile
                .total_energy(&em);
            }
            Some(sum)
        };
        let rs = total(DataflowKind::RowStationary).expect("RS feasible");
        for kind in DataflowKind::ALL.into_iter().skip(1) {
            if let Some(e) = total(kind) {
                assert!(rs < e, "{kind}: RS {rs:.3e} not below {e:.3e}");
            }
        }
    }

    #[test]
    fn edp_objective_never_picks_lower_utilization_for_worse_energy_delay() {
        let em = EnergyModel::table_iv();
        let conv5 = &alexnet::conv_layers()[4].shape;
        let rs = builtin(DataflowKind::RowStationary);
        let hw = rs.comparison_hardware(256);
        let p = problem(conv5, 16);
        let by_energy = optimize(rs, &p, &hw, &TableIv, Objective::Energy).unwrap();
        let by_edp = optimize(rs, &p, &hw, &TableIv, Objective::EnergyDelayProduct).unwrap();
        let edp = |c: &MappingCandidate| c.profile.total_energy(&em) * c.delay();
        assert!(edp(&by_edp) <= edp(&by_energy) + 1e-6);
    }

    #[test]
    fn batch_entry_point_dedups_repeated_shapes() {
        // VGG-16 repeats shapes (CONV3_2 == CONV3_3 etc.); the batch entry
        // point must search each distinct shape once and still return one
        // result per input, positionally.
        let rs = builtin(DataflowKind::RowStationary);
        let hw = rs.comparison_hardware(256);
        let conv = alexnet::conv_layers();
        let problems: Vec<LayerProblem> = vec![
            problem(&conv[2].shape, 4),
            problem(&conv[4].shape, 4),
            problem(&conv[2].shape, 4), // duplicate of [0]
            problem(&conv[2].shape, 1), // same shape, different batch: distinct
        ];
        let results = optimize_all(rs, &problems, &hw, &TableIv, Objective::Energy);
        assert_eq!(results.len(), 4);
        assert_eq!(
            results[0], results[2],
            "duplicate shapes must share a result"
        );
        assert_ne!(results[0], results[3], "different batches stay distinct");
        for (r, p) in results.iter().zip(&problems) {
            let direct = optimize(rs, p, &hw, &TableIv, Objective::Energy);
            assert_eq!(r, &direct, "memoized result differs from direct search");
        }
    }

    #[test]
    fn memo_counts_hits_and_searches() {
        let rs = builtin(DataflowKind::RowStationary);
        let hw = rs.comparison_hardware(256);
        let conv5 = problem(&alexnet::conv_layers()[4].shape, 16);
        let mut memo = MappingMemo::new(&hw, &TableIv, Objective::Energy);
        for _ in 0..3 {
            memo.best(rs, &conv5);
        }
        // Infeasible results are memoized too.
        let ws = builtin(DataflowKind::WeightStationary);
        let ws_hw = ws.comparison_hardware(256);
        let mut ws_memo = MappingMemo::new(&ws_hw, &TableIv, Objective::Energy);
        let conv1 = problem(&alexnet::conv_layers()[0].shape, 64);
        assert!(ws_memo.best(ws, &conv1).is_none());
        assert!(ws_memo.best(ws, &conv1).is_none());
        assert_eq!((memo.searches(), memo.hits()), (1, 2));
        assert_eq!((ws_memo.searches(), ws_memo.hits()), (1, 1));
        assert!(format!("{memo:?}").contains("table-iv"));
    }

    #[test]
    fn infeasible_returns_none() {
        let conv1 = &alexnet::conv_layers()[0].shape;
        let ws = builtin(DataflowKind::WeightStationary);
        let hw = ws.comparison_hardware(256);
        assert!(optimize(ws, &problem(conv1, 64), &hw, &TableIv, Objective::Energy).is_none());
    }

    #[test]
    fn objective_labels_roundtrip() {
        for o in [Objective::Energy, Objective::EnergyDelayProduct] {
            assert_eq!(Objective::from_label(o.label()), Some(o));
        }
        assert_eq!(Objective::from_label("latency"), None);
        assert_eq!(Objective::Energy.score(7.0, 3.0), 7.0);
        assert_eq!(Objective::EnergyDelayProduct.score(7.0, 3.0), 21.0);
    }

    #[test]
    fn custom_cost_models_steer_the_search() {
        // A DRAM-free pricing makes buffer traffic the dominant term; the
        // optimizer must honor whatever model it is handed, and the
        // canonical model must agree bit-exactly with the old
        // EnergyModel-priced path.
        let conv3 = &alexnet::conv_layers()[2].shape;
        let rs = builtin(DataflowKind::RowStationary);
        let hw = rs.comparison_hardware(256);
        let p = problem(conv3, 16);
        let table = optimize(rs, &p, &hw, &TableIv, Objective::Energy).unwrap();
        let flat = StaticCostModel::new(
            "flat-onchip",
            EnergyModel::new(200.0, 2.0, 2.0, 1.0, 1.0).unwrap(),
        );
        let under_flat = optimize(rs, &p, &hw, &flat, Objective::Energy).unwrap();
        use eyeriss_arch::cost::CostModel;
        assert!(
            flat.energy_of(&under_flat.profile) <= flat.energy_of(&table.profile),
            "search under the flat model must be at least as good under it"
        );
        // A bandwidth-starved DRAM channel turns the EDP search
        // latency-aware: the chosen mapping's analytic delay under the
        // custom model bounds the Table IV winner's.
        let starved = StaticCostModel::new("starved", EnergyModel::table_iv())
            .with_bandwidth(Level::Dram, 0.25)
            .unwrap();
        let under_starved = optimize(rs, &p, &hw, &starved, Objective::EnergyDelayProduct).unwrap();
        let edp = |c: &MappingCandidate| {
            starved.energy_of(&c.profile) * starved.delay_of(&c.profile, c.active_pes)
        };
        let table_edp = optimize(rs, &p, &hw, &TableIv, Objective::EnergyDelayProduct).unwrap();
        assert!(edp(&under_starved) <= edp(&table_edp) * (1.0 + 1e-9));
    }
}
