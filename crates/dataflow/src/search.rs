//! The mapping optimizer of Section VI-C.
//!
//! "For each dataflow, there exists a set of parameters ... that describes
//! the optimal mapping in terms of energy efficiency under a given CNN
//! layer shape. It is obtained through an optimization process with
//! objective functions defined in Eq. (3) and (4), constrained by the
//! hardware resources." Here the optimization is an exhaustive scan of the
//! (divisor-pruned) candidate space each model enumerates.

use crate::candidate::MappingCandidate;
use crate::kind::DataflowKind;
use crate::model::model_for;
use eyeriss_arch::config::AcceleratorConfig;
use eyeriss_arch::energy::EnergyModel;
use eyeriss_nn::LayerShape;

/// The optimization objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Minimize total normalized energy (the paper's default).
    Energy,
    /// Minimize energy x delay (used for the EDP discussion).
    EnergyDelayProduct,
}

/// Finds the best mapping of `shape` (batch `n`) for `kind` on `hw`,
/// minimizing energy under `model`. Returns `None` when the dataflow cannot
/// operate (e.g. WS at batch 64 on 256 PEs, Fig. 11a).
///
/// # Example
///
/// ```
/// use eyeriss_dataflow::{search, DataflowKind};
/// use eyeriss_arch::{AcceleratorConfig, EnergyModel};
/// use eyeriss_nn::LayerShape;
///
/// let shape = LayerShape::conv(384, 256, 15, 3, 1)?; // CONV3
/// let hw = AcceleratorConfig::under_baseline_area(256, DataflowKind::NoLocalReuse.rf_bytes());
/// let best = search::best_mapping(DataflowKind::NoLocalReuse, &shape, 16, &hw,
///                                 &EnergyModel::table_iv());
/// assert!(best.is_some());
/// # Ok::<(), eyeriss_nn::ShapeError>(())
/// ```
pub fn best_mapping(
    kind: DataflowKind,
    shape: &LayerShape,
    n: usize,
    hw: &AcceleratorConfig,
    energy: &EnergyModel,
) -> Option<MappingCandidate> {
    best_mapping_with(kind, shape, n, hw, energy, Objective::Energy)
}

/// [`best_mapping`] with an explicit objective.
pub fn best_mapping_with(
    kind: DataflowKind,
    shape: &LayerShape,
    n: usize,
    hw: &AcceleratorConfig,
    energy: &EnergyModel,
    objective: Objective,
) -> Option<MappingCandidate> {
    let model = model_for(kind);
    let score = |c: &MappingCandidate| -> f64 {
        let e = c.profile.total_energy(energy);
        match objective {
            Objective::Energy => e,
            Objective::EnergyDelayProduct => e * c.delay(),
        }
    };
    // The exhaustive scan is the hot path of every sweep experiment:
    // validate and score candidates across all cores, keeping the
    // selection itself sequential (it is a cheap fold). Small spaces stay
    // sequential — thread spawn would dominate.
    let screen = |c: MappingCandidate| -> Option<(MappingCandidate, f64)> {
        if !c.profile.is_valid() {
            return None;
        }
        let s = score(&c);
        Some((c, s))
    };
    let cands = model.mappings(shape, n, hw);
    let scored: Vec<(MappingCandidate, f64)> = if cands.len() >= PAR_SCAN_THRESHOLD {
        eyeriss_par::par_map(cands, screen)
            .into_iter()
            .flatten()
            .collect()
    } else {
        cands.into_iter().filter_map(screen).collect()
    };
    let best = scored.iter().map(|(_, s)| *s).fold(f64::INFINITY, f64::min);
    if !best.is_finite() {
        return None;
    }
    // Near-ties in the objective are broken toward PE utilization: the
    // paper notes RS's "mapping of 1D convolution primitives efficiently
    // utilizes available PEs", and its Fig. 13 delays presume mappings
    // that fill the array when doing so costs (almost) nothing.
    scored
        .into_iter()
        .filter(|(_, s)| *s <= best * UTILIZATION_TIE_BAND)
        .max_by(|(a, sa), (b, sb)| {
            a.active_pes
                .cmp(&b.active_pes)
                .then_with(|| sb.partial_cmp(sa).expect("finite scores"))
        })
        .map(|(c, _)| c)
}

/// Candidate spaces at least this large are screened in parallel.
const PAR_SCAN_THRESHOLD: usize = 192;

/// Candidates within this factor of the optimal objective are considered
/// tied and resolved by active-PE count.
const UTILIZATION_TIE_BAND: f64 = 1.10;

/// Convenience: the hardware a dataflow gets under the fixed-area
/// comparison of Section VI-B (its own RF size, the rest as buffer).
pub fn comparison_hardware(kind: DataflowKind, num_pes: usize) -> AcceleratorConfig {
    AcceleratorConfig::under_baseline_area(num_pes, kind.rf_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeriss_nn::alexnet;

    #[test]
    fn rs_beats_others_on_conv_aggregate() {
        // The headline claim, at one operating point: RS total CONV energy
        // at 256 PEs / batch 16 is lower than every other dataflow's.
        let em = EnergyModel::table_iv();
        let conv = alexnet::conv_layers();
        let total = |kind: DataflowKind| -> Option<f64> {
            let hw = comparison_hardware(kind, 256);
            let mut sum = 0.0;
            for layer in &conv {
                sum += best_mapping(kind, &layer.shape, 16, &hw, &em)?
                    .profile
                    .total_energy(&em);
            }
            Some(sum)
        };
        let rs = total(DataflowKind::RowStationary).expect("RS feasible");
        for kind in DataflowKind::ALL.into_iter().skip(1) {
            if let Some(e) = total(kind) {
                assert!(rs < e, "{kind}: RS {rs:.3e} not below {e:.3e}");
            }
        }
    }

    #[test]
    fn edp_objective_never_picks_lower_utilization_for_worse_energy_delay() {
        let em = EnergyModel::table_iv();
        let conv5 = &alexnet::conv_layers()[4].shape;
        let hw = comparison_hardware(DataflowKind::RowStationary, 256);
        let by_energy = best_mapping(DataflowKind::RowStationary, conv5, 16, &hw, &em).unwrap();
        let by_edp = best_mapping_with(
            DataflowKind::RowStationary,
            conv5,
            16,
            &hw,
            &em,
            Objective::EnergyDelayProduct,
        )
        .unwrap();
        let edp = |c: &MappingCandidate| c.profile.total_energy(&em) * c.delay();
        assert!(edp(&by_edp) <= edp(&by_energy) + 1e-6);
    }

    #[test]
    fn infeasible_returns_none() {
        let em = EnergyModel::table_iv();
        let conv1 = &alexnet::conv_layers()[0].shape;
        let hw = comparison_hardware(DataflowKind::WeightStationary, 256);
        assert!(best_mapping(DataflowKind::WeightStationary, conv1, 64, &hw, &em).is_none());
    }
}
