//! The dataflow registry: builtin spaces plus caller extensions.
//!
//! The registry is the *only* place the closed [`DataflowKind`] taxonomy
//! meets the open [`Dataflow`] trait. Everything downstream — the
//! optimizer, the cluster planner, the serving plan compiler — takes
//! `&dyn Dataflow` and never matches on kinds, so registering a seventh
//! space here is all it takes to search, plan and serve it.

use crate::dataflow::Dataflow;
use crate::error::DataflowError;
use crate::id::DataflowId;
use crate::kind::DataflowKind;
use std::sync::Arc;

/// Returns the builtin model implementing `kind`, as a trait object with
/// a `'static` lifetime (the six spaces are stateless unit structs).
///
/// # Example
///
/// ```
/// use eyeriss_dataflow::{registry, DataflowKind};
///
/// let rs = registry::builtin(DataflowKind::RowStationary);
/// assert_eq!(rs.id(), DataflowKind::RowStationary.id());
/// assert_eq!(rs.rf_bytes(), 512.0);
/// ```
pub fn builtin(kind: DataflowKind) -> &'static dyn Dataflow {
    match kind {
        DataflowKind::RowStationary => &crate::rs::RowStationaryModel,
        DataflowKind::WeightStationary => &crate::ws::WeightStationaryModel,
        DataflowKind::OutputStationaryA => &crate::os_a::OutputStationaryAModel,
        DataflowKind::OutputStationaryB => &crate::os_b::OutputStationaryBModel,
        DataflowKind::OutputStationaryC => &crate::os_c::OutputStationaryCModel,
        DataflowKind::NoLocalReuse => &crate::nlr::NoLocalReuseModel,
    }
}

/// An ordered set of [`Dataflow`] implementations, looked up by
/// [`DataflowId`] or label.
///
/// # Example
///
/// Register a seventh dataflow next to the paper's six:
///
/// ```
/// use eyeriss_dataflow::{Dataflow, DataflowId, DataflowRegistry, MappingCandidate};
/// use eyeriss_arch::AcceleratorConfig;
/// use eyeriss_nn::LayerProblem;
///
/// struct Toy;
/// impl Dataflow for Toy {
///     fn id(&self) -> DataflowId { DataflowId::new("TOY") }
///     fn rf_bytes(&self) -> f64 { 8.0 }
///     fn enumerate(&self, _: &LayerProblem, _: &AcceleratorConfig) -> Vec<MappingCandidate> {
///         Vec::new()
///     }
/// }
///
/// let mut reg = DataflowRegistry::builtin();
/// reg.register(std::sync::Arc::new(Toy))?;
/// assert_eq!(reg.len(), 7);
/// assert!(reg.by_label("TOY").is_some());
/// # Ok::<(), eyeriss_dataflow::DataflowError>(())
/// ```
#[derive(Clone)]
pub struct DataflowRegistry {
    entries: Vec<Arc<dyn Dataflow>>,
}

impl DataflowRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        DataflowRegistry {
            entries: Vec::new(),
        }
    }

    /// A registry holding the paper's six dataflows, in figure order.
    pub fn builtin() -> Self {
        let mut reg = DataflowRegistry::empty();
        for kind in DataflowKind::ALL {
            reg.entries.push(builtin_arc(kind));
        }
        reg
    }

    /// Registers a dataflow.
    ///
    /// # Errors
    ///
    /// [`DataflowError::Duplicate`] when the id is already present.
    pub fn register(&mut self, dataflow: Arc<dyn Dataflow>) -> Result<(), DataflowError> {
        let id = dataflow.id();
        if self.get(id).is_some() {
            return Err(DataflowError::Duplicate(id));
        }
        self.entries.push(dataflow);
        Ok(())
    }

    /// Looks a dataflow up by id.
    pub fn get(&self, id: DataflowId) -> Option<&Arc<dyn Dataflow>> {
        self.entries.iter().find(|d| d.id() == id)
    }

    /// Looks a dataflow up by label (the on-disk form of the id).
    pub fn by_label(&self, label: &str) -> Option<&Arc<dyn Dataflow>> {
        self.entries.iter().find(|d| d.id().label() == label)
    }

    /// [`DataflowRegistry::get`] with a typed error for the miss.
    ///
    /// # Errors
    ///
    /// [`DataflowError::Unknown`].
    pub fn resolve(&self, id: DataflowId) -> Result<&Arc<dyn Dataflow>, DataflowError> {
        self.get(id)
            .ok_or_else(|| DataflowError::Unknown(id.label().to_string()))
    }

    /// [`DataflowRegistry::by_label`] with a typed error for the miss.
    ///
    /// # Errors
    ///
    /// [`DataflowError::Unknown`].
    pub fn resolve_label(&self, label: &str) -> Result<&Arc<dyn Dataflow>, DataflowError> {
        self.by_label(label)
            .ok_or_else(|| DataflowError::Unknown(label.to_string()))
    }

    /// The registered dataflows, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<dyn Dataflow>> {
        self.entries.iter()
    }

    /// Number of registered dataflows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for DataflowRegistry {
    fn default() -> Self {
        DataflowRegistry::builtin()
    }
}

impl std::fmt::Debug for DataflowRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries(self.entries.iter().map(|d| d.id()))
            .finish()
    }
}

/// The builtin model for `kind` as a shared trait object (for holders
/// that need owned `Arc<dyn Dataflow>` storage, like a serving compiler).
pub fn builtin_shared(kind: DataflowKind) -> Arc<dyn Dataflow> {
    builtin_arc(kind)
}

/// The builtin model for `kind` as a shared trait object.
fn builtin_arc(kind: DataflowKind) -> Arc<dyn Dataflow> {
    match kind {
        DataflowKind::RowStationary => Arc::new(crate::rs::RowStationaryModel),
        DataflowKind::WeightStationary => Arc::new(crate::ws::WeightStationaryModel),
        DataflowKind::OutputStationaryA => Arc::new(crate::os_a::OutputStationaryAModel),
        DataflowKind::OutputStationaryB => Arc::new(crate::os_b::OutputStationaryBModel),
        DataflowKind::OutputStationaryC => Arc::new(crate::os_c::OutputStationaryCModel),
        DataflowKind::NoLocalReuse => Arc::new(crate::nlr::NoLocalReuseModel),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::MappingCandidate;
    use eyeriss_arch::config::AcceleratorConfig;
    use eyeriss_nn::LayerProblem;

    struct Toy;
    impl Dataflow for Toy {
        fn id(&self) -> DataflowId {
            DataflowId::new("TOY")
        }
        fn rf_bytes(&self) -> f64 {
            8.0
        }
        fn enumerate(&self, _: &LayerProblem, _: &AcceleratorConfig) -> Vec<MappingCandidate> {
            Vec::new()
        }
    }

    #[test]
    fn builtin_registry_holds_the_six_in_order() {
        let reg = DataflowRegistry::builtin();
        assert_eq!(reg.len(), 6);
        let labels: Vec<_> = reg.iter().map(|d| d.id().label()).collect();
        assert_eq!(labels, ["RS", "WS", "OSA", "OSB", "OSC", "NLR"]);
        for kind in DataflowKind::ALL {
            assert_eq!(reg.resolve(kind.id()).unwrap().id(), kind.id());
            assert_eq!(builtin(kind).id(), kind.id());
            assert_eq!(builtin(kind).rf_bytes(), kind.rf_bytes());
        }
    }

    #[test]
    fn register_rejects_duplicates() {
        let mut reg = DataflowRegistry::builtin();
        reg.register(Arc::new(Toy)).unwrap();
        assert_eq!(reg.len(), 7);
        let err = reg.register(Arc::new(Toy)).unwrap_err();
        assert!(matches!(err, DataflowError::Duplicate(id) if id.label() == "TOY"));
        let err = reg
            .register(builtin_arc(DataflowKind::RowStationary))
            .unwrap_err();
        assert!(matches!(err, DataflowError::Duplicate(_)));
    }

    #[test]
    fn label_resolution_is_typed() {
        let reg = DataflowRegistry::builtin();
        assert!(reg.resolve_label("OSC").is_ok());
        assert!(matches!(
            reg.resolve_label("NOPE"),
            Err(DataflowError::Unknown(l)) if l == "NOPE"
        ));
        assert!(DataflowRegistry::empty().is_empty());
    }
}
