//! Grouped-convolution lowering shared by the six dense mapping spaces.
//!
//! The paper's dataflows predate grouped/depthwise convolution, so none of
//! their mapping spaces know about groups. The honest lowering — and what
//! the paper itself does for AlexNet's two-tower layers (Table II lists
//! per-tower shapes) — is to map *one group* and run the `G` groups
//! sequentially: the per-group shape is enumerated as usual and every
//! access count scales by `G`, while the mapping parameters and active-PE
//! count stay per-group. A candidate's [`delay`](crate::MappingCandidate::delay)
//! then reflects the serialized groups automatically
//! (`G·alu_per_group / active_pes`), which is exactly why compact
//! depthwise layers starve these dataflows and motivate `flex-rs`.

use crate::candidate::MappingCandidate;
use eyeriss_nn::{LayerProblem, LayerShape};

/// Lowers `problem` through `per_group`, a dense mapping enumerator over
/// `(shape, batch)`: identity for dense layers; for grouped layers the
/// per-group shape is enumerated and each candidate's profile scaled by
/// `G` (sequential group execution).
pub(crate) fn lower(
    problem: &LayerProblem,
    per_group: impl Fn(&LayerShape, usize) -> Vec<MappingCandidate>,
) -> Vec<MappingCandidate> {
    let g = problem.shape.groups;
    if g <= 1 {
        return per_group(&problem.shape, problem.batch);
    }
    let shape = problem.shape.per_group();
    let mut cands = per_group(&shape, problem.batch);
    for c in &mut cands {
        c.profile.scale(g as f64);
    }
    cands
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::DataflowKind;
    use crate::registry;

    #[test]
    fn grouped_profile_is_g_times_the_per_group_profile() {
        for kind in DataflowKind::ALL {
            let df = registry::builtin(kind);
            let hw = df.comparison_hardware(256);
            let grouped =
                LayerProblem::new(LayerShape::conv_grouped(8, 4, 13, 3, 2, 2).unwrap(), 2);
            let per = grouped.per_group();
            let gc = df.enumerate(&grouped, &hw);
            let pc = df.enumerate(&per, &hw);
            assert_eq!(gc.len(), pc.len(), "{kind}");
            for (g, p) in gc.iter().zip(&pc) {
                assert_eq!(g.params, p.params, "{kind}");
                assert_eq!(g.active_pes, p.active_pes, "{kind}");
                assert_eq!(g.profile.alu_ops, p.profile.alu_ops * 2.0, "{kind}");
                assert_eq!(
                    g.profile.ifmap.rf_reads,
                    p.profile.ifmap.rf_reads * 2.0,
                    "{kind}"
                );
                // Serialized groups: double the work on the same PEs.
                assert_eq!(g.delay(), p.delay() * 2.0, "{kind}");
            }
        }
    }

    #[test]
    fn grouped_alu_ops_match_layer_macs() {
        let df = registry::builtin(DataflowKind::RowStationary);
        let hw = df.comparison_hardware(256);
        let dw = LayerProblem::new(LayerShape::depthwise(16, 13, 3, 1).unwrap(), 2);
        let cands = df.enumerate(&dw, &hw);
        assert!(!cands.is_empty());
        for c in cands {
            assert_eq!(c.profile.alu_ops, dw.macs() as f64);
        }
    }
}
