//! `flex-rs`: an Eyeriss-v2-style flexible row-stationary mapping space.
//!
//! The paper's RS dataflow (Section V) assumes layers wide enough to fill
//! the array with logical PE sets. MobileNet-class networks break that
//! assumption: a depthwise layer is `G` independent single-channel
//! convolutions (`M = C = 1` per group), so a per-group RS set degenerates
//! to `R x E` PEs and the crate's sequential-group lowering
//! leaves the rest of the array dark. Eyeriss v2 ("Eyeriss v2: A Flexible
//! Accelerator for Emerging Deep Neural Networks on Mobile Devices",
//! arXiv:1807.07928) answers with a *hierarchical* organization: the array
//! is carved into PE clusters joined by a mesh of router clusters, and a
//! mapping may replicate a small RS tiling across clusters to recover
//! utilization.
//!
//! # Mapping model
//!
//! A candidate is described by four knobs (serialized through
//! [`MappingParams::Custom`]):
//!
//! * `k0 = cr` — PE-cluster rows; divides the array rows.
//! * `k1 = cc` — PE-cluster columns; divides the array columns, giving
//!   `n_clusters = (rows/cr)·(cols/cc)` clusters.
//! * `k2 = rep` — replication: how many *gangs* run different groups of a
//!   grouped convolution concurrently. Divides both `n_clusters` (gangs
//!   own whole clusters) and `G` (every gang executes `G/rep` groups
//!   sequentially, so no gang idles on a ragged final round).
//! * `k3 = idx` — index into the deterministic per-gang RS enumeration.
//!
//! Each gang owns `cpg = n_clusters/rep` clusters, modeled as a logical
//! `cr x (cc·cpg)` sub-array with a `1/rep` slice of the global buffer, and
//! runs the classic [`RowStationaryModel`] tiling on the *per-group* layer
//! shape. The whole-layer profile is the per-gang, per-group profile scaled
//! by `G` (total work is exact), with array-level hops inflated by
//! [`mesh_routing_factor`] to charge words that cross router-cluster
//! boundaries inside a multi-cluster gang. Active PEs are
//! `rep x` the per-gang count, which is what restores utilization: on a
//! 12x14 array a 3x3 depthwise layer maps at best `3·14 = 42` active PEs
//! under dense RS, while `cr = 3, cc = 1, rep = 8` lights all 168.
//!
//! Dense layers (`G = 1`) force `rep = 1`; the `cr = rows, cc = cols`
//! single-cluster knob then reproduces the RS space exactly (mesh factor
//! 1), so `flex-rs` never loses to RS where RS is already optimal.
//!
//! `flex-rs` is deliberately *not* in [`crate::DataflowKind`]: it registers
//! through [`crate::DataflowRegistry`] like any third-party space, which is
//! the proof that the optimizer, cluster planner and serving compiler need
//! zero changes to carry a seventh dataflow.

use crate::candidate::{MappingCandidate, MappingParams};
use crate::dataflow::Dataflow;
use crate::id::DataflowId;
use crate::kind::DataflowKind;
use crate::rs::RowStationaryModel;
use eyeriss_arch::config::{AcceleratorConfig, GridDims};
use eyeriss_nn::LayerProblem;

/// The identity `flex-rs` registers, searches and serializes under.
pub const FLEX_RS: DataflowId = DataflowId::new("flex-rs");

/// Average extra array-NoC cost of a gang spanning `cpg` PE clusters of
/// `cr x cc` PEs each.
///
/// Hops inside a cluster ride the local all-to-all fabric and cost one
/// array-level delivery, exactly like the paper's single-bus model. A word
/// leaving its source cluster additionally traverses router-to-router
/// links; with clusters arranged in a line the mean distance between two
/// of a gang's `cpg` clusters is `(cpg - 1)/2` links, and roughly one in
/// `cr·cc` deliveries crosses a cluster boundary (boundary PEs over
/// cluster area). The factor multiplies `array_hops`, reducing to exactly
/// 1 for a single-cluster gang. The hierarchical-mesh simulator
/// (`eyeriss-sim`) charges its hop counts with the same closed form so the
/// analytical and simulated NoC costs agree.
pub fn mesh_routing_factor(
    cluster_rows: usize,
    cluster_cols: usize,
    clusters_per_gang: usize,
) -> f64 {
    debug_assert!(cluster_rows > 0 && cluster_cols > 0 && clusters_per_gang > 0);
    1.0 + (clusters_per_gang - 1) as f64 / (2.0 * (cluster_rows * cluster_cols) as f64)
}

/// Sorted divisors of `n`.
fn divisors(n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut k = 1usize;
    while k * k <= n {
        if n.is_multiple_of(k) {
            out.push(k);
            if k != n / k {
                out.push(n / k);
            }
        }
        k += 1;
    }
    out.sort_unstable();
    out
}

/// The flexible row-stationary mapping space.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlexRsModel;

impl Dataflow for FlexRsModel {
    fn id(&self) -> DataflowId {
        FLEX_RS
    }

    fn rf_bytes(&self) -> f64 {
        // Same PE scratchpads as RS: the v2 PE keeps the RS register
        // hierarchy and changes the network around it.
        DataflowKind::RowStationary.rf_bytes()
    }

    fn enumerate(&self, problem: &LayerProblem, hw: &AcceleratorConfig) -> Vec<MappingCandidate> {
        let g = problem.shape.groups.max(1);
        let per_group = problem.shape.per_group();
        let (rows, cols) = (hw.grid.rows, hw.grid.cols);
        let rs = RowStationaryModel;
        let mut out = Vec::new();
        for &cr in &divisors(rows) {
            for &cc in &divisors(cols) {
                let n_clusters = (rows / cr) * (cols / cc);
                for &rep in &divisors(n_clusters) {
                    if !g.is_multiple_of(rep) {
                        continue;
                    }
                    let cpg = n_clusters / rep;
                    let gang_hw = AcceleratorConfig {
                        grid: GridDims::new(cr, cc * cpg),
                        rf_bytes_per_pe: hw.rf_bytes_per_pe,
                        buffer_bytes: hw.buffer_bytes / rep as f64,
                    };
                    let mesh = mesh_routing_factor(cr, cc, cpg);
                    for (idx, mut cand) in rs
                        .mappings(&per_group, problem.batch, &gang_hw)
                        .into_iter()
                        .enumerate()
                    {
                        cand.profile.scale(g as f64);
                        cand.profile.ifmap.array_hops *= mesh;
                        cand.profile.filter.array_hops *= mesh;
                        cand.profile.psum.array_hops *= mesh;
                        cand.active_pes *= rep;
                        cand.params = MappingParams::Custom {
                            id: FLEX_RS,
                            knobs: [cr, cc, rep, idx],
                        };
                        out.push(cand);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{self, Objective};
    use eyeriss_arch::TableIv;
    use eyeriss_nn::LayerShape;

    fn chip() -> AcceleratorConfig {
        AcceleratorConfig::eyeriss_chip()
    }

    fn depthwise_problem() -> LayerProblem {
        // MobileNet DW2-style layer on the 12x14 chip: 64 channels, 3x3.
        LayerProblem::new(LayerShape::depthwise(64, 58, 3, 1).unwrap(), 1)
    }

    #[test]
    fn identity_and_rf_match_the_design() {
        assert_eq!(FlexRsModel.id().label(), "flex-rs");
        assert_eq!(
            FlexRsModel.rf_bytes(),
            DataflowKind::RowStationary.rf_bytes()
        );
    }

    #[test]
    fn mesh_factor_is_one_for_a_single_cluster() {
        assert_eq!(mesh_routing_factor(12, 14, 1), 1.0);
        assert!(mesh_routing_factor(3, 1, 7) > 1.0);
    }

    #[test]
    fn dense_layers_contain_the_rs_space() {
        // The cr=rows, cc=cols, rep=1 knob is plain RS with mesh factor 1:
        // every RS candidate's profile and PE count must appear verbatim.
        let hw = chip();
        let p = LayerProblem::new(LayerShape::conv(32, 16, 14, 3, 1).unwrap(), 2);
        let rs_cands = RowStationaryModel.enumerate(&p, &hw);
        let flex: Vec<_> = FlexRsModel
            .enumerate(&p, &hw)
            .into_iter()
            .filter(|c| {
                matches!(
                    c.params,
                    MappingParams::Custom {
                        knobs: [12, 14, 1, _],
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(flex.len(), rs_cands.len());
        for (f, r) in flex.iter().zip(&rs_cands) {
            assert_eq!(f.profile, r.profile);
            assert_eq!(f.active_pes, r.active_pes);
        }
    }

    #[test]
    fn dense_layers_never_replicate() {
        let hw = chip();
        let p = LayerProblem::new(LayerShape::conv(8, 4, 13, 3, 1).unwrap(), 1);
        for c in FlexRsModel.enumerate(&p, &hw) {
            let MappingParams::Custom { knobs, .. } = c.params else {
                panic!("flex candidates carry custom params");
            };
            assert_eq!(knobs[2], 1, "G=1 admits no replication");
        }
    }

    #[test]
    fn replication_divides_the_group_count() {
        let hw = chip();
        let p = depthwise_problem();
        let cands = FlexRsModel.enumerate(&p, &hw);
        assert!(!cands.is_empty());
        let mut saw_replication = false;
        for c in &cands {
            let MappingParams::Custom { knobs, .. } = c.params else {
                panic!("flex candidates carry custom params");
            };
            assert!(64usize.is_multiple_of(knobs[2]), "rep={} !| G=64", knobs[2]);
            saw_replication |= knobs[2] > 1;
            assert_eq!(c.profile.alu_ops, p.macs() as f64);
        }
        assert!(saw_replication);
    }

    #[test]
    fn depthwise_utilization_beats_dense_rs() {
        // Dense RS on a depthwise group (M = C = 1) caps at R·cols active
        // PEs; replication across clusters must fill the whole array.
        let hw = chip();
        let p = depthwise_problem();
        let rs_max = RowStationaryModel
            .enumerate(&p, &hw)
            .iter()
            .map(|c| c.active_pes)
            .max()
            .unwrap();
        let flex_max = FlexRsModel
            .enumerate(&p, &hw)
            .iter()
            .map(|c| c.active_pes)
            .max()
            .unwrap();
        assert!(rs_max <= 3 * hw.grid.cols);
        assert_eq!(flex_max, hw.num_pes(), "some knob lights every PE");
    }

    #[test]
    fn optimizer_picks_high_utilization_on_depthwise() {
        // Through the ordinary search machinery (no flex-specific code),
        // the energy-optimal flex mapping keeps more PEs busy than the
        // energy-optimal dense RS mapping.
        let hw = chip();
        let p = depthwise_problem();
        let best_rs =
            search::optimize(&RowStationaryModel, &p, &hw, &TableIv, Objective::Energy).unwrap();
        let best_flex =
            search::optimize(&FlexRsModel, &p, &hw, &TableIv, Objective::Energy).unwrap();
        assert!(
            best_flex.active_pes > best_rs.active_pes,
            "flex {} <= rs {}",
            best_flex.active_pes,
            best_rs.active_pes
        );
    }

    #[test]
    fn knobs_are_unique_and_model_rederives() {
        let hw = chip();
        let p = depthwise_problem();
        let cands = FlexRsModel.enumerate(&p, &hw);
        let mut seen = std::collections::HashSet::new();
        for c in &cands {
            assert!(seen.insert(c.params), "duplicate knobs {}", c.params);
            FlexRsModel.validate(c, &hw).unwrap();
        }
        for c in cands.iter().step_by(cands.len() / 5 + 1) {
            let again = FlexRsModel.model(&c.params, &p, &hw).unwrap();
            assert_eq!(&again, c);
        }
    }

    #[test]
    fn registry_carries_flex_as_a_seventh_space() {
        let mut reg = crate::DataflowRegistry::builtin();
        reg.register(std::sync::Arc::new(FlexRsModel)).unwrap();
        assert_eq!(reg.len(), 7);
        let df = reg.by_label("flex-rs").unwrap();
        assert_eq!(df.id(), FLEX_RS);
    }
}
