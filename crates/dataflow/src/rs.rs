//! The row-stationary (RS) dataflow (Section V) — the paper's contribution.
//!
//! # Mapping model
//!
//! RS breaks the high-dimensional convolution into 1-D row primitives. A
//! *logical PE set* of `R x E` PEs computes one 2-D convolution (Fig. 6):
//! filter rows are multicast horizontally, ifmap rows diagonally, and psum
//! rows accumulate vertically. The physical mapping folds `N·M·C` sets onto
//! the array in two phases (Section V-B):
//!
//! * **Spatial**: `r` sets stacked vertically (different channel groups, so
//!   their psums accumulate across set boundaries) and `t` sets side by
//!   side (different filter groups, sharing the same ifmap rows). Sets
//!   wider than the array are strip-mined to `e <= E` ofmap rows.
//! * **Temporal (RF interleaving)**: each physical PE runs the primitives of
//!   `p` filters, `q` channels and `n` images in an interleaved fashion,
//!   bounded by the RF capacity `p·q·R + q·n·R + p·n <= RF words`
//!   (filter rows + ifmap sliding window + psum accumulators — the
//!   fabricated chip's `p = 16, q = 1, R = 11` fits its 224+12+24-word
//!   scratchpads).
//!
//! A *processing pass* covers `(n, p·t, q·r, e)` of `(N, M, C, E)`; the
//! second folding phase runs `ceil(N/n)·ceil(M/pt)·ceil(C/qr)·ceil(E/e)`
//! passes sequentially, with the global buffer carrying either the ifmap
//! strip (reused across filter groups) or the filter group (reused across
//! batch and strips) — the `filter_resident` knob; the optimizer picks
//! whichever is cheaper per layer, exactly the optimization the paper's
//! framework performs.
//!
//! # Reuse splits
//!
//! | data   | a (DRAM)            | b (buffer)      | c (array)  | d (RF)  |
//! |--------|---------------------|-----------------|------------|---------|
//! | filter | 1 or per-pass       | strips·batches  | `e`        | `n·E`   |
//! | ifmap  | halo-exact strips   | per-pass slice  | diag + `t` | `p·R/U` |
//! | psum   | 1 (pinned)          | `ceil(C/qr)`    | `R·r`      | `R·q`   |

use crate::candidate::{MappingCandidate, MappingParams};
use crate::dataflow::Dataflow;
use crate::id::DataflowId;
use crate::kind::DataflowKind;
use crate::model::{ceil_div, factor_candidates};
use eyeriss_arch::access::LayerAccessProfile;
use eyeriss_arch::config::AcceleratorConfig;
use eyeriss_nn::{LayerProblem, LayerShape};

/// RF words one PE needs to interleave `p` filters, `q` channels and
/// `n` images of `shape` (the first-phase folding bound of Section V-B:
/// stationary filter rows + the ifmap sliding window + psum
/// accumulators; FC rows are single-use, so images stream through one
/// row-buffer). The single source of truth for row-stationary RF
/// feasibility — the enumerator prunes with it and executors screen
/// foreign mappings with it.
pub fn rf_words_needed(shape: &LayerShape, n: usize, p: usize, q: usize) -> usize {
    let ifmap_window = if shape.is_fc_shaped() {
        q * shape.r
    } else {
        q * n * shape.r
    };
    p * q * shape.r + ifmap_window + p * n
}

/// The row-stationary mapping space.
#[derive(Debug, Clone, Copy, Default)]
pub struct RowStationaryModel;

impl Dataflow for RowStationaryModel {
    fn id(&self) -> DataflowId {
        DataflowKind::RowStationary.id()
    }

    fn rf_bytes(&self) -> f64 {
        DataflowKind::RowStationary.rf_bytes()
    }

    fn enumerate(&self, problem: &LayerProblem, hw: &AcceleratorConfig) -> Vec<MappingCandidate> {
        crate::grouped::lower(problem, |shape, n| self.mappings(shape, n, hw))
    }
}

impl RowStationaryModel {
    /// Enumerates feasible mappings of `shape` at batch `n_batch` on `hw`
    /// (the explicit-arguments form of [`Dataflow::enumerate`]).
    pub fn mappings(
        &self,
        shape: &LayerShape,
        n_batch: usize,
        hw: &AcceleratorConfig,
    ) -> Vec<MappingCandidate> {
        let (ah, aw) = (hw.grid.rows, hw.grid.cols);
        let rf_words = hw.rf_words_per_pe();
        let buf_words = hw.buffer_words();
        let (m_dim, c_dim, e_dim, r_filt) = (shape.m, shape.c, shape.e, shape.r);
        if r_filt > ah {
            // A set's filter rows must fit one array column; the paper's
            // configurations always satisfy this (R <= 11, arrays >= 12 rows).
            return Vec::new();
        }

        let mut out = Vec::new();
        // The inner knob lists do not depend on the outer loop variables
        // (only `t`'s cap involves `e`), so each is enumerated once
        // instead of once per enclosing iteration.
        let r_list = factor_candidates(c_dim, ah / r_filt);
        let p_list = factor_candidates(m_dim, 64);
        let q_list = factor_candidates(c_dim, c_dim);
        let n_list = factor_candidates(n_batch, n_batch);
        for &e in &factor_candidates(e_dim, aw) {
            let strips = ceil_div(e_dim, e);
            let rows_strip = shape.ifmap_rows_for_strip(e.min(e_dim));
            for &r in &r_list {
                for &t in &factor_candidates(m_dim, aw / e) {
                    for &p in &p_list {
                        if p * t > m_dim && t > 1 {
                            continue;
                        }
                        for &q in &q_list {
                            if q * r > c_dim && r > 1 {
                                continue;
                            }
                            for &n in &n_list {
                                // First-phase folding bounded by the RF
                                // (see [`rf_words_needed`]).
                                if rf_words_needed(shape, n, p, q) > rf_words {
                                    continue;
                                }
                                for filter_resident in [false, true] {
                                    if let Some(cand) = evaluate(
                                        shape,
                                        n_batch,
                                        Knobs {
                                            n,
                                            p,
                                            q,
                                            e,
                                            r,
                                            t,
                                            strips,
                                            rows_strip,
                                            filter_resident,
                                        },
                                        buf_words,
                                    ) {
                                        out.push(cand);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// The resolved mapping knobs for one candidate.
#[derive(Debug, Clone, Copy)]
struct Knobs {
    n: usize,
    p: usize,
    q: usize,
    e: usize,
    r: usize,
    t: usize,
    strips: usize,
    rows_strip: usize,
    filter_resident: bool,
}

fn evaluate(
    shape: &LayerShape,
    n_batch: usize,
    k: Knobs,
    buf_words: usize,
) -> Option<MappingCandidate> {
    let (m_dim, c_dim, h, r_filt, e_dim) = (shape.m, shape.c, shape.h, shape.r, shape.e);
    let m_groups = ceil_div(m_dim, k.p * k.t);
    let c_groups = ceil_div(c_dim, k.q * k.r);
    let n_groups = ceil_div(n_batch, k.n);
    let passes = (m_groups * c_groups * n_groups * k.strips) as f64;

    // ---- global buffer capacity (second-phase folding, Section V-B) -----
    // FC layers (E = 1) keep their folded psums in the PE registers across
    // channel-group rounds — only p·n accumulators per PE, already counted
    // in the RF budget — so the buffer carries no psum tile for them.
    let fc_psum_in_rf = shape.is_fc_shaped();
    let ifmap_tile = k.n * k.q * k.r * k.rows_strip * h;
    let psum_tile = if fc_psum_in_rf {
        0
    } else if k.filter_resident {
        // Loop order m -> n -> strip -> c: psums of the current filter
        // group complete before the strip advances.
        k.n * k.p * k.t * k.e * e_dim
    } else {
        // Loop order n -> strip -> c -> m: psums of *all* filters of the
        // strip stay live across channel groups.
        k.n * m_dim * k.e * e_dim
    };
    let filter_tile = if k.filter_resident {
        // The filter group stays resident across batch/strip/channel loops.
        k.p * k.t * c_dim * r_filt * r_filt
    } else {
        // Filters stream through per pass; only the pass working set lives.
        k.p * k.t * k.q * k.r * r_filt * r_filt
    };
    if ifmap_tile + psum_tile + filter_tile > buf_words {
        return None;
    }

    let macs = shape.macs(n_batch) as f64;
    let ofmap_words = shape.ofmap_words(n_batch) as f64;
    let active_pes = r_filt * k.r * k.e * k.t;
    let pass_ifmap_words = (k.n * k.q * k.r * k.rows_strip * h) as f64;

    let mut profile = LayerAccessProfile::new();
    profile.alu_ops = macs;

    // ---- filters ---------------------------------------------------------
    // Every MAC reads its weight from the RF (stationary row, Fig. 5).
    profile.filter.rf_reads = macs;
    let filter_words = shape.filter_words() as f64;
    // Each distinct weight is delivered once per (batch group, strip),
    // multicast across the e columns of its set (Fig. 6a). Using the exact
    // filter volume avoids charging the final partial filter/channel group
    // for phantom weights.
    let filter_fetch_rounds = (n_groups * k.strips) as f64;
    profile.filter.array_hops = filter_words * filter_fetch_rounds * k.e as f64;
    if k.filter_resident {
        profile.filter.dram_reads = filter_words;
        profile.filter.buffer_reads = filter_words * filter_fetch_rounds;
    } else {
        // Streamed from DRAM each pass, bypassing the buffer (footnote 1).
        profile.filter.dram_reads = filter_words * filter_fetch_rounds;
    }

    // ---- ifmaps ----------------------------------------------------------
    profile.ifmap.rf_reads = macs;
    // Each active PE receives the q·n ifmap rows of its primitives once per
    // pass; diagonal multicast (Fig. 6b) plus sharing across the t filter
    // sets means the buffer is read only once per distinct word.
    profile.ifmap.array_hops = passes * active_pes as f64 * (k.q * k.n * h) as f64;
    profile.ifmap.buffer_reads = passes * pass_ifmap_words;
    let halo = shape.strip_refetch_factor(k.e.min(e_dim));
    let ifmap_once = shape.ifmap_words(n_batch) as f64 * halo;
    profile.ifmap.dram_reads = if k.filter_resident {
        // Ifmap strips refetched for every filter group.
        ifmap_once * m_groups as f64
    } else {
        ifmap_once
    };

    // ---- psums -----------------------------------------------------------
    // Each ofmap value accumulates exactly C·R² psums: R·q inside a PE
    // (taps x interleaved channels), across a vertical chain of R·r PEs
    // (Fig. 6c), folded over ceil(C/qr) channel-group rounds through the
    // buffer; a = 1 is pinned (only final ofmaps reach DRAM).
    profile.psum = crate::split::psum_counts_exact(
        ofmap_words,
        shape.accumulations_per_ofmap() as f64,
        c_groups as f64,
        (r_filt * k.r) as f64,
    );
    if fc_psum_in_rf {
        // Between-round partials are retained in the chain-top RF instead
        // of spilling to the buffer.
        profile.psum.rf_reads += profile.psum.buffer_reads;
        profile.psum.rf_writes += profile.psum.buffer_writes;
        profile.psum.buffer_reads = 0.0;
        profile.psum.buffer_writes = 0.0;
    }

    debug_assert!(profile.is_valid());
    Some(MappingCandidate {
        profile,
        active_pes,
        params: MappingParams::RowStationary {
            n: k.n,
            p: k.p,
            q: k.q,
            e: k.e,
            r: k.r,
            t: k.t,
            filter_resident: k.filter_resident,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeriss_arch::energy::EnergyModel;
    use eyeriss_nn::alexnet;

    fn hw256() -> AcceleratorConfig {
        AcceleratorConfig::under_baseline_area(256, DataflowKind::RowStationary.rf_bytes())
    }

    fn best(shape: &LayerShape, n: usize, hw: &AcceleratorConfig) -> MappingCandidate {
        let model = RowStationaryModel;
        let em = EnergyModel::table_iv();
        model
            .mappings(shape, n, hw)
            .into_iter()
            .min_by(|a, b| {
                a.profile
                    .total_energy(&em)
                    .partial_cmp(&b.profile.total_energy(&em))
                    .unwrap()
            })
            .expect("RS must be feasible on every AlexNet layer")
    }

    #[test]
    fn feasible_on_every_alexnet_layer() {
        let hw = hw256();
        for layer in alexnet::all_layers() {
            let b = best(&layer.shape, 16, &hw);
            assert!(b.active_pes > 0 && b.active_pes <= 256, "{}", layer.name);
        }
    }

    #[test]
    fn rf_reads_equal_macs() {
        // Every MAC reads both operands from the RF under RS.
        let layer = &alexnet::conv_layers()[1]; // CONV2
        let b = best(&layer.shape, 16, &hw256());
        let macs = layer.shape.macs(16) as f64;
        assert_eq!(b.profile.filter.rf_reads, macs);
        assert_eq!(b.profile.ifmap.rf_reads, macs);
    }

    #[test]
    fn conv_energy_dominated_by_rf() {
        // Fig. 10: "the energy consumption of CONV layers is dominated by
        // RF accesses", with RF : (buffer + array) roughly 4:1.
        use eyeriss_arch::energy::Level;
        let em = EnergyModel::table_iv();
        let mut rf = 0.0;
        let mut rest = 0.0;
        for layer in alexnet::conv_layers() {
            let b = best(&layer.shape, 16, &hw256());
            rf += b.profile.energy_at_level(&em, Level::Rf);
            rest += b.profile.energy_at_level(&em, Level::Buffer)
                + b.profile.energy_at_level(&em, Level::Array);
        }
        let ratio = rf / rest;
        assert!(
            (2.0..=8.0).contains(&ratio),
            "RF:on-chip-rest ratio {ratio:.2} far from the chip's ~4:1"
        );
    }

    #[test]
    fn fc_energy_dominated_by_dram() {
        // Fig. 10: "DRAM accesses dominate the energy consumption of FC
        // layers due to the lack of convolutional data reuse."
        use eyeriss_arch::energy::Level;
        let em = EnergyModel::table_iv();
        let layer = &alexnet::fc_layers()[1]; // FC2
        let b = best(&layer.shape, 16, &hw256());
        let dram = b.profile.energy_at_level(&em, Level::Dram);
        assert!(dram > 0.5 * b.profile.total_energy(&em));
    }

    #[test]
    fn psum_accumulations_cover_chain() {
        // b*c*d of the psum split must cover C*R^2 accumulations.
        let layer = &alexnet::conv_layers()[2]; // CONV3
        let b = best(&layer.shape, 1, &hw256());
        let macs = layer.shape.macs(1) as f64;
        // RF psum accesses ~ 2*MACs when d dominates; never above 2*MACs
        // plus the array/buffer corrections.
        let rf_acc = b.profile.psum.rf_reads + b.profile.psum.rf_writes;
        assert!(rf_acc <= 2.0 * macs + 1.0);
        assert!(rf_acc > 0.5 * macs);
    }

    #[test]
    fn bigger_batch_does_not_hurt_energy_per_op() {
        let em = EnergyModel::table_iv();
        let layer = &alexnet::conv_layers()[1];
        let hw = hw256();
        let e1 = best(&layer.shape, 1, &hw).profile.total_energy(&em) / layer.shape.macs(1) as f64;
        let e16 =
            best(&layer.shape, 16, &hw).profile.total_energy(&em) / layer.shape.macs(16) as f64;
        assert!(e16 <= e1 * 1.02, "N=16 {e16} vs N=1 {e1}");
    }

    #[test]
    fn dram_per_op_small_for_conv() {
        // Fig. 11a: RS CONV DRAM accesses/op ~ a few 1e-3 at batch 16.
        let hw = hw256();
        let mut acc = 0.0;
        let mut ops = 0.0;
        for layer in alexnet::conv_layers() {
            let b = best(&layer.shape, 16, &hw);
            acc += b.profile.dram_accesses();
            ops += layer.shape.macs(16) as f64;
        }
        let per_op = acc / ops;
        assert!(
            (0.0005..0.01).contains(&per_op),
            "RS CONV DRAM/op {per_op:.5}"
        );
    }

    #[test]
    fn infeasible_when_filter_taller_than_array() {
        let shape = LayerShape::conv(8, 8, 33, 17, 1).unwrap();
        let hw = AcceleratorConfig {
            grid: eyeriss_arch::GridDims::new(16, 16),
            rf_bytes_per_pe: 512.0,
            buffer_bytes: 131072.0,
        };
        assert!(RowStationaryModel.mappings(&shape, 1, &hw).is_empty());
    }

    #[test]
    fn chip_configuration_runs_alexnet() {
        // The fabricated chip (12x14 PEs, 108 kB buffer) must map AlexNet.
        let hw = AcceleratorConfig::eyeriss_chip();
        for layer in alexnet::conv_layers() {
            let b = best(&layer.shape, 4, &hw);
            assert!(b.active_pes <= 168, "{}", layer.name);
        }
    }
}
