//! Lightweight spans recorded into a bounded ring buffer.
//!
//! A [`Span`](crate::Span) is an RAII guard: creating one while the
//! owning [`Telemetry`](crate::Telemetry) instance is enabled stamps a
//! start time, and dropping it appends a [`SpanRecord`] to the
//! instance's ring buffer. While disabled, creating a span performs a
//! single relaxed atomic load — no clock read, no allocation, no lock.
//! The ring has a fixed capacity; once full, the oldest record is
//! overwritten and a dropped counter is bumped, so long runs keep the
//! most recent timeline window.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default ring capacity (records), ~256 KiB.
pub(crate) const DEFAULT_SPAN_CAPACITY: usize = 4096;

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Small dense id for the current thread, stable for its lifetime
/// (std's `ThreadId` has no stable integer accessor).
pub(crate) fn current_tid() -> u64 {
    TID.with(|t| *t)
}

/// Synthetic `tid` used by retroactive request-timeline spans so they
/// render on one dedicated row instead of a worker's row. Real threads
/// are assigned dense tids starting at 1, so 0 never collides.
pub const REQUEST_ROW_TID: u64 = 0;

/// Process-wide span id allocator. Ids start at 1 and are **never
/// reused**, so a `parent` link into an overwritten ring slot is
/// detectably orphaned rather than silently rebound to a newer span.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Process-wide trace id allocator (same never-reused property).
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

pub(crate) fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Causal position of in-flight work: which trace it belongs to and
/// which span is its parent. `0` means "none" for both fields.
///
/// A context is minted once per logical request
/// ([`Telemetry::mint_trace`](crate::Telemetry::mint_trace)), carried
/// across queues and threads by value, and installed with
/// [`Telemetry::in_context`](crate::Telemetry::in_context); spans
/// opened while a context is installed parent themselves to it
/// automatically.
///
/// ```
/// use eyeriss_telemetry::{Telemetry, TraceContext};
///
/// let tele = Telemetry::new_enabled();
/// let ctx = tele.mint_trace(); // at the request boundary
/// assert!(!ctx.is_none());
///
/// // ... `ctx` travels with the request (it is Copy) ...
/// let worker = tele.clone();
/// std::thread::spawn(move || {
///     let _g = worker.in_context(ctx); // restore causality on this thread
///     let _span = worker.span("serve.batch", "serve");
/// })
/// .join()
/// .unwrap();
///
/// let span = &tele.snapshot().spans[0];
/// assert_eq!(span.trace, ctx.trace);
/// assert_eq!(span.parent, 0); // minted at the root: no parent span
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace this work belongs to (`0` = untraced).
    pub trace: u64,
    /// Span id of the causal parent (`0` = root of the trace).
    pub parent: u64,
}

impl TraceContext {
    /// The empty context: not part of any trace.
    pub const NONE: TraceContext = TraceContext {
        trace: 0,
        parent: 0,
    };

    /// True for the empty context.
    pub fn is_none(&self) -> bool {
        self.trace == 0 && self.parent == 0
    }
}

thread_local! {
    static AMBIENT: Cell<TraceContext> = const { Cell::new(TraceContext::NONE) };
}

/// The context currently installed on this thread.
pub(crate) fn ambient() -> TraceContext {
    AMBIENT.with(|c| c.get())
}

/// Installs `ctx` on this thread, returning the prior context so the
/// caller can restore it.
pub(crate) fn set_ambient(ctx: TraceContext) -> TraceContext {
    AMBIENT.with(|c| c.replace(ctx))
}

/// One completed span: a named interval on a thread's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name, e.g. `"cluster.array"`.
    pub name: &'static str,
    /// Category, e.g. `"cluster"` — becomes `cat` in the Chrome trace.
    pub cat: &'static str,
    /// Free-form numeric argument (array index, batch size, ...).
    pub arg: u64,
    /// Dense thread id assigned per recording thread.
    pub tid: u64,
    /// Start offset in nanoseconds since the instance epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Unique span id (process-wide, never reused; `0` only for
    /// records predating span identity).
    pub id: u64,
    /// Id of the causal parent span (`0` = root).
    pub parent: u64,
    /// Trace id (`0` = untraced).
    pub trace: u64,
    /// Id of a span this one flows *into* (`0` = none); rendered as a
    /// Chrome flow arrow.
    pub link: u64,
}

/// Fixed-capacity overwrite-oldest buffer of [`SpanRecord`]s.
#[derive(Debug)]
pub(crate) struct SpanRing {
    buf: Vec<SpanRecord>,
    /// Next write position once the buffer has wrapped.
    next: usize,
    capacity: usize,
    dropped: u64,
}

impl SpanRing {
    pub(crate) fn new(capacity: usize) -> Self {
        SpanRing {
            buf: Vec::new(),
            next: 0,
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    pub(crate) fn push(&mut self, record: SpanRecord) {
        if self.buf.len() < self.capacity {
            self.buf.push(record);
        } else {
            self.buf[self.next] = record;
            self.next = (self.next + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn set_capacity(&mut self, capacity: usize) {
        self.buf.clear();
        self.next = 0;
        self.dropped = 0;
        self.capacity = capacity.max(1);
    }

    pub(crate) fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
        self.dropped = 0;
    }

    /// Records in insertion order (oldest surviving record first).
    pub(crate) fn to_vec(&self) -> Vec<SpanRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(arg: u64) -> SpanRecord {
        SpanRecord {
            name: "t",
            cat: "test",
            arg,
            tid: 1,
            start_ns: arg,
            dur_ns: 1,
            id: next_span_id(),
            parent: 0,
            trace: 0,
            link: 0,
        }
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut ring = SpanRing::new(3);
        for i in 0..5 {
            ring.push(rec(i));
        }
        let args: Vec<u64> = ring.to_vec().iter().map(|r| r.arg).collect();
        assert_eq!(args, vec![2, 3, 4]);
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn ring_below_capacity_keeps_order() {
        let mut ring = SpanRing::new(8);
        for i in 0..3 {
            ring.push(rec(i));
        }
        let args: Vec<u64> = ring.to_vec().iter().map(|r| r.arg).collect();
        assert_eq!(args, vec![0, 1, 2]);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn tids_are_distinct_per_thread() {
        let here = current_tid();
        let there = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(here, there);
        assert_eq!(here, current_tid());
    }
}
