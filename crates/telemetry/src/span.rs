//! Lightweight spans recorded into a bounded ring buffer.
//!
//! A [`Span`](crate::Span) is an RAII guard: creating one while the
//! owning [`Telemetry`](crate::Telemetry) instance is enabled stamps a
//! start time, and dropping it appends a [`SpanRecord`] to the
//! instance's ring buffer. While disabled, creating a span performs a
//! single relaxed atomic load — no clock read, no allocation, no lock.
//! The ring has a fixed capacity; once full, the oldest record is
//! overwritten and a dropped counter is bumped, so long runs keep the
//! most recent timeline window.

use std::sync::atomic::{AtomicU64, Ordering};

/// Default ring capacity (records), ~256 KiB.
pub(crate) const DEFAULT_SPAN_CAPACITY: usize = 4096;

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Small dense id for the current thread, stable for its lifetime
/// (std's `ThreadId` has no stable integer accessor).
pub(crate) fn current_tid() -> u64 {
    TID.with(|t| *t)
}

/// One completed span: a named interval on a thread's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name, e.g. `"cluster.array"`.
    pub name: &'static str,
    /// Category, e.g. `"cluster"` — becomes `cat` in the Chrome trace.
    pub cat: &'static str,
    /// Free-form numeric argument (array index, batch size, ...).
    pub arg: u64,
    /// Dense thread id assigned per recording thread.
    pub tid: u64,
    /// Start offset in nanoseconds since the instance epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Fixed-capacity overwrite-oldest buffer of [`SpanRecord`]s.
#[derive(Debug)]
pub(crate) struct SpanRing {
    buf: Vec<SpanRecord>,
    /// Next write position once the buffer has wrapped.
    next: usize,
    capacity: usize,
    dropped: u64,
}

impl SpanRing {
    pub(crate) fn new(capacity: usize) -> Self {
        SpanRing {
            buf: Vec::new(),
            next: 0,
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    pub(crate) fn push(&mut self, record: SpanRecord) {
        if self.buf.len() < self.capacity {
            self.buf.push(record);
        } else {
            self.buf[self.next] = record;
            self.next = (self.next + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn set_capacity(&mut self, capacity: usize) {
        self.buf.clear();
        self.next = 0;
        self.dropped = 0;
        self.capacity = capacity.max(1);
    }

    pub(crate) fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
        self.dropped = 0;
    }

    /// Records in insertion order (oldest surviving record first).
    pub(crate) fn to_vec(&self) -> Vec<SpanRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(arg: u64) -> SpanRecord {
        SpanRecord {
            name: "t",
            cat: "test",
            arg,
            tid: 1,
            start_ns: arg,
            dur_ns: 1,
        }
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut ring = SpanRing::new(3);
        for i in 0..5 {
            ring.push(rec(i));
        }
        let args: Vec<u64> = ring.to_vec().iter().map(|r| r.arg).collect();
        assert_eq!(args, vec![2, 3, 4]);
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn ring_below_capacity_keeps_order() {
        let mut ring = SpanRing::new(8);
        for i in 0..3 {
            ring.push(rec(i));
        }
        let args: Vec<u64> = ring.to_vec().iter().map(|r| r.arg).collect();
        assert_eq!(args, vec![0, 1, 2]);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn tids_are_distinct_per_thread() {
        let here = current_tid();
        let there = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(here, there);
        assert_eq!(here, current_tid());
    }
}
