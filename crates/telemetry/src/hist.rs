//! Streaming log-bucketed histograms with O(1) record and mergeable
//! snapshots.
//!
//! # Bucket layout and error bound
//!
//! Values below [`EXACT_BELOW`] (= 2^[`SUB_BUCKET_BITS`] = 32) get one
//! bucket each and are recovered exactly. Above that, every power-of-two
//! octave is split into 32 sub-buckets of equal width, so a value `v`
//! lands in a bucket of width `2^(msb(v) - 5)` whose lower bound is at
//! least `32 * 2^(msb(v) - 5)`. Quantile estimates return the midpoint
//! of the selected bucket, so the absolute error is at most half a
//! bucket width and the *relative* error is bounded by
//! [`RELATIVE_ERROR`] = 1/64 (~1.6%):
//!
//! ```text
//! |estimate - exact| <= width / 2 <= lower / 64 <= exact / 64
//! ```
//!
//! Because the value -> bucket map is monotone, the nearest-rank walk
//! over bucket counts selects exactly the bucket containing the
//! nearest-rank sample, so the bound holds against the exact
//! nearest-rank percentile (property-tested against
//! `eyeriss_serve::metrics::percentile` in `tests/telemetry.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Number of sub-bucket bits per octave (32 sub-buckets).
pub const SUB_BUCKET_BITS: u32 = 5;

/// Values strictly below this are recorded exactly (one bucket each).
pub const EXACT_BELOW: u64 = 1 << SUB_BUCKET_BITS;

/// Documented bound on the relative error of quantile estimates for
/// values `>= EXACT_BELOW` (values below are exact).
pub const RELATIVE_ERROR: f64 = 1.0 / 64.0;

/// Total bucket count: 32 exact buckets + 59 octaves x 32 sub-buckets.
pub(crate) const NUM_BUCKETS: usize = (64 - SUB_BUCKET_BITS as usize + 1) << SUB_BUCKET_BITS;

/// Bucket index for a value (monotone in `v`).
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < EXACT_BELOW {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BUCKET_BITS;
        (((shift + 1) as usize) << SUB_BUCKET_BITS) + ((v >> shift) as usize - EXACT_BELOW as usize)
    }
}

/// Inclusive lower bound and width of a bucket.
pub(crate) fn bucket_bounds(index: usize) -> (u64, u64) {
    let octave = index >> SUB_BUCKET_BITS;
    if octave == 0 {
        (index as u64, 1)
    } else {
        let sub = (index & (EXACT_BELOW as usize - 1)) as u64;
        let shift = (octave - 1) as u32;
        ((EXACT_BELOW + sub) << shift, 1u64 << shift)
    }
}

/// Midpoint estimate for a bucket (exact for width-1 buckets).
fn bucket_estimate(index: usize) -> u64 {
    let (lower, width) = bucket_bounds(index);
    lower + (width >> 1)
}

/// Shared lock-free histogram storage: a fixed array of relaxed atomic
/// bucket counters plus running `count` and `sum`.
#[derive(Debug)]
pub(crate) struct HistCore {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistCore {
    pub(crate) fn new() -> Self {
        HistCore {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    #[inline]
    pub(crate) fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub(crate) fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Handle to a named streaming histogram registered in a
/// [`Telemetry`](crate::Telemetry) instance.
///
/// [`record`](Histogram::record) is O(1) — one bucket index computation
/// and three relaxed atomic adds — and a single relaxed load when the
/// owning instance is disabled. Clones share the same storage.
#[derive(Debug, Clone)]
pub struct Histogram {
    pub(crate) enabled: Arc<std::sync::atomic::AtomicBool>,
    pub(crate) core: Arc<HistCore>,
}

impl Histogram {
    /// Records one value (no-op while the owning instance is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.core.record(v);
        }
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        if self.enabled.load(Ordering::Relaxed) {
            self.core.record(d.as_nanos().min(u64::MAX as u128) as u64);
        }
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.core.snapshot()
    }
}

/// Immutable point-in-time copy of a [`Histogram`], supporting quantile
/// queries and lossless merging.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Dense bucket counts with trailing zeros trimmed.
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl HistogramSnapshot {
    /// Rebuilds a snapshot from sparse `(index, count)` pairs plus the
    /// recorded `count` and `sum` (the wire decode path).
    pub(crate) fn from_sparse(count: u64, sum: u64, pairs: &[(usize, u64)]) -> Self {
        let len = pairs.iter().map(|&(i, _)| i + 1).max().unwrap_or(0);
        let mut buckets = vec![0u64; len.min(NUM_BUCKETS)];
        for &(i, c) in pairs {
            if i < buckets.len() {
                buckets[i] += c;
            }
        }
        HistogramSnapshot {
            buckets,
            count,
            sum,
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (wrapping at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile estimate for `q` in `(0, 1]`.
    ///
    /// Returns the midpoint of the bucket containing the nearest-rank
    /// sample: exact for values below [`EXACT_BELOW`], within
    /// [`RELATIVE_ERROR`] of the exact sample otherwise. `None` when
    /// the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_estimate(i));
            }
        }
        // Relaxed reads can observe `count` ahead of the bucket counters;
        // fall back to the highest populated bucket.
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .map(bucket_estimate)
    }

    /// Merges another snapshot into this one (bucket-wise addition).
    ///
    /// Merging is associative and commutative, so per-shard snapshots
    /// can be combined in any order with the same result.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, &src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// True when every bucket count is `>=` the corresponding count in
    /// `earlier` — i.e. this snapshot could have been taken later on
    /// the same histogram (monotone consistency).
    pub fn dominates(&self, earlier: &HistogramSnapshot) -> bool {
        if earlier.buckets.len() > self.buckets.len() || earlier.count > self.count {
            return false;
        }
        self.buckets
            .iter()
            .zip(earlier.buckets.iter())
            .all(|(l, e)| l >= e)
    }

    /// Sparse `(bucket index, count)` pairs for non-empty buckets.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_monotone_and_contiguous() {
        let mut prev = bucket_index(0);
        assert_eq!(prev, 0);
        for v in 1..4096u64 {
            let i = bucket_index(v);
            assert!(i == prev || i == prev + 1, "gap at {v}");
            prev = i;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bounds_invert_index() {
        for v in [0, 1, 31, 32, 33, 63, 64, 1000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            let (lower, width) = bucket_bounds(i);
            assert!(lower <= v, "lower {lower} > v {v}");
            assert!(v - lower < width, "v {v} outside bucket {i}");
        }
    }

    #[test]
    fn small_values_exact() {
        let core = HistCore::new();
        for v in 0..32 {
            core.record(v);
        }
        let snap = core.snapshot();
        for v in 0..32u64 {
            let q = (v + 1) as f64 / 32.0;
            assert_eq!(snap.quantile(q), Some(v));
        }
    }

    #[test]
    fn merge_matches_combined_recording() {
        let (a, b, both) = (HistCore::new(), HistCore::new(), HistCore::new());
        for v in 0..1000u64 {
            let h = if v % 2 == 0 { &a } else { &b };
            h.record(v * 17);
            both.record(v * 17);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn dominates_tracks_history() {
        let core = HistCore::new();
        core.record(5);
        core.record(77);
        let early = core.snapshot();
        core.record(5);
        core.record(100_000);
        let late = core.snapshot();
        assert!(late.dominates(&early));
        assert!(!early.dominates(&late));
        assert!(late.dominates(&late));
    }
}
