//! Snapshot type and the two exporters: a schema-versioned JSON
//! snapshot (via `eyeriss-wire`) and Chrome `chrome://tracing`
//! trace-event JSON.

use crate::hist::HistogramSnapshot;
use crate::span::SpanRecord;
use eyeriss_wire::{Value, WireError};
use std::fmt::Write as _;
use std::time::Duration;

/// Schema name of the wire-encoded snapshot.
pub const SNAPSHOT_SCHEMA: &str = "eyeriss-telemetry";
/// Schema version of the wire-encoded snapshot.
pub const SNAPSHOT_VERSION: u64 = 1;

/// A point-in-time copy of every metric in a
/// [`Telemetry`](crate::Telemetry) instance, plus the surviving span
/// window.
///
/// Taking a snapshot is safe while recording continues: metric reads
/// are relaxed atomic loads, so a snapshot is a consistent-enough view
/// for monitoring (per-metric values are exact; cross-metric skew is
/// bounded by the time the copy takes).
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Time since the instance epoch when the snapshot was taken.
    pub elapsed: Duration,
    /// Counters in registration order.
    pub counters: Vec<(String, u64)>,
    /// Gauges in registration order.
    pub gauges: Vec<(String, i64)>,
    /// Histograms in registration order.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Surviving spans, oldest first.
    pub spans: Vec<SpanRecord>,
    /// Spans evicted from the ring because it was full.
    pub spans_dropped: u64,
}

impl TelemetrySnapshot {
    /// Value of a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Encodes the snapshot as a schema-versioned wire value
    /// (`"eyeriss-telemetry"` v1). Spans are summarized by count —
    /// use [`chrome_trace`](TelemetrySnapshot::chrome_trace) for the
    /// timeline itself.
    pub fn to_wire(&self) -> Value {
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| Value::obj([("name", Value::str(n.clone())), ("value", Value::u64(*v))]));
        let gauges = self.gauges.iter().map(|(n, v)| {
            Value::obj([
                ("name", Value::str(n.clone())),
                ("value", Value::u64(v.unsigned_abs())),
                ("negative", Value::Bool(*v < 0)),
            ])
        });
        let hists = self.histograms.iter().map(|(n, h)| {
            let buckets = h
                .nonzero_buckets()
                .map(|(i, c)| Value::arr([Value::usize(i), Value::u64(c)]));
            Value::obj([
                ("name", Value::str(n.clone())),
                ("count", Value::u64(h.count())),
                ("sum", Value::u64(h.sum())),
                ("buckets", Value::arr(buckets)),
            ])
        });
        Value::obj([
            ("schema", Value::str(SNAPSHOT_SCHEMA)),
            ("v", Value::u64(SNAPSHOT_VERSION)),
            ("elapsed_ns", Value::u64(saturating_ns(self.elapsed))),
            ("counters", Value::arr(counters)),
            ("gauges", Value::arr(gauges)),
            ("histograms", Value::arr(hists)),
            (
                "spans",
                Value::obj([
                    ("recorded", Value::usize(self.spans.len())),
                    ("dropped", Value::u64(self.spans_dropped)),
                ]),
            ),
        ])
    }

    /// Decodes a wire value produced by
    /// [`to_wire`](TelemetrySnapshot::to_wire). Span records are not
    /// wire-encoded, so `spans` comes back empty (the dropped count and
    /// every metric round-trip losslessly).
    pub fn from_wire(value: &Value) -> Result<TelemetrySnapshot, WireError> {
        value.expect_schema(SNAPSHOT_SCHEMA, SNAPSHOT_VERSION)?;
        let mut counters = Vec::new();
        for c in value.get("counters")?.as_arr()? {
            counters.push((
                c.get("name")?.as_str()?.to_string(),
                c.get("value")?.as_u64()?,
            ));
        }
        let mut gauges = Vec::new();
        for g in value.get("gauges")?.as_arr()? {
            let magnitude = g.get("value")?.as_u64()? as i64;
            let signed = if g.get("negative")?.as_bool()? {
                -magnitude
            } else {
                magnitude
            };
            gauges.push((g.get("name")?.as_str()?.to_string(), signed));
        }
        let mut histograms = Vec::new();
        for h in value.get("histograms")?.as_arr()? {
            let mut pairs = Vec::new();
            for pair in h.get("buckets")?.as_arr()? {
                let pair = pair.as_arr()?;
                if pair.len() != 2 {
                    return Err(WireError::Invalid("histogram bucket pair".into()));
                }
                pairs.push((pair[0].as_usize()?, pair[1].as_u64()?));
            }
            histograms.push((
                h.get("name")?.as_str()?.to_string(),
                HistogramSnapshot::from_sparse(
                    h.get("count")?.as_u64()?,
                    h.get("sum")?.as_u64()?,
                    &pairs,
                ),
            ));
        }
        Ok(TelemetrySnapshot {
            elapsed: Duration::from_nanos(value.get("elapsed_ns")?.as_u64()?),
            counters,
            gauges,
            histograms,
            spans: Vec::new(),
            spans_dropped: value.get("spans")?.get("dropped")?.as_u64()?,
        })
    }

    /// Renders the span window as Chrome trace-event JSON.
    ///
    /// Load the output in `chrome://tracing` (or <https://ui.perfetto.dev>):
    /// each span becomes a complete (`"ph":"X"`) event with
    /// microsecond timestamps relative to the instance epoch, grouped
    /// by recording thread. Threads are labeled with `"ph":"M"`
    /// metadata (`process_name`/`thread_name`) so rows read "array
    /// worker 3" instead of a bare tid. Causal structure becomes flow
    /// (`"ph":"s"`/`"ph":"f"`) arrows: one per explicit span link and
    /// one per cross-thread parent edge whose parent survives in the
    /// ring. Counters and gauges are appended as final counter
    /// (`"ph":"C"`) samples so the snapshot values show up in the same
    /// timeline.
    pub fn chrome_trace(&self) -> String {
        let mut spans = self.spans.clone();
        spans.sort_by_key(|s| s.start_ns);
        let mut events: Vec<String> = Vec::with_capacity(spans.len() * 2 + 8);

        events.push(
            "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"eyeriss\"}}"
                .to_string(),
        );
        let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for &tid in &tids {
            let label = thread_label(tid, &spans);
            events.push(format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
                escape(&label),
            ));
        }

        for s in &spans {
            events.push(format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"name\":\"{}\",\"cat\":\"{}\",\"args\":{{\"arg\":{},\"id\":{},\"parent\":{},\"trace\":{}}}}}",
                s.tid,
                s.start_ns as f64 / 1e3,
                s.dur_ns as f64 / 1e3,
                escape(s.name),
                escape(s.cat),
                s.arg,
                s.id,
                s.parent,
                s.trace,
            ));
        }

        // Flow arrows. A step ("s") and its finish ("f", binding to
        // the enclosing slice) must share a numeric id and matching
        // name/cat; span ids are process-unique so they serve as flow
        // ids directly.
        let by_id = |id: u64| {
            (id != 0)
                .then(|| spans.iter().find(|s| s.id == id))
                .flatten()
        };
        let mut flow = |id: u64, from_tid: u64, from_ts: u64, to_tid: u64, to_ts: u64| {
            let start = from_ts.min(to_ts);
            events.push(format!(
                "{{\"ph\":\"s\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"id\":{},\"name\":\"flow\",\"cat\":\"flow\"}}",
                from_tid,
                start as f64 / 1e3,
                id,
            ));
            events.push(format!(
                "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"id\":{},\"name\":\"flow\",\"cat\":\"flow\"}}",
                to_tid,
                to_ts as f64 / 1e3,
                id,
            ));
        };
        for s in &spans {
            // Explicit link: this span's end flows into the target's start.
            if let Some(target) = by_id(s.link) {
                flow(
                    s.id,
                    s.tid,
                    s.start_ns.saturating_add(s.dur_ns),
                    target.tid,
                    target.start_ns,
                );
            }
            // Cross-thread parent edge (same-thread nesting is already
            // visible as slice containment).
            if let Some(parent) = by_id(s.parent) {
                if parent.tid != s.tid {
                    flow(s.id, parent.tid, s.start_ns, s.tid, s.start_ns);
                }
            }
        }

        let end_us = saturating_ns(self.elapsed) as f64 / 1e3;
        for (name, v) in &self.counters {
            events.push(format!(
                "{{\"ph\":\"C\",\"pid\":1,\"ts\":{end_us:.3},\"name\":\"{}\",\"args\":{{\"value\":{v}}}}}",
                escape(name),
            ));
        }
        for (name, v) in &self.gauges {
            events.push(format!(
                "{{\"ph\":\"C\",\"pid\":1,\"ts\":{end_us:.3},\"name\":\"{}\",\"args\":{{\"value\":{v}}}}}",
                escape(name),
            ));
        }

        let mut out = String::with_capacity(64 + events.iter().map(|e| e.len() + 1).sum::<usize>());
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        out.push_str(&events.join(","));
        out.push_str("]}");
        out
    }
}

/// Human-readable row label for a tid, inferred from the spans it
/// recorded.
fn thread_label(tid: u64, spans: &[SpanRecord]) -> String {
    if tid == crate::REQUEST_ROW_TID {
        return "requests".to_string();
    }
    let mine = || spans.iter().filter(move |s| s.tid == tid);
    if mine().any(|s| s.name == "serve.batch") {
        format!("serve worker {tid}")
    } else if mine().any(|s| s.name == "cluster.array") {
        format!("array worker {tid}")
    } else if let Some(first) = mine().next() {
        format!("{} {tid}", first.cat)
    } else {
        format!("thread {tid}")
    }
}

fn saturating_ns(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

/// Minimal JSON string escaping for names (control chars, quote,
/// backslash).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_trace_is_valid_wire_json() {
        let snap = TelemetrySnapshot {
            elapsed: Duration::from_micros(1500),
            counters: vec![("c.x".into(), 3)],
            gauges: vec![("g.y".into(), -2)],
            histograms: Vec::new(),
            spans: vec![SpanRecord {
                name: "serve.batch",
                cat: "serve",
                arg: 4,
                tid: 1,
                start_ns: 1000,
                dur_ns: 2500,
                id: 10,
                parent: 0,
                trace: 1,
                link: 0,
            }],
            spans_dropped: 0,
        };
        let trace = snap.chrome_trace();
        // The trace uses fractional timestamps, which eyeriss-wire's
        // parser does not accept, so check structure textually.
        assert!(trace.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"M\""));
        assert!(trace.contains("\"name\":\"process_name\""));
        assert!(trace.contains("\"name\":\"serve worker 1\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"name\":\"serve.batch\""));
        assert!(trace.contains("\"ts\":1.000"));
        assert!(trace.contains("\"dur\":2.500"));
        assert!(trace.contains("\"id\":10"));
        assert!(trace.contains("\"trace\":1"));
        assert!(trace.contains("\"ph\":\"C\""));
        assert!(trace.contains("\"value\":-2"));
        assert!(trace.ends_with("]}"));
    }

    fn span(id: u64, parent: u64, link: u64, tid: u64, start_ns: u64) -> SpanRecord {
        SpanRecord {
            name: "s",
            cat: "test",
            arg: 0,
            tid,
            start_ns,
            dur_ns: 100,
            id,
            parent,
            trace: 1,
            link,
        }
    }

    #[test]
    fn flow_events_cover_links_and_cross_thread_parents() {
        let snap = TelemetrySnapshot {
            spans: vec![
                // Queue span on the request row flowing into span 2.
                span(1, 0, 2, 0, 0),
                // Batch span on worker tid 3.
                span(2, 0, 0, 3, 100),
                // Child on a different thread: cross-thread parent edge.
                span(3, 2, 0, 4, 150),
                // Same-thread child: containment, no flow arrow.
                span(4, 2, 0, 3, 160),
                // Parent evicted from the ring: explicitly orphaned.
                span(5, 999, 0, 4, 170),
            ],
            ..TelemetrySnapshot::default()
        };
        let trace = snap.chrome_trace();
        let count = |needle: &str| trace.matches(needle).count();
        // One flow per link (span 1 → 2) and one per cross-thread
        // parent (span 3 under 2); spans 4 and 5 contribute none.
        assert_eq!(count("\"ph\":\"s\""), 2);
        assert_eq!(count("\"ph\":\"f\""), 2);
        assert!(trace.contains("\"ph\":\"f\",\"bp\":\"e\""));
        // Flow ids reuse the originating span ids.
        assert!(trace.contains("\"ts\":0.100,\"id\":1,\"name\":\"flow\""));
        assert!(trace.contains("\"id\":3,\"name\":\"flow\""));
        // The request row and plain rows get named.
        assert!(trace.contains("\"name\":\"requests\""));
        assert!(trace.contains("\"name\":\"test 3\""));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }
}
