//! Snapshot type and the two exporters: a schema-versioned JSON
//! snapshot (via `eyeriss-wire`) and Chrome `chrome://tracing`
//! trace-event JSON.

use crate::hist::HistogramSnapshot;
use crate::span::SpanRecord;
use eyeriss_wire::{Value, WireError};
use std::fmt::Write as _;
use std::time::Duration;

/// Schema name of the wire-encoded snapshot.
pub const SNAPSHOT_SCHEMA: &str = "eyeriss-telemetry";
/// Schema version of the wire-encoded snapshot.
pub const SNAPSHOT_VERSION: u64 = 1;

/// A point-in-time copy of every metric in a
/// [`Telemetry`](crate::Telemetry) instance, plus the surviving span
/// window.
///
/// Taking a snapshot is safe while recording continues: metric reads
/// are relaxed atomic loads, so a snapshot is a consistent-enough view
/// for monitoring (per-metric values are exact; cross-metric skew is
/// bounded by the time the copy takes).
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Time since the instance epoch when the snapshot was taken.
    pub elapsed: Duration,
    /// Counters in registration order.
    pub counters: Vec<(String, u64)>,
    /// Gauges in registration order.
    pub gauges: Vec<(String, i64)>,
    /// Histograms in registration order.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Surviving spans, oldest first.
    pub spans: Vec<SpanRecord>,
    /// Spans evicted from the ring because it was full.
    pub spans_dropped: u64,
}

impl TelemetrySnapshot {
    /// Value of a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Encodes the snapshot as a schema-versioned wire value
    /// (`"eyeriss-telemetry"` v1). Spans are summarized by count —
    /// use [`chrome_trace`](TelemetrySnapshot::chrome_trace) for the
    /// timeline itself.
    pub fn to_wire(&self) -> Value {
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| Value::obj([("name", Value::str(n.clone())), ("value", Value::u64(*v))]));
        let gauges = self.gauges.iter().map(|(n, v)| {
            Value::obj([
                ("name", Value::str(n.clone())),
                ("value", Value::u64(v.unsigned_abs())),
                ("negative", Value::Bool(*v < 0)),
            ])
        });
        let hists = self.histograms.iter().map(|(n, h)| {
            let buckets = h
                .nonzero_buckets()
                .map(|(i, c)| Value::arr([Value::usize(i), Value::u64(c)]));
            Value::obj([
                ("name", Value::str(n.clone())),
                ("count", Value::u64(h.count())),
                ("sum", Value::u64(h.sum())),
                ("buckets", Value::arr(buckets)),
            ])
        });
        Value::obj([
            ("schema", Value::str(SNAPSHOT_SCHEMA)),
            ("v", Value::u64(SNAPSHOT_VERSION)),
            ("elapsed_ns", Value::u64(saturating_ns(self.elapsed))),
            ("counters", Value::arr(counters)),
            ("gauges", Value::arr(gauges)),
            ("histograms", Value::arr(hists)),
            (
                "spans",
                Value::obj([
                    ("recorded", Value::usize(self.spans.len())),
                    ("dropped", Value::u64(self.spans_dropped)),
                ]),
            ),
        ])
    }

    /// Decodes a wire value produced by
    /// [`to_wire`](TelemetrySnapshot::to_wire). Span records are not
    /// wire-encoded, so `spans` comes back empty (the dropped count and
    /// every metric round-trip losslessly).
    pub fn from_wire(value: &Value) -> Result<TelemetrySnapshot, WireError> {
        value.expect_schema(SNAPSHOT_SCHEMA, SNAPSHOT_VERSION)?;
        let mut counters = Vec::new();
        for c in value.get("counters")?.as_arr()? {
            counters.push((
                c.get("name")?.as_str()?.to_string(),
                c.get("value")?.as_u64()?,
            ));
        }
        let mut gauges = Vec::new();
        for g in value.get("gauges")?.as_arr()? {
            let magnitude = g.get("value")?.as_u64()? as i64;
            let signed = if g.get("negative")?.as_bool()? {
                -magnitude
            } else {
                magnitude
            };
            gauges.push((g.get("name")?.as_str()?.to_string(), signed));
        }
        let mut histograms = Vec::new();
        for h in value.get("histograms")?.as_arr()? {
            let mut pairs = Vec::new();
            for pair in h.get("buckets")?.as_arr()? {
                let pair = pair.as_arr()?;
                if pair.len() != 2 {
                    return Err(WireError::Invalid("histogram bucket pair".into()));
                }
                pairs.push((pair[0].as_usize()?, pair[1].as_u64()?));
            }
            histograms.push((
                h.get("name")?.as_str()?.to_string(),
                HistogramSnapshot::from_sparse(
                    h.get("count")?.as_u64()?,
                    h.get("sum")?.as_u64()?,
                    &pairs,
                ),
            ));
        }
        Ok(TelemetrySnapshot {
            elapsed: Duration::from_nanos(value.get("elapsed_ns")?.as_u64()?),
            counters,
            gauges,
            histograms,
            spans: Vec::new(),
            spans_dropped: value.get("spans")?.get("dropped")?.as_u64()?,
        })
    }

    /// Renders the span window as Chrome trace-event JSON.
    ///
    /// Load the output in `chrome://tracing` (or <https://ui.perfetto.dev>):
    /// each span becomes a complete (`"ph":"X"`) event with
    /// microsecond timestamps relative to the instance epoch, grouped
    /// by recording thread. Counters and gauges are appended as final
    /// counter (`"ph":"C"`) samples so the snapshot values show up in
    /// the same timeline.
    pub fn chrome_trace(&self) -> String {
        let mut spans = self.spans.clone();
        spans.sort_by_key(|s| s.start_ns);
        let mut out = String::with_capacity(128 + spans.len() * 128);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for s in &spans {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"name\":\"{}\",\"cat\":\"{}\",\"args\":{{\"arg\":{}}}}}",
                s.tid,
                s.start_ns as f64 / 1e3,
                s.dur_ns as f64 / 1e3,
                escape(s.name),
                escape(s.cat),
                s.arg,
            );
        }
        let end_us = saturating_ns(self.elapsed) as f64 / 1e3;
        for (name, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"ph\":\"C\",\"pid\":1,\"ts\":{:.3},\"name\":\"{}\",\"args\":{{\"value\":{}}}}}",
                end_us,
                escape(name),
                v,
            );
        }
        for (name, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"ph\":\"C\",\"pid\":1,\"ts\":{:.3},\"name\":\"{}\",\"args\":{{\"value\":{}}}}}",
                end_us,
                escape(name),
                v,
            );
        }
        out.push_str("]}");
        out
    }
}

fn saturating_ns(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

/// Minimal JSON string escaping for names (control chars, quote,
/// backslash).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_trace_is_valid_wire_json() {
        let snap = TelemetrySnapshot {
            elapsed: Duration::from_micros(1500),
            counters: vec![("c.x".into(), 3)],
            gauges: vec![("g.y".into(), -2)],
            histograms: Vec::new(),
            spans: vec![SpanRecord {
                name: "serve.batch",
                cat: "serve",
                arg: 4,
                tid: 1,
                start_ns: 1000,
                dur_ns: 2500,
            }],
            spans_dropped: 0,
        };
        let trace = snap.chrome_trace();
        // The trace uses fractional timestamps, which eyeriss-wire's
        // parser does not accept, so check structure textually.
        assert!(trace.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"name\":\"serve.batch\""));
        assert!(trace.contains("\"ts\":1.000"));
        assert!(trace.contains("\"dur\":2.500"));
        assert!(trace.contains("\"ph\":\"C\""));
        assert!(trace.contains("\"value\":-2"));
        assert!(trace.ends_with("]}"));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }
}
