//! Live observability for the Eyeriss workspace: named atomic counters
//! and gauges, streaming log-bucketed histograms, lightweight spans,
//! and two exporters (schema-versioned JSON via `eyeriss-wire`, and
//! Chrome `chrome://tracing` trace-event JSON).
//!
//! Hand-rolled like `eyeriss-par` and `eyeriss-wire`: the build is
//! fully offline, so no `tracing`/`metrics` dependencies — std only.
//!
//! # Design
//!
//! A [`Telemetry`] instance owns a registry of named metrics and a
//! bounded span ring. Instrumented components resolve *handles*
//! ([`Counter`], [`Gauge`], [`Histogram`]) once, on their cold path;
//! every hot-path operation on a handle is then lock-free — relaxed
//! atomics only — and gated by a **single relaxed load** of the
//! instance's enabled flag. While disabled, no clock is read, nothing
//! allocates, and no lock is taken, so instrumentation compiled into
//! release binaries costs one predictable branch per site.
//!
//! Registration (name lookup) takes a mutex and is intended for setup
//! paths only. Snapshots ([`Telemetry::snapshot`]) can be taken at any
//! time, concurrently with recording.
//!
//! # Instances
//!
//! Most components default to the process-wide [`Telemetry::global`]
//! instance, which starts **disabled**. Tests and servers that want
//! isolated metrics construct their own instance and inject it
//! (`Cluster::with_telemetry`, `ServeConfig::telemetry`,
//! `Engine::builder().telemetry(..)`).
//!
//! # Example
//!
//! ```
//! use eyeriss_telemetry::Telemetry;
//!
//! let tele = Telemetry::new_enabled();
//! let requests = tele.counter("serve.completed");
//! let latency = tele.histogram("serve.total_ns");
//! requests.inc();
//! latency.record(1_250_000);
//! {
//!     let _span = tele.span_with("serve.batch", "serve", 4);
//!     // ... work ...
//! }
//! let snap = tele.snapshot();
//! assert_eq!(snap.counter("serve.completed"), Some(1));
//! assert_eq!(snap.histogram("serve.total_ns").unwrap().count(), 1);
//! assert_eq!(snap.spans.len(), 1);
//! let json = snap.to_wire().render(); // schema "eyeriss-telemetry" v1
//! let trace = snap.chrome_trace(); // load in chrome://tracing
//! assert!(json.contains("eyeriss-telemetry") && trace.contains("serve.batch"));
//! ```

mod export;
mod hist;
mod slo;
mod span;

pub use export::{TelemetrySnapshot, SNAPSHOT_SCHEMA, SNAPSHOT_VERSION};
pub use hist::{Histogram, HistogramSnapshot, EXACT_BELOW, RELATIVE_ERROR, SUB_BUCKET_BITS};
pub use slo::{
    FlightDump, FlightRecord, SloMonitor, SloSignal, SloSpec, FLIGHT_SCHEMA, FLIGHT_VERSION,
};
pub use span::{SpanRecord, TraceContext, REQUEST_ROW_TID};

use hist::HistCore;
use span::{
    ambient, current_tid, next_span_id, next_trace_id, set_ambient, SpanRing, DEFAULT_SPAN_CAPACITY,
};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Metric handles
// ---------------------------------------------------------------------------

/// Handle to a named monotonically-increasing counter.
///
/// Clones share the same storage; all operations are relaxed atomics
/// and no-ops (one relaxed load) while the owning instance is disabled.
#[derive(Debug, Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 to the counter.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Handle to a named signed gauge (an instantaneous level, e.g. queue
/// depth).
///
/// Clones share the same storage; all operations are relaxed atomics
/// and no-ops (one relaxed load) while the owning instance is disabled.
#[derive(Debug, Clone)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Adds `n` (may be negative) to the gauge.
    #[inline]
    pub fn add(&self, n: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments the gauge.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrements the gauge.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Overwrites the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Increments the gauge and returns a guard that decrements it on
    /// drop — including during unwinding, so a panic in the guarded
    /// scope can't leak the level permanently.
    #[inline]
    #[must_use = "dropping the scope immediately undoes the increment"]
    pub fn scoped_inc(&self) -> GaugeScope {
        self.inc();
        GaugeScope {
            gauge: self.clone(),
        }
    }
}

/// RAII guard from [`Gauge::scoped_inc`]: holds one unit of the gauge
/// and releases it on drop, panic-safe.
#[derive(Debug)]
pub struct GaugeScope {
    gauge: Gauge,
}

impl Drop for GaugeScope {
    fn drop(&mut self) {
        self.gauge.dec();
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistCore>),
}

/// Named metric storage behind a [`Telemetry`] instance.
///
/// The *hot path* (recording through resolved handles) is lock-free;
/// the registry mutex guards only registration and snapshotting, both
/// cold paths. Names are registered once: resolving the same name
/// again returns a handle to the same storage, and resolving a name as
/// a different metric kind panics (a programming error, caught in
/// tests).
#[derive(Debug, Default)]
struct Registry {
    entries: Mutex<Vec<(String, Metric)>>,
}

impl Registry {
    fn counter(&self, name: &str, enabled: &Arc<AtomicBool>) -> Counter {
        let mut entries = self.entries.lock().expect("telemetry registry poisoned");
        let cell = match entries.iter().find(|(n, _)| n == name) {
            Some((_, Metric::Counter(c))) => Arc::clone(c),
            Some((_, _)) => {
                panic!("telemetry metric {name:?} already registered with another kind")
            }
            None => {
                let c = Arc::new(AtomicU64::new(0));
                entries.push((name.to_string(), Metric::Counter(Arc::clone(&c))));
                c
            }
        };
        Counter {
            enabled: Arc::clone(enabled),
            cell,
        }
    }

    fn gauge(&self, name: &str, enabled: &Arc<AtomicBool>) -> Gauge {
        let mut entries = self.entries.lock().expect("telemetry registry poisoned");
        let cell = match entries.iter().find(|(n, _)| n == name) {
            Some((_, Metric::Gauge(g))) => Arc::clone(g),
            Some((_, _)) => {
                panic!("telemetry metric {name:?} already registered with another kind")
            }
            None => {
                let g = Arc::new(AtomicI64::new(0));
                entries.push((name.to_string(), Metric::Gauge(Arc::clone(&g))));
                g
            }
        };
        Gauge {
            enabled: Arc::clone(enabled),
            cell,
        }
    }

    fn histogram(&self, name: &str, enabled: &Arc<AtomicBool>) -> Histogram {
        let mut entries = self.entries.lock().expect("telemetry registry poisoned");
        let core = match entries.iter().find(|(n, _)| n == name) {
            Some((_, Metric::Histogram(h))) => Arc::clone(h),
            Some((_, _)) => {
                panic!("telemetry metric {name:?} already registered with another kind")
            }
            None => {
                let h = Arc::new(HistCore::new());
                entries.push((name.to_string(), Metric::Histogram(Arc::clone(&h))));
                h
            }
        };
        Histogram {
            enabled: Arc::clone(enabled),
            core,
        }
    }
}

// ---------------------------------------------------------------------------
// Telemetry instance
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Inner {
    enabled: Arc<AtomicBool>,
    epoch: Instant,
    registry: Registry,
    spans: Mutex<SpanRing>,
}

/// A cheaply-cloneable handle to one telemetry instance (registry +
/// span ring + enabled switch). See the [crate docs](crate) for the
/// cost model and instance conventions.
#[derive(Debug, Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    fn with_enabled(enabled: bool) -> Self {
        Telemetry {
            inner: Arc::new(Inner {
                enabled: Arc::new(AtomicBool::new(enabled)),
                epoch: Instant::now(),
                registry: Registry::default(),
                spans: Mutex::new(SpanRing::new(DEFAULT_SPAN_CAPACITY)),
            }),
        }
    }

    /// A fresh, **disabled** instance.
    pub fn new() -> Self {
        Telemetry::with_enabled(false)
    }

    /// A fresh, enabled instance.
    pub fn new_enabled() -> Self {
        Telemetry::with_enabled(true)
    }

    /// The process-wide instance most components default to. Starts
    /// disabled; flip it with [`set_enabled`](Telemetry::set_enabled).
    pub fn global() -> &'static Telemetry {
        static GLOBAL: OnceLock<Telemetry> = OnceLock::new();
        GLOBAL.get_or_init(Telemetry::new)
    }

    /// Whether recording is currently enabled.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables recording. Existing handles observe the
    /// change on their next operation.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// True when two handles refer to the same instance.
    pub fn same_instance(&self, other: &Telemetry) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Resolves (registering on first use) a counter handle.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner.registry.counter(name, &self.inner.enabled)
    }

    /// Resolves (registering on first use) a gauge handle.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner.registry.gauge(name, &self.inner.enabled)
    }

    /// Resolves (registering on first use) a histogram handle.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.inner.registry.histogram(name, &self.inner.enabled)
    }

    /// Starts a span (see [`Span`]); equivalent to
    /// [`span_with`](Telemetry::span_with) with `arg = 0`.
    #[inline]
    pub fn span(&self, name: &'static str, cat: &'static str) -> Span<'_> {
        self.span_with(name, cat, 0)
    }

    /// Starts a span carrying a numeric argument (array index, batch
    /// size, ...). While the instance is disabled this reads no clock
    /// and records nothing.
    ///
    /// While enabled, the span allocates a unique id, parents itself
    /// to the thread's current [`TraceContext`], and installs itself
    /// as the parent for spans opened inside its scope (restored on
    /// drop), so same-thread nesting links up automatically.
    #[inline]
    pub fn span_with(&self, name: &'static str, cat: &'static str, arg: u64) -> Span<'_> {
        Span {
            active: if self.inner.enabled.load(Ordering::Relaxed) {
                Some(self.begin_span(name, cat, arg))
            } else {
                None
            },
        }
    }

    /// Enabled-path half of [`span_with`](Telemetry::span_with), kept
    /// out of line so a disabled call site stays a load + branch and
    /// does not bloat the instrumented function's code.
    #[cold]
    #[inline(never)]
    fn begin_span(&self, name: &'static str, cat: &'static str, arg: u64) -> SpanActive<'_> {
        let id = next_span_id();
        let saved = ambient();
        set_ambient(TraceContext {
            trace: saved.trace,
            parent: id,
        });
        SpanActive {
            tele: self,
            name,
            cat,
            arg,
            start: Instant::now(),
            id,
            saved,
            link: 0,
        }
    }

    /// Mints a fresh [`TraceContext`] rooting a new trace. One relaxed
    /// load while disabled ([`TraceContext::NONE`] is returned).
    #[inline]
    pub fn mint_trace(&self) -> TraceContext {
        if self.inner.enabled.load(Ordering::Relaxed) {
            TraceContext {
                trace: next_trace_id(),
                parent: 0,
            }
        } else {
            TraceContext::NONE
        }
    }

    /// Installs `ctx` as this thread's current context for the guard's
    /// lifetime; spans opened meanwhile parent themselves to it. Use
    /// it to restore causality after a queue or thread hop. One
    /// relaxed load (and an inert guard) while disabled.
    #[inline]
    pub fn in_context(&self, ctx: TraceContext) -> ContextGuard {
        ContextGuard {
            saved: self
                .inner
                .enabled
                .load(Ordering::Relaxed)
                .then(|| set_ambient(ctx)),
        }
    }

    /// The context currently installed on this thread (reflecting any
    /// enclosing [`Span`]s). [`TraceContext::NONE`] while disabled.
    #[inline]
    pub fn current_context(&self) -> TraceContext {
        if self.inner.enabled.load(Ordering::Relaxed) {
            ambient()
        } else {
            TraceContext::NONE
        }
    }

    /// Nanoseconds from this instance's epoch to `t` (saturating at
    /// zero for pre-epoch instants).
    pub fn since_epoch(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.inner.epoch)
            .as_nanos()
            .min(u64::MAX as u128) as u64
    }

    /// Records a span retroactively from explicit timing — for
    /// intervals whose start and end are observed on different threads
    /// (e.g. a request's time in a queue). Returns the allocated span
    /// id, or 0 while disabled (one relaxed load, nothing recorded).
    pub fn record_retro(&self, retro: RetroSpan) -> u64 {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return 0;
        }
        let id = next_span_id();
        let record = SpanRecord {
            name: retro.name,
            cat: retro.cat,
            arg: retro.arg,
            tid: retro.tid,
            start_ns: self.since_epoch(retro.start),
            dur_ns: retro.dur.as_nanos().min(u64::MAX as u128) as u64,
            id,
            parent: retro.ctx.parent,
            trace: retro.ctx.trace,
            link: retro.link,
        };
        self.inner
            .spans
            .lock()
            .expect("telemetry span ring poisoned")
            .push(record);
        id
    }

    /// Replaces the span ring capacity (default 4096 records),
    /// clearing any recorded spans.
    pub fn set_span_capacity(&self, capacity: usize) {
        self.inner
            .spans
            .lock()
            .expect("telemetry span ring poisoned")
            .set_capacity(capacity);
    }

    /// Capacity of the span ring in records.
    pub fn span_capacity(&self) -> usize {
        self.inner
            .spans
            .lock()
            .expect("telemetry span ring poisoned")
            .capacity()
    }

    /// Zeroes every metric and clears the span ring (handles stay
    /// valid). Intended for test setups and between bench phases.
    pub fn reset(&self) {
        let entries = self
            .inner
            .registry
            .entries
            .lock()
            .expect("telemetry registry poisoned");
        for (_, metric) in entries.iter() {
            match metric {
                Metric::Counter(c) => c.store(0, Ordering::Relaxed),
                Metric::Gauge(g) => g.store(0, Ordering::Relaxed),
                Metric::Histogram(h) => h.reset(),
            }
        }
        drop(entries);
        self.inner
            .spans
            .lock()
            .expect("telemetry span ring poisoned")
            .clear();
    }

    /// A point-in-time copy of every metric and the surviving span
    /// window. Safe to call while recording continues.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        {
            let entries = self
                .inner
                .registry
                .entries
                .lock()
                .expect("telemetry registry poisoned");
            for (name, metric) in entries.iter() {
                match metric {
                    Metric::Counter(c) => counters.push((name.clone(), c.load(Ordering::Relaxed))),
                    Metric::Gauge(g) => gauges.push((name.clone(), g.load(Ordering::Relaxed))),
                    Metric::Histogram(h) => histograms.push((name.clone(), h.snapshot())),
                }
            }
        }
        let (spans, spans_dropped) = {
            let ring = self
                .inner
                .spans
                .lock()
                .expect("telemetry span ring poisoned");
            (ring.to_vec(), ring.dropped())
        };
        TelemetrySnapshot {
            elapsed: self.inner.epoch.elapsed(),
            counters,
            gauges,
            histograms,
            spans,
            spans_dropped,
        }
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

struct SpanActive<'a> {
    tele: &'a Telemetry,
    name: &'static str,
    cat: &'static str,
    arg: u64,
    start: Instant,
    /// Unique id of this span (parent of spans nested in its scope).
    id: u64,
    /// Ambient context restored (and recorded as parent/trace) on drop.
    saved: TraceContext,
    link: u64,
}

/// RAII guard for a timed interval; dropping it records a
/// [`SpanRecord`] into the owning instance's bounded ring buffer.
///
/// Created while the instance is disabled, the guard is inert: no
/// clock read on construction, nothing recorded on drop.
#[must_use = "a span measures the scope it is alive in"]
pub struct Span<'a> {
    active: Option<SpanActive<'a>>,
}

impl Span<'_> {
    /// This span's unique id, or 0 when inert (instance disabled).
    pub fn id(&self) -> u64 {
        self.active.as_ref().map_or(0, |a| a.id)
    }

    /// Marks a span this one flows into (a Chrome flow arrow from this
    /// span's end to the target's start). No-op when inert.
    pub fn set_link(&mut self, target: u64) {
        if let Some(active) = self.active.as_mut() {
            active.link = target;
        }
    }
}

impl Drop for Span<'_> {
    #[inline]
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            finish_span(active);
        }
    }
}

/// Recording half of [`Span`]'s drop, out of line for the same reason
/// as `begin_span`: an inert guard's drop glue stays a null check.
#[cold]
#[inline(never)]
fn finish_span(active: SpanActive<'_>) {
    let dur = active.start.elapsed();
    set_ambient(active.saved);
    let inner = &active.tele.inner;
    let record = SpanRecord {
        name: active.name,
        cat: active.cat,
        arg: active.arg,
        tid: current_tid(),
        start_ns: active
            .start
            .duration_since(inner.epoch)
            .as_nanos()
            .min(u64::MAX as u128) as u64,
        dur_ns: dur.as_nanos().min(u64::MAX as u128) as u64,
        id: active.id,
        parent: active.saved.parent,
        trace: active.saved.trace,
        link: active.link,
    };
    inner
        .spans
        .lock()
        .expect("telemetry span ring poisoned")
        .push(record);
}

/// Scope guard from [`Telemetry::in_context`]: restores the thread's
/// prior [`TraceContext`] on drop.
#[must_use = "dropping the guard immediately uninstalls the context"]
pub struct ContextGuard {
    saved: Option<TraceContext>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if let Some(saved) = self.saved.take() {
            set_ambient(saved);
        }
    }
}

/// Explicit timing for [`Telemetry::record_retro`]: a span whose start
/// and end were observed by the caller rather than by an RAII guard.
#[derive(Debug, Clone, Copy)]
pub struct RetroSpan {
    /// Span name, e.g. `"serve.queue"`.
    pub name: &'static str,
    /// Category, e.g. `"serve"`.
    pub cat: &'static str,
    /// Free-form numeric argument.
    pub arg: u64,
    /// Timeline row; use [`REQUEST_ROW_TID`] for request-scoped rows.
    pub tid: u64,
    /// Trace/parent the span belongs to.
    pub ctx: TraceContext,
    /// Interval start (converted to the instance epoch on record).
    pub start: Instant,
    /// Interval length.
    pub dur: Duration,
    /// Span this one flows into (0 = none).
    pub link: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_instance_records_nothing() {
        let tele = Telemetry::new();
        let c = tele.counter("c");
        let g = tele.gauge("g");
        let h = tele.histogram("h");
        c.inc();
        g.set(7);
        h.record(42);
        drop(tele.span("s", "test"));
        let snap = tele.snapshot();
        assert_eq!(snap.counter("c"), Some(0));
        assert_eq!(snap.gauge("g"), Some(0));
        assert!(snap.histogram("h").unwrap().is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn handles_share_storage_by_name() {
        let tele = Telemetry::new_enabled();
        let a = tele.counter("x");
        let b = tele.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
        assert_eq!(tele.snapshot().counter("x"), Some(5));
    }

    #[test]
    #[should_panic(expected = "another kind")]
    fn kind_mismatch_panics() {
        let tele = Telemetry::new();
        let _c = tele.counter("name");
        let _g = tele.gauge("name");
    }

    #[test]
    fn enable_toggle_applies_to_existing_handles() {
        let tele = Telemetry::new();
        let c = tele.counter("c");
        c.inc();
        tele.set_enabled(true);
        c.inc();
        tele.set_enabled(false);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn spans_record_order_and_overflow() {
        let tele = Telemetry::new_enabled();
        tele.set_span_capacity(2);
        for i in 0..3u64 {
            drop(tele.span_with("s", "test", i));
        }
        let snap = tele.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans_dropped, 1);
        let args: Vec<u64> = snap.spans.iter().map(|s| s.arg).collect();
        assert_eq!(args, vec![1, 2]);
        assert!(snap.spans[0].start_ns <= snap.spans[1].start_ns);
    }

    #[test]
    fn wire_snapshot_roundtrips() {
        let tele = Telemetry::new_enabled();
        tele.counter("c").add(9);
        tele.gauge("g").add(-4);
        let h = tele.histogram("h");
        for v in [1u64, 100, 100, 5000] {
            h.record(v);
        }
        drop(tele.span("s", "test"));
        let snap = tele.snapshot();
        let wire = snap.to_wire();
        let parsed = eyeriss_wire::Value::parse(&wire.render()).unwrap();
        let back = TelemetrySnapshot::from_wire(&parsed).unwrap();
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.gauges, snap.gauges);
        assert_eq!(back.histograms, snap.histograms);
        assert_eq!(back.spans_dropped, 0);
    }

    #[test]
    fn global_is_disabled_and_stable() {
        let g = Telemetry::global();
        assert!(g.same_instance(Telemetry::global()));
        assert!(!g.same_instance(&Telemetry::new()));
    }

    #[test]
    fn nested_spans_parent_within_a_thread() {
        let tele = Telemetry::new_enabled();
        let ctx = tele.mint_trace();
        {
            let _g = tele.in_context(ctx);
            let outer = tele.span("outer", "test");
            let outer_id = outer.id();
            assert_ne!(outer_id, 0);
            drop(tele.span("inner", "test"));
            drop(outer);
        }
        assert!(tele.current_context().is_none(), "guard restored ambient");
        let spans = tele.snapshot().spans;
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, outer.id);
        assert_eq!(inner.trace, ctx.trace);
        assert_eq!(outer.parent, 0, "outer is the trace root");
        assert_eq!(outer.trace, ctx.trace);
    }

    #[test]
    fn disabled_instance_mints_no_trace_and_installs_nothing() {
        let tele = Telemetry::new();
        let ctx = tele.mint_trace();
        assert!(ctx.is_none());
        let _g = tele.in_context(TraceContext {
            trace: 9,
            parent: 9,
        });
        assert!(tele.current_context().is_none());
    }

    #[test]
    fn retro_span_records_explicit_timing_and_context() {
        let tele = Telemetry::new_enabled();
        let ctx = tele.mint_trace();
        let start = Instant::now();
        let id = tele.record_retro(RetroSpan {
            name: "serve.queue",
            cat: "serve",
            arg: 7,
            tid: REQUEST_ROW_TID,
            ctx,
            start,
            dur: Duration::from_micros(5),
            link: 42,
        });
        assert_ne!(id, 0);
        let spans = tele.snapshot().spans;
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!((s.id, s.trace, s.link), (id, ctx.trace, 42));
        assert_eq!(s.tid, REQUEST_ROW_TID);
        assert_eq!(s.dur_ns, 5_000);

        let off = Telemetry::new();
        assert_eq!(
            off.record_retro(RetroSpan {
                name: "n",
                cat: "c",
                arg: 0,
                tid: 0,
                ctx: TraceContext::NONE,
                start,
                dur: Duration::ZERO,
                link: 0,
            }),
            0
        );
        assert!(off.snapshot().spans.is_empty());
    }

    #[test]
    fn gauge_scope_releases_on_panic() {
        let tele = Telemetry::new_enabled();
        let gauge = tele.gauge("inflight");
        {
            let _held = gauge.scoped_inc();
            assert_eq!(gauge.get(), 1);
        }
        assert_eq!(gauge.get(), 0);

        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _held = gauge.scoped_inc();
            panic!("worker died mid-batch");
        }));
        assert!(result.is_err());
        assert_eq!(gauge.get(), 0, "unwinding must release the gauge");
    }
}
