//! Declarative SLOs with multi-window burn-rate alerting, and a flight
//! recorder that snapshots recent per-request attribution when an SLO
//! breaches.
//!
//! The monitor is deliberately **clock-free**: callers stamp every
//! observation with epoch-relative nanoseconds (the same timeline the
//! span ring uses), so evaluation is deterministic and testable
//! without sleeping. Burn rate follows the SRE formulation: the
//! fraction of the error budget consumed per unit of budgeted rate —
//! `burn = violating_fraction / budget` — and a breach requires *both*
//! the short and the long window to burn faster than the alerting
//! threshold, which filters one-off blips without missing sustained
//! regressions.
//!
//! On breach the monitor latches (one dump per spec per
//! [`reset`](SloMonitor::reset)) and copies its bounded ring of recent
//! [`FlightRecord`]s into a [`FlightDump`] — the post-mortem artifact.

use crate::export::TelemetrySnapshot;
use eyeriss_wire::{Value, WireError};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Schema name of a wire-encoded [`FlightDump`].
pub const FLIGHT_SCHEMA: &str = "eyeriss-flight";
/// Schema version of a wire-encoded [`FlightDump`].
pub const FLIGHT_VERSION: u64 = 1;

/// Which per-request signal an [`SloSpec`] watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloSignal {
    /// End-to-end request latency in nanoseconds
    /// ([`FlightRecord::latency_ns`]); a request violates when it
    /// exceeds the spec threshold.
    Latency,
    /// Admission sheds ([`SloMonitor::observe_shed`]); a shed submit
    /// violates, an accepted one does not. The threshold is unused.
    Shed,
    /// Absolute prediction residual in cycles
    /// ([`FlightRecord::residual`]); a request violates when
    /// `|residual|` exceeds the spec threshold.
    Residual,
}

/// One declarative service-level objective evaluated over sliding
/// windows.
///
/// `budget` is the tolerated violating fraction (a p99 latency SLO is
/// a latency-violation budget of 0.01); `burn_rate` is how many times
/// faster than budget both windows must burn before the monitor
/// breaches.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Display name, e.g. `"p99 latency < 5ms"`.
    pub name: String,
    /// Signal watched.
    pub signal: SloSignal,
    /// Per-event violation threshold (ns for latency, cycles for
    /// residual; unused for shed).
    pub threshold: f64,
    /// Tolerated violating fraction in steady state.
    pub budget: f64,
    /// Multiple of `budget` both windows must exceed to breach.
    pub burn_rate: f64,
    /// Fast window (catches the current burst).
    pub short_window: Duration,
    /// Slow window (confirms the burst is sustained).
    pub long_window: Duration,
    /// Minimum events in the long window before evaluating — avoids
    /// alerting on the first unlucky request.
    pub min_events: usize,
}

impl SloSpec {
    fn base(name: &str, signal: SloSignal, threshold: f64, budget: f64) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            signal,
            threshold,
            budget,
            burn_rate: 1.0,
            short_window: Duration::from_secs(1),
            long_window: Duration::from_secs(30),
            min_events: 10,
        }
    }

    /// A p99 latency objective: at most 1% of requests may exceed
    /// `max`.
    pub fn p99_latency(name: &str, max: Duration) -> SloSpec {
        SloSpec::base(
            name,
            SloSignal::Latency,
            max.as_nanos().min(u64::MAX as u128) as f64,
            0.01,
        )
    }

    /// A shed-rate objective: at most `budget` of submits may be shed.
    pub fn shed_rate(name: &str, budget: f64) -> SloSpec {
        SloSpec::base(name, SloSignal::Shed, 0.0, budget)
    }

    /// A prediction-accuracy objective: at most `budget` of requests
    /// may miss the plan's `analytic_delay` by more than `max_abs`
    /// cycles.
    pub fn residual_bound(name: &str, max_abs: f64, budget: f64) -> SloSpec {
        SloSpec::base(name, SloSignal::Residual, max_abs, budget)
    }

    /// Overrides the evaluation windows.
    pub fn windows(mut self, short: Duration, long: Duration) -> SloSpec {
        self.short_window = short;
        self.long_window = long;
        self
    }

    /// Overrides the burn-rate alerting threshold.
    pub fn burn_rate(mut self, rate: f64) -> SloSpec {
        self.burn_rate = rate;
        self
    }

    /// Overrides the minimum event count before evaluation.
    pub fn min_events(mut self, n: usize) -> SloSpec {
        self.min_events = n;
        self
    }
}

/// Per-request attribution summary fed to the monitor and retained in
/// the flight ring — deliberately flat and serve-agnostic so the
/// telemetry crate needs no serving types.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightRecord {
    /// Request id.
    pub id: u64,
    /// Trace id linking the record to its span tree.
    pub trace: u64,
    /// Submit time, ns since the telemetry epoch.
    pub start_ns: u64,
    /// Completion time, ns since the telemetry epoch.
    pub end_ns: u64,
    /// End-to-end latency in nanoseconds.
    pub latency_ns: u64,
    /// Batch the request rode in.
    pub batch: u64,
    /// Attributed energy for this request (model units, e.g. ×MAC).
    pub energy: f64,
    /// The plan's predicted delay in cycles.
    pub analytic_delay: f64,
    /// Measured minus predicted delay, cycles (signed).
    pub residual: f64,
}

/// The artifact a breach leaves behind: which SLO fired, when, at what
/// burn rates, and the flight ring's records covering the breach
/// window.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    /// Name of the breached [`SloSpec`].
    pub slo: String,
    /// Breach time, ns since the telemetry epoch.
    pub at_ns: u64,
    /// Burn rate in the short window at breach time.
    pub short_burn: f64,
    /// Burn rate in the long window at breach time.
    pub long_burn: f64,
    /// Start of the long evaluation window, ns since the epoch.
    pub window_start_ns: u64,
    /// Flight-ring contents at breach time, oldest first.
    pub records: Vec<FlightRecord>,
}

impl FlightDump {
    /// Encodes the dump as a schema-versioned wire value
    /// (`"eyeriss-flight"` v1). Floats travel as exact IEEE-754 bit
    /// patterns.
    pub fn to_wire(&self) -> Value {
        let records = self.records.iter().map(|r| {
            Value::obj([
                ("id", Value::u64(r.id)),
                ("trace", Value::u64(r.trace)),
                ("start_ns", Value::u64(r.start_ns)),
                ("end_ns", Value::u64(r.end_ns)),
                ("latency_ns", Value::u64(r.latency_ns)),
                ("batch", Value::u64(r.batch)),
                ("energy", Value::f64_bits(r.energy)),
                ("analytic_delay", Value::f64_bits(r.analytic_delay)),
                ("residual", Value::f64_bits(r.residual)),
            ])
        });
        Value::obj([
            ("schema", Value::str(FLIGHT_SCHEMA)),
            ("v", Value::u64(FLIGHT_VERSION)),
            ("slo", Value::str(self.slo.clone())),
            ("at_ns", Value::u64(self.at_ns)),
            ("short_burn", Value::f64_bits(self.short_burn)),
            ("long_burn", Value::f64_bits(self.long_burn)),
            ("window_start_ns", Value::u64(self.window_start_ns)),
            ("records", Value::arr(records)),
        ])
    }

    /// Decodes a wire value produced by [`to_wire`](FlightDump::to_wire).
    pub fn from_wire(value: &Value) -> Result<FlightDump, WireError> {
        value.expect_schema(FLIGHT_SCHEMA, FLIGHT_VERSION)?;
        let mut records = Vec::new();
        for r in value.get("records")?.as_arr()? {
            records.push(FlightRecord {
                id: r.get("id")?.as_u64()?,
                trace: r.get("trace")?.as_u64()?,
                start_ns: r.get("start_ns")?.as_u64()?,
                end_ns: r.get("end_ns")?.as_u64()?,
                latency_ns: r.get("latency_ns")?.as_u64()?,
                batch: r.get("batch")?.as_u64()?,
                energy: r.get("energy")?.as_f64_bits()?,
                analytic_delay: r.get("analytic_delay")?.as_f64_bits()?,
                residual: r.get("residual")?.as_f64_bits()?,
            });
        }
        Ok(FlightDump {
            slo: value.get("slo")?.as_str()?.to_string(),
            at_ns: value.get("at_ns")?.as_u64()?,
            short_burn: value.get("short_burn")?.as_f64_bits()?,
            long_burn: value.get("long_burn")?.as_f64_bits()?,
            window_start_ns: value.get("window_start_ns")?.as_u64()?,
            records,
        })
    }

    /// Renders the breach as a Chrome trace: the snapshot's span
    /// window filtered to the traces of the dumped records, with flow
    /// events intact — open it in `chrome://tracing` to see exactly
    /// the requests that blew the budget.
    pub fn chrome_trace(&self, snapshot: &TelemetrySnapshot) -> String {
        let traces: Vec<u64> = self.records.iter().map(|r| r.trace).collect();
        let filtered = TelemetrySnapshot {
            elapsed: snapshot.elapsed,
            spans: snapshot
                .spans
                .iter()
                .filter(|s| s.trace != 0 && traces.contains(&s.trace))
                .copied()
                .collect(),
            spans_dropped: snapshot.spans_dropped,
            ..TelemetrySnapshot::default()
        };
        filtered.chrome_trace()
    }
}

#[derive(Debug)]
struct SpecState {
    spec: SloSpec,
    /// (event time ns, violating) within the long window.
    events: VecDeque<(u64, bool)>,
    /// Latched after the first breach until [`SloMonitor::reset`].
    fired: bool,
    /// `(short, long)` burn rates at the last evaluation — the live,
    /// non-latching signal behind [`SloMonitor::burning`].
    last_burn: Option<(f64, f64)>,
}

#[derive(Debug)]
struct MonitorInner {
    specs: Vec<SpecState>,
    ring: VecDeque<FlightRecord>,
    capacity: usize,
    dumps: Vec<FlightDump>,
}

/// Evaluates a set of [`SloSpec`]s over sliding windows and keeps a
/// bounded flight ring of recent [`FlightRecord`]s; a breach latches
/// the spec and emits exactly one [`FlightDump`].
///
/// Cheap to clone (all clones share state). The monitor holds no
/// clock: callers stamp observations with epoch-relative nanoseconds,
/// which makes breach behavior fully deterministic:
///
/// ```
/// use eyeriss_telemetry::{FlightRecord, SloMonitor, SloSpec};
/// use std::time::Duration;
///
/// let slo = SloSpec::p99_latency("p99 < 1ms", Duration::from_millis(1)).min_events(4);
/// let monitor = SloMonitor::new(vec![slo], 64);
/// for i in 0..8u64 {
///     monitor.record(FlightRecord {
///         id: i,
///         trace: i + 1,
///         start_ns: i * 1_000,
///         end_ns: i * 1_000 + 2_000_000,
///         latency_ns: 2_000_000, // every request blows the 1ms bound
///         batch: 1,
///         energy: 0.0,
///         analytic_delay: 0.0,
///         residual: 0.0,
///     });
/// }
/// let dumps = monitor.dumps();
/// assert_eq!(dumps.len(), 1, "breach latches: one dump, not one per request");
/// assert_eq!(dumps[0].slo, "p99 < 1ms");
/// assert_eq!(dumps[0].records.len(), 4, "flight ring covers the breach window");
/// ```
#[derive(Debug, Clone)]
pub struct SloMonitor {
    wants_shed: bool,
    inner: Arc<Mutex<MonitorInner>>,
}

impl SloMonitor {
    /// A monitor over `specs` with a flight ring of `flight_capacity`
    /// records (clamped to at least 1).
    pub fn new(specs: Vec<SloSpec>, flight_capacity: usize) -> SloMonitor {
        SloMonitor {
            wants_shed: specs.iter().any(|s| s.signal == SloSignal::Shed),
            inner: Arc::new(Mutex::new(MonitorInner {
                specs: specs
                    .into_iter()
                    .map(|spec| SpecState {
                        spec,
                        events: VecDeque::new(),
                        fired: false,
                        last_burn: None,
                    })
                    .collect(),
                ring: VecDeque::new(),
                capacity: flight_capacity.max(1),
                dumps: Vec::new(),
            })),
        }
    }

    /// True when no SLOs are configured — callers can skip building
    /// records entirely.
    pub fn is_empty(&self) -> bool {
        self.inner
            .lock()
            .expect("slo monitor poisoned")
            .specs
            .is_empty()
    }

    /// True when some spec watches the shed signal (lock-free hint for
    /// the admission path).
    pub fn wants_shed(&self) -> bool {
        self.wants_shed
    }

    /// Feeds one completed request: retains it in the flight ring and
    /// evaluates every latency/residual spec at `rec.end_ns`.
    pub fn record(&self, rec: FlightRecord) {
        let mut inner = self.inner.lock().expect("slo monitor poisoned");
        if inner.ring.len() == inner.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(rec);
        let now_ns = rec.end_ns;
        inner.evaluate(now_ns, |spec| match spec.signal {
            SloSignal::Latency => Some(rec.latency_ns as f64 > spec.threshold),
            SloSignal::Residual => Some(rec.residual.abs() > spec.threshold),
            SloSignal::Shed => None,
        });
    }

    /// Feeds one admission decision (`shed = true` for a rejected
    /// submit) and evaluates every shed spec at `now_ns`.
    pub fn observe_shed(&self, now_ns: u64, shed: bool) {
        let mut inner = self.inner.lock().expect("slo monitor poisoned");
        inner.evaluate(now_ns, |spec| {
            (spec.signal == SloSignal::Shed).then_some(shed)
        });
    }

    /// True while some spec's burn rates — at its **last** evaluation —
    /// exceed its alerting threshold in both windows. Unlike a breach
    /// this does not latch: it clears as soon as an evaluation lands
    /// inside budget again, which makes it the live back-off signal for
    /// admission control (shed low-priority work while `burning()`).
    /// Stale between events: the value reflects the windows as of the
    /// last observation, not the current wall clock.
    pub fn burning(&self) -> bool {
        self.inner
            .lock()
            .expect("slo monitor poisoned")
            .specs
            .iter()
            .any(|s| {
                s.last_burn
                    .is_some_and(|(sb, lb)| sb >= s.spec.burn_rate && lb >= s.spec.burn_rate)
            })
    }

    /// Breach count so far (dumps emitted).
    pub fn breaches(&self) -> usize {
        self.inner.lock().expect("slo monitor poisoned").dumps.len()
    }

    /// Copies the dumps emitted so far, oldest first.
    pub fn dumps(&self) -> Vec<FlightDump> {
        self.inner
            .lock()
            .expect("slo monitor poisoned")
            .dumps
            .clone()
    }

    /// Removes and returns the dumps emitted so far.
    pub fn take_dumps(&self) -> Vec<FlightDump> {
        std::mem::take(&mut self.inner.lock().expect("slo monitor poisoned").dumps)
    }

    /// Clears windows, the flight ring, pending dumps, and the breach
    /// latches, re-arming every spec.
    pub fn reset(&self) {
        let mut inner = self.inner.lock().expect("slo monitor poisoned");
        for state in &mut inner.specs {
            state.events.clear();
            state.fired = false;
            state.last_burn = None;
        }
        inner.ring.clear();
        inner.dumps.clear();
    }
}

impl MonitorInner {
    /// Feeds `violating(spec)` (None = spec ignores this event kind)
    /// into each spec's window and emits a dump on breach.
    fn evaluate(&mut self, now_ns: u64, violating: impl Fn(&SloSpec) -> Option<bool>) {
        let MonitorInner {
            specs, ring, dumps, ..
        } = self;
        for state in specs.iter_mut() {
            let Some(viol) = violating(&state.spec) else {
                continue;
            };
            state.events.push_back((now_ns, viol));

            let long_start = now_ns.saturating_sub(duration_ns(state.spec.long_window));
            let short_start = now_ns.saturating_sub(duration_ns(state.spec.short_window));
            while state.events.front().is_some_and(|&(t, _)| t < long_start) {
                state.events.pop_front();
            }
            if state.events.len() < state.spec.min_events {
                continue;
            }

            let burn = |from: u64| -> f64 {
                let window = state.events.iter().filter(|&&(t, _)| t >= from);
                let (total, viol) = window.fold((0u64, 0u64), |(n, v), &(_, violating)| {
                    (n + 1, v + u64::from(violating))
                });
                if total == 0 {
                    return 0.0;
                }
                (viol as f64 / total as f64) / state.spec.budget
            };
            let long_burn = burn(long_start);
            let short_burn = burn(short_start);
            // The live signal updates on every evaluation, latched or
            // not — admission reads it through `burning()`.
            state.last_burn = Some((short_burn, long_burn));
            if state.fired {
                continue;
            }
            if long_burn >= state.spec.burn_rate && short_burn >= state.spec.burn_rate {
                state.fired = true;
                dumps.push(FlightDump {
                    slo: state.spec.name.clone(),
                    at_ns: now_ns,
                    short_burn,
                    long_burn,
                    window_start_ns: long_start,
                    records: ring.iter().copied().collect(),
                });
            }
        }
    }
}

fn duration_ns(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, end_ns: u64, latency_ns: u64, residual: f64) -> FlightRecord {
        FlightRecord {
            id,
            trace: id + 1,
            start_ns: end_ns.saturating_sub(latency_ns),
            end_ns,
            latency_ns,
            batch: 2,
            energy: 10.5,
            analytic_delay: 100.0,
            residual,
        }
    }

    #[test]
    fn latency_breach_latches_and_dumps_once() {
        let spec = SloSpec::p99_latency("p99", Duration::from_micros(1)).min_events(5);
        let monitor = SloMonitor::new(vec![spec], 8);
        for i in 0..20u64 {
            monitor.record(rec(i, i * 100, 5_000, 0.0));
        }
        assert_eq!(monitor.breaches(), 1, "latched after the first breach");
        let dumps = monitor.dumps();
        assert_eq!(dumps[0].slo, "p99");
        assert_eq!(dumps[0].records.len(), 5, "ring holds the breach window");
        assert!(dumps[0].short_burn >= 1.0 && dumps[0].long_burn >= 1.0);
        // Records cover the breach window: last record ends at breach time.
        assert_eq!(dumps[0].records.last().unwrap().end_ns, dumps[0].at_ns);
        monitor.reset();
        assert_eq!(monitor.breaches(), 0);
        for i in 0..20u64 {
            monitor.record(rec(i, i * 100, 5_000, 0.0));
        }
        assert_eq!(monitor.breaches(), 1, "reset re-arms the latch");
    }

    #[test]
    fn within_budget_never_breaches() {
        let spec = SloSpec::p99_latency("p99", Duration::from_micros(1)).min_events(5);
        let monitor = SloMonitor::new(vec![spec], 8);
        for i in 0..200u64 {
            // One violation at event 150: the running violating
            // fraction peaks at 1/151 ≈ 0.66% — inside the 1% budget.
            let lat = if i == 150 { 5_000 } else { 10 };
            monitor.record(rec(i, i * 100, lat, 0.0));
        }
        assert_eq!(monitor.breaches(), 0);
    }

    #[test]
    fn short_window_must_agree() {
        // Long window saturated with old violations, but the short
        // window is clean: no breach (the burst is over). min_events
        // is set past the burst so evaluation starts only once clean
        // requests arrive.
        let spec = SloSpec::p99_latency("p99", Duration::from_micros(1))
            .min_events(15)
            .windows(Duration::from_nanos(100), Duration::from_secs(1));
        let monitor = SloMonitor::new(vec![spec], 8);
        for i in 0..10u64 {
            monitor.record(rec(i, i, 5_000, 0.0));
        }
        // Events 0..10 are violations but at t=0..9; move `now` far
        // past the short window with clean requests.
        for i in 10..30u64 {
            monitor.record(rec(i, 10_000 + i, 10, 0.0));
        }
        assert_eq!(monitor.breaches(), 0, "short window is clean");
    }

    #[test]
    fn shed_and_residual_signals_fire_independently() {
        let shed = SloSpec::shed_rate("shed", 0.1).min_events(4);
        let residual = SloSpec::residual_bound("residual", 50.0, 0.01).min_events(4);
        let monitor = SloMonitor::new(vec![shed, residual], 8);
        assert!(monitor.wants_shed());
        for i in 0..6 {
            monitor.observe_shed(i * 100, true);
        }
        assert_eq!(monitor.breaches(), 1);
        assert_eq!(monitor.dumps()[0].slo, "shed");
        for i in 0..6u64 {
            monitor.record(rec(i, i * 100, 10, 80.0));
        }
        assert_eq!(monitor.breaches(), 2);
        assert_eq!(monitor.dumps()[1].slo, "residual");
    }

    #[test]
    fn burning_is_live_and_does_not_latch() {
        let spec = SloSpec::p99_latency("p99", Duration::from_micros(1))
            .min_events(4)
            .windows(Duration::from_millis(1), Duration::from_millis(1));
        let monitor = SloMonitor::new(vec![spec], 8);
        assert!(!monitor.burning(), "quiet before any events");
        for i in 0..8u64 {
            monitor.record(rec(i, i * 100, 5_000, 0.0));
        }
        assert!(monitor.burning(), "sustained violations burn");
        assert_eq!(monitor.breaches(), 1, "and also breach (latched)");
        // Clean traffic far past the windows: the latch stays (one dump)
        // but the live signal clears.
        for i in 8..40u64 {
            monitor.record(rec(i, 10_000_000 + i * 100, 10, 0.0));
        }
        assert!(!monitor.burning(), "live signal clears under clean load");
        assert_eq!(monitor.breaches(), 1, "breach latch unaffected");
        monitor.reset();
        assert!(!monitor.burning());
    }

    #[test]
    fn flight_ring_is_bounded() {
        let spec = SloSpec::p99_latency("p99", Duration::from_micros(1)).min_events(3);
        let monitor = SloMonitor::new(vec![spec], 2);
        for i in 0..10u64 {
            monitor.record(rec(i, i * 100, 5_000, 0.0));
        }
        let dump = &monitor.dumps()[0];
        assert_eq!(dump.records.len(), 2);
        assert_eq!(dump.records[0].id, 1, "oldest evicted");
    }

    #[test]
    fn dump_wire_roundtrips() {
        let dump = FlightDump {
            slo: "p99 < 5ms".to_string(),
            at_ns: 123_456,
            short_burn: 12.5,
            long_burn: 3.25,
            window_start_ns: 100_000,
            records: vec![rec(7, 123_456, 9_999, -42.5)],
        };
        let wire = dump.to_wire();
        let parsed = eyeriss_wire::Value::parse(&wire.render()).unwrap();
        let back = FlightDump::from_wire(&parsed).unwrap();
        assert_eq!(back, dump);
    }

    #[test]
    fn dump_chrome_trace_filters_to_breached_traces() {
        use crate::span::SpanRecord;
        let mk = |trace: u64, name: &'static str| SpanRecord {
            name,
            cat: "serve",
            arg: 0,
            tid: 1,
            start_ns: 0,
            dur_ns: 10,
            id: trace * 10,
            parent: 0,
            trace,
            link: 0,
        };
        let snap = TelemetrySnapshot {
            spans: vec![mk(8, "in.dump"), mk(9, "not.in.dump")],
            ..TelemetrySnapshot::default()
        };
        let dump = FlightDump {
            slo: "p99".to_string(),
            at_ns: 0,
            short_burn: 1.0,
            long_burn: 1.0,
            window_start_ns: 0,
            records: vec![rec(7, 0, 0, 0.0)], // trace 8
        };
        let trace = dump.chrome_trace(&snap);
        assert!(trace.contains("in.dump"));
        assert!(!trace.contains("not.in.dump"));
    }
}
