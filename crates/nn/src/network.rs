//! Whole-network abstraction: an ordered stack of CONV/POOL/FC stages
//! with shape inference and a pure-software forward pass.
//!
//! CNNs are "constructed by stacking multiple computation layers as a
//! directed acyclic graph" (Section III-A); this module models the linear
//! stacks the paper evaluates. Each CONV/FC stage owns its weights and is
//! followed by the implicit ACT (ReLU) layer; POOL stages are
//! weight-free.

use crate::error::ShapeError;
use crate::fixed::Fix16;
use crate::reference;
use crate::shape::{LayerKind, LayerShape};
use crate::synth;
use crate::tensor::Tensor4;

/// One stage of a network.
#[derive(Debug, Clone)]
pub struct Stage {
    /// Stage name (e.g. `"CONV1"`).
    pub name: String,
    /// The stage's layer shape.
    pub shape: LayerShape,
    /// Filter bank for CONV/FC stages (`None` for POOL).
    pub weights: Option<Tensor4<Fix16>>,
    /// Biases for CONV/FC stages.
    pub bias: Option<Vec<Fix16>>,
    /// Whether a ReLU activation follows (true for CONV/FC per §III-A;
    /// the final classifier stage usually omits it).
    pub relu: bool,
}

/// A feed-forward network: an ordered list of stages whose shapes chain.
///
/// # Example
///
/// ```
/// use eyeriss_nn::network::NetworkBuilder;
///
/// let net = NetworkBuilder::new(3, 19)
///     .conv("C1", 8, 3, 2)?
///     .pool("P1", 3, 2)?
///     .fully_connected("FC", 10)?
///     .build(7);
/// assert_eq!(net.stages().len(), 3);
/// # Ok::<(), eyeriss_nn::ShapeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    stages: Vec<Stage>,
    input_channels: usize,
    input_size: usize,
}

impl Network {
    /// The network's stages in order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Input dimensions `(channels, height/width)`.
    pub fn input_dims(&self) -> (usize, usize) {
        (self.input_channels, self.input_size)
    }

    /// Total MACs of a forward pass at batch `n` (POOL comparisons are
    /// counted as operations too, as in Section V-D).
    pub fn total_ops(&self, n: usize) -> u64 {
        self.stages.iter().map(|s| s.shape.macs(n)).sum()
    }

    /// Pure-software forward pass on batch `n`.
    ///
    /// # Panics
    ///
    /// Panics if `input` does not match the network's input dimensions.
    pub fn forward(&self, n: usize, input: &Tensor4<Fix16>) -> Tensor4<Fix16> {
        assert_eq!(
            input.dims(),
            [n, self.input_channels, self.input_size, self.input_size],
            "network input dims mismatch"
        );
        let mut act = input.clone();
        for stage in &self.stages {
            act = match stage.shape.kind {
                LayerKind::Pool => reference::max_pool(&stage.shape, n, &act),
                LayerKind::Conv | LayerKind::FullyConnected => {
                    let w = stage.weights.as_ref().expect("weighted stage");
                    let b = stage.bias.as_ref().expect("weighted stage");
                    let psums = reference::conv_accumulate(&stage.shape, n, &act, w, b);
                    reference::quantize(&psums, stage.relu)
                }
            };
        }
        act
    }
}

/// Builder with shape inference: each stage consumes the previous stage's
/// output dimensions.
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    specs: Vec<StageSpec>,
    input_channels: usize,
    input_size: usize,
    cur_channels: usize,
    cur_size: usize,
}

#[derive(Debug, Clone)]
enum StageSpec {
    Weighted {
        name: String,
        shape: LayerShape,
        relu: bool,
    },
    Pool {
        name: String,
        shape: LayerShape,
    },
}

impl NetworkBuilder {
    /// Starts a network taking `channels x size x size` inputs.
    pub fn new(channels: usize, size: usize) -> Self {
        NetworkBuilder {
            specs: Vec::new(),
            input_channels: channels,
            input_size: size,
            cur_channels: channels,
            cur_size: size,
        }
    }

    /// Appends a CONV stage with `m` filters of `r x r` at stride `u`,
    /// followed by ReLU.
    ///
    /// # Errors
    ///
    /// Shape errors are deferred to [`NetworkBuilder::build`]-time via the
    /// returned `Result` of this method.
    pub fn conv(mut self, name: &str, m: usize, r: usize, u: usize) -> Result<Self, ShapeError> {
        let shape = LayerShape::conv(m, self.cur_channels, self.cur_size, r, u)?;
        self.cur_channels = m;
        self.cur_size = shape.e;
        self.specs.push(StageSpec::Weighted {
            name: name.into(),
            shape,
            relu: true,
        });
        Ok(self)
    }

    /// Appends a grouped CONV stage: `m` filters of `r x r` at stride `u`
    /// split into `groups` independent convolutions, followed by ReLU.
    ///
    /// The current channel count must be divisible by `groups`; each group
    /// sees `channels / groups` input channels.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `groups` divides neither the current
    /// channels nor `m`, or under the [`LayerShape::conv`] conditions.
    pub fn conv_grouped(
        mut self,
        name: &str,
        m: usize,
        r: usize,
        u: usize,
        groups: usize,
    ) -> Result<Self, ShapeError> {
        if groups == 0 || !self.cur_channels.is_multiple_of(groups) {
            return Err(ShapeError::new(format!(
                "group count {groups} does not divide input channels {}",
                self.cur_channels
            )));
        }
        let shape =
            LayerShape::conv_grouped(m, self.cur_channels / groups, self.cur_size, r, u, groups)?;
        self.cur_channels = m;
        self.cur_size = shape.e;
        self.specs.push(StageSpec::Weighted {
            name: name.into(),
            shape,
            relu: true,
        });
        Ok(self)
    }

    /// Appends a depthwise CONV stage (`r x r` per channel plane at stride
    /// `u`, MobileNet-style), followed by ReLU.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] under the [`LayerShape::conv`] conditions.
    pub fn depthwise(self, name: &str, r: usize, u: usize) -> Result<Self, ShapeError> {
        let m = self.cur_channels;
        self.conv_grouped(name, m, r, u, m)
    }

    /// Appends a max-pool stage with an `r x r` window at stride `u`.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the window does not tile the plane.
    pub fn pool(mut self, name: &str, r: usize, u: usize) -> Result<Self, ShapeError> {
        let shape = LayerShape::pool(self.cur_channels, self.cur_size, r, u)?;
        self.cur_size = shape.e;
        self.specs.push(StageSpec::Pool {
            name: name.into(),
            shape,
        });
        Ok(self)
    }

    /// Appends a fully-connected classifier stage with `m` outputs
    /// (no trailing ReLU).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if dimensions are degenerate.
    pub fn fully_connected(mut self, name: &str, m: usize) -> Result<Self, ShapeError> {
        let shape = LayerShape::fully_connected(m, self.cur_channels, self.cur_size)?;
        self.cur_channels = m;
        self.cur_size = 1;
        self.specs.push(StageSpec::Weighted {
            name: name.into(),
            shape,
            relu: false,
        });
        Ok(self)
    }

    /// Materializes the network, generating seeded weights and biases for
    /// every weighted stage.
    pub fn build(self, seed: u64) -> Network {
        let stages = self
            .specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| match spec {
                StageSpec::Weighted { name, shape, relu } => Stage {
                    name,
                    weights: Some(synth::filters(&shape, seed.wrapping_add(2 * i as u64))),
                    bias: Some(synth::biases(&shape, seed.wrapping_add(2 * i as u64 + 1))),
                    shape,
                    relu,
                },
                StageSpec::Pool { name, shape } => Stage {
                    name,
                    shape,
                    weights: None,
                    bias: None,
                    relu: false,
                },
            })
            .collect();
        Network {
            stages,
            input_channels: self.input_channels,
            input_size: self.input_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_net() -> Network {
        NetworkBuilder::new(3, 19)
            .conv("C1", 8, 3, 2)
            .unwrap()
            .pool("P1", 3, 2)
            .unwrap()
            .conv("C2", 12, 3, 1)
            .unwrap()
            .fully_connected("FC", 10)
            .unwrap()
            .build(7)
    }

    #[test]
    fn shapes_chain_correctly() {
        let net = tiny_net();
        let s = net.stages();
        assert_eq!(s[0].shape.e, 9);
        assert_eq!(s[1].shape.e, 4);
        assert_eq!(s[2].shape.e, 2);
        assert_eq!(s[3].shape.c, 12);
        assert_eq!(s[3].shape.h, 2);
    }

    #[test]
    fn forward_produces_logit_tensor() {
        let net = tiny_net();
        let input = synth::ifmap(&net.stages()[0].shape, 2, 4);
        let out = net.forward(2, &input);
        assert_eq!(out.dims(), [2, 10, 1, 1]);
    }

    #[test]
    fn relu_applied_to_hidden_stages_only() {
        let net = tiny_net();
        assert!(net.stages()[0].relu);
        assert!(!net.stages()[3].relu, "classifier must keep raw logits");
        let input = synth::ifmap(&net.stages()[0].shape, 1, 9);
        let logits = net.forward(1, &input);
        // ReLU on the final stage would force all logits >= 0; raw logits
        // of a random net should include negatives.
        assert!(
            logits.iter().any(|v| v.raw() < 0),
            "suspiciously non-negative logits"
        );
    }

    #[test]
    fn depthwise_separable_block_chains_and_runs() {
        // MobileNet-style: conv -> dw 3x3 -> pw 1x1.
        let net = NetworkBuilder::new(3, 11)
            .conv("C1", 8, 3, 2)
            .unwrap()
            .depthwise("DW1", 3, 1)
            .unwrap()
            .conv("PW1", 16, 1, 1)
            .unwrap()
            .build(5);
        let s = net.stages();
        assert_eq!((s[1].shape.m, s[1].shape.c, s[1].shape.groups), (8, 1, 8));
        assert_eq!(s[1].weights.as_ref().unwrap().dims(), [8, 1, 3, 3]);
        assert_eq!((s[2].shape.c, s[2].shape.groups), (8, 1));
        let input = synth::ifmap(&s[0].shape, 2, 3);
        let out = net.forward(2, &input);
        assert_eq!(out.dims(), [2, 16, 3, 3]);
    }

    #[test]
    fn grouped_conv_requires_divisible_channels() {
        let r = NetworkBuilder::new(3, 9).conv_grouped("G", 4, 3, 1, 2);
        assert!(r.is_err(), "3 channels cannot split into 2 groups");
    }

    #[test]
    fn total_ops_sums_stages() {
        let net = tiny_net();
        let by_hand: u64 = net.stages().iter().map(|s| s.shape.macs(3)).sum();
        assert_eq!(net.total_ops(3), by_hand);
    }

    #[test]
    fn mismatched_input_shape_is_rejected() {
        let net = tiny_net();
        let bad = Tensor4::<Fix16>::zeros([1, 3, 18, 18]);
        let result = std::panic::catch_unwind(|| net.forward(1, &bad));
        assert!(result.is_err());
    }

    #[test]
    fn builder_propagates_shape_errors() {
        // 19 -> conv stride 2 gives 9; a 4x4 pool at stride 3 cannot tile 9.
        let r = NetworkBuilder::new(3, 19)
            .conv("C1", 8, 3, 2)
            .unwrap()
            .pool("P1", 4, 3);
        assert!(r.is_err());
    }
}
