//! Golden layer references: a direct implementation of Eq. (1).
//!
//! The simulator in `eyeriss-sim` must reproduce these outputs bit-exactly.
//! Accumulation happens at full Q16.16 precision in `i32` and the result is
//! quantized once per ofmap value, exactly as the simulator does.

use crate::fixed::Fix16;
use crate::shape::{LayerKind, LayerShape};
use crate::tensor::Tensor4;

/// Computes a CONV/FC layer per Eq. (1), returning full-precision psums.
///
/// * `input` — ifmaps `[N][G·C][H][H]` (already padded per Table II;
///   `G = 1` for dense layers)
/// * `weights` — filters `[M][C][R][R]` (`C` is per-group for grouped
///   layers; filter `f` reads channels `(f / (M/G))·C ..` of the ifmap)
/// * `bias` — one Q8.8 bias per ofmap channel (`M` entries)
///
/// The returned tensor is `[N][M][E][E]` of Q16.16 accumulators; use
/// [`quantize`] to obtain the Q8.8 ofmap.
///
/// # Panics
///
/// Panics if tensor dimensions disagree with `shape` or `bias.len() != M`.
///
/// # Example
///
/// ```
/// use eyeriss_nn::{reference, LayerShape, Fix16, Tensor4};
///
/// let shape = LayerShape::conv(1, 1, 3, 3, 1)?;
/// let input = Tensor4::from_fn([1, 1, 3, 3], |_, _, _, _| Fix16::ONE);
/// let weights = Tensor4::from_fn([1, 1, 3, 3], |_, _, _, _| Fix16::ONE);
/// let out = reference::conv_accumulate(&shape, 1, &input, &weights, &[Fix16::ZERO]);
/// // 9 x (1.0 * 1.0) = 9.0
/// assert_eq!(Fix16::from_accum(out[(0, 0, 0, 0)]).to_f32(), 9.0);
/// # Ok::<(), eyeriss_nn::ShapeError>(())
/// ```
pub fn conv_accumulate(
    shape: &LayerShape,
    n: usize,
    input: &Tensor4<Fix16>,
    weights: &Tensor4<Fix16>,
    bias: &[Fix16],
) -> Tensor4<i32> {
    check_dims(shape, n, input, weights, bias);
    let (m, c, e, r, u) = (shape.m, shape.c, shape.e, shape.r, shape.u);
    let mpg = shape.filters_per_group();
    let mut out: Tensor4<i32> = Tensor4::zeros([n, m, e, e]);
    for z in 0..n {
        for f in 0..m {
            // Grouped conv: filter f reads its group's channel slice only.
            let c0 = (f / mpg) * c;
            let b = bias[f].to_accum();
            for x in 0..e {
                for y in 0..e {
                    let mut acc = b;
                    for k in 0..c {
                        for i in 0..r {
                            let irow = input.row(z, c0 + k, u * x + i);
                            let wrow = weights.row(f, k, i);
                            for j in 0..r {
                                acc += irow[u * y + j].wide_mul(wrow[j]);
                            }
                        }
                    }
                    out[(z, f, x, y)] = acc;
                }
            }
        }
    }
    out
}

/// Quantizes a Q16.16 psum tensor to the Q8.8 ofmap, optionally applying
/// the ReLU activation layer that follows every CONV/FC layer (§III-A).
pub fn quantize(psums: &Tensor4<i32>, relu: bool) -> Tensor4<Fix16> {
    let mut out = Tensor4::zeros(psums.dims());
    for (dst, &src) in out.as_mut_slice().iter_mut().zip(psums.iter()) {
        let q = Fix16::from_accum(src);
        *dst = if relu { q.relu() } else { q };
    }
    out
}

/// Convenience wrapper: convolution, quantization and ReLU in one call.
pub fn conv_forward(
    shape: &LayerShape,
    n: usize,
    input: &Tensor4<Fix16>,
    weights: &Tensor4<Fix16>,
    bias: &[Fix16],
) -> Tensor4<Fix16> {
    quantize(&conv_accumulate(shape, n, input, weights, bias), true)
}

/// Max-pooling layer: Eq. (1) with MAC swapped for MAX (Section V-D).
///
/// Operates per channel plane; `shape.kind` must be [`LayerKind::Pool`].
///
/// # Panics
///
/// Panics if `shape` is not a pooling shape or dimensions disagree.
pub fn max_pool(shape: &LayerShape, n: usize, input: &Tensor4<Fix16>) -> Tensor4<Fix16> {
    assert_eq!(shape.kind, LayerKind::Pool, "shape must be a POOL layer");
    let dims = input.dims();
    assert_eq!(dims, [n, shape.c, shape.h, shape.h], "ifmap dims mismatch");
    let (c, e, r, u) = (shape.c, shape.e, shape.r, shape.u);
    let mut out = Tensor4::zeros([n, c, e, e]);
    for z in 0..n {
        for k in 0..c {
            for x in 0..e {
                for y in 0..e {
                    let mut best = Fix16::MIN;
                    for i in 0..r {
                        for j in 0..r {
                            let v = input[(z, k, u * x + i, u * y + j)];
                            if v > best {
                                best = v;
                            }
                        }
                    }
                    out[(z, k, x, y)] = best;
                }
            }
        }
    }
    out
}

/// Applies ReLU elementwise (the ACT layer of Section III-A).
pub fn relu(input: &Tensor4<Fix16>) -> Tensor4<Fix16> {
    let mut out = Tensor4::zeros(input.dims());
    for (dst, &src) in out.as_mut_slice().iter_mut().zip(input.iter()) {
        *dst = src.relu();
    }
    out
}

fn check_dims(
    shape: &LayerShape,
    n: usize,
    input: &Tensor4<Fix16>,
    weights: &Tensor4<Fix16>,
    bias: &[Fix16],
) {
    assert_eq!(
        input.dims(),
        [n, shape.in_channels(), shape.h, shape.h],
        "ifmap dims mismatch"
    );
    assert_eq!(
        weights.dims(),
        [shape.m, shape.c, shape.r, shape.r],
        "filter dims mismatch"
    );
    assert_eq!(bias.len(), shape.m, "bias length mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    fn tiny_shape() -> LayerShape {
        LayerShape::conv(2, 2, 5, 3, 1).unwrap()
    }

    #[test]
    fn identity_filter_copies_input() {
        // A single 1x1 filter of value 1.0 must reproduce the input plane.
        let shape = LayerShape::conv(1, 1, 4, 1, 1).unwrap();
        let input = synth::ifmap(&shape, 1, 7);
        let weights = Tensor4::from_vec([1, 1, 1, 1], vec![Fix16::ONE]);
        let out = conv_accumulate(&shape, 1, &input, &weights, &[Fix16::ZERO]);
        for x in 0..4 {
            for y in 0..4 {
                assert_eq!(
                    Fix16::from_accum(out[(0, 0, x, y)]),
                    input[(0, 0, x, y)],
                    "at ({x},{y})"
                );
            }
        }
    }

    #[test]
    fn bias_offsets_every_output() {
        let shape = tiny_shape();
        let input = synth::ifmap(&shape, 1, 1);
        let weights = synth::filters(&shape, 2);
        let zero_b = conv_accumulate(&shape, 1, &input, &weights, &[Fix16::ZERO; 2]);
        let bias = [Fix16::ONE, Fix16::from_f32(-1.0)];
        let with_b = conv_accumulate(&shape, 1, &input, &weights, &bias);
        for f in 0..2 {
            for x in 0..shape.e {
                for y in 0..shape.e {
                    assert_eq!(
                        with_b[(0, f, x, y)] - zero_b[(0, f, x, y)],
                        bias[f].to_accum()
                    );
                }
            }
        }
    }

    #[test]
    fn stride_two_subsamples() {
        let shape = LayerShape::conv(1, 1, 5, 1, 2).unwrap();
        assert_eq!(shape.e, 3);
        let input = Tensor4::from_fn([1, 1, 5, 5], |_, _, h, w| Fix16::from((h * 5 + w) as i16));
        let weights = Tensor4::from_vec([1, 1, 1, 1], vec![Fix16::ONE]);
        let out = conv_forward(&shape, 1, &input, &weights, &[Fix16::ZERO]);
        assert_eq!(out[(0, 0, 1, 1)], input[(0, 0, 2, 2)]);
        assert_eq!(out[(0, 0, 2, 0)], input[(0, 0, 4, 0)]);
    }

    #[test]
    fn fc_layer_is_dot_product() {
        let shape = LayerShape::fully_connected(3, 2, 2).unwrap();
        let input = synth::ifmap(&shape, 1, 11);
        let weights = synth::filters(&shape, 12);
        let out = conv_accumulate(&shape, 1, &input, &weights, &[Fix16::ZERO; 3]);
        assert_eq!(out.dims(), [1, 3, 1, 1]);
        // Manual dot product for filter 0.
        let mut acc = 0i32;
        for k in 0..2 {
            for i in 0..2 {
                for j in 0..2 {
                    acc += input[(0, k, i, j)].wide_mul(weights[(0, k, i, j)]);
                }
            }
        }
        assert_eq!(out[(0, 0, 0, 0)], acc);
    }

    #[test]
    fn depthwise_matches_per_plane_conv() {
        let dw = LayerShape::depthwise(3, 7, 3, 2).unwrap();
        let input = synth::ifmap(&dw, 2, 21);
        let weights = synth::filters(&dw, 22);
        let bias = synth::biases(&dw, 23);
        let out = conv_accumulate(&dw, 2, &input, &weights, &bias);
        // Each plane independently equals a dense 1-channel convolution.
        let single = LayerShape::conv(1, 1, 7, 3, 2).unwrap();
        for k in 0..3 {
            let plane = Tensor4::from_fn([2, 1, 7, 7], |z, _, x, y| input[(z, k, x, y)]);
            let w = Tensor4::from_fn([1, 1, 3, 3], |_, _, i, j| weights[(k, 0, i, j)]);
            let solo = conv_accumulate(&single, 2, &plane, &w, &bias[k..k + 1]);
            for z in 0..2 {
                for x in 0..dw.e {
                    for y in 0..dw.e {
                        assert_eq!(out[(z, k, x, y)], solo[(z, 0, x, y)]);
                    }
                }
            }
        }
    }

    #[test]
    fn grouped_conv_ignores_other_groups() {
        // Two groups: zeroing group 1's input channels must not change
        // group 0's outputs.
        let s = LayerShape::conv_grouped(4, 2, 6, 3, 1, 2).unwrap();
        let input = synth::ifmap(&s, 1, 31);
        let weights = synth::filters(&s, 32);
        let bias = synth::biases(&s, 33);
        let full = conv_accumulate(&s, 1, &input, &weights, &bias);
        let masked = Tensor4::from_fn([1, 4, 6, 6], |z, k, x, y| {
            if k >= 2 {
                Fix16::ZERO
            } else {
                input[(z, k, x, y)]
            }
        });
        let half = conv_accumulate(&s, 1, &masked, &weights, &bias);
        for f in 0..2 {
            for x in 0..s.e {
                for y in 0..s.e {
                    assert_eq!(full[(0, f, x, y)], half[(0, f, x, y)]);
                }
            }
        }
    }

    #[test]
    fn max_pool_finds_maximum() {
        let shape = LayerShape::pool(1, 4, 2, 2).unwrap();
        let input = Tensor4::from_fn([1, 1, 4, 4], |_, _, h, w| Fix16::from((h * 4 + w) as i16));
        let out = max_pool(&shape, 1, &input);
        assert_eq!(out.dims(), [1, 1, 2, 2]);
        assert_eq!(out[(0, 0, 0, 0)], input[(0, 0, 1, 1)]);
        assert_eq!(out[(0, 0, 1, 1)], input[(0, 0, 3, 3)]);
    }

    #[test]
    fn relu_zeroes_negatives_only() {
        let t = Tensor4::from_vec(
            [1, 1, 1, 3],
            vec![Fix16::from_f32(-2.0), Fix16::ZERO, Fix16::from_f32(2.0)],
        );
        let r = relu(&t);
        assert_eq!(r.as_slice()[0], Fix16::ZERO);
        assert_eq!(r.as_slice()[2], Fix16::from_f32(2.0));
    }

    #[test]
    #[should_panic(expected = "filter dims mismatch")]
    fn wrong_filter_dims_panic() {
        let shape = tiny_shape();
        let input = synth::ifmap(&shape, 1, 1);
        let weights: Tensor4<Fix16> = Tensor4::zeros([1, 2, 3, 3]);
        let _ = conv_accumulate(&shape, 1, &input, &weights, &[Fix16::ZERO; 2]);
    }
}
