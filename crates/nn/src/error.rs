//! Error types for shape validation.

use std::error::Error;
use std::fmt;

/// Error returned when layer shape parameters are inconsistent.
///
/// The constraints come from Table I of the paper: the ofmap size must
/// satisfy `E = (H - R + U) / U`, FC layers must have `H = R`, `E = 1`,
/// `U = 1`, and every dimension must be non-zero.
///
/// # Example
///
/// ```
/// use eyeriss_nn::{LayerShape, LayerKind};
///
/// // 5x5 filter cannot stride evenly over a 12-pixel input with stride 4.
/// let err = LayerShape::conv(1, 1, 12, 5, 4).unwrap_err();
/// assert!(err.to_string().contains("stride"));
/// # let _ = LayerKind::Conv;
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    message: String,
}

impl ShapeError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ShapeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_message() {
        let e = ShapeError::new("invalid layer shape");
        assert_eq!(e.to_string(), "invalid layer shape");
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<ShapeError>();
        assert_sync::<ShapeError>();
    }
}
