//! VGG-16 layer shape configurations (Simonyan & Zisserman \[3\]).
//!
//! The paper cites VGG16 alongside AlexNet as a network whose CONV layers
//! account for over 90% of operations (Section III-B) and motivates
//! omitting NORM support by its absence in VGG/ResNet. We include its
//! shapes so the analysis framework can be exercised on a second, deeper
//! benchmark: all 3x3 filters at stride 1, with pad-1 inputs (H = output
//! of the previous stage + 2).

use crate::shape::{LayerShape, NamedLayer};

/// The thirteen CONV layers of VGG-16, with padded input sizes.
pub fn conv_layers() -> Vec<NamedLayer> {
    // (name, M, C, H_padded, R, U); ofmap E = H - 2 for 3x3/stride-1.
    let rows: [(&str, usize, usize, usize); 13] = [
        ("CONV1_1", 64, 3, 226),
        ("CONV1_2", 64, 64, 226),
        ("CONV2_1", 128, 64, 114),
        ("CONV2_2", 128, 128, 114),
        ("CONV3_1", 256, 128, 58),
        ("CONV3_2", 256, 256, 58),
        ("CONV3_3", 256, 256, 58),
        ("CONV4_1", 512, 256, 30),
        ("CONV4_2", 512, 512, 30),
        ("CONV4_3", 512, 512, 30),
        ("CONV5_1", 512, 512, 16),
        ("CONV5_2", 512, 512, 16),
        ("CONV5_3", 512, 512, 16),
    ];
    rows.iter()
        .map(|&(name, m, c, h)| {
            NamedLayer::new(
                name,
                LayerShape::conv(m, c, h, 3, 1).expect("VGG-16 shapes are valid"),
            )
        })
        .collect()
}

/// The three FC layers of VGG-16.
pub fn fc_layers() -> Vec<NamedLayer> {
    let rows: [(&str, usize, usize, usize); 3] = [
        ("FC6", 4096, 512, 7),
        ("FC7", 4096, 4096, 1),
        ("FC8", 1000, 4096, 1),
    ];
    rows.iter()
        .map(|&(name, m, c, h)| {
            NamedLayer::new(
                name,
                LayerShape::fully_connected(m, c, h).expect("VGG-16 shapes are valid"),
            )
        })
        .collect()
}

/// All sixteen weight layers in network order.
pub fn all_layers() -> Vec<NamedLayer> {
    let mut v = conv_layers();
    v.extend(fc_layers());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_weight_layers() {
        assert_eq!(all_layers().len(), 16);
    }

    #[test]
    fn ofmap_sizes_follow_the_stage_plan() {
        // Stages produce 224, 112, 56, 28, 14 pixel planes.
        let expected = [224, 224, 112, 112, 56, 56, 56, 28, 28, 28, 14, 14, 14];
        for (layer, e) in conv_layers().iter().zip(expected) {
            assert_eq!(layer.shape.e, e, "{}", layer.name);
        }
    }

    #[test]
    fn conv_dominates_even_more_than_alexnet() {
        // Section III-B: CONV layers account for over 90% of operations in
        // "most of the widely used CNNs, such as AlexNet and VGG16".
        let conv: u64 = conv_layers().iter().map(|l| l.shape.macs(1)).sum();
        let fc: u64 = fc_layers().iter().map(|l| l.shape.macs(1)).sum();
        let frac = conv as f64 / (conv + fc) as f64;
        assert!(frac > 0.99, "VGG CONV fraction {frac}");
    }

    #[test]
    fn vgg_is_an_order_of_magnitude_bigger_than_alexnet() {
        let vgg: u64 = conv_layers().iter().map(|l| l.shape.macs(1)).sum();
        let alex: u64 = crate::alexnet::conv_layers()
            .iter()
            .map(|l| l.shape.macs(1))
            .sum();
        assert!(vgg > 10 * alex);
    }
}
