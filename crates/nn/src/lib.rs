//! CNN substrate for the Eyeriss (ISCA 2016) reproduction.
//!
//! This crate provides everything the dataflow models and the chip simulator
//! need from the neural-network side, implemented from scratch:
//!
//! * [`fixed`] — 16-bit fixed-point (Q8.8) arithmetic matching the precision
//!   of the fabricated Eyeriss chip (Fig. 4 of the paper).
//! * [`shape`] — the CONV/FC layer shape parameters of Table I and all
//!   derived exact operation/data counts.
//! * [`alexnet`] — the AlexNet shape configurations of Table II, the
//!   benchmark network used throughout the paper's evaluation.
//! * [`mobilenet`] — MobileNet v1 depthwise-separable shapes (grouped
//!   convolution via `LayerShape::conv_grouped`), the compact-network
//!   workload class Eyeriss v2's flexible dataflow targets.
//! * [`tensor`] — dense 4-D tensors for ifmaps, filters, ofmaps.
//! * [`reference`](mod@reference) — a golden direct-convolution implementation of Eq. (1)
//!   plus FC, max-pool and ReLU layers, used to verify the simulator
//!   bit-exactly.
//! * [`im2col`] — an independent im2col + GEMM convolution used to
//!   cross-check the golden reference.
//! * [`synth`] — deterministic synthetic tensor generation (the paper's
//!   results depend only on layer shapes, not trained values).
//!
//! # Example
//!
//! ```
//! use eyeriss_nn::alexnet;
//!
//! let layers = alexnet::conv_layers();
//! assert_eq!(layers.len(), 5);
//! // CONV1 processes a padded 227x227 input with 11x11 filters at stride 4.
//! assert_eq!(layers[0].shape.h, 227);
//! assert_eq!(layers[0].shape.r, 11);
//! assert_eq!(layers[0].shape.u, 4);
//! ```

pub mod abft;
pub mod alexnet;
pub mod error;
pub mod fixed;
pub mod im2col;
pub mod mobilenet;
pub mod network;
pub mod problem;
pub mod reference;
pub mod shape;
pub mod synth;
pub mod tensor;
pub mod vgg;
pub mod wire;

pub use error::ShapeError;
pub use fixed::Fix16;
pub use problem::{LayerProblem, Workload};
pub use shape::{LayerKind, LayerShape};
pub use tensor::Tensor4;
