//! Independent im2col + GEMM convolution, used to cross-check the golden
//! direct convolution in [`crate::reference`].
//!
//! This is also the computation model of the MOC-MOP OS dataflow variant in
//! \[20\] that "simply treats the convolutions as a matrix multiplication"
//! (Section IV-B), so having it around documents what that baseline computes.

use crate::fixed::Fix16;
use crate::shape::LayerShape;
use crate::tensor::Tensor4;

/// A dense row-major matrix of Q8.8 values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    data: Vec<Fix16>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![Fix16::ZERO; rows * cols],
        }
    }

    /// Reads element `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Fix16 {
        self.data[r * self.cols + c]
    }

    /// Writes element `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: Fix16) {
        self.data[r * self.cols + c] = v;
    }
}

/// Lowers one image of the ifmap into the im2col matrix.
///
/// The result has `C·R²` rows and `E²` columns; column `(x·E + y)` holds the
/// receptive field of ofmap position `(x, y)`.
pub fn im2col(shape: &LayerShape, input: &Tensor4<Fix16>, image: usize) -> Matrix {
    let (c, e, r, u) = (shape.c, shape.e, shape.r, shape.u);
    let mut m = Matrix::zeros(c * r * r, e * e);
    for k in 0..c {
        for i in 0..r {
            for j in 0..r {
                let row = (k * r + i) * r + j;
                for x in 0..e {
                    for y in 0..e {
                        m.set(row, x * e + y, input[(image, k, u * x + i, u * y + j)]);
                    }
                }
            }
        }
    }
    m
}

/// Flattens the filter bank into an `M x C·R²` matrix.
pub fn filters_as_matrix(shape: &LayerShape, weights: &Tensor4<Fix16>) -> Matrix {
    let (m, c, r) = (shape.m, shape.c, shape.r);
    let mut out = Matrix::zeros(m, c * r * r);
    for f in 0..m {
        for k in 0..c {
            for i in 0..r {
                for j in 0..r {
                    out.set(f, (k * r + i) * r + j, weights[(f, k, i, j)]);
                }
            }
        }
    }
    out
}

/// Full-precision GEMM: returns `a x b` as Q16.16 accumulators.
///
/// # Panics
///
/// Panics if inner dimensions disagree.
pub fn matmul_accumulate(a: &Matrix, b: &Matrix) -> Vec<i32> {
    assert_eq!(a.cols, b.rows, "inner dimensions disagree");
    let mut out = vec![0i32; a.rows * b.cols];
    for i in 0..a.rows {
        for k in 0..a.cols {
            let av = a.get(i, k);
            if av.is_zero() {
                continue;
            }
            for j in 0..b.cols {
                out[i * b.cols + j] += av.wide_mul(b.get(k, j));
            }
        }
    }
    out
}

/// Convolution by lowering: im2col per image, then GEMM.
///
/// Produces the identical Q16.16 psums as [`crate::reference::conv_accumulate`];
/// the equivalence is enforced by property tests.
pub fn conv_accumulate(
    shape: &LayerShape,
    n: usize,
    input: &Tensor4<Fix16>,
    weights: &Tensor4<Fix16>,
    bias: &[Fix16],
) -> Tensor4<i32> {
    let (m, e) = (shape.m, shape.e);
    let wmat = filters_as_matrix(shape, weights);
    let mut out: Tensor4<i32> = Tensor4::zeros([n, m, e, e]);
    for z in 0..n {
        let cols = im2col(shape, input, z);
        let prod = matmul_accumulate(&wmat, &cols);
        for f in 0..m {
            let b = bias[f].to_accum();
            for x in 0..e {
                for y in 0..e {
                    out[(z, f, x, y)] = prod[f * e * e + x * e + y] + b;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reference, synth};
    use proptest::prelude::*;

    #[test]
    fn im2col_matches_direct_on_alexnet_like_shape() {
        let shape = LayerShape::conv(4, 3, 15, 3, 1).unwrap();
        let input = synth::ifmap(&shape, 2, 5);
        let weights = synth::filters(&shape, 6);
        let bias = synth::biases(&shape, 7);
        let direct = reference::conv_accumulate(&shape, 2, &input, &weights, &bias);
        let lowered = conv_accumulate(&shape, 2, &input, &weights, &bias);
        assert_eq!(direct, lowered);
    }

    #[test]
    fn im2col_matrix_dims() {
        let shape = LayerShape::conv(2, 3, 7, 3, 2).unwrap();
        let input = synth::ifmap(&shape, 1, 0);
        let m = im2col(&shape, &input, 0);
        assert_eq!(m.rows, 3 * 9);
        assert_eq!(m.cols, shape.e * shape.e);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_checks_dims() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = matmul_accumulate(&a, &b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_lowered_equals_direct(
            m in 1usize..4, c in 1usize..4, extra in 0usize..6,
            r in 1usize..4, u in 1usize..3, n in 1usize..3,
            seed in 0u64..1000,
        ) {
            let h = r + extra * u;
            let shape = LayerShape::conv(m, c, h, r, u).unwrap();
            let input = synth::ifmap(&shape, n, seed);
            let weights = synth::filters(&shape, seed + 1);
            let bias = synth::biases(&shape, seed + 2);
            let direct = reference::conv_accumulate(&shape, n, &input, &weights, &bias);
            let lowered = conv_accumulate(&shape, n, &input, &weights, &bias);
            prop_assert_eq!(direct, lowered);
        }
    }
}
