//! MobileNet v1 layer shapes (Howard et al., arXiv 1704.04861) — the
//! compact-network workload class Eyeriss v2 targets.
//!
//! MobileNet replaces dense convolution with *depthwise-separable* blocks:
//! a depthwise 3x3 layer (one filter per channel, `G = C`) followed by a
//! pointwise 1x1 layer. Both starve a 12x14 row-stationary array — the
//! depthwise layers have no cross-channel reuse, the pointwise layers no
//! filter-plane reuse — which is exactly the gap the `flex-rs` dataflow's
//! cluster decomposition closes.
//!
//! As with [`crate::alexnet`], shapes are the *padded* shapes: every
//! stride-2 stage pads to an odd plane and every stride-1 3x3 stage pads
//! by one on each side, so `(H - R) % U == 0` holds exactly.

use crate::network::{Network, NetworkBuilder};
use crate::shape::{LayerShape, NamedLayer};

/// Per-block rows of the MobileNet v1 body: `(dw stride, pointwise M)`.
/// Channel counts chain: each block's input channels are the previous
/// block's pointwise output.
const BLOCKS: [(usize, usize); 13] = [
    (1, 64),
    (2, 128),
    (1, 128),
    (2, 256),
    (1, 256),
    (2, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (2, 1024),
    (1, 1024),
];

/// Pads an ofmap plane of size `e` for the next 3x3 layer at stride `u`:
/// one pixel each side for stride 1, one total (odd plane) for stride 2.
fn padded(e: usize, u: usize) -> usize {
    match u {
        1 => e + 2,
        2 => e + 1,
        _ => unreachable!("MobileNet uses strides 1 and 2"),
    }
}

/// The 27 weighted CONV layers plus the classifier of MobileNet v1
/// (Table 1 of arXiv 1704.04861): `CONV1`, then `DW1`/`PW1` ..
/// `DW13`/`PW13`, then `FC`.
///
/// # Example
///
/// ```
/// use eyeriss_nn::mobilenet;
///
/// let layers = mobilenet::mobilenet_v1();
/// assert_eq!(layers.len(), 28);
/// // Half the body layers are depthwise (grouped to the extreme).
/// let dw = layers.iter().filter(|l| l.shape.groups > 1).count();
/// assert_eq!(dw, 13);
/// ```
pub fn mobilenet_v1() -> Vec<NamedLayer> {
    let mut layers = Vec::with_capacity(28);
    // CONV1: 224x224x3 padded to 225, 32 filters of 3x3 at stride 2.
    let conv1 = LayerShape::conv(32, 3, 225, 3, 2).expect("MobileNet shapes are valid");
    let mut channels = conv1.m;
    let mut e = conv1.e;
    layers.push(NamedLayer::new("CONV1", conv1));
    for (i, &(stride, pw_m)) in BLOCKS.iter().enumerate() {
        let dw = LayerShape::depthwise(channels, padded(e, stride), 3, stride)
            .expect("MobileNet shapes are valid");
        e = dw.e;
        layers.push(NamedLayer::new(format!("DW{}", i + 1), dw));
        let pw = LayerShape::conv(pw_m, channels, e, 1, 1).expect("MobileNet shapes are valid");
        channels = pw_m;
        layers.push(NamedLayer::new(format!("PW{}", i + 1), pw));
    }
    // Global average pool collapses the 7x7 plane; the classifier is a
    // plain 1024 -> 1000 product.
    layers.push(NamedLayer::new(
        "FC",
        LayerShape::fully_connected(1000, channels, 1).expect("MobileNet shapes are valid"),
    ));
    layers
}

/// Only the depthwise layers of [`mobilenet_v1`] — the shapes that starve
/// dense row stationary and motivate `flex-rs`.
pub fn depthwise_layers() -> Vec<NamedLayer> {
    mobilenet_v1()
        .into_iter()
        .filter(|l| l.shape.groups > 1)
        .collect()
}

/// A scaled-down executable MobileNet: the same conv / depthwise /
/// pointwise structure on toy dimensions, for functional (bit-exact)
/// simulation and serving smoke tests where the full 224x224 network
/// would be needlessly slow.
pub fn mobilenet_tiny(seed: u64) -> Network {
    NetworkBuilder::new(3, 19)
        .conv("C1", 8, 3, 2)
        .expect("tiny shapes are valid")
        .depthwise("DW1", 3, 1)
        .expect("tiny shapes are valid")
        .conv("PW1", 16, 1, 1)
        .expect("tiny shapes are valid")
        .depthwise("DW2", 3, 2)
        .expect("tiny shapes are valid")
        .conv("PW2", 24, 1, 1)
        .expect("tiny shapes are valid")
        .fully_connected("FC", 10)
        .expect("tiny shapes are valid")
        .build(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_sizes_chain_like_the_paper() {
        // Table 1 spatial sizes: 112 -> 56 -> 28 -> 14 -> 7.
        let layers = mobilenet_v1();
        let by_name = |n: &str| layers.iter().find(|l| l.name == n).unwrap().shape;
        assert_eq!(by_name("CONV1").e, 112);
        assert_eq!(by_name("DW2").e, 56);
        assert_eq!(by_name("DW4").e, 28);
        assert_eq!(by_name("DW6").e, 14);
        assert_eq!(by_name("DW12").e, 7);
        assert_eq!(by_name("PW13").m, 1024);
        assert_eq!(by_name("FC").m, 1000);
    }

    #[test]
    fn total_macs_near_the_paper_count() {
        // The paper reports ~569M mult-adds; padded shapes land close.
        let total: u64 = mobilenet_v1().iter().map(|l| l.shape.macs(1)).sum();
        assert!(
            (520_000_000..650_000_000).contains(&total),
            "total MACs {total}"
        );
    }

    #[test]
    fn depthwise_layers_are_grouped_to_the_extreme() {
        let dw = depthwise_layers();
        assert_eq!(dw.len(), 13);
        for l in &dw {
            assert_eq!(l.shape.c, 1, "{}", l.name);
            assert_eq!(l.shape.groups, l.shape.m, "{}", l.name);
            assert_eq!(l.shape.r, 3, "{}", l.name);
        }
    }

    #[test]
    fn pointwise_dominates_compute() {
        // MobileNet's well-known profile: ~95% of MACs in 1x1 layers.
        let layers = mobilenet_v1();
        let pw: u64 = layers
            .iter()
            .filter(|l| l.name.starts_with("PW"))
            .map(|l| l.shape.macs(1))
            .sum();
        let total: u64 = layers.iter().map(|l| l.shape.macs(1)).sum();
        let frac = pw as f64 / total as f64;
        assert!(frac > 0.9, "pointwise fraction {frac}");
    }

    #[test]
    fn tiny_network_runs_forward() {
        use crate::synth;
        let net = mobilenet_tiny(7);
        let input = synth::ifmap(&net.stages()[0].shape, 2, 11);
        let out = net.forward(2, &input);
        assert_eq!(out.dims(), [2, 10, 1, 1]);
        assert!(net.stages().iter().any(|s| s.shape.groups > 1));
    }
}
