//! 16-bit fixed-point arithmetic (Q8.8).
//!
//! The fabricated Eyeriss chip computes in 16-bit fixed point (Fig. 4 of the
//! paper). We model values as Q8.8: 1 sign + 7 integer bits + 8 fractional
//! bits. Multiplication of two Q8.8 values produces a Q16.16 value held in a
//! 32-bit accumulator; partial sums are accumulated in `i32` and quantized
//! back to Q8.8 with saturation when an ofmap value is finalized, mirroring
//! the chip's psum datapath.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Number of fractional bits in the Q8.8 representation.
pub const FRAC_BITS: u32 = 8;

/// Scale factor between the integer representation and the real value.
pub const SCALE: f32 = (1 << FRAC_BITS) as f32;

/// A 16-bit fixed-point number in Q8.8 format.
///
/// All arithmetic saturates rather than wraps, matching hardware datapaths
/// that clamp on overflow.
///
/// # Example
///
/// ```
/// use eyeriss_nn::Fix16;
///
/// let a = Fix16::from_f32(1.5);
/// let b = Fix16::from_f32(-2.25);
/// assert_eq!((a * b).to_f32(), -3.375);
/// assert_eq!((a + b).to_f32(), -0.75);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fix16(i16);

impl Fix16 {
    /// The additive identity.
    pub const ZERO: Fix16 = Fix16(0);
    /// The multiplicative identity (1.0 in Q8.8).
    pub const ONE: Fix16 = Fix16(1 << FRAC_BITS);
    /// Largest representable value (~127.996).
    pub const MAX: Fix16 = Fix16(i16::MAX);
    /// Smallest representable value (-128.0).
    pub const MIN: Fix16 = Fix16(i16::MIN);

    /// Creates a value from its raw Q8.8 bit pattern.
    ///
    /// # Example
    ///
    /// ```
    /// use eyeriss_nn::Fix16;
    /// assert_eq!(Fix16::from_raw(256), Fix16::ONE);
    /// ```
    #[inline]
    pub const fn from_raw(raw: i16) -> Self {
        Fix16(raw)
    }

    /// Returns the raw Q8.8 bit pattern.
    #[inline]
    pub const fn raw(self) -> i16 {
        self.0
    }

    /// Converts from `f32`, rounding to nearest and saturating.
    ///
    /// # Example
    ///
    /// ```
    /// use eyeriss_nn::Fix16;
    /// assert_eq!(Fix16::from_f32(1e9), Fix16::MAX);
    /// assert_eq!(Fix16::from_f32(-1e9), Fix16::MIN);
    /// ```
    pub fn from_f32(v: f32) -> Self {
        let scaled = (v * SCALE).round();
        if scaled >= i16::MAX as f32 {
            Fix16::MAX
        } else if scaled <= i16::MIN as f32 {
            Fix16::MIN
        } else {
            Fix16(scaled as i16)
        }
    }

    /// Converts to `f32` exactly (every Q8.8 value is representable).
    #[inline]
    pub fn to_f32(self) -> f32 {
        self.0 as f32 / SCALE
    }

    /// Returns `true` if the value is exactly zero.
    ///
    /// Zero detection is what the Eyeriss chip uses for sparsity gating
    /// (Section V-E): MACs with a zero ifmap operand are skipped entirely.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Widening multiply: returns the full Q16.16 product as `i32`.
    ///
    /// This is the MAC input path: products are accumulated at full
    /// precision and only quantized when an ofmap pixel completes.
    #[inline]
    pub const fn wide_mul(self, rhs: Fix16) -> i32 {
        self.0 as i32 * rhs.0 as i32
    }

    /// Quantizes a Q16.16 accumulator back to Q8.8 with saturation.
    ///
    /// # Example
    ///
    /// ```
    /// use eyeriss_nn::Fix16;
    /// let acc = Fix16::from_f32(3.0).wide_mul(Fix16::from_f32(2.0));
    /// assert_eq!(Fix16::from_accum(acc).to_f32(), 6.0);
    /// ```
    pub fn from_accum(acc: i32) -> Self {
        let shifted = acc >> FRAC_BITS;
        if shifted > i16::MAX as i32 {
            Fix16::MAX
        } else if shifted < i16::MIN as i32 {
            Fix16::MIN
        } else {
            Fix16(shifted as i16)
        }
    }

    /// Widens the value into accumulator (Q16.16) domain.
    ///
    /// Used to add biases into the psum accumulation of Eq. (1).
    #[inline]
    pub const fn to_accum(self) -> i32 {
        (self.0 as i32) << FRAC_BITS
    }

    /// Saturating addition.
    #[inline]
    pub const fn saturating_add(self, rhs: Fix16) -> Fix16 {
        Fix16(self.0.saturating_add(rhs.0))
    }

    /// The rectified-linear activation of the value (ACT layer).
    ///
    /// # Example
    ///
    /// ```
    /// use eyeriss_nn::Fix16;
    /// assert_eq!(Fix16::from_f32(-1.0).relu(), Fix16::ZERO);
    /// assert_eq!(Fix16::from_f32(2.0).relu().to_f32(), 2.0);
    /// ```
    #[inline]
    pub fn relu(self) -> Fix16 {
        if self.0 < 0 {
            Fix16::ZERO
        } else {
            self
        }
    }
}

impl Add for Fix16 {
    type Output = Fix16;
    #[inline]
    fn add(self, rhs: Fix16) -> Fix16 {
        self.saturating_add(rhs)
    }
}

impl Sub for Fix16 {
    type Output = Fix16;
    #[inline]
    fn sub(self, rhs: Fix16) -> Fix16 {
        Fix16(self.0.saturating_sub(rhs.0))
    }
}

impl Mul for Fix16 {
    type Output = Fix16;
    #[inline]
    fn mul(self, rhs: Fix16) -> Fix16 {
        Fix16::from_accum(self.wide_mul(rhs))
    }
}

impl Neg for Fix16 {
    type Output = Fix16;
    #[inline]
    fn neg(self) -> Fix16 {
        Fix16(self.0.saturating_neg())
    }
}

impl fmt::Display for Fix16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<i16> for Fix16 {
    /// Interprets the integer as a whole number (not a raw bit pattern),
    /// saturating at the Q8.8 range.
    fn from(v: i16) -> Self {
        if v >= 128 {
            Fix16::MAX
        } else if v < -128 {
            Fix16::MIN
        } else {
            Fix16(v << FRAC_BITS)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_exact_values() {
        for raw in [-32768i16, -256, -1, 0, 1, 255, 256, 32767] {
            let v = Fix16::from_raw(raw);
            assert_eq!(Fix16::from_f32(v.to_f32()), v);
        }
    }

    #[test]
    fn one_times_one_is_one() {
        assert_eq!(Fix16::ONE * Fix16::ONE, Fix16::ONE);
    }

    #[test]
    fn add_saturates() {
        assert_eq!(Fix16::MAX + Fix16::ONE, Fix16::MAX);
        assert_eq!(Fix16::MIN + (-Fix16::ONE), Fix16::MIN);
    }

    #[test]
    fn from_accum_saturates() {
        assert_eq!(Fix16::from_accum(i32::MAX), Fix16::MAX);
        assert_eq!(Fix16::from_accum(i32::MIN), Fix16::MIN);
    }

    #[test]
    fn from_whole_integer() {
        assert_eq!(Fix16::from(2i16), Fix16::from_f32(2.0));
        assert_eq!(Fix16::from(127i16).to_f32(), 127.0);
        assert_eq!(Fix16::from(1000i16), Fix16::MAX);
    }

    #[test]
    fn relu_clamps_negative() {
        assert_eq!(Fix16::from_f32(-0.004).relu(), Fix16::ZERO);
        assert_eq!(Fix16::MAX.relu(), Fix16::MAX);
    }

    #[test]
    fn to_accum_then_from_accum_is_identity() {
        for raw in [-1000i16, -1, 0, 1, 1000] {
            let v = Fix16::from_raw(raw);
            assert_eq!(Fix16::from_accum(v.to_accum()), v);
        }
    }

    proptest! {
        #[test]
        fn prop_wide_mul_matches_float(a in -500i16..500, b in -500i16..500) {
            let fa = Fix16::from_raw(a);
            let fb = Fix16::from_raw(b);
            let exact = fa.to_f32() as f64 * fb.to_f32() as f64;
            let wide = fa.wide_mul(fb) as f64 / (SCALE as f64 * SCALE as f64);
            prop_assert!((exact - wide).abs() < 1e-9);
        }

        #[test]
        fn prop_add_commutative(a in any::<i16>(), b in any::<i16>()) {
            let fa = Fix16::from_raw(a);
            let fb = Fix16::from_raw(b);
            prop_assert_eq!(fa + fb, fb + fa);
        }

        #[test]
        fn prop_mul_commutative(a in any::<i16>(), b in any::<i16>()) {
            let fa = Fix16::from_raw(a);
            let fb = Fix16::from_raw(b);
            prop_assert_eq!(fa * fb, fb * fa);
        }

        #[test]
        fn prop_zero_is_absorbing(a in any::<i16>()) {
            let fa = Fix16::from_raw(a);
            prop_assert_eq!(fa * Fix16::ZERO, Fix16::ZERO);
            prop_assert_eq!(fa + Fix16::ZERO, fa);
        }
    }
}
