//! Algorithm-based fault tolerance (ABFT) checksums for CONV/FC layers.
//!
//! Convolution is linear, so the sum of all output psums of one layer
//! execution can be predicted without computing the convolution itself:
//! summing Eq. (1) over every output position and filter lets the filter
//! dimension collapse into a per-group *column-sum kernel*
//! `W̄[k][i][j] = Σ_f w[f][k][i][j]`, giving
//!
//! ```text
//! Σ out  =  Σ_{z,g,x,y,k,i,j}  in[z][g·C+k][u·x+i][u·y+j] · W̄_g[k][i][j]
//!           + N·E² · Σ_f bias[f]
//! ```
//!
//! [`expected_sum`] evaluates that right-hand side directly from the
//! (pristine) inputs in `M / G`-fold fewer multiplies than the layer
//! itself — one reference accumulator per filter group instead of one
//! per filter ([`checksum_macs`] prices it exactly). Comparing against
//! [`actual_sum`] of the produced psum tensor detects **every**
//! single-bit corruption of a psum word: a flipped bit changes the total
//! by ±2^b (mod 2^64), which is never zero. Corrupted weight or ifmap
//! words are likewise caught whenever they change the psum *sum* —
//! virtually always, since the checksum is computed from the
//! uncorrupted operands; a corruption whose per-psum effects cancel
//! exactly in the mod-2^64 total can escape (the classic
//! single-checksum ABFT detection bound).
//!
//! All arithmetic is wrapping `i64` on raw Q8.8/Q16.16 integers, so the
//! check is exact (bit-exact reproducibility is the repo-wide invariant)
//! and overflow-free in the mod-2^64 sense.

use crate::fixed::Fix16;
use crate::shape::LayerShape;
use crate::tensor::Tensor4;

/// Predicted sum of all psums of a CONV/FC execution, mod 2^64.
///
/// Inputs are the same tensors handed to
/// [`reference::conv_accumulate`](crate::reference::conv_accumulate)
/// (and to the simulator): ifmaps `[N][G·C][H][H]`, filters
/// `[M][C][R][R]`, `M` biases.
///
/// # Panics
///
/// Panics if tensor dimensions disagree with `shape`.
pub fn expected_sum(
    shape: &LayerShape,
    n: usize,
    input: &Tensor4<Fix16>,
    weights: &Tensor4<Fix16>,
    bias: &[Fix16],
) -> i64 {
    assert_eq!(
        input.dims(),
        [n, shape.in_channels(), shape.h, shape.h],
        "ifmap dims mismatch"
    );
    assert_eq!(
        weights.dims(),
        [shape.m, shape.c, shape.r, shape.r],
        "filter dims mismatch"
    );
    assert_eq!(bias.len(), shape.m, "bias length mismatch");

    let (c, e, r, u) = (shape.c, shape.e, shape.r, shape.u);
    let mpg = shape.filters_per_group();
    let groups = shape.m / mpg;

    // Column-sum kernels: one [C][R][R] kernel of i64 per filter group.
    let mut wsum = vec![0i64; groups * c * r * r];
    for f in 0..shape.m {
        let g = f / mpg;
        for k in 0..c {
            for i in 0..r {
                let row = weights.row(f, k, i);
                let base = ((g * c + k) * r + i) * r;
                for j in 0..r {
                    wsum[base + j] = wsum[base + j].wrapping_add(row[j].raw() as i64);
                }
            }
        }
    }

    let mut total = 0i64;
    for z in 0..n {
        for g in 0..groups {
            for x in 0..e {
                for y in 0..e {
                    let mut acc = 0i64;
                    for k in 0..c {
                        for i in 0..r {
                            let irow = input.row(z, g * c + k, u * x + i);
                            let base = ((g * c + k) * r + i) * r;
                            for j in 0..r {
                                acc = acc.wrapping_add(
                                    (irow[u * y + j].raw() as i64).wrapping_mul(wsum[base + j]),
                                );
                            }
                        }
                    }
                    total = total.wrapping_add(acc);
                }
            }
        }
    }

    let bias_total: i64 = bias
        .iter()
        .fold(0i64, |a, b| a.wrapping_add(b.to_accum() as i64));
    total.wrapping_add(bias_total.wrapping_mul((n * e * e) as i64))
}

/// Sum of every psum in a produced `[N][M][E][E]` tensor, mod 2^64.
pub fn actual_sum(psums: &Tensor4<i32>) -> i64 {
    psums.iter().fold(0i64, |a, &p| a.wrapping_add(p as i64))
}

/// Reference-accumulator MACs the checksum costs, versus the layer's own
/// MAC count: `checksum_macs / layer_macs == 1 / filters_per_group`.
pub fn checksum_macs(shape: &LayerShape, n: usize) -> u64 {
    let groups = shape.m / shape.filters_per_group();
    (n * groups * shape.c * shape.e * shape.e * shape.r * shape.r) as u64
}

/// Convenience: does `psums` pass the checksum for this execution?
pub fn verify(
    shape: &LayerShape,
    n: usize,
    input: &Tensor4<Fix16>,
    weights: &Tensor4<Fix16>,
    bias: &[Fix16],
    psums: &Tensor4<i32>,
) -> bool {
    expected_sum(shape, n, input, weights, bias) == actual_sum(psums)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::synth;

    fn layer(shape: &LayerShape, seed: u64) -> (Tensor4<Fix16>, Tensor4<Fix16>, Vec<Fix16>) {
        (
            synth::ifmap(shape, 2, seed),
            synth::filters(shape, seed + 1),
            synth::biases(shape, seed + 2),
        )
    }

    #[test]
    fn checksum_matches_reference_conv() {
        for (shape, seed) in [
            (LayerShape::conv(4, 3, 9, 3, 1).unwrap(), 11),
            (LayerShape::conv(6, 2, 11, 5, 2).unwrap(), 13),
            (LayerShape::fully_connected(5, 3, 4).unwrap(), 17),
        ] {
            let (input, weights, bias) = layer(&shape, seed);
            let psums = reference::conv_accumulate(&shape, 2, &input, &weights, &bias);
            assert_eq!(
                expected_sum(&shape, 2, &input, &weights, &bias),
                actual_sum(&psums),
                "shape {shape:?}"
            );
            assert!(verify(&shape, 2, &input, &weights, &bias, &psums));
        }
    }

    #[test]
    fn checksum_matches_grouped_and_depthwise() {
        for shape in [
            LayerShape::conv_grouped(4, 2, 7, 3, 1, 2).unwrap(),
            LayerShape::depthwise(3, 9, 3, 2).unwrap(),
        ] {
            let (input, weights, bias) = layer(&shape, 29);
            let psums = reference::conv_accumulate(&shape, 2, &input, &weights, &bias);
            assert!(verify(&shape, 2, &input, &weights, &bias, &psums));
        }
    }

    #[test]
    fn detects_every_single_bit_psum_flip() {
        let shape = LayerShape::conv(3, 2, 7, 3, 1).unwrap();
        let (input, weights, bias) = layer(&shape, 41);
        let clean = reference::conv_accumulate(&shape, 2, &input, &weights, &bias);
        let expected = expected_sum(&shape, 2, &input, &weights, &bias);
        let n_elems = clean.len();
        // Sample psum positions across the tensor; every bit of each.
        for idx in (0..n_elems).step_by(n_elems / 7 + 1) {
            for bit in 0..32 {
                let mut bad = clean.clone();
                bad.as_mut_slice()[idx] ^= 1i32 << bit;
                assert_ne!(
                    expected,
                    actual_sum(&bad),
                    "flip at elem {idx} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn detects_weight_corruption_through_compute() {
        // Corrupt one weight *after* the checksum is formed, then run the
        // layer on the corrupted weights: the checksum must flag it.
        let shape = LayerShape::conv(4, 3, 7, 3, 1).unwrap();
        let (input, weights, bias) = layer(&shape, 53);
        let expected = expected_sum(&shape, 2, &input, &weights, &bias);
        let mut bad = weights.clone();
        let w = bad.as_mut_slice()[5];
        bad.as_mut_slice()[5] = Fix16::from_raw(w.raw() ^ (1 << 9));
        let psums = reference::conv_accumulate(&shape, 2, &input, &bad, &bias);
        assert_ne!(expected, actual_sum(&psums));
    }

    #[test]
    fn checksum_cost_is_one_reference_accumulator_per_group() {
        let dense = LayerShape::conv(8, 3, 9, 3, 1).unwrap();
        let total: u64 = dense.macs(1);
        assert_eq!(checksum_macs(&dense, 1) * 8, total);
        let grouped = LayerShape::conv_grouped(8, 2, 9, 3, 1, 4).unwrap();
        assert_eq!(
            checksum_macs(&grouped, 1) * grouped.filters_per_group() as u64,
            grouped.macs(1)
        );
    }
}
