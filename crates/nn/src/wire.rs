//! Wire codecs for shape-level types.
//!
//! Decoding goes back through the validating [`LayerShape`] constructors,
//! so a tampered or stale document cannot produce a shape the rest of
//! the stack would reject at construction time.

use crate::shape::{LayerKind, LayerShape};
use eyeriss_wire::{Value, WireError};

/// Encodes a layer shape.
///
/// The group count travels as an optional `"g"` key written only when it
/// is not 1, so documents for dense shapes are byte-identical to those
/// written before grouped convolution existed.
pub fn encode_shape(s: &LayerShape) -> Value {
    let mut pairs = vec![
        ("kind", Value::str(s.kind.label())),
        ("m", Value::usize(s.m)),
        ("c", Value::usize(s.c)),
        ("h", Value::usize(s.h)),
        ("r", Value::usize(s.r)),
        ("u", Value::usize(s.u)),
    ];
    if s.groups != 1 {
        pairs.push(("g", Value::usize(s.groups)));
    }
    Value::obj(pairs)
}

/// Decodes a layer shape through its validating constructor.
///
/// # Errors
///
/// [`WireError`] on structural problems; [`WireError::Invalid`] when the
/// dimensions fail [`LayerShape`] validation.
pub fn decode_shape(v: &Value) -> Result<LayerShape, WireError> {
    let kind = v.get("kind")?.as_str()?;
    let m = v.get("m")?.as_usize()?;
    let c = v.get("c")?.as_usize()?;
    let h = v.get("h")?.as_usize()?;
    let r = v.get("r")?.as_usize()?;
    let u = v.get("u")?.as_usize()?;
    // Absent "g" means 1: documents written before grouped convolution.
    let groups = match v.get_opt("g")? {
        Some(g) => g.as_usize()?,
        None => 1,
    };
    if groups != 1 && kind != "CONV" {
        return Err(WireError::Invalid(format!(
            "layer kind {kind:?} cannot be grouped"
        )));
    }
    let shape = match kind {
        "CONV" => LayerShape::conv_grouped(m, c, h, r, u, groups),
        "FC" => LayerShape::fully_connected(m, c, h),
        "POOL" => LayerShape::pool(c, h, r, u),
        other => return Err(WireError::Invalid(format!("unknown layer kind {other:?}"))),
    }
    .map_err(|e| WireError::Invalid(e.to_string()))?;
    Ok(shape)
}

/// Re-derives the label used on the wire for a layer kind (stable across
/// releases; `LayerKind::label` is the single source).
pub fn kind_label(kind: LayerKind) -> &'static str {
    kind.label()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_fc_pool_roundtrip() {
        let shapes = [
            LayerShape::conv(96, 3, 227, 11, 4).unwrap(),
            LayerShape::fully_connected(4096, 256, 6).unwrap(),
            LayerShape::pool(96, 55, 3, 2).unwrap(),
            LayerShape::conv_grouped(256, 24, 31, 5, 1, 2).unwrap(),
            LayerShape::depthwise(32, 114, 3, 1).unwrap(),
        ];
        for s in shapes {
            let back = decode_shape(&encode_shape(&s)).unwrap();
            assert_eq!(back, s);
        }
    }

    #[test]
    fn dense_shapes_omit_the_group_key() {
        // Byte-compat with pre-groups documents: no "g" key when G = 1,
        // and decoding a document without "g" yields a dense shape.
        let v = encode_shape(&LayerShape::conv(4, 3, 9, 3, 1).unwrap());
        assert_eq!(v.get_opt("g").unwrap(), None);
        assert_eq!(decode_shape(&v).unwrap().groups, 1);
    }

    #[test]
    fn grouped_non_conv_is_invalid() {
        let mut v = encode_shape(&LayerShape::fully_connected(8, 4, 3).unwrap());
        if let Value::Obj(pairs) = &mut v {
            pairs.push(("g".into(), Value::usize(2)));
        }
        assert!(matches!(decode_shape(&v), Err(WireError::Invalid(_))));
    }

    #[test]
    fn tampered_dimensions_fail_validation() {
        let mut v = encode_shape(&LayerShape::conv(4, 3, 9, 3, 1).unwrap());
        if let Value::Obj(pairs) = &mut v {
            for (k, val) in pairs.iter_mut() {
                if k == "r" {
                    *val = Value::usize(100); // filter larger than ifmap
                }
            }
        }
        assert!(matches!(decode_shape(&v), Err(WireError::Invalid(_))));
    }

    #[test]
    fn unknown_kind_is_typed() {
        let v = Value::obj([
            ("kind", Value::str("NORM")),
            ("m", Value::usize(1)),
            ("c", Value::usize(1)),
            ("h", Value::usize(3)),
            ("r", Value::usize(1)),
            ("u", Value::usize(1)),
        ]);
        assert!(matches!(decode_shape(&v), Err(WireError::Invalid(_))));
    }
}
