//! Deterministic synthetic tensor generation.
//!
//! The paper's energy results depend only on layer *shapes* (all R/W counts
//! are exact functions of Table II), so trained AlexNet weights are not
//! required. For functional verification of the simulator any values work;
//! we generate small, seeded, reproducible fixed-point values. Sparsity can
//! be injected to exercise the chip's zero-gating/RLC path (Section V-E) —
//! ReLU layers make real activation maps highly sparse.

use crate::fixed::Fix16;
use crate::shape::LayerShape;
use crate::tensor::Tensor4;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Raw magnitude bound for generated values (~±0.5 in Q8.8), chosen so
/// AlexNet-sized accumulations stay far from `i32` overflow.
const RAW_BOUND: i16 = 128;

fn gen_tensor(dims: [usize; 4], seed: u64, sparsity: f64) -> Tensor4<Fix16> {
    assert!(
        (0.0..=1.0).contains(&sparsity),
        "sparsity {sparsity} outside [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let len: usize = dims.iter().product();
    let mut data = Vec::with_capacity(len);
    for _ in 0..len {
        if sparsity > 0.0 && rng.gen_bool(sparsity) {
            data.push(Fix16::ZERO);
        } else {
            data.push(Fix16::from_raw(rng.gen_range(-RAW_BOUND..=RAW_BOUND)));
        }
    }
    Tensor4::from_vec(dims, data)
}

/// Generates a dense ifmap batch `[n][G·C][H][H]` for `shape` (all groups
/// of a grouped layer; `G = 1` for dense layers).
///
/// # Example
///
/// ```
/// use eyeriss_nn::{synth, LayerShape};
/// let s = LayerShape::conv(4, 3, 9, 3, 1)?;
/// let a = synth::ifmap(&s, 2, 42);
/// let b = synth::ifmap(&s, 2, 42);
/// assert_eq!(a, b); // seeded => reproducible
/// # Ok::<(), eyeriss_nn::ShapeError>(())
/// ```
pub fn ifmap(shape: &LayerShape, n: usize, seed: u64) -> Tensor4<Fix16> {
    gen_tensor([n, shape.in_channels(), shape.h, shape.h], seed, 0.0)
}

/// Generates an ifmap batch where roughly `sparsity` of values are zero,
/// mimicking post-ReLU activation sparsity.
pub fn sparse_ifmap(shape: &LayerShape, n: usize, seed: u64, sparsity: f64) -> Tensor4<Fix16> {
    gen_tensor([n, shape.in_channels(), shape.h, shape.h], seed, sparsity)
}

/// Generates a filter bank `[M][C][R][R]` for `shape`.
pub fn filters(shape: &LayerShape, seed: u64) -> Tensor4<Fix16> {
    gen_tensor([shape.m, shape.c, shape.r, shape.r], seed, 0.0)
}

/// Generates one bias per ofmap channel.
pub fn biases(shape: &LayerShape, seed: u64) -> Vec<Fix16> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00b1_a5e5);
    (0..shape.m)
        .map(|_| Fix16::from_raw(rng.gen_range(-RAW_BOUND..=RAW_BOUND)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> LayerShape {
        LayerShape::conv(4, 3, 11, 3, 2).unwrap()
    }

    #[test]
    fn seeds_are_deterministic() {
        let s = shape();
        assert_eq!(ifmap(&s, 2, 1), ifmap(&s, 2, 1));
        assert_eq!(filters(&s, 2), filters(&s, 2));
        assert_eq!(biases(&s, 3), biases(&s, 3));
    }

    #[test]
    fn different_seeds_differ() {
        let s = shape();
        assert_ne!(ifmap(&s, 1, 1), ifmap(&s, 1, 2));
    }

    #[test]
    fn sparsity_injects_zeros() {
        let s = shape();
        let t = sparse_ifmap(&s, 1, 9, 0.7);
        let zeros = t.iter().filter(|v| v.is_zero()).count();
        let frac = zeros as f64 / t.len() as f64;
        assert!((0.55..0.85).contains(&frac), "zero fraction {frac}");
    }

    #[test]
    fn dense_has_few_zeros() {
        let s = shape();
        let t = ifmap(&s, 1, 9);
        let zeros = t.iter().filter(|v| v.is_zero()).count();
        // 1/257 chance per element; allow generous slack.
        assert!(zeros < t.len() / 20);
    }

    #[test]
    #[should_panic(expected = "sparsity")]
    fn sparsity_out_of_range_panics() {
        let s = shape();
        let _ = sparse_ifmap(&s, 1, 0, 1.5);
    }
}
