//! AlexNet CONV/FC layer shape configurations (Table II of the paper).
//!
//! AlexNet is the benchmark network used for every experiment in the paper's
//! evaluation. The shapes below are the *padded* shapes of Table II (Caffe
//! variant \[39\]): e.g. CONV1's 227 is the padded input size.
//!
//! The grouped convolutions of the original AlexNet show up in Table II's
//! channel counts (CONV2 sees C = 48, CONV4/5 see C = 192): the table lists
//! *per-tower* shapes and the paper maps each tower as an independent dense
//! layer. [`conv_layers`] keeps that paper-faithful view. The trained
//! network's actual two-tower structure is modeled explicitly by
//! [`grouped_conv_layers`] through [`LayerShape::conv_grouped`], which is
//! the form grouped-aware dataflows (e.g. `flex-rs`) schedule directly.

use crate::shape::{LayerShape, NamedLayer};

/// The five CONV layers of AlexNet (Table II rows CONV1–CONV5).
///
/// # Example
///
/// ```
/// use eyeriss_nn::alexnet;
/// let conv = alexnet::conv_layers();
/// let names: Vec<&str> = conv.iter().map(|l| l.name.as_str()).collect();
/// assert_eq!(names, ["CONV1", "CONV2", "CONV3", "CONV4", "CONV5"]);
/// ```
pub fn conv_layers() -> Vec<NamedLayer> {
    // (name, M, C, H, R, U) taken verbatim from Table II.
    let rows: [(&str, usize, usize, usize, usize, usize); 5] = [
        ("CONV1", 96, 3, 227, 11, 4),
        ("CONV2", 256, 48, 31, 5, 1),
        ("CONV3", 384, 256, 15, 3, 1),
        ("CONV4", 384, 192, 15, 3, 1),
        ("CONV5", 256, 192, 15, 3, 1),
    ];
    rows.iter()
        .map(|&(name, m, c, h, r, u)| {
            NamedLayer::new(
                name,
                LayerShape::conv(m, c, h, r, u).expect("Table II shapes are valid"),
            )
        })
        .collect()
}

/// The five CONV layers with the trained network's two-tower grouping
/// made explicit (Krizhevsky et al.'s dual-GPU split).
///
/// CONV2, CONV4 and CONV5 become `groups = 2` layers whose full ifmaps
/// span both towers (96, 384 and 384 channels respectively); CONV1 and
/// CONV3 are dense, exactly as trained. Per-layer MACs, filter words and
/// ofmap volumes match [`conv_layers`] — only the ifmap extent differs,
/// because Table II's per-tower rows each see half the channels.
///
/// # Example
///
/// ```
/// use eyeriss_nn::alexnet;
/// let grouped = alexnet::grouped_conv_layers();
/// assert_eq!(grouped[1].shape.groups, 2);
/// assert_eq!(grouped[1].shape.in_channels(), 96);
/// // Same arithmetic as the paper's per-tower view.
/// assert_eq!(grouped[1].shape.macs(1), alexnet::conv_layers()[1].shape.macs(1));
/// ```
pub fn grouped_conv_layers() -> Vec<NamedLayer> {
    // (name, M, per-group C, H, R, U, G); C and M per Table II, with the
    // two-tower layers merged back into single grouped layers.
    let rows: [(&str, usize, usize, usize, usize, usize, usize); 5] = [
        ("CONV1", 96, 3, 227, 11, 4, 1),
        ("CONV2", 256, 48, 31, 5, 1, 2),
        ("CONV3", 384, 256, 15, 3, 1, 1),
        ("CONV4", 384, 192, 15, 3, 1, 2),
        ("CONV5", 256, 192, 15, 3, 1, 2),
    ];
    rows.iter()
        .map(|&(name, m, c, h, r, u, g)| {
            NamedLayer::new(
                name,
                LayerShape::conv_grouped(m, c, h, r, u, g).expect("AlexNet shapes are valid"),
            )
        })
        .collect()
}

/// The three FC layers of AlexNet (Table II rows FC1–FC3).
///
/// FC1 consumes the 6x6x256 output of the last pooling stage; FC2 and FC3
/// are plain 4096-wide matrix-vector products.
pub fn fc_layers() -> Vec<NamedLayer> {
    let rows: [(&str, usize, usize, usize); 3] = [
        ("FC1", 4096, 256, 6),
        ("FC2", 4096, 4096, 1),
        ("FC3", 1000, 4096, 1),
    ];
    rows.iter()
        .map(|&(name, m, c, h)| {
            NamedLayer::new(
                name,
                LayerShape::fully_connected(m, c, h).expect("Table II shapes are valid"),
            )
        })
        .collect()
}

/// All eight CONV + FC layers in network order.
pub fn all_layers() -> Vec<NamedLayer> {
    let mut v = conv_layers();
    v.extend(fc_layers());
    v
}

/// Expected ofmap sizes per Table II, used as a self-check.
pub const EXPECTED_E: [(&str, usize); 8] = [
    ("CONV1", 55),
    ("CONV2", 27),
    ("CONV3", 13),
    ("CONV4", 13),
    ("CONV5", 13),
    ("FC1", 1),
    ("FC2", 1),
    ("FC3", 1),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_shapes_match_paper() {
        // Table II column E.
        for (layer, (name, e)) in all_layers().iter().zip(EXPECTED_E) {
            assert_eq!(layer.name, name);
            assert_eq!(layer.shape.e, e, "{name} ofmap size");
        }
    }

    #[test]
    fn conv_dominates_operations() {
        // Section III-B: "CONV layers account for over 90% of the overall
        // operations" in AlexNet.
        let conv_macs: u64 = conv_layers().iter().map(|l| l.shape.macs(1)).sum();
        let fc_macs: u64 = fc_layers().iter().map(|l| l.shape.macs(1)).sum();
        let frac = conv_macs as f64 / (conv_macs + fc_macs) as f64;
        assert!(frac > 0.9, "CONV fraction was {frac}");
    }

    #[test]
    fn fc_holds_most_weights() {
        // Section III-B: "FC layers use most of the filter weights".
        let conv_w: u64 = conv_layers().iter().map(|l| l.shape.filter_words()).sum();
        let fc_w: u64 = fc_layers().iter().map(|l| l.shape.filter_words()).sum();
        assert!(fc_w > 10 * conv_w);
    }

    #[test]
    fn conv1_operation_count() {
        // CONV1: 96 x 3 x 11^2 x 55^2 MACs ~ 105.4 M per image.
        let c1 = &conv_layers()[0].shape;
        assert_eq!(c1.macs(1), 105_415_200);
    }

    #[test]
    fn grouped_view_matches_table_ii_arithmetic() {
        let dense = conv_layers();
        let grouped = grouped_conv_layers();
        for (d, g) in dense.iter().zip(&grouped) {
            assert_eq!(d.name, g.name);
            // Per-tower MAC/weight/ofmap arithmetic is identical; only the
            // ifmap extent differs for the two-tower layers.
            assert_eq!(d.shape.macs(1), g.shape.macs(1), "{}", d.name);
            assert_eq!(d.shape.filter_words(), g.shape.filter_words());
            assert_eq!(d.shape.ofmap_words(1), g.shape.ofmap_words(1));
            assert_eq!(
                g.shape.ifmap_words(1),
                d.shape.ifmap_words(1) * g.shape.groups as u64
            );
        }
        assert_eq!(
            grouped.iter().map(|l| l.shape.groups).collect::<Vec<_>>(),
            [1, 2, 1, 2, 2]
        );
    }

    #[test]
    fn fc_layers_are_fc_shaped() {
        for l in fc_layers() {
            assert!(l.shape.is_fc_shaped(), "{}", l.name);
        }
    }
}
