//! Dense 4-D tensors for fmaps and filter banks.
//!
//! Both fmaps and filters in a CONV layer are 4-D (Section III-A): a batch
//! of 3-D ifmaps `[N][C][H][H]`, a bank of 3-D filters `[M][C][R][R]` and a
//! batch of 3-D ofmaps `[N][M][E][E]`. One generic row-major container
//! covers all three.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major 4-D tensor.
///
/// Indexing is `(d0, d1, d2, d3)`; for an ifmap that reads as
/// `(image, channel, row, column)`.
///
/// # Example
///
/// ```
/// use eyeriss_nn::Tensor4;
///
/// let mut t = Tensor4::zeros([1, 2, 3, 3]);
/// t[(0, 1, 2, 2)] = 7i32;
/// assert_eq!(t[(0, 1, 2, 2)], 7);
/// assert_eq!(t.len(), 18);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Tensor4<T> {
    dims: [usize; 4],
    data: Vec<T>,
}

impl<T: Copy + Default> Tensor4<T> {
    /// Creates a tensor filled with `T::default()`.
    ///
    /// # Panics
    ///
    /// Panics if the element count overflows `usize`.
    pub fn zeros(dims: [usize; 4]) -> Self {
        let len = dims
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .expect("tensor dimensions overflow");
        Tensor4 {
            dims,
            data: vec![T::default(); len],
        }
    }

    /// Creates a tensor from existing data in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `dims`.
    pub fn from_vec(dims: [usize; 4], data: Vec<T>) -> Self {
        let len: usize = dims.iter().product();
        assert_eq!(
            data.len(),
            len,
            "data length {} does not match dims {:?}",
            data.len(),
            dims
        );
        Tensor4 { dims, data }
    }

    /// Builds a tensor by evaluating `f` at every index.
    pub fn from_fn(dims: [usize; 4], mut f: impl FnMut(usize, usize, usize, usize) -> T) -> Self {
        let mut t = Tensor4::zeros(dims);
        for i0 in 0..dims[0] {
            for i1 in 0..dims[1] {
                for i2 in 0..dims[2] {
                    for i3 in 0..dims[3] {
                        t[(i0, i1, i2, i3)] = f(i0, i1, i2, i3);
                    }
                }
            }
        }
        t
    }
}

impl<T> Tensor4<T> {
    /// The four dimensions.
    #[inline]
    pub fn dims(&self) -> [usize; 4] {
        self.dims
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major offset of an index.
    #[inline]
    fn offset(&self, i: (usize, usize, usize, usize)) -> usize {
        debug_assert!(
            i.0 < self.dims[0] && i.1 < self.dims[1] && i.2 < self.dims[2] && i.3 < self.dims[3],
            "index {i:?} out of bounds for dims {:?}",
            self.dims
        );
        ((i.0 * self.dims[1] + i.1) * self.dims[2] + i.2) * self.dims[3] + i.3
    }

    /// Borrows the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrows the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Iterates over elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Borrows one contiguous innermost row `[d0][d1][d2][..]`.
    #[inline]
    pub fn row(&self, i0: usize, i1: usize, i2: usize) -> &[T] {
        debug_assert!(
            i0 < self.dims[0] && i1 < self.dims[1] && i2 < self.dims[2],
            "row ({i0}, {i1}, {i2}) out of bounds for dims {:?}",
            self.dims
        );
        let w = self.dims[3];
        let start = ((i0 * self.dims[1] + i1) * self.dims[2] + i2) * w;
        &self.data[start..start + w]
    }

    /// Mutably borrows one contiguous innermost row `[d0][d1][d2][..]`.
    ///
    /// The stride-flattened counterpart of per-element [`IndexMut`]: hot
    /// loops fold a whole row with one bounds check instead of four index
    /// multiplications per element (full index validation stays on in
    /// debug builds).
    #[inline]
    pub fn row_mut(&mut self, i0: usize, i1: usize, i2: usize) -> &mut [T] {
        debug_assert!(
            i0 < self.dims[0] && i1 < self.dims[1] && i2 < self.dims[2],
            "row ({i0}, {i1}, {i2}) out of bounds for dims {:?}",
            self.dims
        );
        let w = self.dims[3];
        let start = ((i0 * self.dims[1] + i1) * self.dims[2] + i2) * w;
        &mut self.data[start..start + w]
    }

    /// Borrows the contiguous `[d1][d2][d3]` volume at outermost index
    /// `i0` — for an ifmap batch, one whole image. Lets batching code
    /// stack or unstack per-image tensors with `copy_from_slice` instead
    /// of element-wise indexing.
    #[inline]
    pub fn image(&self, i0: usize) -> &[T] {
        debug_assert!(
            i0 < self.dims[0],
            "image {i0} out of bounds for dims {:?}",
            self.dims
        );
        let plane = self.dims[1] * self.dims[2] * self.dims[3];
        &self.data[i0 * plane..(i0 + 1) * plane]
    }

    /// Mutably borrows the contiguous `[d1][d2][d3]` volume at outermost
    /// index `i0`.
    #[inline]
    pub fn image_mut(&mut self, i0: usize) -> &mut [T] {
        debug_assert!(
            i0 < self.dims[0],
            "image {i0} out of bounds for dims {:?}",
            self.dims
        );
        let plane = self.dims[1] * self.dims[2] * self.dims[3];
        &mut self.data[i0 * plane..(i0 + 1) * plane]
    }
}

impl<T> Index<(usize, usize, usize, usize)> for Tensor4<T> {
    type Output = T;
    #[inline]
    fn index(&self, i: (usize, usize, usize, usize)) -> &T {
        let off = self.offset(i);
        &self.data[off]
    }
}

impl<T> IndexMut<(usize, usize, usize, usize)> for Tensor4<T> {
    #[inline]
    fn index_mut(&mut self, i: (usize, usize, usize, usize)) -> &mut T {
        let off = self.offset(i);
        &mut self.data[off]
    }
}

impl<T: fmt::Debug> fmt::Debug for Tensor4<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor4 {{ dims: {:?}, len: {} }}",
            self.dims,
            self.data.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_index_roundtrip() {
        let mut t: Tensor4<i32> = Tensor4::zeros([2, 3, 4, 5]);
        assert_eq!(t.len(), 120);
        t[(1, 2, 3, 4)] = 42;
        assert_eq!(t[(1, 2, 3, 4)], 42);
        assert_eq!(t[(0, 0, 0, 0)], 0);
    }

    #[test]
    fn from_fn_visits_all_indices() {
        let t = Tensor4::from_fn([2, 2, 2, 2], |a, b, c, d| (a * 8 + b * 4 + c * 2 + d) as u8);
        assert_eq!(t.as_slice(), (0u8..16).collect::<Vec<_>>().as_slice());
    }

    #[test]
    fn row_is_contiguous() {
        let t = Tensor4::from_fn([1, 2, 3, 4], |_, i1, i2, i3| (i1 * 12 + i2 * 4 + i3) as i32);
        assert_eq!(t.row(0, 1, 2), &[20, 21, 22, 23]);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut t: Tensor4<i32> = Tensor4::zeros([2, 2, 2, 3]);
        t.row_mut(1, 0, 1).copy_from_slice(&[7, 8, 9]);
        assert_eq!(t[(1, 0, 1, 0)], 7);
        assert_eq!(t[(1, 0, 1, 2)], 9);
        assert_eq!(t.row(1, 0, 1), &[7, 8, 9]);
    }

    #[test]
    fn image_is_the_outermost_plane() {
        let t = Tensor4::from_fn([3, 2, 2, 2], |i0, i1, i2, i3| {
            (i0 * 8 + i1 * 4 + i2 * 2 + i3) as i32
        });
        assert_eq!(t.image(1), (8..16).collect::<Vec<i32>>().as_slice());
        let mut u: Tensor4<i32> = Tensor4::zeros([2, 2, 2, 2]);
        u.image_mut(1).copy_from_slice(t.image(0));
        assert_eq!(u.image(1), t.image(0));
        assert_eq!(u.image(0), &[0; 8]);
    }

    #[test]
    #[should_panic(expected = "does not match dims")]
    fn from_vec_checks_len() {
        let _ = Tensor4::from_vec([2, 2, 2, 2], vec![0i32; 15]);
    }

    #[test]
    fn debug_is_nonempty() {
        let t: Tensor4<i32> = Tensor4::zeros([1, 1, 1, 1]);
        assert!(!format!("{t:?}").is_empty());
    }

    proptest! {
        #[test]
        fn prop_offset_bijective(d in proptest::array::uniform4(1usize..5)) {
            let t = Tensor4::from_fn(d, |a, b, c, e| {
                ((a * d[1] + b) * d[2] + c) * d[3] + e
            });
            // from_fn writes the flat offset at each index; reading the slice
            // back must give 0..len in order iff offset() is the row-major
            // bijection.
            let expect: Vec<usize> = (0..t.len()).collect();
            prop_assert_eq!(t.as_slice(), expect.as_slice());
        }
    }
}
